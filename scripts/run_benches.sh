#!/usr/bin/env bash
# Builds and runs the JSON-emitting benchmarks, writing the machine-readable
# artifacts at the repo root (BENCH_<id>.json per manifest row below).
#
# Every binary encodes its acceptance headline in the exit status
# (e15: cache speedup ≥ 3× at n=7 rounds=10; e17: threads W4B4 ≥ 2× the
# W1B1 commits/sec; e18: checkpointing retains ≥ 60% throughput and every
# kill/restart rejoins; e19: staged ingest ≥ 1.5× the E17-configuration
# baseline at n=7/n=10 on both wall-clock substrates; e20: every client
# cell settles its whole script exactly once and the overload cells shed
# with BUSY while queue_peak stays within n × max_pending), so this
# script fails loudly on a regression.
#
# Usage: scripts/run_benches.sh [--only eNN] [build-dir]
#   scripts/run_benches.sh               # every manifest row
#   scripts/run_benches.sh --only e19    # just the staged-ingest bench
set -euo pipefail

cd "$(dirname "$0")/.."

ONLY=""
BUILD_DIR=build
while [[ $# -ge 1 ]]; do
  case "$1" in
    --only)
      [[ $# -ge 2 ]] || { echo "--only needs an experiment id (e.g. e19)" >&2; exit 2; }
      ONLY="$2"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

# Manifest: one row per acceptance-carrying benchmark — "<id> <binary>".
# The artifact is BENCH_<id>.json; extra per-bench flags go after the
# binary name.  Adding an experiment = adding a row.
MANIFEST=(
  "e15 bench_e15_cert_fastpath"
  "e17 bench_e17_pipeline"
  "e18 bench_e18_recovery"
  "e19 bench_e19_ingest"
  "e20 bench_e20_client"
)

TARGETS=()
for row in "${MANIFEST[@]}"; do
  read -r id binary _ <<< "${row}"
  [[ -n "${ONLY}" && "${id}" != "${ONLY}" ]] && continue
  TARGETS+=("${binary}")
done
if [[ ${#TARGETS[@]} -eq 0 ]]; then
  echo "no manifest row matches --only ${ONLY}" >&2
  exit 2
fi

cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TARGETS[@]}"

for row in "${MANIFEST[@]}"; do
  read -r id binary flags <<< "${row}"
  [[ -n "${ONLY}" && "${id}" != "${ONLY}" ]] && continue
  echo
  echo "=== ${id}: ${binary} → BENCH_${id}.json ==="
  # shellcheck disable=SC2086
  "./${BUILD_DIR}/bench/${binary}" --out "BENCH_${id}.json" ${flags:-}
done
