#!/usr/bin/env bash
# Builds and runs the JSON-emitting benchmarks, writing the machine-readable
# artifacts at the repo root:
#   BENCH_e15.json — certificate fast path, cached vs uncached verification
#   BENCH_e17.json — pipelined SMR commit throughput, window × batch sweep
#   BENCH_e18.json — checkpoint overhead + kill/restart recovery time
#
# Every binary encodes its acceptance headline in the exit status
# (e15: cache speedup ≥ 3× at n=7 rounds=10; e17: threads W4B4 ≥ 2× the
# W1B1 commits/sec; e18: checkpointing retains ≥ 60% throughput and every
# kill/restart rejoins), so this script fails loudly on a regression.
#
# Usage: scripts/run_benches.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target bench_e15_cert_fastpath bench_e17_pipeline bench_e18_recovery

"./${BUILD_DIR}/bench/bench_e15_cert_fastpath" --out BENCH_e15.json
echo
"./${BUILD_DIR}/bench/bench_e17_pipeline" --out BENCH_e17.json
echo
"./${BUILD_DIR}/bench/bench_e18_recovery" --out BENCH_e18.json
