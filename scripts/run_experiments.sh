#!/usr/bin/env bash
# Regenerates every artifact recorded in EXPERIMENTS.md:
#   build → full test suite → every benchmark binary, with outputs captured
#   at the repository root (test_output.txt, bench_output.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/bench_*; do echo "===== $b ====="; "$b"; done) 2>&1 \
  | tee bench_output.txt
