#!/usr/bin/env bash
# Builds the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the full test suite under them, then rebuilds with
# ThreadSanitizer and reruns the concurrency-labelled subset.
#
# The transport chaos tests are the main ASan customers: they exercise
# concurrent reconnect/retransmit paths where lifetime bugs would hide.
# The certificate fast path is the other: Reader views alias decode
# buffers and certificates share immutable members, so bft_fastpath_test
# and perf_smoke_cert_fastpath (both in the default ctest set) run here to
# catch any dangling view or aliasing bug.
#
# The adversarial campaign (src/adversary/) runs here twice: the
# adversary_campaign_smoke/adversary_campaign_test ctest entries inside
# the full ASan suite, plus an explicit full-catalog sweep across all
# three substrates — mutation-fuzzed frames hammer the decoder with
# attacker-controlled bytes, exactly where an out-of-bounds read would
# hide from the happy-path tests.
#
# The TSan pass covers the wall-clock substrates (threaded Cluster and
# TcpCluster): tests labelled `threads` or `tcp` — mailboxes, the
# delivery tap, Stats accumulation, reconnect threads — where a data race
# would not crash but would silently corrupt an experiment.  The SMR
# pipeline added two more customers under the `threads` label:
# verify_pool_test (concurrent verify_all callers hammering one
# crypto::VerifyPool and a shared CachingVerifier) and smr_pipeline_test
# (pipelined replicas on the threaded cluster with the pool enabled).
# The recovery subsystem (label `recovery`) adds three more: the
# STATE_RESP decode fuzz loop runs under ASan/UBSan inside the full
# suite, and smr_recovery_transport_test / recovery_attack_test carry the
# threads/tcp labels so the TSan pass exercises the node-thread dormancy
# loop, the restart handoff of actor/timers/rng, and the shared
# CachingVerifier surviving across a replica's two lives.
# The staged ingest pipeline (docs/INGEST.md) adds the newest customers:
# epoll_chaos_test (label `tcp`) drives the epoll receive loop through
# link kills, wire noise, slow-reader backpressure and burst batch
# dispatch, and perf_smoke_ingest plus the staged-ingest cases in
# smr_pipeline_test / substrate_equivalence_test (labels `threads`/`tcp`)
# run prologue workers against the shared verify cache under TSan — the
# decode-on-worker handoff and the pooled encode buffers are exactly
# where a lifetime or ordering bug would corrupt frames silently.
# The client/service layer (docs/CLIENT.md) rides both passes:
# client_test and the client chaos campaign (client_chaos_test, labels
# `threads`/`tcp`) run reply-dropping/-delaying/-forging attackers against
# real client threads racing replica threads — retry timers, the reply
# certifier, the client table and BUSY shedding are all cross-thread
# state, so the TSan subset picks the campaign up automatically.
# TSan and ASan cannot share a build, so it uses its own build directory
# (build-tsan, -DMODUBFT_TSAN=ON).
#
# Usage: scripts/run_sanitizers.sh [ctest-regex]
#   scripts/run_sanitizers.sh             # everything
#   scripts/run_sanitizers.sh tcp_chaos   # just the chaos tests
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-sanitize
TSAN_BUILD_DIR=build-tsan

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMODUBFT_SANITIZE=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error: any report is a test failure, not a log line.
export ASAN_OPTIONS=halt_on_error=1:detect_leaks=1
export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1

pushd "${BUILD_DIR}" >/dev/null
if [[ $# -ge 1 ]]; then
  ctest --output-on-failure -R "$1"
else
  ctest --output-on-failure -j "$(nproc)"
  echo
  echo "=== Adversarial campaign under ASan/UBSan ==="
  ./examples/scenario_cli campaign --n 4 --f 1 --seeds 1 \
    --substrates sim,threads,tcp --out campaign_asan.json
fi
popd >/dev/null

echo
echo "=== ThreadSanitizer pass (labels: threads, tcp) ==="
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMODUBFT_TSAN=ON
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)"

export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1

pushd "${TSAN_BUILD_DIR}" >/dev/null
if [[ $# -ge 1 ]]; then
  ctest --output-on-failure -L 'threads|tcp' -R "$1"
else
  ctest --output-on-failure -L 'threads|tcp'
fi
popd >/dev/null
