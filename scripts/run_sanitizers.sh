#!/usr/bin/env bash
# Builds the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the full test suite under them.  The transport chaos tests are
# the main customers: they exercise concurrent reconnect/retransmit paths
# where lifetime bugs would hide.  The certificate fast path is the other:
# Reader views alias decode buffers and certificates share immutable
# members, so bft_fastpath_test and perf_smoke_cert_fastpath (both in the
# default ctest set) run here to catch any dangling view or aliasing bug.
#
# Usage: scripts/run_sanitizers.sh [ctest-regex]
#   scripts/run_sanitizers.sh             # everything
#   scripts/run_sanitizers.sh tcp_chaos   # just the chaos tests
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-sanitize

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMODUBFT_SANITIZE=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error: any report is a test failure, not a log line.
export ASAN_OPTIONS=halt_on_error=1:detect_leaks=1
export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1

cd "${BUILD_DIR}"
if [[ $# -ge 1 ]]; then
  ctest --output-on-failure -R "$1"
else
  ctest --output-on-failure -j "$(nproc)"
fi
