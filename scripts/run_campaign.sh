#!/usr/bin/env bash
# Runs the adversarial campaign: the full attack catalog swept across all
# three substrates (sim, threads, tcp) with several seeds per cell — over
# 200 (attack × substrate × seed) scenarios — plus the negative control
# (the deliberately broken protocol double the auditor must flag).
#
# The JSON report lands in build/campaign_report.json; the script exits
# nonzero if any cell fails an invariant or the negative control goes
# unflagged.  Pass extra scenario_cli campaign flags to override the grid:
#
#   scripts/run_campaign.sh                     # default ~200-cell sweep
#   scripts/run_campaign.sh --n 7 --f 2         # coalition grid
#   scripts/run_campaign.sh --attacks equivocate,fuzz-storm --seeds 20
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target scenario_cli

"${BUILD_DIR}/examples/scenario_cli" campaign \
  --n 4 --f 1 --seeds 3 \
  --substrates sim,threads,tcp \
  --out "${BUILD_DIR}/campaign_report.json" \
  "$@"

echo
echo "report: ${BUILD_DIR}/campaign_report.json"
