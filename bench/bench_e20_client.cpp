// E20 — client/service layer: end-to-end latency and overload shedding.
//
// Two questions, one report (BENCH_e20.json, see EXPERIMENTS.md):
//
//  1. What does a client actually observe?  End-to-end request latency
//     (first submission → f+1-certified reply) through the full stack —
//     REQUEST admission, relay, consensus, commit, REPLY certification —
//     closed loop and open loop, sim + threads.  The report records
//     p50/p99/p999 and certified-ops throughput.
//
//  2. Does overload protection actually bound the queue?  An open-loop
//     cell drives the cluster with a deliberately tiny admission bound
//     (max_pending=4): replicas must shed with BUSY, the pending-command
//     peak must respect the n × max_pending relay ceiling, and — the
//     robustness headline — every operation still settles exactly once
//     (clients back off and retry until the queue drains).
//
// Every cell is audited: all clients certify their whole script and every
// accepted reply matches the committed log (audit_client_replies).
//
// Usage: bench_e20_client [--out FILE] [--clients N] [--ops N]
//                         [--budget-ms MS]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "adversary/client_campaign.hpp"
#include "bench_json.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"

namespace {

using namespace modubft;

constexpr std::uint32_t kWindow = 4;
constexpr std::uint32_t kBatch = 2;
constexpr std::uint32_t kOverloadPending = 4;

enum class Mode { kClosed, kOpen, kOverload };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kClosed: return "closed-loop";
    case Mode::kOpen: return "open-loop";
    case Mode::kOverload: return "overload";
  }
  return "?";
}

struct Row {
  runtime::Backend substrate;
  Mode mode;
  bool ok = true;
  double ops_per_sec = 0;
  faults::SmrScenarioResult last;
};

Row run_cell(runtime::Backend substrate, Mode mode, std::uint32_t clients,
             std::uint32_t ops, std::chrono::milliseconds budget) {
  faults::SmrScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 20;
  cfg.substrate = substrate;
  cfg.backend = smr::Backend::kByzantine;
  cfg.window = kWindow;
  cfg.batch = kBatch;
  cfg.budget = budget;
  cfg.checkpoint_interval = 8;

  faults::ClientLoadConfig load;
  load.count = clients;
  load.ops_per_client = ops;
  if (mode != Mode::kClosed) {
    load.open_loop = true;
    load.interval = substrate == runtime::Backend::kSim ? 200 : 2'000;
    load.max_outstanding = 8;
  }
  if (mode == Mode::kOverload) load.max_pending = kOverloadPending;
  cfg.clients = load;
  // Two slots per op (thin batches + no-op races) plus drain margin —
  // see adversary/client_campaign.cpp.
  cfg.slots = 2ull * clients * ops + 2 * kWindow;

  Row row;
  row.substrate = substrate;
  row.mode = mode;
  row.last = faults::run_smr_scenario(cfg);

  const faults::SmrScenarioResult& r = row.last;
  const std::uint64_t total = static_cast<std::uint64_t>(clients) * ops;
  row.ok = r.clean && r.all_committed && r.stores_agree &&
           r.clients_done.size() == clients &&
           r.run_stats.client.accepted == total &&
           r.commit_log_duplicates == 0 &&
           adversary::audit_client_replies(r).empty();
  if (mode == Mode::kOverload) {
    // The shedding headline: BUSY actually fired, and the pending set
    // respected the n × max_pending relay ceiling (plus one frontier
    // batch of slack for fetch-exempt bodies a parked commit needs).
    if (r.run_stats.client.sheds == 0) row.ok = false;
    if (r.run_stats.client.queue_peak > cfg.n * kOverloadPending + kBatch) {
      row.ok = false;
    }
  }
  const double us = substrate == runtime::Backend::kSim
                        ? static_cast<double>(r.run_stats.virtual_time)
                        : static_cast<double>(r.run_stats.wall_us);
  if (us > 0) {
    row.ops_per_sec =
        static_cast<double>(r.run_stats.client.accepted) * 1e6 / us;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_e20.json";
  std::uint32_t clients = 4;
  std::uint32_t ops = 25;
  std::chrono::milliseconds budget{30'000};
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      clients = static_cast<std::uint32_t>(std::atoi(need("--clients")));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      ops = static_cast<std::uint32_t>(std::atoi(need("--ops")));
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      budget = std::chrono::milliseconds(
          std::strtoll(need("--budget-ms"), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("E20: client/service layer, byz n=4 f=1, %u clients x %u ops, "
              "W=%u B=%u\n",
              clients, ops, kWindow, kBatch);
  std::printf("%-8s %-12s %10s %9s %9s %9s %7s %6s %10s %4s\n", "substrate",
              "mode", "ops/sec", "p50_us", "p99_us", "p999_us", "retries",
              "sheds", "queue_peak", "ok");

  const std::vector<runtime::Backend> substrates = {
      runtime::Backend::kSim, runtime::Backend::kThreads};
  const std::vector<Mode> modes = {Mode::kClosed, Mode::kOpen,
                                   Mode::kOverload};

  benchjson::JsonArray rows;
  bool all_ok = true;
  bool shedding_proved = false;
  for (runtime::Backend substrate : substrates) {
    for (Mode mode : modes) {
      Row row = run_cell(substrate, mode, clients, ops, budget);
      all_ok = all_ok && row.ok;
      const runtime::ClientSummary& cs = row.last.run_stats.client;
      if (mode == Mode::kOverload && row.ok && cs.sheds > 0) {
        shedding_proved = true;
      }
      std::printf("%-8s %-12s %10.1f %9llu %9llu %9llu %7llu %6llu %10llu "
                  "%4s\n",
                  runtime::backend_name(substrate), mode_name(mode),
                  row.ops_per_sec,
                  static_cast<unsigned long long>(cs.p50_us),
                  static_cast<unsigned long long>(cs.p99_us),
                  static_cast<unsigned long long>(cs.p999_us),
                  static_cast<unsigned long long>(cs.retries),
                  static_cast<unsigned long long>(cs.sheds),
                  static_cast<unsigned long long>(cs.queue_peak),
                  row.ok ? "yes" : "NO");
      benchjson::JsonObject o;
      o.field("substrate", runtime::backend_name(row.substrate))
          .field("mode", mode_name(row.mode))
          .field("ops_per_sec", row.ops_per_sec)
          .field("accepted", cs.accepted)
          .field("p50_us", cs.p50_us)
          .field("p99_us", cs.p99_us)
          .field("p999_us", cs.p999_us)
          .field("retries", cs.retries)
          .field("sheds", cs.sheds)
          .field("busy", cs.busy)
          .field("queue_peak", cs.queue_peak)
          .field("queue_bound",
                 static_cast<std::uint64_t>(4) * kOverloadPending + kBatch)
          .field("ok", row.ok);
      o.raw("run_stats", runtime::to_json(row.substrate, row.last.run_stats));
      rows.add(o.str());
    }
  }

  benchjson::JsonObject report;
  report.field("experiment", "e20_client")
      .field("protocol", "byzantine")
      .field("n", static_cast<std::uint64_t>(4))
      .field("f", static_cast<std::uint64_t>(1))
      .field("clients", static_cast<std::uint64_t>(clients))
      .field("ops_per_client", static_cast<std::uint64_t>(ops))
      .field("window", static_cast<std::uint64_t>(kWindow))
      .field("batch", static_cast<std::uint64_t>(kBatch))
      .field("overload_max_pending",
             static_cast<std::uint64_t>(kOverloadPending))
      .field("shedding_proved", shedding_proved)
      .field("all_ok", all_ok);
  report.raw("rows", rows.str());
  benchjson::write_file(out, report.str());
  std::printf("wrote %s\n", out.c_str());

  // Acceptance headline in the exit status: every cell settled its whole
  // script exactly once, and the overload cells shed while holding the
  // queue bound.
  return all_ok && shedding_proved ? 0 : 1;
}
