// E3 — the cost of the crash→arbitrary transformation.
//
// Runs the *same* workload (group size, failure pattern, network, seed)
// under the original crash-model protocol and under its transformed
// Byzantine version, and reports the overhead side by side.  Expected
// shape: the transformed protocol pays
//   * a small constant message-count factor (INIT phase + relayed
//     CURRENTs),
//   * a large byte factor that grows with n (certificates carry n−F signed
//     messages; this is the dominant cost the paper's certificate design
//     implies),
//   * a similar round count (the round structure is preserved by the
//     transformation — that is the methodology's point).
#include <benchmark/benchmark.h>

#include <set>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;

struct Workload {
  const char* name;
  bool crash_coordinator;
};

void run_crash(benchmark::State& state, std::uint32_t n, bool crash_coord) {
  double rounds = 0, msgs = 0, kbytes = 0, sim_ms = 0;
  std::uint64_t seed = 1, total = 0;
  for (auto _ : state) {
    faults::CrashScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = seed++;
    cfg.protocol = faults::CrashProtocol::kHurfinRaynal;
    cfg.crash_times.assign(n, std::nullopt);
    if (crash_coord) cfg.crash_times[0] = SimTime{0};
    faults::CrashScenarioResult r = faults::run_crash_scenario(cfg);
    total += 1;
    rounds += r.max_decision_round.value;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["sim_ms"] = sim_ms / k;
}

void run_bft(benchmark::State& state, std::uint32_t n, bool crash_coord) {
  double rounds = 0, msgs = 0, kbytes = 0, sim_ms = 0, max_kb = 0;
  std::uint64_t seed = 1, total = 0;
  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = n;
    cfg.f = bft::max_tolerated_faults(n);
    cfg.seed = seed++;
    if (crash_coord) {
      faults::FaultSpec spec;
      spec.who = ProcessId{0};
      spec.behavior = faults::Behavior::kCrash;
      spec.at = 0;
      cfg.faults.push_back(spec);
    }
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    rounds += r.max_decision_round.value;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
    max_kb += static_cast<double>(r.max_message_bytes) / 1024.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["sim_ms"] = sim_ms / k;
  state.counters["max_msg_kb"] = max_kb / k;
}

void register_all() {
  const Workload workloads[] = {{"clean", false}, {"coord_crash", true}};
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    for (const Workload& w : workloads) {
      std::string crash_name = "E3/crash_HR/n:" + std::to_string(n) +
                               "/workload:" + w.name;
      std::string bft_name =
          "E3/transformed_BFT/n:" + std::to_string(n) + "/workload:" + w.name;
      const bool cc = w.crash_coordinator;
      benchmark::RegisterBenchmark(
          crash_name.c_str(),
          [n, cc](benchmark::State& st) { run_crash(st, n, cc); });
      benchmark::RegisterBenchmark(
          bft_name.c_str(),
          [n, cc](benchmark::State& st) { run_bft(st, n, cc); });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
