// E12 — generic-pipeline overhead: the certified lockstep barrier.
//
// The second instantiation of the transformation (bft/lockstep.hpp) is the
// minimal regular round-based protocol, so its cost isolates the price of
// the *pipeline itself*: signatures, witness certificates and per-peer
// monitoring, with no consensus logic on top.  Expected shape: time per
// barrier is flat in the round index (witness pruning keeps votes small);
// disabling pruning makes votes grow with the witness chain.
#include <benchmark/benchmark.h>

#include <map>

#include "bft/lockstep.hpp"
#include "crypto/hmac_signer.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace modubft;

void run_case(benchmark::State& state, std::uint32_t n, std::uint32_t rounds,
              bool prune) {
  double barrier_ms = 0, msgs = 0, kbytes = 0;
  std::uint64_t finished_all = 0, total = 0, seed = 1;

  for (auto _ : state) {
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, seed);
    sim::SimConfig sim_cfg;
    sim_cfg.n = n;
    sim_cfg.seed = seed++;
    sim::Simulation world(sim_cfg);

    bft::LockstepConfig cfg;
    cfg.n = n;
    cfg.f = bft::max_tolerated_faults(n);
    cfg.rounds = rounds;
    cfg.prune_witness = prune;

    std::map<std::uint32_t, SimTime> finish;
    for (std::uint32_t i = 0; i < n; ++i) {
      world.set_actor(ProcessId{i},
                      bft::make_lockstep_actor(
                          cfg, keys.signers[i].get(), keys.verifier,
                          [&finish, i](ProcessId, Round, SimTime t) {
                            finish.emplace(i, t);
                          }));
    }
    world.run();

    total += 1;
    finished_all += finish.size() == n;
    SimTime last = 0;
    for (auto& [i, t] : finish) last = std::max(last, t);
    barrier_ms += static_cast<double>(last) / 1000.0 / rounds;
    msgs += static_cast<double>(world.stats().messages_sent) / rounds;
    kbytes +=
        static_cast<double>(world.stats().bytes_sent) / 1024.0 / rounds;
  }

  const double k = static_cast<double>(total);
  state.counters["barrier_ms"] = barrier_ms / k;
  state.counters["msgs_per_round"] = msgs / k;
  state.counters["kb_per_round"] = kbytes / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(finished_all) / k;
}

void register_all() {
  for (std::uint32_t n : {4u, 7u, 10u}) {
    for (bool prune : {true, false}) {
      // Without pruning a vote embeds its full witness chain, whose size
      // grows like quorum^round — 4 rounds already makes the point; with
      // pruning, 20 rounds stay flat.
      const std::uint32_t rounds = prune ? 20u : 4u;
      std::string name = "E12/lockstep/n:" + std::to_string(n) +
                         "/rounds:" + std::to_string(rounds) +
                         "/witness_pruning:" + (prune ? "on" : "off");
      benchmark::RegisterBenchmark(name.c_str(),
                                   [n, prune, rounds](benchmark::State& st) {
                                     run_case(st, n, rounds, prune);
                                   });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
