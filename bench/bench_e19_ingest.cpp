// E19 — staged ingest pipeline throughput: the end-to-end message path
// (epoll transport → parallel decode+verify prologue → sequential
// protocol stage → batched signing over pooled encode buffers, see
// docs/INGEST.md) against the BENCH_e17-era configuration (the strictly
// sequential W=1/B=1 message path, staged ingest off).
//
// Larger groups than E17's n=4 headline: n=7 (f=2) and n=10 (f=3), on
// both wall-clock substrates (threads and tcp) — certificate sizes and
// per-node inbound fan-in grow with n, which is exactly what the single
// epoll loop and the prologue's cross-message parallelism are for.  The
// default signature scheme is kRsa64, the repo's expensive-verification
// scheme: staging exists for deployments where signature checks dominate
// the ingest path (the paper's "usual certification mechanisms"), and
// that is the regime the acceptance is measured in.  --scheme hmac shows
// the cheap-signature end of the spectrum, where the prologue's extra
// decode pass costs about what the parallel warming saves (the report
// records it; no threshold applies there).
//
// Acceptance (tracked in BENCH_e19.json, encoded in the exit status): at
// every (substrate, n) cell, the staged pipeline at W=4/B=4 commits
// ≥ 1.5× the commands/sec of the E17-configuration baseline.  A third,
// informational row per cell isolates the ingest stage itself: W=4/B=4
// with staged ingest forced off.
//
// Every run also re-checks the equivalence claim: all_committed,
// stores_agree, and the staged/sequential runs of a cell must end with
// byte-identical stores — a throughput number from a diverged run is
// meaningless and fails the bench.
//
// Usage: bench_e19_ingest [--out FILE] [--commands N] [--reps R]
//                         [--budget-ms MS] [--scheme hmac|rsa64] [--smoke]
// --smoke: tiny-n single-rep equivalence + non-regression check for
// ctest (perf_smoke_ingest) — no BENCH file, relaxed threshold.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"
#include "smr/replica.hpp"

namespace {

using namespace modubft;

std::vector<smr::Command> make_workload(std::uint64_t count) {
  std::vector<smr::Command> cmds;
  for (std::uint64_t id = 1; id <= count; ++id) {
    const std::string key = "key" + std::to_string(id % 8);
    if (id % 5 == 0) {
      cmds.push_back({id, smr::Command::Op::kDel, key, ""});
    } else {
      cmds.push_back({id, smr::Command::Op::kPut, key,
                      "v" + std::to_string(id)});
    }
  }
  return cmds;
}

struct CellConfig {
  runtime::Backend substrate;
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t window = 1;
  std::uint32_t batch = 1;
  bool staged = false;
  const char* label = "";
  faults::Scheme scheme = faults::Scheme::kRsa64;
};

const char* scheme_name(faults::Scheme s) {
  return s == faults::Scheme::kHmac ? "hmac" : "rsa64";
}

struct RunRow {
  CellConfig cfg;
  double commits_per_sec = 0;  // median over reps
  std::vector<double> rep_cps;
  bool ok = true;
  std::map<std::string, std::string> store;
  faults::SmrScenarioResult last;
};

double commits_per_sec(runtime::Backend substrate,
                       const faults::SmrScenarioResult& r) {
  const double us = substrate == runtime::Backend::kSim
                        ? static_cast<double>(r.run_stats.virtual_time)
                        : static_cast<double>(r.run_stats.wall_us);
  if (us <= 0) return 0;
  return static_cast<double>(r.run_stats.pipeline.commands_committed) * 1e6 /
         us;
}

RunRow run_cell(const CellConfig& cell, std::uint64_t commands, int reps,
                std::chrono::milliseconds budget) {
  RunRow row;
  row.cfg = cell;
  for (int rep = 0; rep < reps; ++rep) {
    faults::SmrScenarioConfig cfg;
    cfg.n = cell.n;
    cfg.f = cell.f;
    cfg.seed = 19 + static_cast<std::uint64_t>(rep);
    cfg.substrate = cell.substrate;
    cfg.backend = smr::Backend::kByzantine;
    cfg.workload = make_workload(commands);
    cfg.window = cell.window;
    cfg.batch = cell.batch;
    cfg.staged_ingest = cell.staged;
    cfg.scheme = cell.scheme;
    // Slack beyond ceil(commands / B): racing proposals can cost the odd
    // no-op slot; the throughput number must cover the whole workload.
    cfg.slots = (commands + cell.batch - 1) / cell.batch + 2;
    cfg.budget = budget;
    faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
    if (!r.clean || !r.all_committed || !r.stores_agree ||
        r.run_stats.pipeline.commands_committed != commands ||
        r.run_stats.ingest.staged != (cell.staged ? 1u : 0u)) {
      row.ok = false;
    }
    row.rep_cps.push_back(commits_per_sec(cell.substrate, r));
    row.store = r.store;
    row.last = std::move(r);
  }
  std::vector<double> sorted = row.rep_cps;
  std::sort(sorted.begin(), sorted.end());
  row.commits_per_sec = sorted[sorted.size() / 2];
  return row;
}

std::string row_json(const RunRow& row) {
  benchjson::JsonObject o;
  o.field("substrate", runtime::backend_name(row.cfg.substrate))
      .field("n", static_cast<std::uint64_t>(row.cfg.n))
      .field("f", static_cast<std::uint64_t>(row.cfg.f))
      .field("config", row.cfg.label)
      .field("window", static_cast<std::uint64_t>(row.cfg.window))
      .field("batch", static_cast<std::uint64_t>(row.cfg.batch))
      .field("staged_ingest", row.cfg.staged)
      .field("scheme", scheme_name(row.cfg.scheme))
      .field("commits_per_sec", row.commits_per_sec)
      .field("all_committed", row.ok);
  benchjson::JsonArray reps;
  for (double v : row.rep_cps) {
    std::ostringstream os;
    os << v;
    reps.add(os.str());
  }
  o.raw("rep_commits_per_sec", reps.str());
  o.raw("run_stats",
        runtime::to_json(row.cfg.substrate, row.last.run_stats));
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_e19.json";
  std::uint64_t commands = 32;
  int reps = 3;
  std::chrono::milliseconds budget{30'000};
  bool smoke = false;
  faults::Scheme scheme = faults::Scheme::kRsa64;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--commands") == 0) {
      commands = std::strtoull(need("--commands"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(need("--reps"));
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      budget = std::chrono::milliseconds(
          std::strtoll(need("--budget-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      const std::string name = need("--scheme");
      if (name == "hmac") {
        scheme = faults::Scheme::kHmac;
      } else if (name == "rsa64") {
        scheme = faults::Scheme::kRsa64;
      } else {
        std::fprintf(stderr, "--scheme must be hmac or rsa64\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // --smoke (perf_smoke_ingest): one tiny threads cell, staged vs
  // sequential at the same W/B — equivalence must hold bit for bit, and
  // the staged path must not be catastrophically slower (non-regression,
  // not the acceptance threshold: a smoke run is too small to measure a
  // speedup meaningfully).
  if (smoke) {
    const std::uint64_t c = 12;
    CellConfig stg{runtime::Backend::kThreads, 4, 1, 4, 4, true, "staged",
                   scheme};
    CellConfig seq{runtime::Backend::kThreads, 4, 1, 4, 4, false,
                   "sequential", scheme};
    const RunRow a = run_cell(stg, c, 1, budget);
    const RunRow b = run_cell(seq, c, 1, budget);
    const bool stores_equal = a.store == b.store && !a.store.empty();
    const bool no_regression =
        b.commits_per_sec <= 0 ||
        a.commits_per_sec >= 0.25 * b.commits_per_sec;
    std::printf(
        "perf_smoke_ingest: staged %.1f c/s, sequential %.1f c/s, "
        "ok=%d/%d stores_equal=%d no_regression=%d\n",
        a.commits_per_sec, b.commits_per_sec, a.ok, b.ok,
        stores_equal, no_regression);
    return a.ok && b.ok && stores_equal && no_regression ? 0 : 1;
  }

  const std::vector<runtime::Backend> substrates = {
      runtime::Backend::kThreads, runtime::Backend::kTcp};
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> groups = {
      {7, 2}, {10, 3}};  // (n, f)

  std::printf("E19: staged ingest, byz SMR, %llu commands, scheme=%s\n",
              static_cast<unsigned long long>(commands),
              scheme_name(scheme));
  std::printf("%-8s %3s %-14s %3s %3s %7s %14s %4s\n", "substrate", "n",
              "config", "W", "B", "staged", "commits/sec", "ok");

  benchjson::JsonArray rows;
  benchjson::JsonArray speedups;
  bool all_ok = true;
  double min_speedup = -1;
  for (runtime::Backend substrate : substrates) {
    for (const auto& [n, f] : groups) {
      // The three cells: the E17-era baseline, the full staged pipeline,
      // and the isolation row (same W/B, staged off).
      const CellConfig cells[] = {
          {substrate, n, f, 1, 1, false, "e17_baseline", scheme},
          {substrate, n, f, 4, 4, true, "staged_pipeline", scheme},
          {substrate, n, f, 4, 4, false, "w4b4_sequential", scheme},
      };
      double base = 0, staged = 0;
      std::map<std::string, std::string> staged_store, seq_store;
      for (const CellConfig& cell : cells) {
        RunRow row = run_cell(cell, commands, reps, budget);
        all_ok = all_ok && row.ok;
        if (std::strcmp(cell.label, "e17_baseline") == 0) {
          base = row.commits_per_sec;
        } else if (std::strcmp(cell.label, "staged_pipeline") == 0) {
          staged = row.commits_per_sec;
          staged_store = row.store;
        } else {
          seq_store = row.store;
        }
        std::printf("%-8s %3u %-14s %3u %3u %7s %14.1f %4s\n",
                    runtime::backend_name(substrate), n, cell.label,
                    cell.window, cell.batch, cell.staged ? "yes" : "no",
                    row.commits_per_sec, row.ok ? "yes" : "NO");
        rows.add(row_json(row));
      }
      // Equivalence across the cell: staged and sequential runs of the
      // same workload must end in the same store.
      if (staged_store != seq_store || staged_store.empty()) {
        std::printf("  !! staged/sequential stores diverged (n=%u)\n", n);
        all_ok = false;
      }
      const double speedup = base > 0 ? staged / base : 0;
      if (min_speedup < 0 || speedup < min_speedup) min_speedup = speedup;
      std::printf("  -> staged vs e17 baseline: %.2fx\n", speedup);
      benchjson::JsonObject s;
      s.field("substrate", runtime::backend_name(substrate))
          .field("n", static_cast<std::uint64_t>(n))
          .field("speedup_vs_e17_baseline", speedup);
      speedups.add(s.str());
    }
  }

  // The ≥1.5× acceptance is defined in the verification-dominated (rsa64)
  // regime; an hmac run reports speedups informationally only.
  const bool threshold_applies = scheme == faults::Scheme::kRsa64;
  std::printf("minimum speedup across cells: %.2fx (%s)\n", min_speedup,
              threshold_applies ? "acceptance >= 1.5"
                                : "informational: no threshold under hmac");
  const bool accepted =
      all_ok && (!threshold_applies || min_speedup >= 1.5);

  benchjson::JsonObject report;
  report.field("experiment", "e19_ingest")
      .field("protocol", "byzantine")
      .field("scheme", scheme_name(scheme))
      .field("commands", commands)
      .field("reps", static_cast<std::uint64_t>(reps))
      .field("min_speedup_vs_e17_baseline", min_speedup)
      .field("all_committed", all_ok)
      .field("accepted", accepted);
  report.raw("speedups", speedups.str());
  report.raw("rows", rows.str());
  benchjson::write_file(out, report.str());
  std::printf("wrote %s\n", out.c_str());

  // Acceptance doubles as the exit status so CI and the bench runner
  // catch an ingest-pipeline regression.
  return accepted ? 0 : 1;
}
