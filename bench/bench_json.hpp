// Tiny ordered-key JSON emitter shared by the benchmark binaries.
//
// The benches emit machine-readable artifacts (BENCH_e15.json,
// BENCH_e17.json) consumed by scripts/run_benches.sh and the experiment
// write-ups.  Scope is deliberately minimal: objects and arrays built in
// insertion order, uint64/double/bool/string scalars, raw splicing for
// nesting pre-rendered values (e.g. runtime::to_json output).  No parsing,
// no escaping beyond the characters our keys and labels actually use.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace modubft::benchjson {

/// Streams `{"k":v,...}` with keys in call order.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, std::uint64_t v) {
    return emit(key, std::to_string(v));
  }
  JsonObject& field(const std::string& key, std::int64_t v) {
    return emit(key, std::to_string(v));
  }
  JsonObject& field(const std::string& key, double v) {
    std::ostringstream os;
    os << v;
    return emit(key, os.str());
  }
  JsonObject& field(const std::string& key, bool v) {
    return emit(key, v ? "true" : "false");
  }
  JsonObject& field(const std::string& key, const std::string& v) {
    return emit(key, '"' + escape(v) + '"');
  }
  JsonObject& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  /// Splices a pre-rendered JSON value (object, array, or scalar).
  JsonObject& raw(const std::string& key, const std::string& json) {
    return emit(key, json);
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  JsonObject& emit(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ',';
    body_ += '"' + escape(key) + "\":" + value;
    return *this;
  }
  std::string body_;
};

/// Streams `[v,...]` of pre-rendered JSON values.
class JsonArray {
 public:
  JsonArray& add(const std::string& json) {
    if (!body_.empty()) body_ += ',';
    body_ += json;
    return *this;
  }
  std::string str() const { return "[" + body_ + "]"; }

 private:
  std::string body_;
};

inline void write_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << json << '\n';
}

}  // namespace modubft::benchjson
