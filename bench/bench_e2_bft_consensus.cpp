// E2/E9 — the transformed Byzantine vector-consensus protocol (Fig 3).
//
// Sweeps group size, tolerated-fault count F and adversary mix at the
// resilience boundary F = min(⌊(n−1)/2⌋, C).  Expected shape: every
// configuration within the bound terminates with Agreement and Vector
// Validity; the decided vector always carries ≥ n−2F certified entries
// (counter floor_margin = min_correct_entries − (n−2F) must be ≥ 0 —
// the paper's ρ bound, experiment E9).
#include <benchmark/benchmark.h>

#include <set>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;
using faults::Behavior;

struct Mix {
  const char* name;
  std::vector<Behavior> behaviors;  // cycled over the F faulty processes
};

void run_case(benchmark::State& state, std::uint32_t n, std::uint32_t f,
              const Mix& mix) {
  double rounds = 0, msgs = 0, kbytes = 0, sim_ms = 0, margin = 0;
  std::uint64_t ok = 0, total = 0, seed = 1;

  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.seed = seed++;
    for (std::uint32_t i = 0; i < f && !mix.behaviors.empty(); ++i) {
      faults::FaultSpec spec;
      spec.who = ProcessId{i};
      spec.behavior = mix.behaviors[i % mix.behaviors.size()];
      cfg.faults.push_back(spec);
    }
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement && r.vector_validity &&
          r.detectors_reliable;
    rounds += r.max_decision_round.value;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
    margin += static_cast<double>(r.min_correct_entries) -
              static_cast<double>(n - 2 * f);
  }

  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["sim_ms"] = sim_ms / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
  state.counters["floor_margin"] = margin / k;  // E9: must be >= 0
}

void register_all() {
  const Mix mixes[] = {
      {"clean", {}},
      {"mute_coord", {Behavior::kMute}},
      {"corrupt", {Behavior::kCorruptVector}},
      {"mixed", {Behavior::kMute, Behavior::kCorruptVector,
                 Behavior::kBadSignature}},
  };
  for (std::uint32_t n : {4u, 7u, 10u}) {
    const std::uint32_t fmax = bft::max_tolerated_faults(n);
    for (std::uint32_t f : std::set<std::uint32_t>{1u, fmax}) {
      if (f > fmax) continue;
      for (const Mix& mix : mixes) {
        std::string name = "E2/BFT/n:" + std::to_string(n) +
                           "/F:" + std::to_string(f) + "/mix:" + mix.name;
        benchmark::RegisterBenchmark(name.c_str(),
                                     [n, f, mix](benchmark::State& st) {
                                       run_case(st, n, f, mix);
                                     });
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
