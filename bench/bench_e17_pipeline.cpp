// E17 — pipelined SMR throughput: sliding window × batching sweep.
//
// Measures end-to-end SMR commit throughput (committed commands per
// second) as a function of the pipeline window W and batch size B, on the
// deterministic simulator (virtual-time rate, exactly reproducible) and
// the threaded wall-clock cluster (real parallelism: the verify pool and
// the per-process threads overlap work across in-flight slots).  The
// Byzantine back-end with n = 4, f = 1 is the headline configuration —
// signature verification dominates there, which is precisely what
// windowing and the verification pool overlap.
//
// Acceptance headline (tracked in BENCH_e17.json, see EXPERIMENTS.md):
// on the threads substrate, (W=4, B=4) must commit ≥ 2× the commands/sec
// of the sequential (W=1, B=1) baseline.
//
// Usage: bench_e17_pipeline [--out FILE] [--commands N] [--reps R]
//                           [--budget-ms MS]
// Writes the JSON report to FILE (default BENCH_e17.json in the working
// directory) and prints a human-readable table to stdout.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"
#include "smr/replica.hpp"

namespace {

using namespace modubft;

std::vector<smr::Command> make_workload(std::uint64_t count) {
  std::vector<smr::Command> cmds;
  for (std::uint64_t id = 1; id <= count; ++id) {
    const std::string key = "key" + std::to_string(id % 8);
    if (id % 5 == 0) {
      cmds.push_back({id, smr::Command::Op::kDel, key, ""});
    } else {
      cmds.push_back({id, smr::Command::Op::kPut, key,
                      "v" + std::to_string(id)});
    }
  }
  return cmds;
}

struct RunRow {
  runtime::Backend substrate;
  std::uint32_t window = 1;
  std::uint32_t batch = 1;
  double commits_per_sec = 0;  // median over reps
  std::vector<double> rep_cps;
  bool ok = true;
  faults::SmrScenarioResult last;
};

double commits_per_sec(runtime::Backend substrate,
                       const faults::SmrScenarioResult& r) {
  // Rate basis: virtual microseconds on the simulator (deterministic),
  // wall-clock microseconds on the threaded cluster.
  const double us = substrate == runtime::Backend::kSim
                        ? static_cast<double>(r.run_stats.virtual_time)
                        : static_cast<double>(r.run_stats.wall_us);
  if (us <= 0) return 0;
  return static_cast<double>(r.run_stats.pipeline.commands_committed) * 1e6 /
         us;
}

RunRow run_config(runtime::Backend substrate, std::uint32_t w,
                  std::uint32_t b, std::uint64_t commands, int reps,
                  std::chrono::milliseconds budget) {
  RunRow row;
  row.substrate = substrate;
  row.window = w;
  row.batch = b;
  // One deterministic rep suffices on the simulator.
  const int n_reps = substrate == runtime::Backend::kSim ? 1 : reps;
  for (int rep = 0; rep < n_reps; ++rep) {
    faults::SmrScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = 17 + static_cast<std::uint64_t>(rep);
    cfg.substrate = substrate;
    cfg.backend = smr::Backend::kByzantine;
    cfg.workload = make_workload(commands);
    cfg.window = w;
    cfg.batch = b;
    // E17 measures the sequential-ingest message path; the staged
    // pipeline is E19's subject and must not leak into this baseline.
    cfg.staged_ingest = false;
    // Slack beyond ceil(commands / B): racing proposals can cost the odd
    // no-op slot; the throughput number must cover the whole workload.
    cfg.slots = (commands + b - 1) / b + 2;
    cfg.budget = budget;
    faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
    if (!r.all_committed || !r.stores_agree ||
        r.run_stats.pipeline.commands_committed != commands) {
      row.ok = false;
    }
    row.rep_cps.push_back(commits_per_sec(substrate, r));
    row.last = std::move(r);
  }
  std::vector<double> sorted = row.rep_cps;
  std::sort(sorted.begin(), sorted.end());
  row.commits_per_sec = sorted[sorted.size() / 2];
  return row;
}

std::string row_json(const RunRow& row) {
  benchjson::JsonObject o;
  o.field("substrate", runtime::backend_name(row.substrate))
      .field("window", static_cast<std::uint64_t>(row.window))
      .field("batch", static_cast<std::uint64_t>(row.batch))
      .field("commits_per_sec", row.commits_per_sec)
      .field("all_committed", row.ok);
  benchjson::JsonArray reps;
  for (double v : row.rep_cps) {
    std::ostringstream os;
    os << v;
    reps.add(os.str());
  }
  o.raw("rep_commits_per_sec", reps.str());
  o.field("rate_basis", row.substrate == runtime::Backend::kSim
                            ? "virtual_time_us"
                            : "wall_us");
  o.raw("run_stats",
        runtime::to_json(row.substrate, row.last.run_stats));
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_e17.json";
  std::uint64_t commands = 32;
  int reps = 3;
  std::chrono::milliseconds budget{20'000};
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--commands") == 0) {
      commands = std::strtoull(need("--commands"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(need("--reps"));
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      budget = std::chrono::milliseconds(
          std::strtoll(need("--budget-ms"), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sweep = {
      {1, 1}, {2, 2}, {4, 4}, {4, 1}, {1, 4}};
  const std::vector<runtime::Backend> substrates = {
      runtime::Backend::kSim, runtime::Backend::kThreads};

  std::printf("E17: pipelined SMR, byz n=4 f=1, %llu commands\n",
              static_cast<unsigned long long>(commands));
  std::printf("%-8s %3s %3s %14s %4s\n", "substrate", "W", "B",
              "commits/sec", "ok");

  benchjson::JsonArray rows;
  double w1b1_threads = 0, w4b4_threads = 0;
  bool all_ok = true;
  for (runtime::Backend substrate : substrates) {
    for (const auto& [w, b] : sweep) {
      RunRow row = run_config(substrate, w, b, commands, reps, budget);
      all_ok = all_ok && row.ok;
      if (substrate == runtime::Backend::kThreads) {
        if (w == 1 && b == 1) w1b1_threads = row.commits_per_sec;
        if (w == 4 && b == 4) w4b4_threads = row.commits_per_sec;
      }
      std::printf("%-8s %3u %3u %14.1f %4s\n",
                  runtime::backend_name(substrate), w, b,
                  row.commits_per_sec, row.ok ? "yes" : "NO");
      rows.add(row_json(row));
    }
  }

  const double speedup =
      w1b1_threads > 0 ? w4b4_threads / w1b1_threads : 0;
  std::printf("threads W4B4 / W1B1 speedup: %.2fx\n", speedup);

  benchjson::JsonObject report;
  report.field("experiment", "e17_pipeline")
      .field("protocol", "byzantine")
      .field("n", static_cast<std::uint64_t>(4))
      .field("f", static_cast<std::uint64_t>(1))
      .field("commands", commands)
      .field("reps", static_cast<std::uint64_t>(reps))
      .field("speedup_w4b4_threads", speedup)
      .field("all_committed", all_ok);
  report.raw("rows", rows.str());
  benchjson::write_file(out, report.str());
  std::printf("wrote %s\n", out.c_str());

  // The acceptance headline doubles as the exit status so CI and the
  // bench runner catch a pipelining regression.
  return all_ok && speedup >= 2.0 ? 0 : 1;
}
