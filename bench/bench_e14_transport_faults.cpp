// E14 — consensus over the resilient TCP transport under link faults.
//
// The paper's module stack assumes reliable FIFO channels; the TCP
// substrate re-establishes that contract below the protocols
// (sequence-numbered frames, CRC, reconnect + retransmit).  This bench
// measures what the re-established abstraction costs: BFT vector
// consensus (n = 4, F = 1, HMAC) over loopback TCP with the link-kill
// probability swept across 0%, 1% and 5% per frame.
//
// Counters: decided_pct (correct processes reaching a decision),
// reconnects / retransmits / kills per run, wall_ms per run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "bft/bft_consensus.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/link_fault.hpp"
#include "transport/tcp_cluster.hpp"

namespace {

using namespace modubft;

void run_tcp_bft(benchmark::State& state, double kill_prob) {
  constexpr std::uint32_t kN = 4;
  double decided = 0, possible = 0;
  double reconnects = 0, retransmits = 0, kills = 0, wall_ms = 0;
  std::uint64_t total = 0, seed = 1;

  for (auto _ : state) {
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 33);

    bft::BftConfig proto;
    proto.n = kN;
    proto.f = 1;
    proto.muteness.initial_timeout = 2'000'000;
    proto.suspicion_poll_period = 100'000;

    transport::TcpClusterConfig cfg;
    cfg.n = kN;
    cfg.seed = seed++;
    cfg.budget = std::chrono::milliseconds(30'000);
    if (kill_prob > 0) {
      faults::LinkFaultSpec spec;
      spec.kill_prob = kill_prob;
      cfg.faults = transport::LinkFaultPlan({spec}, cfg.seed);
    }
    transport::TcpCluster cluster(cfg);

    std::mutex mu;
    std::map<std::uint32_t, bft::VectorDecision> decisions;
    for (std::uint32_t i = 0; i < kN; ++i) {
      cluster.set_actor(
          ProcessId{i},
          std::make_unique<bft::BftProcess>(
              proto, 800 + i, keys.signers[i].get(), keys.verifier,
              [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
                std::lock_guard<std::mutex> lock(mu);
                decisions.emplace(i, d);
              }));
    }

    const auto t0 = std::chrono::steady_clock::now();
    cluster.run();
    const auto t1 = std::chrono::steady_clock::now();

    total += 1;
    wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    {
      std::lock_guard<std::mutex> lock(mu);
      decided += static_cast<double>(decisions.size());
      possible += kN;
    }
    const transport::TcpLinkStats stats = cluster.link_stats();
    reconnects += static_cast<double>(stats.reconnects);
    retransmits += static_cast<double>(stats.retransmits);
    kills += static_cast<double>(stats.kills_injected);
  }

  const double k = static_cast<double>(total);
  state.counters["decided_pct"] = 100.0 * decided / possible;
  state.counters["reconnects"] = reconnects / k;
  state.counters["retransmits"] = retransmits / k;
  state.counters["kills"] = kills / k;
  state.counters["wall_ms"] = wall_ms / k;
}

void register_all() {
  for (double kill_prob : {0.0, 0.01, 0.05}) {
    benchmark::RegisterBenchmark(
        ("E14/tcp_bft_n4/kill_pct:" +
         std::to_string(static_cast<int>(kill_prob * 100)))
            .c_str(),
        [kill_prob](benchmark::State& st) { run_tcp_bft(st, kill_prob); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
