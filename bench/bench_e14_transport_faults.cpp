// E14 — the same consensus scenario across execution substrates, and the
// TCP substrate under link faults.
//
// The paper's module stack assumes reliable FIFO channels; the runtime
// layer provides three substrates that uphold that contract (simulator,
// threaded cluster, resilient TCP).  This bench measures what each
// abstraction costs, on two axes:
//   * E14/substrate — one fault-free BFT scenario (n = 4, F = 1, HMAC)
//     executed per runtime::Backend, emitting the unified RunStats JSON
//     line per run so the substrates can be diffed field by field;
//   * E14/tcp_bft   — the TCP substrate with the link-kill probability
//     swept across 0%, 1% and 5% per frame (reconnect/retransmit cost of
//     the re-established reliable-FIFO contract).
//
// Counters: decided_pct (correct processes reaching a decision),
// reconnects / retransmits / kills per run, wall_ms per run.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"

namespace {

using namespace modubft;

faults::BftScenarioConfig base_scenario(runtime::Backend backend,
                                        std::uint64_t seed) {
  faults::BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.substrate = backend;
  cfg.budget = std::chrono::milliseconds(30'000);
  return cfg;
}

void run_substrate_bft(benchmark::State& state, runtime::Backend backend) {
  double decided = 0, possible = 0, wall_ms = 0;
  std::uint64_t total = 0, seed = 1;

  for (auto _ : state) {
    const faults::BftScenarioResult r =
        faults::run_bft_scenario(base_scenario(backend, seed++));
    total += 1;
    decided += static_cast<double>(r.decisions.size());
    possible += static_cast<double>(r.correct.size());
    wall_ms += static_cast<double>(r.run_stats.wall_us) / 1000.0;
    if (total == 1) {
      std::cout << "E14 " << runtime::to_json(backend, r.run_stats) << "\n";
    }
  }

  const double k = static_cast<double>(total);
  state.counters["decided_pct"] = 100.0 * decided / possible;
  state.counters["wall_ms"] = wall_ms / k;
}

void run_tcp_bft(benchmark::State& state, double kill_prob) {
  double decided = 0, possible = 0;
  double reconnects = 0, retransmits = 0, kills = 0, wall_ms = 0;
  std::uint64_t total = 0, seed = 1;

  for (auto _ : state) {
    faults::BftScenarioConfig cfg =
        base_scenario(runtime::Backend::kTcp, seed++);
    cfg.muteness.initial_timeout = 2'000'000;  // chaos makes rounds slow
    if (kill_prob > 0) {
      faults::LinkFaultSpec spec;
      spec.kill_prob = kill_prob;
      cfg.link_faults = {spec};
    }

    const faults::BftScenarioResult r = faults::run_bft_scenario(cfg);

    total += 1;
    decided += static_cast<double>(r.decisions.size());
    possible += static_cast<double>(r.correct.size());
    wall_ms += static_cast<double>(r.run_stats.wall_us) / 1000.0;
    reconnects += static_cast<double>(r.run_stats.link.reconnects);
    retransmits += static_cast<double>(r.run_stats.link.retransmits);
    kills += static_cast<double>(r.run_stats.link.kills_injected);
    if (total == 1) {
      std::cout << "E14 " << runtime::to_json(runtime::Backend::kTcp,
                                              r.run_stats)
                << "\n";
    }
  }

  const double k = static_cast<double>(total);
  state.counters["decided_pct"] = 100.0 * decided / possible;
  state.counters["reconnects"] = reconnects / k;
  state.counters["retransmits"] = retransmits / k;
  state.counters["kills"] = kills / k;
  state.counters["wall_ms"] = wall_ms / k;
}

void register_all() {
  for (runtime::Backend backend :
       {runtime::Backend::kSim, runtime::Backend::kThreads,
        runtime::Backend::kTcp}) {
    benchmark::RegisterBenchmark(
        (std::string("E14/substrate_bft_n4/substrate:") +
         runtime::backend_name(backend))
            .c_str(),
        [backend](benchmark::State& st) { run_substrate_bft(st, backend); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  for (double kill_prob : {0.0, 0.01, 0.05}) {
    benchmark::RegisterBenchmark(
        ("E14/tcp_bft_n4/kill_pct:" +
         std::to_string(static_cast<int>(kill_prob * 100)))
            .c_str(),
        [kill_prob](benchmark::State& st) { run_tcp_bft(st, kill_prob); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
