// E13 — masking (footnote 1) vs detection (the paper's methodology).
//
// Paper footnote 1 dismisses prior asynchronous approaches because they
// "provide only a masking of arbitrary faulty messages by identical faulty
// messages and thus, do not address all types of arbitrary failures."
// This bench makes that comparison concrete on the value-dissemination
// task (one sender, possibly equivocating, n receivers):
//
//   * Bracha RB — echo/ready quorums, no cryptography: equivocation is
//     masked (consistency) but the culprit is never identified and a
//     *consistent* semantic corruption (same wrong value to everyone)
//     passes through untouched;
//   * certified dissemination (the paper's machinery): the corrupted value
//     fails its certificate everywhere, the sender lands in faulty_i, and
//     the group still reaches a certified vector.
//
// Counters: msgs / kbytes per dissemination, convicts_culprit (0/1),
// masks_only (0/1).
#include <benchmark/benchmark.h>

#include <map>

#include "faults/scenario.hpp"
#include "rb/bracha.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace modubft;

void run_bracha(benchmark::State& state, std::uint32_t n) {
  const std::uint32_t f = (n - 1) / 3;
  double msgs = 0, kbytes = 0;
  std::uint64_t delivered_all = 0, total = 0, seed = 1;

  for (auto _ : state) {
    rb::BrachaConfig cfg;
    cfg.n = n;
    cfg.f = f;

    sim::SimConfig sim_cfg;
    sim_cfg.n = n;
    sim_cfg.seed = seed++;
    sim::Simulation world(sim_cfg);

    std::map<std::uint32_t, std::size_t> delivered;
    for (std::uint32_t i = 0; i < n; ++i) {
      std::optional<Bytes> msg;
      if (i == 0) msg = bytes_of("the-value");
      world.set_actor(ProcessId{i},
                      std::make_unique<rb::BrachaActor>(
                          cfg, msg, [&delivered, i](ProcessId, const Bytes&) {
                            delivered[i] += 1;
                          }));
    }
    world.run();

    total += 1;
    bool all = true;
    for (std::uint32_t i = 0; i < n; ++i) all = all && delivered[i] == 1;
    delivered_all += all;
    msgs += static_cast<double>(world.stats().messages_sent);
    kbytes += static_cast<double>(world.stats().bytes_sent) / 1024.0;
  }

  const double k = static_cast<double>(total);
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(delivered_all) / k;
  state.counters["convicts_culprit"] = 0;  // by construction: no detection
}

void run_certified(benchmark::State& state, std::uint32_t n,
                   bool corrupting_sender) {
  double msgs = 0, kbytes = 0;
  std::uint64_t ok = 0, convicted = 0, total = 0, seed = 1;

  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = n;
    cfg.f = bft::max_tolerated_faults(n);
    cfg.seed = seed++;
    if (corrupting_sender) {
      faults::FaultSpec spec;
      spec.who = ProcessId{0};  // the round-1 proposer
      spec.behavior = faults::Behavior::kCorruptVector;
      cfg.faults.push_back(spec);
    }
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement && r.vector_validity;
    convicted += r.declared_faulty.count(0) > 0;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
  }

  const double k = static_cast<double>(total);
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
  state.counters["convicts_culprit"] =
      100.0 * static_cast<double>(convicted) / k;
}

void register_all() {
  for (std::uint32_t n : {4u, 7u, 10u}) {
    benchmark::RegisterBenchmark(
        ("E13/bracha_masking/n:" + std::to_string(n)).c_str(),
        [n](benchmark::State& st) { run_bracha(st, n); });
    benchmark::RegisterBenchmark(
        ("E13/certified_clean/n:" + std::to_string(n)).c_str(),
        [n](benchmark::State& st) { run_certified(st, n, false); });
    benchmark::RegisterBenchmark(
        ("E13/certified_corrupting_sender/n:" + std::to_string(n)).c_str(),
        [n](benchmark::State& st) { run_certified(st, n, true); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
