// E7 — Hurfin–Raynal vs Chandra–Toueg in the crash model.
//
// HR [8] was published as a "simple and fast" ◇S protocol; the paper
// builds its transformation on it.  This bench reproduces the relationship
// against the classical CT baseline on identical workloads.  Expected
// shape: HR uses broadcast votes (Θ(n²) messages but one communication
// step to decide when the coordinator is correct); CT funnels through the
// coordinator (fewer messages, more steps), so HR wins on failure-free
// latency while CT wins on message count for larger n.
#include <benchmark/benchmark.h>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;

struct Workload {
  const char* name;
  bool crash_coordinator;
  double mistake_prob;
};

void run_case(benchmark::State& state, faults::CrashProtocol protocol,
              std::uint32_t n, const Workload& w) {
  double rounds = 0, msgs = 0, kbytes = 0, sim_ms = 0;
  std::uint64_t ok = 0, total = 0, seed = 1;

  for (auto _ : state) {
    faults::CrashScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = seed++;
    cfg.protocol = protocol;
    cfg.crash_times.assign(n, std::nullopt);
    if (w.crash_coordinator) cfg.crash_times[0] = SimTime{0};
    cfg.oracle.stabilization_time = w.mistake_prob > 0 ? 200'000 : 0;
    cfg.oracle.false_suspicion_prob = w.mistake_prob;

    faults::CrashScenarioResult r = faults::run_crash_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement && r.validity;
    rounds += r.max_decision_round.value;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
  }

  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["sim_ms"] = sim_ms / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void register_all() {
  const Workload workloads[] = {
      {"clean", false, 0.0},
      {"coord_crash", true, 0.0},
      {"fd_mistakes", false, 0.2},
  };
  for (std::uint32_t n : {5u, 9u, 13u}) {
    for (const Workload& w : workloads) {
      for (auto [proto, label] :
           {std::pair{faults::CrashProtocol::kHurfinRaynal, "HR"},
            std::pair{faults::CrashProtocol::kChandraToueg, "CT"}}) {
        std::string name = std::string("E7/") + label +
                           "/n:" + std::to_string(n) + "/workload:" + w.name;
        benchmark::RegisterBenchmark(
            name.c_str(), [proto, n, w](benchmark::State& st) {
              run_case(st, proto, n, w);
            });
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
