// E15 — certificate fast path: memoized digests + verified-signature cache.
//
// The transformed protocol's dominating cost is re-verifying the same
// signed messages as they reappear inside later certificates (ingress
// check, est witness, entry witness, DECIDE evidence).  This bench builds
// the multi-round message tree a real execution produces — INIT quorum →
// coordinator CURRENT → relays → per-round NEXT votes with entry
// witnesses → DECIDE — and measures repeated verification and encoding
// throughput with the cache on vs off, at n ∈ {4, 7, 10} and round depths
// 1..10.
//
// Run with --benchmark_format=json to get machine-readable output; each
// cached run exports cache_hits / cache_misses / hit_pct counters.
// Acceptance headline: BM_RepeatedCertVerify at n = 7 must be ≥3× faster
// with the cache than without.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bft/analyzer.hpp"
#include "bft/message.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/rsa64.hpp"
#include "crypto/verify_cache.hpp"

namespace {

using namespace modubft;

enum class Scheme { kHmac, kRsa64 };

struct Workload {
  crypto::SignatureSystem sys;
  std::uint32_t n = 0;
  std::uint32_t q = 0;
  std::uint32_t rounds = 0;
  bft::MemberPtr coord;                            // round-1 CURRENT
  std::vector<bft::MemberPtr> relays;              // q−1 relayed CURRENTs
  std::vector<std::vector<bft::MemberPtr>> votes;  // votes[r]: round-r NEXTs
  bft::SignedMessage decide;
};

bft::SignedMessage sign_msg(const Workload& w, bft::MessageCore core,
                            bft::Certificate cert) {
  bft::SignedMessage msg;
  msg.core = std::move(core);
  msg.cert = std::move(cert);
  msg.sig = w.sys.signers[msg.core.sender.value]->sign(
      bft::signing_bytes(msg.core, msg.cert));
  return msg;
}

/// Wire-format self-check: the arithmetic size and a decode → re-encode
/// round trip must match the canonical encoding byte for byte.  Aborts the
/// bench if the fast path ever drifted from the wire format.
void check_wire_identity(const bft::SignedMessage& msg) {
  const Bytes wire = bft::encode_message(msg);
  if (bft::encoded_size(msg) != wire.size() ||
      bft::encode_message(bft::decode_message(wire)) != wire) {
    std::fprintf(stderr, "wire-format identity violated\n");
    std::abort();
  }
}

Workload make_workload(Scheme scheme, std::uint32_t n, std::uint32_t rounds) {
  Workload w;
  w.n = n;
  w.q = n - (n - 1) / 3;  // quorum n − F for the declared resilience
  w.rounds = rounds;
  w.sys = scheme == Scheme::kRsa64
              ? crypto::Rsa64Scheme{}.make_system(n, 7)
              : crypto::HmacScheme{}.make_system(n, 7);

  // INIT quorum and the matching estimate vector.
  bft::Certificate inits;
  bft::VectorValue vect(n, std::nullopt);
  for (std::uint32_t i = 0; i < w.q; ++i) {
    bft::MessageCore core;
    core.kind = bft::BftKind::kInit;
    core.sender = ProcessId{i};
    core.round = Round{0};
    core.init_value = 100 + i;
    inits.add(sign_msg(w, std::move(core), {}));
    vect[i] = 100 + i;
  }

  // Coordinator CURRENT, then q−1 relays sharing it copy-free.
  {
    bft::MessageCore core;
    core.kind = bft::BftKind::kCurrent;
    core.sender = ProcessId{0};
    core.round = Round{1};
    core.est = vect;
    w.coord = std::make_shared<const bft::SignedMessage>(
        sign_msg(w, std::move(core), std::move(inits)));
  }
  for (std::uint32_t i = 1; i < w.q; ++i) {
    bft::Certificate relay_cert;
    relay_cert.add(w.coord);
    bft::MessageCore core;
    core.kind = bft::BftKind::kCurrent;
    core.sender = ProcessId{i};
    core.round = Round{1};
    core.est = vect;
    w.relays.push_back(std::make_shared<const bft::SignedMessage>(
        sign_msg(w, std::move(core), std::move(relay_cert))));
  }

  // Per-round NEXT votes; round r ≥ 2 carries the round-(r−1) quorum as its
  // entry witness, sharing the vote messages instead of copying them.
  w.votes.resize(rounds + 1);
  for (std::uint32_t r = 1; r <= rounds; ++r) {
    for (std::uint32_t i = 0; i < w.q; ++i) {
      bft::Certificate witness;
      if (r >= 2) {
        for (const bft::MemberPtr& prev : w.votes[r - 1]) witness.add(prev);
      }
      bft::MessageCore core;
      core.kind = bft::BftKind::kNext;
      core.sender = ProcessId{i};
      core.round = Round{r};
      w.votes[r].push_back(std::make_shared<const bft::SignedMessage>(
          sign_msg(w, std::move(core), std::move(witness))));
    }
  }

  // DECIDE evidenced by the CURRENT quorum (coordinator + relays).
  {
    bft::Certificate evidence;
    evidence.add(w.coord);
    for (const bft::MemberPtr& m : w.relays) evidence.add(m);
    bft::MessageCore core;
    core.kind = bft::BftKind::kDecide;
    core.sender = ProcessId{1};
    core.round = Round{1};
    core.est = vect;
    w.decide = sign_msg(w, std::move(core), std::move(evidence));
  }

  check_wire_identity(*w.coord);
  check_wire_identity(*w.votes[rounds].front());
  check_wire_identity(w.decide);
  return w;
}

std::shared_ptr<const crypto::Verifier> pick_verifier(
    const Workload& w, bool cached,
    std::shared_ptr<const crypto::CachingVerifier>* cache_out) {
  if (!cached) return w.sys.verifier;
  auto cache = std::make_shared<const crypto::CachingVerifier>(w.sys.verifier);
  *cache_out = cache;
  return cache;
}

/// One full pass of the verification work a correct process performs on the
/// workload.  Returns the number of analyzer checks that ran (for items/s).
std::size_t verify_pass(const bft::CertAnalyzer& analyzer, const Workload& w,
                        benchmark::State& state) {
  std::size_t checks = 0;
  auto expect = [&](const bft::Verdict& v) {
    ++checks;
    if (!v) state.SkipWithError(("unexpected verdict: " + v.detail).c_str());
  };
  auto expect_sig = [&](const bft::SignedMessage& m) {
    ++checks;
    if (!analyzer.signature_ok(m)) state.SkipWithError("bad signature");
  };

  expect_sig(*w.coord);
  expect(analyzer.current_wf(*w.coord));
  for (const bft::MemberPtr& m : w.relays) {
    expect_sig(*m);
    expect(analyzer.current_wf(*m));
  }
  for (std::uint32_t r = 1; r <= w.rounds; ++r) {
    for (const bft::MemberPtr& vote : w.votes[r]) {
      expect_sig(*vote);
      expect(analyzer.entry_wf(vote->cert, Round{r}));
    }
  }
  expect_sig(w.decide);
  expect(analyzer.decide_wf(w.decide));
  return checks;
}

void export_cache_counters(
    benchmark::State& state,
    const std::shared_ptr<const crypto::CachingVerifier>& cache) {
  if (!cache) return;
  const crypto::VerifyCacheStats s = cache->stats();
  state.counters["cache_hits"] = static_cast<double>(s.hits);
  state.counters["cache_misses"] = static_cast<double>(s.misses);
  state.counters["hit_pct"] = 100.0 * s.hit_rate();
}

// --------------------------------------------------------------- verify

void repeated_verify(benchmark::State& state, Scheme scheme) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto rounds = static_cast<std::uint32_t>(state.range(1));
  const bool cached = state.range(2) != 0;

  Workload w = make_workload(scheme, n, rounds);
  std::shared_ptr<const crypto::CachingVerifier> cache;
  bft::CertAnalyzer analyzer(w.n, w.q, pick_verifier(w, cached, &cache));

  std::size_t checks = 0;
  for (auto _ : state) {
    checks += verify_pass(analyzer, w, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checks));
  export_cache_counters(state, cache);
}

void BM_RepeatedCertVerify(benchmark::State& state) {
  repeated_verify(state, Scheme::kHmac);
}
BENCHMARK(BM_RepeatedCertVerify)
    ->ArgNames({"n", "rounds", "cache"})
    ->ArgsProduct({{4, 7, 10}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {0, 1}});

void BM_RepeatedCertVerifyRsa64(benchmark::State& state) {
  repeated_verify(state, Scheme::kRsa64);
}
BENCHMARK(BM_RepeatedCertVerifyRsa64)
    ->ArgNames({"n", "rounds", "cache"})
    ->ArgsProduct({{7}, {1, 5, 10}, {0, 1}});

// --------------------------------------------------- decode + verify

void BM_DecodeThenVerify(benchmark::State& state) {
  // The ingress pipeline: decode the wire bytes, then run the analyzer.
  // Decoding allocates fresh Certificates, so per-message digest memos
  // start cold every iteration; only the signature cache persists.
  const auto rounds = static_cast<std::uint32_t>(state.range(0));
  const bool cached = state.range(1) != 0;

  Workload w = make_workload(Scheme::kHmac, 7, rounds);
  std::shared_ptr<const crypto::CachingVerifier> cache;
  bft::CertAnalyzer analyzer(w.n, w.q, pick_verifier(w, cached, &cache));

  const Bytes wire = bft::encode_message(w.decide);
  for (auto _ : state) {
    bft::SignedMessage msg = bft::decode_message(wire);
    if (!analyzer.signature_ok(msg) || !analyzer.decide_wf(msg)) {
      state.SkipWithError("DECIDE failed verification");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  export_cache_counters(state, cache);
}
BENCHMARK(BM_DecodeThenVerify)
    ->ArgNames({"rounds", "cache"})
    ->ArgsProduct({{1, 10}, {0, 1}});

// ---------------------------------------------------------------- encode

void BM_EncodeDecide(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto rounds = static_cast<std::uint32_t>(state.range(1));
  Workload w = make_workload(Scheme::kHmac, n, rounds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bft::encode_message(w.decide));
  }
  // encoded_size is arithmetic — no throwaway encode behind this counter.
  state.counters["wire_bytes"] = static_cast<double>(bft::encoded_size(w.decide));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bft::encoded_size(w.decide)));
}
BENCHMARK(BM_EncodeDecide)
    ->ArgNames({"n", "rounds"})
    ->ArgsProduct({{4, 7, 10}, {1, 10}});

}  // namespace

BENCHMARK_MAIN();
