// E15 — certificate fast path: memoized digests + verified-signature cache.
//
// The transformed protocol's dominating cost is re-verifying the same
// signed messages as they reappear inside later certificates (ingress
// check, est witness, entry witness, DECIDE evidence).  This bench builds
// the multi-round message tree a real execution produces — INIT quorum →
// coordinator CURRENT → relays → per-round NEXT votes with entry
// witnesses → DECIDE — and measures repeated verification and encoding
// throughput with the cache on vs off, at n ∈ {4, 7, 10} and round depths
// 1..10.
//
// Run with --benchmark_format=json to get machine-readable output; each
// cached run exports cache_hits / cache_misses / hit_pct counters.
// Acceptance headline: BM_RepeatedCertVerify at n = 7 must be ≥3× faster
// with the cache than without.
//
// `--out FILE` switches to a self-timed summary mode instead of the
// google-benchmark harness: it times the cached and uncached verify pass
// per (n, rounds) configuration and writes a compact JSON report (the
// BENCH_e15.json artifact emitted by scripts/run_benches.sh).  All other
// flags fall through to google-benchmark as before.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"

#include "bft/analyzer.hpp"
#include "bft/message.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/rsa64.hpp"
#include "crypto/verify_cache.hpp"

namespace {

using namespace modubft;

enum class Scheme { kHmac, kRsa64 };

struct Workload {
  crypto::SignatureSystem sys;
  std::uint32_t n = 0;
  std::uint32_t q = 0;
  std::uint32_t rounds = 0;
  bft::MemberPtr coord;                            // round-1 CURRENT
  std::vector<bft::MemberPtr> relays;              // q−1 relayed CURRENTs
  std::vector<std::vector<bft::MemberPtr>> votes;  // votes[r]: round-r NEXTs
  bft::SignedMessage decide;
};

bft::SignedMessage sign_msg(const Workload& w, bft::MessageCore core,
                            bft::Certificate cert) {
  bft::SignedMessage msg;
  msg.core = std::move(core);
  msg.cert = std::move(cert);
  msg.sig = w.sys.signers[msg.core.sender.value]->sign(
      bft::signing_bytes(msg.core, msg.cert));
  return msg;
}

/// Wire-format self-check: the arithmetic size and a decode → re-encode
/// round trip must match the canonical encoding byte for byte.  Aborts the
/// bench if the fast path ever drifted from the wire format.
void check_wire_identity(const bft::SignedMessage& msg) {
  const Bytes wire = bft::encode_message(msg);
  if (bft::encoded_size(msg) != wire.size() ||
      bft::encode_message(bft::decode_message(wire)) != wire) {
    std::fprintf(stderr, "wire-format identity violated\n");
    std::abort();
  }
}

Workload make_workload(Scheme scheme, std::uint32_t n, std::uint32_t rounds) {
  Workload w;
  w.n = n;
  w.q = n - (n - 1) / 3;  // quorum n − F for the declared resilience
  w.rounds = rounds;
  w.sys = scheme == Scheme::kRsa64
              ? crypto::Rsa64Scheme{}.make_system(n, 7)
              : crypto::HmacScheme{}.make_system(n, 7);

  // INIT quorum and the matching estimate vector.
  bft::Certificate inits;
  bft::VectorValue vect(n, std::nullopt);
  for (std::uint32_t i = 0; i < w.q; ++i) {
    bft::MessageCore core;
    core.kind = bft::BftKind::kInit;
    core.sender = ProcessId{i};
    core.round = Round{0};
    core.init_value = 100 + i;
    inits.add(sign_msg(w, std::move(core), {}));
    vect[i] = 100 + i;
  }

  // Coordinator CURRENT, then q−1 relays sharing it copy-free.
  {
    bft::MessageCore core;
    core.kind = bft::BftKind::kCurrent;
    core.sender = ProcessId{0};
    core.round = Round{1};
    core.est = vect;
    w.coord = std::make_shared<const bft::SignedMessage>(
        sign_msg(w, std::move(core), std::move(inits)));
  }
  for (std::uint32_t i = 1; i < w.q; ++i) {
    bft::Certificate relay_cert;
    relay_cert.add(w.coord);
    bft::MessageCore core;
    core.kind = bft::BftKind::kCurrent;
    core.sender = ProcessId{i};
    core.round = Round{1};
    core.est = vect;
    w.relays.push_back(std::make_shared<const bft::SignedMessage>(
        sign_msg(w, std::move(core), std::move(relay_cert))));
  }

  // Per-round NEXT votes; round r ≥ 2 carries the round-(r−1) quorum as its
  // entry witness, sharing the vote messages instead of copying them.
  w.votes.resize(rounds + 1);
  for (std::uint32_t r = 1; r <= rounds; ++r) {
    for (std::uint32_t i = 0; i < w.q; ++i) {
      bft::Certificate witness;
      if (r >= 2) {
        for (const bft::MemberPtr& prev : w.votes[r - 1]) witness.add(prev);
      }
      bft::MessageCore core;
      core.kind = bft::BftKind::kNext;
      core.sender = ProcessId{i};
      core.round = Round{r};
      w.votes[r].push_back(std::make_shared<const bft::SignedMessage>(
          sign_msg(w, std::move(core), std::move(witness))));
    }
  }

  // DECIDE evidenced by the CURRENT quorum (coordinator + relays).
  {
    bft::Certificate evidence;
    evidence.add(w.coord);
    for (const bft::MemberPtr& m : w.relays) evidence.add(m);
    bft::MessageCore core;
    core.kind = bft::BftKind::kDecide;
    core.sender = ProcessId{1};
    core.round = Round{1};
    core.est = vect;
    w.decide = sign_msg(w, std::move(core), std::move(evidence));
  }

  check_wire_identity(*w.coord);
  check_wire_identity(*w.votes[rounds].front());
  check_wire_identity(w.decide);
  return w;
}

std::shared_ptr<const crypto::Verifier> pick_verifier(
    const Workload& w, bool cached,
    std::shared_ptr<const crypto::CachingVerifier>* cache_out) {
  if (!cached) return w.sys.verifier;
  auto cache = std::make_shared<const crypto::CachingVerifier>(w.sys.verifier);
  *cache_out = cache;
  return cache;
}

/// One full pass of the verification work a correct process performs on the
/// workload.  Returns the number of analyzer checks that ran (for items/s);
/// verification failures are routed through `fail` (benchmark skip or
/// summary-mode abort).
template <typename FailFn>
std::size_t verify_pass_impl(const bft::CertAnalyzer& analyzer,
                             const Workload& w, FailFn&& fail) {
  std::size_t checks = 0;
  auto expect = [&](const bft::Verdict& v) {
    ++checks;
    if (!v) fail(("unexpected verdict: " + v.detail).c_str());
  };
  auto expect_sig = [&](const bft::SignedMessage& m) {
    ++checks;
    if (!analyzer.signature_ok(m)) fail("bad signature");
  };

  expect_sig(*w.coord);
  expect(analyzer.current_wf(*w.coord));
  for (const bft::MemberPtr& m : w.relays) {
    expect_sig(*m);
    expect(analyzer.current_wf(*m));
  }
  for (std::uint32_t r = 1; r <= w.rounds; ++r) {
    for (const bft::MemberPtr& vote : w.votes[r]) {
      expect_sig(*vote);
      expect(analyzer.entry_wf(vote->cert, Round{r}));
    }
  }
  expect_sig(w.decide);
  expect(analyzer.decide_wf(w.decide));
  return checks;
}

std::size_t verify_pass(const bft::CertAnalyzer& analyzer, const Workload& w,
                        benchmark::State& state) {
  return verify_pass_impl(analyzer, w,
                          [&](const char* why) { state.SkipWithError(why); });
}

void export_cache_counters(
    benchmark::State& state,
    const std::shared_ptr<const crypto::CachingVerifier>& cache) {
  if (!cache) return;
  const crypto::VerifyCacheStats s = cache->stats();
  state.counters["cache_hits"] = static_cast<double>(s.hits);
  state.counters["cache_misses"] = static_cast<double>(s.misses);
  state.counters["hit_pct"] = 100.0 * s.hit_rate();
}

// --------------------------------------------------------------- verify

void repeated_verify(benchmark::State& state, Scheme scheme) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto rounds = static_cast<std::uint32_t>(state.range(1));
  const bool cached = state.range(2) != 0;

  Workload w = make_workload(scheme, n, rounds);
  std::shared_ptr<const crypto::CachingVerifier> cache;
  bft::CertAnalyzer analyzer(w.n, w.q, pick_verifier(w, cached, &cache));

  std::size_t checks = 0;
  for (auto _ : state) {
    checks += verify_pass(analyzer, w, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checks));
  export_cache_counters(state, cache);
}

void BM_RepeatedCertVerify(benchmark::State& state) {
  repeated_verify(state, Scheme::kHmac);
}
BENCHMARK(BM_RepeatedCertVerify)
    ->ArgNames({"n", "rounds", "cache"})
    ->ArgsProduct({{4, 7, 10}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {0, 1}});

void BM_RepeatedCertVerifyRsa64(benchmark::State& state) {
  repeated_verify(state, Scheme::kRsa64);
}
BENCHMARK(BM_RepeatedCertVerifyRsa64)
    ->ArgNames({"n", "rounds", "cache"})
    ->ArgsProduct({{7}, {1, 5, 10}, {0, 1}});

// --------------------------------------------------- decode + verify

void BM_DecodeThenVerify(benchmark::State& state) {
  // The ingress pipeline: decode the wire bytes, then run the analyzer.
  // Decoding allocates fresh Certificates, so per-message digest memos
  // start cold every iteration; only the signature cache persists.
  const auto rounds = static_cast<std::uint32_t>(state.range(0));
  const bool cached = state.range(1) != 0;

  Workload w = make_workload(Scheme::kHmac, 7, rounds);
  std::shared_ptr<const crypto::CachingVerifier> cache;
  bft::CertAnalyzer analyzer(w.n, w.q, pick_verifier(w, cached, &cache));

  const Bytes wire = bft::encode_message(w.decide);
  for (auto _ : state) {
    bft::SignedMessage msg = bft::decode_message(wire);
    if (!analyzer.signature_ok(msg) || !analyzer.decide_wf(msg)) {
      state.SkipWithError("DECIDE failed verification");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  export_cache_counters(state, cache);
}
BENCHMARK(BM_DecodeThenVerify)
    ->ArgNames({"rounds", "cache"})
    ->ArgsProduct({{1, 10}, {0, 1}});

// ---------------------------------------------------------------- encode

void BM_EncodeDecide(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto rounds = static_cast<std::uint32_t>(state.range(1));
  Workload w = make_workload(Scheme::kHmac, n, rounds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bft::encode_message(w.decide));
  }
  // encoded_size is arithmetic — no throwaway encode behind this counter.
  state.counters["wire_bytes"] = static_cast<double>(bft::encoded_size(w.decide));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bft::encoded_size(w.decide)));
}
BENCHMARK(BM_EncodeDecide)
    ->ArgNames({"n", "rounds"})
    ->ArgsProduct({{4, 7, 10}, {1, 10}});

// ------------------------------------------------- summary mode (--out)

struct SummaryRow {
  std::uint32_t n = 0;
  std::uint32_t rounds = 0;
  double checks_per_sec_uncached = 0;
  double checks_per_sec_cached = 0;
  double speedup = 0;
  crypto::VerifyCacheStats cache;
};

/// Times repeated verify passes: at least `min_iters` passes and at least
/// `min_time`, whichever is longer.  Returns checks per second.
double time_passes(const bft::CertAnalyzer& analyzer, const Workload& w) {
  constexpr int kMinIters = 20;
  constexpr std::chrono::milliseconds kMinTime{200};
  const auto fail = [](const char* why) {
    std::fprintf(stderr, "verification failed: %s\n", why);
    std::abort();
  };
  // Warm-up pass (populates the cache in the cached configuration — the
  // steady state the fast path is about).
  verify_pass_impl(analyzer, w, fail);

  std::size_t checks = 0;
  int iters = 0;
  const auto start = std::chrono::steady_clock::now();
  while (iters < kMinIters ||
         std::chrono::steady_clock::now() - start < kMinTime) {
    checks += verify_pass_impl(analyzer, w, fail);
    ++iters;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(checks) / secs;
}

SummaryRow run_summary(std::uint32_t n, std::uint32_t rounds) {
  SummaryRow row;
  row.n = n;
  row.rounds = rounds;

  Workload w = make_workload(Scheme::kHmac, n, rounds);
  {
    bft::CertAnalyzer analyzer(w.n, w.q, w.sys.verifier);
    row.checks_per_sec_uncached = time_passes(analyzer, w);
  }
  {
    auto cache =
        std::make_shared<const crypto::CachingVerifier>(w.sys.verifier);
    bft::CertAnalyzer analyzer(w.n, w.q, cache);
    row.checks_per_sec_cached = time_passes(analyzer, w);
    row.cache = cache->stats();
  }
  row.speedup = row.checks_per_sec_uncached > 0
                    ? row.checks_per_sec_cached / row.checks_per_sec_uncached
                    : 0;
  return row;
}

int summary_main(const std::string& out) {
  // The witness chain nests the full previous-round quorum, so the
  // encoded tree grows as q^rounds; rounds ≤ 5 keeps every configuration
  // under the 4 MiB decode cap that make_workload's wire-identity check
  // round-trips through.
  const std::vector<std::uint32_t> ns = {4, 7, 10};
  const std::vector<std::uint32_t> round_counts = {1, 3, 5};

  std::printf("E15: certificate fast path, cached vs uncached verify\n");
  std::printf("%3s %7s %18s %18s %8s\n", "n", "rounds", "uncached chk/s",
              "cached chk/s", "speedup");

  benchjson::JsonArray rows;
  double headline = 0;  // n = 7, rounds = 5 (deepest witness chain)
  for (std::uint32_t n : ns) {
    for (std::uint32_t rounds : round_counts) {
      const SummaryRow row = run_summary(n, rounds);
      if (n == 7 && rounds == 5) headline = row.speedup;
      std::printf("%3u %7u %18.0f %18.0f %7.2fx\n", n, rounds,
                  row.checks_per_sec_uncached, row.checks_per_sec_cached,
                  row.speedup);
      benchjson::JsonObject o;
      o.field("n", static_cast<std::uint64_t>(row.n))
          .field("rounds", static_cast<std::uint64_t>(row.rounds))
          .field("checks_per_sec_uncached", row.checks_per_sec_uncached)
          .field("checks_per_sec_cached", row.checks_per_sec_cached)
          .field("speedup", row.speedup)
          .field("cache_hits", row.cache.hits)
          .field("cache_misses", row.cache.misses)
          .field("cache_hit_rate", row.cache.hit_rate());
      rows.add(o.str());
    }
  }
  std::printf("headline speedup (n=7, rounds=5): %.2fx\n", headline);

  benchjson::JsonObject report;
  report.field("experiment", "e15_cert_fastpath")
      .field("scheme", "hmac")
      .field("speedup_n7_rounds5", headline);
  report.raw("rows", rows.str());
  benchjson::write_file(out, report.str());
  std::printf("wrote %s\n", out.c_str());
  return headline >= 3.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `--out FILE` = self-timed JSON summary; anything else falls through to
  // the google-benchmark harness (keeps perf_smoke_cert_fastpath intact).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out needs a value\n");
        return 2;
      }
      return summary_main(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
