// E6 — certificate mechanics (§5.1): size growth across rounds and the
// digest-pruning ablation.
//
// Rounds are forced by muting the first k coordinators (k ≤ F), so the
// protocol decides in round k+1; we record the largest wire message and
// total protocol bytes.  Expected shape: with pruning disabled, message
// size grows super-linearly in the round number (NEXT certificates nest
// recursively); with the digest-pruning policy the growth flattens to
// roughly linear.  This is the ablation DESIGN.md calls out for the
// "certificates cannot be corrupted" machinery.
#include <benchmark/benchmark.h>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;

void run_case(benchmark::State& state, std::uint32_t mute_coords, bool prune) {
  const std::uint32_t n = 10;  // F = 3 allows forcing up to round 4
  double rounds = 0, max_kb = 0, total_kb = 0, sim_ms = 0;
  std::uint64_t ok = 0, total = 0, seed = 1;

  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = n;
    cfg.f = bft::max_tolerated_faults(n);
    cfg.seed = seed++;
    cfg.prune = prune;
    for (std::uint32_t i = 0; i < mute_coords; ++i) {
      faults::FaultSpec spec;
      spec.who = ProcessId{i};  // coordinators of rounds 1..k
      spec.behavior = faults::Behavior::kMute;
      cfg.faults.push_back(spec);
    }
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement && r.vector_validity;
    rounds += r.max_decision_round.value;
    max_kb += static_cast<double>(r.max_message_bytes) / 1024.0;
    total_kb += static_cast<double>(r.protocol_bytes) / 1024.0;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
  }

  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["max_msg_kb"] = max_kb / k;
  state.counters["total_kb"] = total_kb / k;
  state.counters["sim_ms"] = sim_ms / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void register_all() {
  for (bool prune : {true, false}) {
    for (std::uint32_t mute : {0u, 1u, 2u, 3u}) {
      std::string name = std::string("E6/certs/pruning:") +
                         (prune ? "on" : "off") +
                         "/forced_rounds:" + std::to_string(mute + 1);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [mute, prune](benchmark::State& st) {
                                     run_case(st, mute, prune);
                                   });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
