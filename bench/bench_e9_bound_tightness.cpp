// E9b — tightness of F ≤ min(⌊(n−1)/2⌋, C) (paper footnote 2).
//
// Runs the dual-quorum equivocation attack (faults/split_brain.hpp) with
// n = 7 under two configurations and reports the Agreement-violation rate:
//   * F = 2 (the paper's bound): expected violation rate exactly 0 %;
//   * F = 3 (certification bound overridden): expected violation rate
//     strictly positive — two size-4 quorums intersect only in the
//     Byzantine coordinator, so whenever a half assembles its quorum
//     before the cross-relays trigger change-mind, the split sticks
//     (measured ~20-30 %, a race between quorum formation and conflict
//     evidence; any non-zero rate is an Agreement violation).
// This is the necessity direction of the resilience bound: the
// reproduction shows the formula is not conservative.
#include <benchmark/benchmark.h>

#include <map>

#include "bft/bft_consensus.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/split_brain.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace modubft;

void run_case(benchmark::State& state, std::uint32_t f) {
  constexpr std::uint32_t kN = 7;
  std::uint64_t seed = 1;
  std::uint64_t violations = 0, undecided = 0, total = 0;

  for (auto _ : state) {
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, seed);
    sim::SimConfig sim_cfg;
    sim_cfg.n = kN;
    sim_cfg.seed = seed++;
    sim::Simulation world(sim_cfg);

    bft::BftConfig proto;
    proto.n = kN;
    proto.f = f;
    proto.certification_bound = f;  // the override under test

    std::map<std::uint32_t, bft::VectorDecision> decisions;
    world.set_actor(ProcessId{0},
                    std::make_unique<faults::SplitBrainCoordinator>(
                        kN, keys.signers[0].get(), kN - f, 3));
    for (std::uint32_t i = 1; i < kN; ++i) {
      world.set_actor(
          ProcessId{i},
          std::make_unique<bft::BftProcess>(
              proto, 1000 + i, keys.signers[i].get(), keys.verifier,
              [&decisions, i](ProcessId, const bft::VectorDecision& d) {
                decisions.emplace(i, d);
              }));
    }
    world.run();

    total += 1;
    if (decisions.size() < kN - 1) {
      undecided += 1;
    } else {
      const bft::VectorValue& ref = decisions.begin()->second.entries;
      for (auto& [i, d] : decisions) {
        if (d.entries != ref) {
          violations += 1;
          break;
        }
      }
    }
  }

  const double k = static_cast<double>(total);
  state.counters["agreement_violation_pct"] =
      100.0 * static_cast<double>(violations) / k;
  state.counters["nontermination_pct"] =
      100.0 * static_cast<double>(undecided) / k;
}

void register_all() {
  benchmark::RegisterBenchmark(
      "E9b/split_brain/n:7/F:2_within_bound",
      [](benchmark::State& st) { run_case(st, 2); });
  benchmark::RegisterBenchmark(
      "E9b/split_brain/n:7/F:3_beyond_certification_bound",
      [](benchmark::State& st) { run_case(st, 3); });
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
