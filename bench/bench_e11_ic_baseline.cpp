// E11 — Vector Consensus vs its synchronous ancestor.
//
// Footnote 6: "The Vector Consensus notion has first been proposed in
// synchronous systems where it is called Interactive Consistency [11]."
// This bench puts the two side by side on the same (n, f):
//
//   * EIG/IC  — Pease–Shostak–Lamport oral messages: f+1 lockstep rounds,
//     no cryptography, but requires synchrony, n > 3f, and gathers
//     O(n^{f+1}) information (bytes explode with f);
//   * BFT     — the paper's transformed protocol: asynchronous (◇M), same
//     n > 3f resilience via certificates, byte cost O(n²·rounds) —
//     polynomial where EIG is exponential, paid for with signatures.
//
// Expected shape: at f = 1 the two are comparable; at f = 2 EIG's bytes
// grow by ~n× while the async protocol's grow mildly; EIG needs exactly
// f+1 rounds by construction, the async protocol usually one.
#include <benchmark/benchmark.h>

#include "crypto/hmac_signer.hpp"
#include "faults/scenario.hpp"
#include "sync/eig_ic.hpp"
#include "sync/sm_ic.hpp"

namespace {

using namespace modubft;

void run_eig(benchmark::State& state, std::uint32_t n, std::uint32_t f,
             std::uint32_t liars) {
  double msgs = 0, kbytes = 0;
  std::uint64_t agree = 0, total = 0;
  for (auto _ : state) {
    std::map<std::uint32_t, std::vector<sync::Value>> vectors;
    std::vector<std::unique_ptr<sync::SyncProcess>> procs;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i >= 1 && i <= liars) {
        procs.push_back(std::make_unique<sync::EigLiar>(n, f, ProcessId{i}));
      } else {
        procs.push_back(std::make_unique<sync::EigProcess>(
            n, f, ProcessId{i}, 1000 + i,
            [&vectors](ProcessId who, const std::vector<sync::Value>& v) {
              vectors.emplace(who.value, v);
            }));
      }
    }
    sync::SyncStats stats =
        sync::run_lockstep_rounds(procs, sync::EigProcess::rounds_for(f));
    total += 1;
    bool ok = vectors.size() == n - liars;
    for (auto& [i, v] : vectors) ok = ok && v == vectors.begin()->second;
    agree += ok;
    msgs += static_cast<double>(stats.messages);
    kbytes += static_cast<double>(stats.bytes) / 1024.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = f + 1;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(agree) / k;
}

void run_sm(benchmark::State& state, std::uint32_t n, std::uint32_t f,
            std::uint32_t liars) {
  double msgs = 0, kbytes = 0;
  std::uint64_t agree = 0, total = 0, seed = 1;
  for (auto _ : state) {
    crypto::SignatureSystem keys =
        crypto::HmacScheme{}.make_system(n, seed++);
    std::map<std::uint32_t, std::vector<sync::Value>> vectors;
    std::vector<std::unique_ptr<sync::SyncProcess>> procs;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i >= 1 && i <= liars) {
        procs.push_back(std::make_unique<sync::SmEquivocator>(
            n, ProcessId{i}, keys.signers[i].get()));
      } else {
        procs.push_back(std::make_unique<sync::SmProcess>(
            n, f, ProcessId{i}, 1000 + i, keys.signers[i].get(),
            keys.verifier,
            [&vectors](ProcessId who, const std::vector<sync::Value>& v) {
              vectors.emplace(who.value, v);
            }));
      }
    }
    sync::SyncStats stats =
        sync::run_lockstep_rounds(procs, sync::SmProcess::rounds_for(f));
    total += 1;
    bool ok = vectors.size() == n - liars;
    for (auto& [i, v] : vectors) ok = ok && v == vectors.begin()->second;
    agree += ok;
    msgs += static_cast<double>(stats.messages);
    kbytes += static_cast<double>(stats.bytes) / 1024.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = f + 1;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(agree) / k;
}

void run_bft(benchmark::State& state, std::uint32_t n, std::uint32_t f,
             std::uint32_t liars) {
  double rounds = 0, msgs = 0, kbytes = 0;
  std::uint64_t ok = 0, total = 0, seed = 1;
  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.seed = seed++;
    for (std::uint32_t i = 1; i <= liars; ++i) {
      faults::FaultSpec spec;
      spec.who = ProcessId{i};
      spec.behavior = faults::Behavior::kLieInit;
      cfg.faults.push_back(spec);
    }
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement && r.vector_validity;
    rounds += r.max_decision_round.value;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void register_all() {
  struct Case {
    std::uint32_t n, f, liars;
  };
  for (Case c : {Case{4, 1, 1}, Case{7, 2, 2}, Case{10, 3, 3}}) {
    std::string suffix = "/n:" + std::to_string(c.n) +
                         "/f:" + std::to_string(c.f) +
                         "/liars:" + std::to_string(c.liars);
    benchmark::RegisterBenchmark(
        ("E11/sync_EIG_IC" + suffix).c_str(),
        [c](benchmark::State& st) { run_eig(st, c.n, c.f, c.liars); });
    benchmark::RegisterBenchmark(
        ("E11/sync_SM_signed" + suffix).c_str(),
        [c](benchmark::State& st) { run_sm(st, c.n, c.f, c.liars); });
    benchmark::RegisterBenchmark(
        ("E11/async_BFT" + suffix).c_str(),
        [c](benchmark::State& st) { run_bft(st, c.n, c.f, c.liars); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
