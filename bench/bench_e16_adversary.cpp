// E16 — adversarial campaign engine overhead.
//
// Three costs matter for the campaign to be usable as a routine sweep:
//
//   * mutate_frame throughput — the fuzzer sits on the hot send path of a
//     fuzzed process, so a mutation must cost little more than the frame
//     copy it starts from;
//
//   * SafetyAuditor::observe — the auditor taps *every* delivery on every
//     substrate; decode + signature verification dominates, and the bench
//     reports frames/s so the tap budget for wall-clock substrates is
//     explicit;
//
//   * end-to-end audited cells per second — the grid's real currency,
//     measured by running a full attack cell (scenario + fuzzer + auditor)
//     on the simulator.
#include <benchmark/benchmark.h>

#include "adversary/attack.hpp"
#include "adversary/auditor.hpp"
#include "adversary/campaign.hpp"
#include "adversary/fuzzer.hpp"
#include "bft/message.hpp"
#include "common/rng.hpp"
#include "crypto/hmac_signer.hpp"

namespace {

using namespace modubft;

bft::SignedMessage sample_message(const crypto::SignatureSystem& keys) {
  bft::Certificate inits;
  for (std::uint32_t i = 0; i < 3; ++i) {
    bft::SignedMessage m;
    m.core.kind = bft::BftKind::kInit;
    m.core.sender = ProcessId{i};
    m.core.round = Round{0};
    m.core.init_value = 1000 + i;
    m.sig = keys.signers[i]->sign(bft::signing_bytes(m.core, m.cert));
    inits.add(std::move(m));
  }
  bft::SignedMessage current;
  current.core.kind = bft::BftKind::kCurrent;
  current.core.sender = ProcessId{0};
  current.core.round = Round{1};
  current.core.est = {1000, 1001, 1002, std::nullopt};
  current.cert = std::move(inits);
  current.sig = keys.signers[0]->sign(
      bft::signing_bytes(current.core, current.cert));
  return current;
}

void BM_MutateFrame(benchmark::State& state) {
  const crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(4, 42);
  const Bytes frame = bft::encode_message(sample_message(keys));
  adversary::MutationSpec spec;
  spec.bitflip_prob = 0.5;
  spec.truncate_prob = 0.2;
  spec.splice_prob = 0.5;
  Rng rng(7);

  for (auto _ : state) {
    benchmark::DoNotOptimize(adversary::mutate_frame(frame, rng, spec));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * frame.size()));
}
BENCHMARK(BM_MutateFrame);

void BM_AuditorObserve(benchmark::State& state) {
  const std::uint32_t n = 4;
  const crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, 42);
  const Bytes frame = bft::encode_message(sample_message(keys));

  // A representative mix: mostly valid frames, some fuzzer garbage.
  adversary::MutationSpec spec;
  spec.bitflip_prob = 1.0;
  Rng rng(9);
  std::vector<Bytes> payloads;
  for (int i = 0; i < 64; ++i) {
    payloads.push_back(i % 4 == 0 ? adversary::mutate_frame(frame, rng, spec)
                                  : frame);
  }

  adversary::SafetyAuditor auditor(
      adversary::AuditorConfig{n, 1, keys.verifier});
  std::size_t next = 0;
  for (auto _ : state) {
    sim::Delivery d;
    d.from = ProcessId{0};
    d.to = ProcessId{1};
    d.payload = &payloads[next++ % payloads.size()];
    auditor.observe(d);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AuditorObserve);

void BM_AuditedAttackCell(benchmark::State& state) {
  const std::uint32_t n = 4, f = 1;
  const std::vector<adversary::AttackSpec> catalog =
      adversary::attack_catalog(n, f);
  const adversary::AttackSpec* attack =
      adversary::find_attack(catalog, state.range(0) == 0 ? "none"
                                                         : "fuzz-storm");
  std::uint64_t seed = 1;
  benchmark::IterationCount passed = 0;
  for (auto _ : state) {
    const adversary::CellOutcome cell = adversary::run_attack_cell(
        n, f, *attack, runtime::Backend::kSim, seed++,
        std::chrono::milliseconds(20'000));
    passed += cell.pass ? 1 : 0;
  }
  if (passed != state.iterations()) {
    state.SkipWithError("audited cell failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(attack->name);
}
BENCHMARK(BM_AuditedAttackCell)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
