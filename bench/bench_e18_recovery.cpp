// E18 — checkpointing overhead and crash-recovery state transfer.
//
// Two questions, one report (BENCH_e18.json, see EXPERIMENTS.md):
//
//  1. What does certified checkpointing cost?  Commit throughput of the
//     pipelined Byzantine SMR cluster with checkpoints off (interval 0 —
//     wire format byte-identical to a pre-recovery build) vs on
//     (interval 8): same workload, same seeds, sim + threads.  The
//     checkpoint path adds one snapshot, one digest and one signed vote
//     broadcast every C slots — amortized noise, which the acceptance
//     headline pins: checkpointing must retain ≥ 60% of the baseline
//     commits/sec on every substrate measured.
//
//  2. How fast does a killed replica rejoin?  One replica is killed
//     mid-run and restarted later; the report records the worst
//     request-to-rejoin time (PipelineSummary::recovery_us) and the log
//     compaction ceiling.  Acceptance: the victim rejoins via verified
//     state transfer on every substrate, and the committed-slot log never
//     exceeds C+W slots.
//
// Usage: bench_e18_recovery [--out FILE] [--commands N] [--reps R]
//                           [--budget-ms MS]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"
#include "smr/replica.hpp"

namespace {

using namespace modubft;

constexpr std::uint64_t kInterval = 8;
constexpr std::uint32_t kWindow = 4;
constexpr std::uint32_t kBatch = 2;

std::vector<smr::Command> make_workload(std::uint64_t count) {
  std::vector<smr::Command> cmds;
  for (std::uint64_t id = 1; id <= count; ++id) {
    const std::string key = "key" + std::to_string(id % 8);
    if (id % 5 == 0) {
      cmds.push_back({id, smr::Command::Op::kDel, key, ""});
    } else {
      cmds.push_back({id, smr::Command::Op::kPut, key,
                      "v" + std::to_string(id)});
    }
  }
  return cmds;
}

double commits_per_sec(runtime::Backend substrate,
                       const faults::SmrScenarioResult& r) {
  const double us = substrate == runtime::Backend::kSim
                        ? static_cast<double>(r.run_stats.virtual_time)
                        : static_cast<double>(r.run_stats.wall_us);
  if (us <= 0) return 0;
  return static_cast<double>(r.run_stats.pipeline.commands_committed) * 1e6 /
         us;
}

faults::SmrScenarioConfig base_config(runtime::Backend substrate,
                                      std::uint64_t interval,
                                      std::uint64_t commands,
                                      std::uint64_t seed,
                                      std::chrono::milliseconds budget) {
  faults::SmrScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.substrate = substrate;
  cfg.backend = smr::Backend::kByzantine;
  cfg.workload = make_workload(commands);
  cfg.window = kWindow;
  cfg.batch = kBatch;
  cfg.slots = (commands + kBatch - 1) / kBatch + 2;
  cfg.budget = budget;
  cfg.checkpoint_interval = interval;
  return cfg;
}

// ------------------------------------------------- 1. checkpoint overhead

struct OverheadRow {
  runtime::Backend substrate;
  std::uint64_t interval = 0;
  double cps = 0;  // median over reps
  std::vector<double> rep_cps;
  bool ok = true;
  faults::SmrScenarioResult last;
};

OverheadRow run_overhead(runtime::Backend substrate, std::uint64_t interval,
                         std::uint64_t commands, int reps,
                         std::chrono::milliseconds budget) {
  OverheadRow row;
  row.substrate = substrate;
  row.interval = interval;
  const int n_reps = substrate == runtime::Backend::kSim ? 1 : reps;
  for (int rep = 0; rep < n_reps; ++rep) {
    faults::SmrScenarioConfig cfg =
        base_config(substrate, interval, commands,
                    18 + static_cast<std::uint64_t>(rep), budget);
    faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
    if (!r.all_committed || !r.stores_agree) row.ok = false;
    // Compaction ceiling: with checkpoints on, the committed-slot log is
    // bounded by C+W; with them off it grows with the whole run.
    if (interval > 0 &&
        r.run_stats.pipeline.log_peak > interval + kWindow) {
      row.ok = false;
    }
    row.rep_cps.push_back(commits_per_sec(substrate, r));
    row.last = std::move(r);
  }
  std::vector<double> sorted = row.rep_cps;
  std::sort(sorted.begin(), sorted.end());
  row.cps = sorted[sorted.size() / 2];
  return row;
}

// ------------------------------------------------ 2. kill/restart rejoin

struct RecoveryRow {
  runtime::Backend substrate;
  bool recovered = false;
  bool ok = true;
  std::uint64_t rejoin_us = 0;  // worst request-to-rejoin
  std::uint64_t log_peak = 0;
  faults::SmrScenarioResult last;
};

RecoveryRow run_recovery(runtime::Backend substrate, std::uint64_t commands,
                         std::chrono::milliseconds budget) {
  RecoveryRow row;
  row.substrate = substrate;
  faults::SmrScenarioConfig cfg =
      base_config(substrate, kInterval, commands, 18, budget);
  const SimTime kill = substrate == runtime::Backend::kSim ? 1'500
                       : substrate == runtime::Backend::kTcp ? 5'000
                                                             : 3'000;
  const SimTime back = substrate == runtime::Backend::kSim ? 3'000
                       : substrate == runtime::Backend::kTcp ? 80'000
                                                             : 60'000;
  cfg.crashes.push_back({ProcessId{2}, kill, back});
  faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
  row.recovered = r.recovered.count(2) > 0;
  row.ok = r.clean && r.all_committed && r.stores_agree && row.recovered;
  row.rejoin_us = r.run_stats.pipeline.recovery_us;
  row.log_peak = r.run_stats.pipeline.log_peak;
  row.last = std::move(r);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_e18.json";
  std::uint64_t commands = 200;
  int reps = 3;
  std::chrono::milliseconds budget{20'000};
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--commands") == 0) {
      commands = std::strtoull(need("--commands"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(need("--reps"));
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      budget = std::chrono::milliseconds(
          std::strtoll(need("--budget-ms"), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<runtime::Backend> substrates = {
      runtime::Backend::kSim, runtime::Backend::kThreads};

  std::printf("E18: certified checkpoints + recovery, byz n=4 f=1, "
              "%llu commands, C=%llu W=%u B=%u\n",
              static_cast<unsigned long long>(commands),
              static_cast<unsigned long long>(kInterval), kWindow, kBatch);

  // --- checkpoint overhead ---
  std::printf("%-8s %9s %14s %9s %4s\n", "substrate", "interval",
              "commits/sec", "retained", "ok");
  benchjson::JsonArray overhead_rows;
  bool all_ok = true;
  double worst_retained = 1.0;
  for (runtime::Backend substrate : substrates) {
    double baseline = 0;
    for (std::uint64_t interval : {std::uint64_t{0}, kInterval}) {
      OverheadRow row =
          run_overhead(substrate, interval, commands, reps, budget);
      all_ok = all_ok && row.ok;
      double retained = 1.0;
      if (interval == 0) {
        baseline = row.cps;
      } else if (baseline > 0) {
        retained = row.cps / baseline;
        worst_retained = std::min(worst_retained, retained);
      }
      std::printf("%-8s %9llu %14.1f %8.2f%% %4s\n",
                  runtime::backend_name(substrate),
                  static_cast<unsigned long long>(interval), row.cps,
                  retained * 100.0, row.ok ? "yes" : "NO");
      benchjson::JsonObject o;
      o.field("substrate", runtime::backend_name(row.substrate))
          .field("checkpoint_interval", row.interval)
          .field("commits_per_sec", row.cps)
          .field("retained_vs_baseline", retained)
          .field("ok", row.ok);
      o.raw("run_stats",
            runtime::to_json(row.substrate, row.last.run_stats));
      overhead_rows.add(o.str());
    }
  }

  // --- kill/restart rejoin ---
  std::printf("%-8s %12s %9s %4s\n", "substrate", "rejoin_us", "log_peak",
              "ok");
  benchjson::JsonArray recovery_rows;
  bool all_recovered = true;
  for (runtime::Backend substrate : substrates) {
    RecoveryRow row = run_recovery(substrate, commands, budget);
    all_ok = all_ok && row.ok;
    all_recovered = all_recovered && row.recovered;
    std::printf("%-8s %12llu %9llu %4s\n", runtime::backend_name(substrate),
                static_cast<unsigned long long>(row.rejoin_us),
                static_cast<unsigned long long>(row.log_peak),
                row.ok ? "yes" : "NO");
    benchjson::JsonObject o;
    o.field("substrate", runtime::backend_name(row.substrate))
        .field("recovered", row.recovered)
        .field("rejoin_us", row.rejoin_us)
        .field("log_peak", row.log_peak)
        .field("ok", row.ok);
    o.raw("run_stats",
          runtime::to_json(row.substrate, row.last.run_stats));
    recovery_rows.add(o.str());
  }

  std::printf("worst retained throughput with checkpoints on: %.2f%%\n",
              worst_retained * 100.0);

  benchjson::JsonObject report;
  report.field("experiment", "e18_recovery")
      .field("protocol", "byzantine")
      .field("n", static_cast<std::uint64_t>(4))
      .field("f", static_cast<std::uint64_t>(1))
      .field("commands", commands)
      .field("checkpoint_interval", kInterval)
      .field("window", static_cast<std::uint64_t>(kWindow))
      .field("batch", static_cast<std::uint64_t>(kBatch))
      .field("worst_retained", worst_retained)
      .field("all_recovered", all_recovered)
      .field("all_ok", all_ok);
  report.raw("overhead_rows", overhead_rows.str());
  report.raw("recovery_rows", recovery_rows.str());
  benchjson::write_file(out, report.str());
  std::printf("wrote %s\n", out.c_str());

  // Acceptance headline in the exit status: checkpointing keeps ≥ 60% of
  // baseline throughput everywhere, and every kill/restart rejoins.
  return all_ok && all_recovered && worst_retained >= 0.6 ? 0 : 1;
}
