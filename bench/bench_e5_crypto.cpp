// E5 — cryptographic substrate micro-benchmarks.
//
// The paper assumes RSA signatures [13] and uncorruptible certificates;
// this bench quantifies what those assumptions cost per message in the
// implementation: hashing, MAC tags, toy-RSA sign/verify, certificate
// digesting and full signed-message encode/decode.
#include <benchmark/benchmark.h>

#include "bft/message.hpp"
#include "crypto/hmac.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/rsa64.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace modubft;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Rsa64Sign(benchmark::State& state) {
  crypto::SignatureSystem sys = crypto::Rsa64Scheme{}.make_system(1, 7);
  Bytes msg(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.signers[0]->sign(msg));
  }
}
BENCHMARK(BM_Rsa64Sign);

void BM_Rsa64Verify(benchmark::State& state) {
  crypto::SignatureSystem sys = crypto::Rsa64Scheme{}.make_system(1, 7);
  Bytes msg(256, 0x42);
  crypto::Signature sig = sys.signers[0]->sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.verifier->verify(ProcessId{0}, msg, sig));
  }
}
BENCHMARK(BM_Rsa64Verify);

void BM_HmacSchemeSign(benchmark::State& state) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(1, 7);
  Bytes msg(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.signers[0]->sign(msg));
  }
}
BENCHMARK(BM_HmacSchemeSign);

void BM_HmacSchemeVerify(benchmark::State& state) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(1, 7);
  Bytes msg(256, 0x42);
  crypto::Signature sig = sys.signers[0]->sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.verifier->verify(ProcessId{0}, msg, sig));
  }
}
BENCHMARK(BM_HmacSchemeVerify);

void BM_Rsa64KeyGen(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa64_generate(seed++));
  }
}
BENCHMARK(BM_Rsa64KeyGen);

// Builds the INIT-quorum certificate of a CURRENT message for n processes.
bft::SignedMessage sample_current(std::uint32_t n,
                                  const crypto::SignatureSystem& sys) {
  bft::Certificate cert;
  bft::VectorValue vect(n, std::nullopt);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    bft::MessageCore core;
    core.kind = bft::BftKind::kInit;
    core.sender = ProcessId{i};
    core.round = Round{0};
    core.init_value = 100 + i;
    bft::SignedMessage m;
    m.core = core;
    m.sig = sys.signers[i]->sign(bft::signing_bytes(m.core, m.cert));
    cert.add(std::move(m));
    vect[i] = 100 + i;
  }
  bft::SignedMessage cur;
  cur.core.kind = bft::BftKind::kCurrent;
  cur.core.sender = ProcessId{0};
  cur.core.round = Round{1};
  cur.core.est = vect;
  cur.cert = std::move(cert);
  cur.sig = sys.signers[0]->sign(bft::signing_bytes(cur.core, cur.cert));
  return cur;
}

void BM_CertDigest(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(n, 7);
  bft::SignedMessage cur = sample_current(n, sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bft::cert_digest(cur.cert));
  }
}
BENCHMARK(BM_CertDigest)->Arg(4)->Arg(10)->Arg(25);

void BM_MessageEncode(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(n, 7);
  bft::SignedMessage cur = sample_current(n, sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bft::encode_message(cur));
  }
  state.counters["wire_bytes"] =
      static_cast<double>(bft::encoded_size(cur));
}
BENCHMARK(BM_MessageEncode)->Arg(4)->Arg(10)->Arg(25);

void BM_MessageDecode(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(n, 7);
  Bytes wire = bft::encode_message(sample_current(n, sys));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bft::decode_message(wire));
  }
}
BENCHMARK(BM_MessageDecode)->Arg(4)->Arg(10)->Arg(25);

}  // namespace

BENCHMARK_MAIN();
