// E8 — ◇M muteness-detector quality of service [6].
//
// The muteness timeout trades detection speed against false suspicions:
// a mute coordinator stalls the round until ◇M fires, so decision latency
// tracks the initial timeout almost linearly (expected shape); overly
// aggressive timeouts on a turbulent network cause spurious round changes
// (extra rounds) but never violate safety.
#include <benchmark/benchmark.h>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;

void run_mute_detection(benchmark::State& state, SimTime timeout_us) {
  double rounds = 0, sim_ms = 0;
  std::uint64_t ok = 0, total = 0, seed = 1;
  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = seed++;
    cfg.muteness.initial_timeout = timeout_us;
    faults::FaultSpec spec;
    spec.who = ProcessId{0};  // mute round-1 coordinator
    spec.behavior = faults::Behavior::kMute;
    cfg.faults = {spec};
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement;
    rounds += r.max_decision_round.value;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["decide_ms"] = sim_ms / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void run_turbulence(benchmark::State& state, SimTime timeout_us) {
  double rounds = 0, sim_ms = 0;
  std::uint64_t ok = 0, total = 0, seed = 1;
  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = seed++;
    cfg.muteness.initial_timeout = timeout_us;
    cfg.latency = sim::turbulent_until(150'000);
    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement;
    rounds += r.max_decision_round.value;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
  }
  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;  // >1 ⇒ spurious suspicions
  state.counters["decide_ms"] = sim_ms / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void register_all() {
  for (SimTime timeout : {10'000u, 40'000u, 160'000u, 640'000u}) {
    std::string name =
        "E8/mute_coordinator/timeout_ms:" + std::to_string(timeout / 1000);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [timeout](benchmark::State& st) {
                                   run_mute_detection(st, timeout);
                                 });
  }
  for (SimTime timeout : {10'000u, 40'000u, 160'000u}) {
    std::string name =
        "E8/turbulent_no_fault/timeout_ms:" + std::to_string(timeout / 1000);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [timeout](benchmark::State& st) { run_turbulence(st, timeout); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
