// E1 — Hurfin–Raynal ◇S consensus under crashes (paper Figure 2).
//
// Reproduces the crash-model protocol's behaviour envelope: decision
// latency, rounds and message cost as functions of group size, crash count
// and failure-detector quality.  Expected shape: failure-free runs decide
// in round 1 with Θ(n²) messages; each early-coordinator crash adds
// roughly one round plus the detection lag; false suspicions inflate
// rounds but never break safety.
//
// Counters: rounds (max decision round), msgs, kbytes, sim_ms (last
// decision time in simulated milliseconds).
#include <benchmark/benchmark.h>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;

void run_case(benchmark::State& state, std::uint32_t n, std::uint32_t crashes,
              double mistake_prob) {
  double rounds = 0, msgs = 0, kbytes = 0, sim_ms = 0;
  std::uint64_t seed = 1;
  std::uint64_t ok = 0, total = 0;

  for (auto _ : state) {
    faults::CrashScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = seed++;
    cfg.protocol = faults::CrashProtocol::kHurfinRaynal;
    cfg.crash_times.assign(n, std::nullopt);
    for (std::uint32_t i = 0; i < crashes; ++i) {
      cfg.crash_times[i] = SimTime{i * 20'000};  // early coordinators die
    }
    cfg.oracle.stabilization_time = mistake_prob > 0 ? 300'000 : 0;
    cfg.oracle.false_suspicion_prob = mistake_prob;

    faults::CrashScenarioResult r = faults::run_crash_scenario(cfg);
    total += 1;
    ok += r.agreement && r.termination && r.validity;
    rounds += r.max_decision_round.value;
    msgs += static_cast<double>(r.net.messages_sent);
    kbytes += static_cast<double>(r.net.bytes_sent) / 1024.0;
    sim_ms += static_cast<double>(r.last_decision_time) / 1000.0;
  }

  const double k = static_cast<double>(total);
  state.counters["rounds"] = rounds / k;
  state.counters["msgs"] = msgs / k;
  state.counters["kbytes"] = kbytes / k;
  state.counters["sim_ms"] = sim_ms / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void register_all() {
  for (std::uint32_t n : {3u, 5u, 7u, 9u, 13u}) {
    const std::uint32_t fmax = (n - 1) / 2;
    for (std::uint32_t crashes : {0u, 1u, fmax}) {
      if (crashes > fmax) continue;
      for (double mistakes : {0.0, 0.2}) {
        std::string name = "E1/HR/n:" + std::to_string(n) +
                           "/crashes:" + std::to_string(crashes) +
                           "/fd_mistakes:" + std::to_string(int(mistakes * 100)) +
                           "pct";
        benchmark::RegisterBenchmark(
            name.c_str(), [n, crashes, mistakes](benchmark::State& st) {
              run_case(st, n, crashes, mistakes);
            });
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
