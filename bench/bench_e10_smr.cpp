// E10 — replicated-state-machine throughput on top of consensus.
//
// The downstream workload the paper motivates: a KV store ordering
// commands through repeated consensus instances.  Compares the crash-model
// back-end (Hurfin–Raynal) against the transformed Byzantine back-end on
// the same command stream.  Expected shape: per-slot latency of the BFT
// back-end ≈ crash back-end plus the INIT-phase round trip and the
// certificate bytes; a silent replica (within the fault bound) leaves
// throughput unchanged because slots only need n−F participants.
#include <benchmark/benchmark.h>

#include "crypto/hmac_signer.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace {

using namespace modubft;
using smr::Command;

std::vector<Command> workload(std::uint64_t count) {
  std::vector<Command> out;
  for (std::uint64_t i = 1; i <= count; ++i) {
    out.push_back(Command{i, Command::Op::kPut, "key" + std::to_string(i % 16),
                          std::to_string(i)});
  }
  return out;
}

void run_case(benchmark::State& state, smr::Backend backend, std::uint32_t n,
              bool one_silent) {
  constexpr std::uint64_t kSlots = 10;
  double slot_ms = 0, msgs = 0, kbytes = 0;
  std::uint64_t converged = 0, total = 0, seed = 1;

  for (auto _ : state) {
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, seed);
    sim::SimConfig sim_cfg;
    sim_cfg.n = n;
    sim_cfg.seed = seed++;
    sim::Simulation world(sim_cfg);

    bft::BftConfig bft_cfg;
    bft_cfg.n = n;
    bft_cfg.f = bft::max_tolerated_faults(n);

    std::vector<std::optional<SimTime>> crash_times(n, std::nullopt);
    if (one_silent) crash_times[n - 1] = SimTime{0};

    std::vector<smr::Replica*> replicas(n, nullptr);
    SimTime last_commit = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      smr::ReplicaConfig cfg;
      cfg.n = n;
      cfg.backend = backend;
      cfg.slots = kSlots;
      cfg.bft = bft_cfg;
      cfg.signer = keys.signers[i].get();
      cfg.verifier = keys.verifier;
      cfg.detector =
          std::make_shared<fd::OracleDetector>(crash_times, fd::OracleConfig{});
      auto replica = std::make_unique<smr::Replica>(
          cfg, workload(kSlots), smr::CommitFn{});
      replicas[i] = replica.get();
      world.set_actor(ProcessId{i}, std::move(replica));
      if (crash_times[i].has_value()) world.crash_at(ProcessId{i}, 0);
    }
    world.run();

    total += 1;
    bool all_converged = true;
    const std::uint32_t live = one_silent ? n - 1 : n;
    for (std::uint32_t i = 0; i < live; ++i) {
      all_converged = all_converged &&
                      replicas[i]->committed_slots() == kSlots &&
                      replicas[i]->store().contents() ==
                          replicas[0]->store().contents();
    }
    converged += all_converged;
    last_commit = world.now();
    slot_ms += static_cast<double>(last_commit) / 1000.0 / kSlots;
    msgs += static_cast<double>(world.stats().messages_sent) / kSlots;
    kbytes += static_cast<double>(world.stats().bytes_sent) / 1024.0 / kSlots;
  }

  const double k = static_cast<double>(total);
  state.counters["slot_ms"] = slot_ms / k;
  state.counters["msgs_per_slot"] = msgs / k;
  state.counters["kb_per_slot"] = kbytes / k;
  state.counters["converged_pct"] = 100.0 * static_cast<double>(converged) / k;
}

void register_all() {
  for (std::uint32_t n : {4u, 7u}) {
    for (auto [backend, label] :
         {std::pair{smr::Backend::kCrashHurfinRaynal, "crash_HR"},
          std::pair{smr::Backend::kByzantine, "BFT"}}) {
      for (bool silent : {false, true}) {
        std::string name = std::string("E10/kv_smr/") + label +
                           "/n:" + std::to_string(n) +
                           (silent ? "/one_silent" : "/all_up");
        benchmark::RegisterBenchmark(
            name.c_str(), [backend, n, silent](benchmark::State& st) {
              run_case(st, backend, n, silent);
            });
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
