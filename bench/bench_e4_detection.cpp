// E4 — detection coverage and latency per failure class (paper Figure 4).
//
// Injects one failure class per run (audit mode) and measures:
//   * detect_pct — share of runs in which the culprit was convicted by at
//     least one correct process (expected 100 for every non-muteness
//     class; 0 for lie-init, which is undetectable by design);
//   * detect_ms — simulated time of the first conviction;
//   * false_pct — share of runs where a correct process was accused
//     (reliability of the non-muteness detector; expected 0 everywhere).
#include <benchmark/benchmark.h>

#include "faults/scenario.hpp"

namespace {

using namespace modubft;
using faults::Behavior;

struct Case {
  Behavior behavior;
  std::uint32_t culprit;
  bool needs_next_traffic;
};

void run_case(benchmark::State& state, const Case& c) {
  std::uint64_t seed = 1;
  std::uint64_t detected = 0, falsely = 0, total = 0, ok = 0;
  double detect_ms = 0;

  for (auto _ : state) {
    faults::BftScenarioConfig cfg;
    cfg.n = c.needs_next_traffic ? 7 : 4;
    cfg.f = c.needs_next_traffic ? 2 : 1;
    cfg.seed = seed++;
    cfg.stop_on_decide = false;  // audit mode
    faults::FaultSpec spec;
    spec.who = ProcessId{c.culprit};
    spec.behavior = c.behavior;
    cfg.faults = {spec};
    if (c.needs_next_traffic) {
      faults::FaultSpec mute;
      mute.who = ProcessId{0};
      mute.behavior = Behavior::kMute;
      cfg.faults.push_back(mute);
    }

    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    total += 1;
    ok += r.termination && r.agreement && r.vector_validity;
    falsely += !r.detectors_reliable;
    if (r.declared_faulty.count(c.culprit) > 0) {
      detected += 1;
      SimTime first = ~SimTime{0};
      for (const auto& rec : r.records) {
        if (rec.culprit.value == c.culprit) first = std::min(first, rec.time);
      }
      detect_ms += static_cast<double>(first) / 1000.0;
    }
  }

  const double k = static_cast<double>(total);
  state.counters["detect_pct"] = 100.0 * static_cast<double>(detected) / k;
  state.counters["detect_ms"] =
      detected > 0 ? detect_ms / static_cast<double>(detected) : 0.0;
  state.counters["false_pct"] = 100.0 * static_cast<double>(falsely) / k;
  state.counters["ok_pct"] = 100.0 * static_cast<double>(ok) / k;
}

void register_all() {
  const Case cases[] = {
      {Behavior::kCorruptVector, 0, false},
      {Behavior::kCorruptVector, 2, false},
      {Behavior::kWrongRound, 2, false},
      {Behavior::kDuplicateCurrent, 0, false},
      {Behavior::kDuplicateNext, 2, true},
      {Behavior::kBadSignature, 2, false},
      {Behavior::kStripCertificate, 0, false},
      {Behavior::kSubstituteNext, 0, false},
      {Behavior::kPrematureDecide, 2, false},
      {Behavior::kEquivocate, 0, false},
      {Behavior::kSpuriousCurrent, 2, true},
      {Behavior::kLieInit, 1, false},  // expected: 0% detection
  };
  for (const Case& c : cases) {
    std::string name = std::string("E4/detect/") + behavior_name(c.behavior) +
                       "/culprit:p" + std::to_string(c.culprit + 1);
    benchmark::RegisterBenchmark(
        name.c_str(), [c](benchmark::State& st) { run_case(st, c); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
