// End-to-end tests of the transformed Byzantine vector-consensus protocol
// (paper Figure 3) under every injected failure class.
#include <gtest/gtest.h>

#include "bft/config.hpp"
#include "faults/scenario.hpp"

namespace modubft {
namespace {

using faults::Behavior;
using faults::BftScenarioConfig;
using faults::BftScenarioResult;
using faults::FaultSpec;
using faults::run_bft_scenario;

BftScenarioConfig base(std::uint32_t n, std::uint32_t f, std::uint64_t seed) {
  BftScenarioConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  return cfg;
}

FaultSpec fault(std::uint32_t who, Behavior b, Round from = Round{1}) {
  FaultSpec s;
  s.who = ProcessId{who};
  s.behavior = b;
  s.from_round = from;
  return s;
}

void expect_all_good(const BftScenarioResult& r, const char* label) {
  EXPECT_TRUE(r.termination) << label;
  EXPECT_TRUE(r.agreement) << label;
  EXPECT_TRUE(r.vector_validity) << label;
  EXPECT_TRUE(r.detectors_reliable) << label;
}

TEST(BftBounds, ResilienceFormula) {
  using bft::default_certification_bound;
  using bft::max_tolerated_faults;
  EXPECT_EQ(default_certification_bound(4), 1u);
  EXPECT_EQ(default_certification_bound(7), 2u);
  EXPECT_EQ(default_certification_bound(10), 3u);
  EXPECT_EQ(max_tolerated_faults(4), 1u);
  EXPECT_EQ(max_tolerated_faults(7), 2u);
  // An external certification service can raise C up to the HR majority.
  EXPECT_EQ(max_tolerated_faults(7, 5), 3u);
  EXPECT_EQ(max_tolerated_faults(2), 0u);
}

TEST(BftBounds, ConfigValidation) {
  bft::BftConfig cfg;
  cfg.n = 4;
  cfg.f = 2;  // exceeds min(⌊3/2⌋, ⌊3/3⌋) = 1
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(BftConsensus, FailureFreeDecidesRoundOne) {
  BftScenarioResult r = run_bft_scenario(base(4, 1, 1));
  expect_all_good(r, "failure-free");
  EXPECT_EQ(r.max_decision_round.value, 1u);
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.declared_faulty.empty());
  // Vector has at least quorum certified entries.
  EXPECT_GE(r.min_correct_entries, 3u);
}

TEST(BftConsensus, FailureFreeLargerGroup) {
  BftScenarioResult r = run_bft_scenario(base(7, 2, 2));
  expect_all_good(r, "n=7 failure-free");
}

TEST(BftConsensus, RsaSchemeAlsoWorks) {
  BftScenarioConfig cfg = base(4, 1, 3);
  cfg.scheme = faults::Scheme::kRsa64;
  expect_all_good(run_bft_scenario(cfg), "rsa64");
}

TEST(BftConsensus, UnprunedCertificatesAlsoWork) {
  BftScenarioConfig cfg = base(4, 1, 4);
  cfg.prune = false;
  expect_all_good(run_bft_scenario(cfg), "no pruning");
}

TEST(BftConsensus, CrashedProcessTolerated) {
  BftScenarioConfig cfg = base(4, 1, 5);
  cfg.faults = {fault(3, Behavior::kCrash)};
  cfg.faults[0].at = 0;
  expect_all_good(run_bft_scenario(cfg), "crash");
}

TEST(BftConsensus, CrashedCoordinatorTolerated) {
  BftScenarioConfig cfg = base(4, 1, 6);
  cfg.faults = {fault(0, Behavior::kCrash)};  // p1 coordinates round 1
  cfg.faults[0].at = 0;
  BftScenarioResult r = run_bft_scenario(cfg);
  expect_all_good(r, "coordinator crash");
  EXPECT_GE(r.max_decision_round.value, 2u);
}

TEST(BftConsensus, MuteCoordinatorSuspectedAndPassed) {
  BftScenarioConfig cfg = base(4, 1, 7);
  cfg.faults = {fault(0, Behavior::kMute, Round{1})};
  BftScenarioResult r = run_bft_scenario(cfg);
  expect_all_good(r, "mute coordinator");
  EXPECT_GE(r.max_decision_round.value, 2u);
}

TEST(BftConsensus, MuteNonCoordinatorHarmless) {
  BftScenarioConfig cfg = base(4, 1, 8);
  cfg.faults = {fault(2, Behavior::kMute, Round{1})};
  expect_all_good(run_bft_scenario(cfg), "mute bystander");
}

struct DetectedCase {
  Behavior behavior;
  std::uint32_t culprit;  // which process misbehaves
  bft::FaultKind expected_kind;
  /// Behaviours that only manifest on NEXT traffic need a round change;
  /// those cases run with n = 7, F = 2 and a mute round-1 coordinator.
  bool needs_next_traffic = false;
};

class DetectionCase : public ::testing::TestWithParam<DetectedCase> {};

TEST_P(DetectionCase, FaultDetectedAndMasked) {
  const DetectedCase& p = GetParam();
  BftScenarioConfig cfg = p.needs_next_traffic
                              ? base(7, 2, 100 + static_cast<int>(p.behavior))
                              : base(4, 1, 100 + static_cast<int>(p.behavior));
  // Audit mode: deciders keep monitoring, so detection cannot be lost to a
  // decision/delivery race.
  cfg.stop_on_decide = false;
  cfg.faults = {fault(p.culprit, p.behavior)};
  if (p.needs_next_traffic) {
    cfg.faults.push_back(fault(0, Behavior::kMute));  // forces round 2
  }
  BftScenarioResult r = run_bft_scenario(cfg);

  expect_all_good(r, behavior_name(p.behavior));

  // The culprit must be caught by the non-muteness machinery of at least
  // one correct process, with the expected classification among the
  // records.
  EXPECT_TRUE(r.declared_faulty.count(p.culprit) > 0)
      << behavior_name(p.behavior) << " went undetected";
  bool kind_seen = false;
  for (const bft::FaultRecord& rec : r.records) {
    if (rec.culprit.value == p.culprit && rec.kind == p.expected_kind) {
      kind_seen = true;
    }
  }
  EXPECT_TRUE(kind_seen) << "expected classification "
                         << bft::fault_kind_name(p.expected_kind) << " for "
                         << behavior_name(p.behavior);
}

INSTANTIATE_TEST_SUITE_P(
    AllFailureClasses, DetectionCase,
    ::testing::Values(
        // The round-1 coordinator corrupting its vector: est_cert no longer
        // witnesses it.
        DetectedCase{Behavior::kCorruptVector, 0,
                     bft::FaultKind::kBadCertificate},
        // A relayer corrupting the adopted vector: substituted content.
        DetectedCase{Behavior::kCorruptVector, 2,
                     bft::FaultKind::kWrongExpected},
        // Round-number corruption: receipt event not enabled.
        DetectedCase{Behavior::kWrongRound, 2, bft::FaultKind::kOutOfOrder},
        // Statement duplication.
        DetectedCase{Behavior::kDuplicateCurrent, 0,
                     bft::FaultKind::kOutOfOrder},
        DetectedCase{Behavior::kDuplicateNext, 2, bft::FaultKind::kOutOfOrder,
                     true},
        // Signature corruption caught by the signature module.
        DetectedCase{Behavior::kBadSignature, 2,
                     bft::FaultKind::kBadSignature},
        DetectedCase{Behavior::kBadSignature, 0,
                     bft::FaultKind::kBadSignature},
        // Certificate stripping.
        DetectedCase{Behavior::kStripCertificate, 0,
                     bft::FaultKind::kBadCertificate},
        // Substituted message: the coordinator votes NEXT instead of
        // CURRENT in its own round.
        DetectedCase{Behavior::kSubstituteNext, 0,
                     bft::FaultKind::kWrongExpected},
        // Premature DECIDE: misevaluated decision condition.
        DetectedCase{Behavior::kPrematureDecide, 2,
                     bft::FaultKind::kBadCertificate},
        // Spurious CURRENT from a non-coordinator, sent after its NEXT:
        // the receipt event is not enabled in q2.
        DetectedCase{Behavior::kSpuriousCurrent, 2,
                     bft::FaultKind::kOutOfOrder, true}),
    [](const auto& info) {
      std::string name = behavior_name(info.param.behavior);
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_p" + std::to_string(info.param.culprit + 1);
    });

TEST(BftConsensus, EquivocatingCoordinatorDetected) {
  BftScenarioConfig cfg = base(4, 1, 50);
  cfg.faults = {fault(0, Behavior::kEquivocate)};
  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.detectors_reliable);
  // Someone saw both vectors (directly or via relays) and convicted the
  // coordinator, or the split prevented round-1 decision and a later honest
  // coordinator finished; in both cases agreement holds.  Conviction is
  // expected on at least one correct process here because relays cross.
  EXPECT_TRUE(r.declared_faulty.count(0) > 0);
}

TEST(BftConsensus, LyingInitUndetectableButBounded) {
  // An irrelevant initial value cannot be detected (paper §1), but Vector
  // Validity still guarantees ≥ n−2F entries from correct processes.
  BftScenarioConfig cfg = base(4, 1, 51);
  cfg.faults = {fault(1, Behavior::kLieInit)};
  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.vector_validity);
  EXPECT_GE(r.min_correct_entries, 2u);  // n − 2F = 2
  // And indeed nobody convicted the liar.
  EXPECT_EQ(r.declared_faulty.count(1), 0u);
}

TEST(BftConsensus, TwoFaultsWithinBoundN7) {
  BftScenarioConfig cfg = base(7, 2, 52);
  cfg.faults = {fault(0, Behavior::kCorruptVector),
                fault(3, Behavior::kMute, Round{1})};
  expect_all_good(run_bft_scenario(cfg), "two faults n=7");
}

TEST(BftConsensus, MixedByzantineAndCrash) {
  BftScenarioConfig cfg = base(7, 2, 53);
  cfg.faults = {fault(1, Behavior::kBadSignature)};
  FaultSpec crash = fault(4, Behavior::kCrash);
  crash.at = 50'000;
  cfg.faults.push_back(crash);
  expect_all_good(run_bft_scenario(cfg), "byzantine + crash");
}

TEST(BftConsensus, TurbulentNetworkStillSafe) {
  BftScenarioConfig cfg = base(4, 1, 54);
  cfg.latency = sim::turbulent_until(200'000);
  cfg.faults = {fault(2, Behavior::kCorruptVector)};
  expect_all_good(run_bft_scenario(cfg), "turbulence");
}

TEST(BftConsensus, DeterministicReplay) {
  BftScenarioConfig cfg = base(4, 1, 55);
  cfg.faults = {fault(0, Behavior::kEquivocate)};
  BftScenarioResult a = run_bft_scenario(cfg);
  BftScenarioResult b = run_bft_scenario(cfg);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (auto& [i, d] : a.decisions) {
    EXPECT_EQ(d.entries, b.decisions.at(i).entries);
    EXPECT_EQ(d.time, b.decisions.at(i).time);
  }
  EXPECT_EQ(a.records.size(), b.records.size());
}

TEST(BftConsensus, DecidedVectorsCarryQuorumEntries) {
  BftScenarioResult r = run_bft_scenario(base(10, 3, 56));
  expect_all_good(r, "n=10");
  for (auto& [i, d] : r.decisions) {
    std::size_t non_null = 0;
    for (const auto& e : d.entries) non_null += e.has_value();
    EXPECT_GE(non_null, 7u);  // quorum = n − F
  }
}

// Property sweep over sizes, fault mixes and seeds.
struct SweepParam {
  std::uint32_t n;
  std::uint32_t f;
  Behavior behavior;
  std::uint64_t seed;
};

class BftSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BftSweep, SafetyLivenessValidityReliability) {
  const SweepParam p = GetParam();
  BftScenarioConfig cfg = base(p.n, p.f, p.seed);
  // The adversary controls the first f processes (including the round-1
  // coordinator — the worst case).
  for (std::uint32_t i = 0; i < p.f; ++i) {
    cfg.faults.push_back(fault(i, p.behavior));
  }
  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination)
      << "n=" << p.n << " f=" << p.f << " " << behavior_name(p.behavior)
      << " seed=" << p.seed;
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.vector_validity);
  EXPECT_TRUE(r.detectors_reliable);
  EXPECT_GE(r.min_correct_entries, p.n - 2 * p.f);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  const Behavior behaviors[] = {
      Behavior::kMute,          Behavior::kCorruptVector,
      Behavior::kBadSignature,  Behavior::kDuplicateCurrent,
      Behavior::kEquivocate,    Behavior::kPrematureDecide,
  };
  for (std::uint32_t n : {4u, 7u, 10u}) {
    const std::uint32_t f = bft::max_tolerated_faults(n);
    for (Behavior b : behaviors) {
      for (std::uint64_t seed : {61u, 62u}) {
        out.push_back({n, f, b, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(MaxResilience, BftSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           const SweepParam& p = info.param;
                           std::string b = behavior_name(p.behavior);
                           for (char& c : b)
                             if (c == '-') c = '_';
                           return "n" + std::to_string(p.n) + "_f" +
                                  std::to_string(p.f) + "_" + b + "_s" +
                                  std::to_string(p.seed);
                         });

}  // namespace
}  // namespace modubft
