// Cross-substrate equivalence: the same scenario, unmodified, on the
// deterministic simulator, the threaded in-memory cluster, and the TCP
// loopback cluster (runtime::Backend) — the tentpole claim of the
// substrate-agnostic runtime (docs/RUNTIME.md).
//
// Two assertion regimes:
//   * strict  — when the scenario's outcome is timing-independent (e.g. a
//     bad-signature fault leaves exactly one certifiable INIT quorum) the
//     decided vectors and the declared-faulty sets must be *identical*
//     across substrates;
//   * latency-tolerant — when timing legitimately picks among several
//     correct outcomes (which INITs a coordinator certifies, when a crash
//     lands relative to on_start) only the paper's boolean properties and
//     culprit-set inclusions are compared.
#include <gtest/gtest.h>

#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"

namespace modubft::faults {
namespace {

using runtime::Backend;

constexpr Backend kBackends[] = {Backend::kSim, Backend::kThreads,
                                 Backend::kTcp};

// --------------------------------------------------------------- BFT strict

// n=4, F=1, p2 forges every signature from round 0 on: its INIT is
// rejected by every correct process, leaving exactly n−F = 3 valid INIT
// senders — the certifiable vector is unique, so the decision is
// bit-identical on every substrate regardless of scheduling.
BftScenarioConfig bad_signature_scenario(Backend backend) {
  BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 7;
  cfg.substrate = backend;
  FaultSpec spec;
  spec.who = ProcessId{2};
  spec.behavior = Behavior::kBadSignature;
  spec.from_round = Round{0};  // INITs carry round 0 — corrupt those too
  cfg.faults = {spec};
  return cfg;
}

TEST(SubstrateEquivalence, BadSignatureDecisionsIdentical) {
  std::optional<BftScenarioResult> reference;
  for (Backend backend : kBackends) {
    SCOPED_TRACE(runtime::backend_name(backend));
    const BftScenarioResult r =
        run_bft_scenario(bad_signature_scenario(backend));

    EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
    EXPECT_TRUE(r.unstopped.empty());
    EXPECT_TRUE(r.termination);
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.vector_validity);
    EXPECT_TRUE(r.detectors_reliable);
    // All three correct processes decided (the decisions map may also
    // record the faulty p2's own local decision — the properties above
    // are evaluated over the correct set only).
    ASSERT_EQ(r.correct, (std::set<std::uint32_t>{0, 1, 3}));
    for (std::uint32_t i : r.correct) {
      EXPECT_TRUE(r.decisions.count(i)) << "process " << i;
    }

    // Every correct process saw at least p2's forged INIT.
    EXPECT_EQ(r.declared_faulty, (std::set<std::uint32_t>{2}));
    for (const bft::FaultRecord& rec : r.records) {
      EXPECT_EQ(rec.culprit.value, 2u);
      EXPECT_EQ(rec.kind, bft::FaultKind::kBadSignature);
    }

    // The unified counters are populated on every backend.
    EXPECT_GT(r.run_stats.net.messages_sent, 0u);
    EXPECT_GT(r.run_stats.net.messages_delivered, 0u);
    if (backend == Backend::kTcp) {
      // Self-deliveries never cross the wire, so wire_bytes may be below
      // the protocol-level byte count; it just has to be populated.
      EXPECT_GT(r.run_stats.wire_frames, 0u);
      EXPECT_GT(r.run_stats.wire_bytes, 0u);
    }

    if (!reference.has_value()) {
      reference = r;
      continue;
    }
    // Strict: the correct processes' decided vectors match the
    // simulator's bit for bit.
    for (std::uint32_t i : r.correct) {
      auto it = r.decisions.find(i);
      auto ref = reference->decisions.find(i);
      ASSERT_NE(it, r.decisions.end()) << "process " << i;
      ASSERT_NE(ref, reference->decisions.end()) << "process " << i;
      EXPECT_EQ(it->second.entries, ref->second.entries) << "process " << i;
    }
    EXPECT_EQ(r.declared_faulty, reference->declared_faulty);
  }
}

// ------------------------------------------------------------ BFT tolerant

// Mid-run crash: on the wall-clock substrates the crash instant races the
// (fast) protocol, so only the boolean properties are compared.
TEST(SubstrateEquivalence, CrashFaultPropertiesHold) {
  for (Backend backend : kBackends) {
    SCOPED_TRACE(runtime::backend_name(backend));
    BftScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = 11;
    cfg.substrate = backend;
    FaultSpec spec;
    spec.who = ProcessId{3};
    spec.behavior = Behavior::kCrash;
    spec.at = 10'000;
    cfg.faults = {spec};

    const BftScenarioResult r = run_bft_scenario(cfg);
    EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
    EXPECT_TRUE(r.termination);
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.vector_validity);
    EXPECT_TRUE(r.detectors_reliable);
    // A silent process is a muteness failure: never in the fault records.
    EXPECT_TRUE(r.declared_faulty.empty());
  }
}

// The dual-quorum equivocation attack (kSplitBrain, process 0).  Which
// variant each process relays first is timing-dependent, so the decided
// vectors may differ between substrates — but within one run the correct
// processes must agree, and the only convicted process must be p0.
TEST(SubstrateEquivalence, SplitBrainCulpritAttributedEverywhere) {
  for (Backend backend : kBackends) {
    SCOPED_TRACE(runtime::backend_name(backend));
    BftScenarioConfig cfg;
    cfg.n = 7;
    cfg.f = 2;
    cfg.seed = 13;
    cfg.substrate = backend;
    FaultSpec spec;
    spec.who = ProcessId{0};
    spec.behavior = Behavior::kSplitBrain;
    cfg.faults = {spec};

    const BftScenarioResult r = run_bft_scenario(cfg);
    EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
    EXPECT_TRUE(r.termination);
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.vector_validity);
    EXPECT_TRUE(r.detectors_reliable);
    // Latency-tolerant: whoever got convicted, it was only ever p0.  On
    // the wall-clock substrates a fast decision can outrun the cross-relay
    // that exposes the equivocation, so conviction itself is guaranteed
    // only under the simulator's deterministic schedule.
    for (std::uint32_t culprit : r.declared_faulty) {
      EXPECT_EQ(culprit, 0u);
    }
    if (backend == Backend::kSim) {
      EXPECT_TRUE(r.declared_faulty.count(0) > 0);
    }
  }
}

// ----------------------------------------------------------------- lockstep

TEST(SubstrateEquivalence, LockstepBarrierTolerationEverywhere) {
  for (Backend backend : kBackends) {
    SCOPED_TRACE(runtime::backend_name(backend));
    LockstepScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.rounds = 3;
    cfg.seed = 5;
    cfg.substrate = backend;
    cfg.crashes = {CrashSpec{ProcessId{3}, 5'000, std::nullopt}};

    const LockstepScenarioResult r = run_lockstep_scenario(cfg);
    EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
    EXPECT_TRUE(r.all_correct_finished);
    EXPECT_TRUE(r.no_false_accusations);
    EXPECT_EQ(r.correct, (std::set<std::uint32_t>{0, 1, 2}));
  }
}

// ---------------------------------------------------------------------- SMR

TEST(SubstrateEquivalence, SmrCrashBackendStoresIdentical) {
  std::optional<std::map<std::string, std::string>> reference;
  for (Backend backend : kBackends) {
    SCOPED_TRACE(runtime::backend_name(backend));
    SmrScenarioConfig cfg;
    cfg.n = 4;
    cfg.slots = 5;
    cfg.seed = 3;
    cfg.substrate = backend;

    const SmrScenarioResult r = run_smr_scenario(cfg);
    EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
    EXPECT_TRUE(r.all_committed);
    EXPECT_TRUE(r.stores_agree);
    // The workload is fully committed, so the store is deterministic.
    EXPECT_EQ(r.store.at("alpha"), "3");
    EXPECT_EQ(r.store.count("beta"), 0u);
    EXPECT_EQ(r.store.at("gamma"), "5");
    if (!reference.has_value()) {
      reference = r.store;
    } else {
      EXPECT_EQ(r.store, *reference);
    }
  }
}

TEST(SubstrateEquivalence, SmrByzantineBackendAcrossSubstrates) {
  for (Backend backend : kBackends) {
    SCOPED_TRACE(runtime::backend_name(backend));
    SmrScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.slots = 3;
    cfg.seed = 9;
    cfg.substrate = backend;
    cfg.backend = smr::Backend::kByzantine;

    const SmrScenarioResult r = run_smr_scenario(cfg);
    EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
    EXPECT_TRUE(r.all_committed);
    EXPECT_TRUE(r.stores_agree);
  }
}

// Staged-vs-sequential ingest: the equivalence claim of docs/INGEST.md.
// The same pipelined Byzantine scenario runs with the staged two-phase
// dispatch forced ON and forced OFF on both wall-clock substrates; every
// run must commit the store the deterministic simulator's strictly
// sequential run commits, bit for bit.  The ingest counters double-check
// which path was actually in force.
TEST(SubstrateEquivalence, SmrStagedIngestMatchesSequentialStores) {
  SmrScenarioConfig base;
  base.n = 4;
  base.f = 1;
  base.slots = 5;
  base.seed = 17;
  base.backend = smr::Backend::kByzantine;
  base.window = 3;
  base.batch = 2;

  // Simulator reference: one message per event, so staging never engages.
  const SmrScenarioResult ref = run_smr_scenario(base);
  ASSERT_TRUE(ref.clean) << runtime::run_outcome_name(ref.outcome);
  ASSERT_TRUE(ref.all_committed);
  ASSERT_TRUE(ref.stores_agree);
  ASSERT_FALSE(ref.store.empty());
  EXPECT_EQ(ref.run_stats.ingest.staged, 0u);

  for (Backend backend : {Backend::kThreads, Backend::kTcp}) {
    for (bool staged : {false, true}) {
      SCOPED_TRACE(std::string(runtime::backend_name(backend)) +
                   (staged ? " staged" : " sequential"));
      SmrScenarioConfig cfg = base;
      cfg.substrate = backend;
      cfg.staged_ingest = staged;

      const SmrScenarioResult r = run_smr_scenario(cfg);
      EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
      EXPECT_TRUE(r.all_committed);
      EXPECT_TRUE(r.stores_agree);
      EXPECT_EQ(r.store, ref.store);
      EXPECT_EQ(r.run_stats.ingest.staged, staged ? 1u : 0u);
      if (!staged) {
        // The sequential path must never report staged activity.
        EXPECT_EQ(r.run_stats.ingest.batches, 0u);
        EXPECT_EQ(r.run_stats.ingest.staged_sends, 0u);
      }
    }
  }
}

// -------------------------------------------------- TCP link-fault overlap

// The scenario runner's TCP path composes with link faults: random frame
// kills are absorbed by the resilient channels below the protocol, so the
// paper's properties still hold and the link stats expose the recovery.
TEST(SubstrateEquivalence, TcpLinkFaultsAbsorbedBelowProtocol) {
  BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 21;
  cfg.substrate = Backend::kTcp;
  LinkFaultSpec kill;
  kill.kill_prob = 0.05;
  kill.max_random_faults = 6;
  kill.kill_at_attempts = {1};  // every link dies at least once
  cfg.link_faults = {kill};

  const BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.clean) << runtime::run_outcome_name(r.outcome);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.vector_validity);
  EXPECT_GT(r.run_stats.link.kills_injected, 0u);
  EXPECT_GT(r.run_stats.link.reconnects, 0u);
}

}  // namespace
}  // namespace modubft::faults
