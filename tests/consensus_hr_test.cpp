// Tests for the Hurfin–Raynal ◇S consensus protocol (paper Figure 2).
#include <gtest/gtest.h>

#include "consensus/hurfin_raynal.hpp"
#include "faults/scenario.hpp"

namespace modubft {
namespace {

using faults::CrashProtocol;
using faults::CrashScenarioConfig;
using faults::CrashScenarioResult;
using faults::run_crash_scenario;

CrashScenarioConfig base(std::uint32_t n, std::uint64_t seed) {
  CrashScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.protocol = CrashProtocol::kHurfinRaynal;
  return cfg;
}

TEST(HurfinRaynal, CoordinatorRule) {
  using consensus::HurfinRaynalActor;
  EXPECT_EQ(HurfinRaynalActor::coordinator_of(Round{1}, 5), (ProcessId{0}));
  EXPECT_EQ(HurfinRaynalActor::coordinator_of(Round{2}, 5), (ProcessId{1}));
  EXPECT_EQ(HurfinRaynalActor::coordinator_of(Round{5}, 5), (ProcessId{4}));
  EXPECT_EQ(HurfinRaynalActor::coordinator_of(Round{6}, 5), (ProcessId{0}));
}

TEST(HurfinRaynal, FailureFreeDecidesRoundOne) {
  CrashScenarioResult r = run_crash_scenario(base(5, 1));
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_EQ(r.max_decision_round.value, 1u);
  // Round 1 coordinator is p1, so its proposal wins.
  EXPECT_EQ(r.decisions.begin()->second.value, 1000u);
}

TEST(HurfinRaynal, CoordinatorCrashMovesToNextRound) {
  CrashScenarioConfig cfg = base(5, 2);
  cfg.crash_times = {SimTime{0}, std::nullopt, std::nullopt, std::nullopt,
                     std::nullopt};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_GE(r.max_decision_round.value, 2u);
}

TEST(HurfinRaynal, ToleratesMinorityCrashes) {
  CrashScenarioConfig cfg = base(5, 3);
  cfg.crash_times = {SimTime{0}, SimTime{50'000}, std::nullopt, std::nullopt,
                     std::nullopt};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(HurfinRaynal, MidRoundCoordinatorCrash) {
  // Crash the round-1 coordinator while its CURRENT votes are in flight:
  // some processes may decide in round 1 via relayed DECIDEs or move on.
  CrashScenarioConfig cfg = base(7, 4);
  cfg.crash_times.assign(7, std::nullopt);
  cfg.crash_times[0] = SimTime{350};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(HurfinRaynal, SurvivesFalseSuspicions) {
  CrashScenarioConfig cfg = base(5, 5);
  cfg.oracle.stabilization_time = 400'000;
  cfg.oracle.false_suspicion_prob = 0.3;
  cfg.oracle.mistake_window = 20'000;
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(HurfinRaynal, TurbulentNetworkStillTerminates) {
  CrashScenarioConfig cfg = base(5, 6);
  cfg.latency = sim::turbulent_until(300'000);
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
}

TEST(HurfinRaynal, ThreeProcessesOneCrash) {
  CrashScenarioConfig cfg = base(3, 7);
  cfg.crash_times = {std::nullopt, SimTime{0}, std::nullopt};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
}

TEST(HurfinRaynal, LateCrashAfterDecisionHarmless) {
  CrashScenarioConfig cfg = base(5, 8);
  cfg.crash_times.assign(5, std::nullopt);
  cfg.crash_times[4] = SimTime{30'000'000};  // long after any decision
  CrashScenarioResult r = run_crash_scenario(cfg);
  // p5 may decide before its scheduled crash; correctness holds for the
  // remaining correct processes either way.
  EXPECT_TRUE(r.agreement);
  for (std::uint32_t i : r.correct) EXPECT_TRUE(r.decisions.count(i));
}

// Property sweep: Agreement/Termination/Validity across group sizes, crash
// patterns and seeds.
struct SweepParam {
  std::uint32_t n;
  std::uint32_t crashes;
  std::uint64_t seed;
};

class HurfinRaynalSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(HurfinRaynalSweep, SafetyAndLiveness) {
  const SweepParam p = GetParam();
  CrashScenarioConfig cfg = base(p.n, p.seed);
  cfg.crash_times.assign(p.n, std::nullopt);
  // Crash the first `crashes` processes at staggered times (they include
  // the early coordinators — the adversarial choice).
  for (std::uint32_t i = 0; i < p.crashes; ++i) {
    cfg.crash_times[i] = SimTime{i * 40'000};
  }
  cfg.oracle.stabilization_time = 200'000;
  cfg.oracle.false_suspicion_prob = 0.1;
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination) << "n=" << p.n << " crashes=" << p.crashes
                             << " seed=" << p.seed;
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (std::uint32_t n : {3u, 4u, 5u, 7u, 9u}) {
    for (std::uint32_t crashes = 0; crashes <= (n - 1) / 2; ++crashes) {
      for (std::uint64_t seed : {11u, 12u, 13u}) {
        out.push_back({n, crashes, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Resilience, HurfinRaynalSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           const SweepParam& p = info.param;
                           return "n" + std::to_string(p.n) + "_c" +
                                  std::to_string(p.crashes) + "_s" +
                                  std::to_string(p.seed);
                         });

TEST(HurfinRaynal, DeterministicReplay) {
  CrashScenarioConfig cfg = base(5, 99);
  cfg.crash_times = {SimTime{10'000}, std::nullopt, std::nullopt,
                     std::nullopt, std::nullopt};
  CrashScenarioResult a = run_crash_scenario(cfg);
  CrashScenarioResult b = run_crash_scenario(cfg);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (auto& [i, d] : a.decisions) {
    EXPECT_EQ(d.value, b.decisions.at(i).value);
    EXPECT_EQ(d.time, b.decisions.at(i).time);
    EXPECT_EQ(d.round, b.decisions.at(i).round);
  }
}

}  // namespace
}  // namespace modubft
