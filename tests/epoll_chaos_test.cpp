// Chaos tests aimed squarely at the epoll receive loop (see
// docs/INGEST.md): one level-triggered epoll instance per node drives the
// listen socket and every inbound connection, so these scenarios stress
// exactly what thread-per-connection readers never faced —
//
//   * many concurrent inbound links multiplexed through one loop while
//     every link is being killed, truncated and corrupted below the
//     framing layer (reconnects churn the fd set mid-run);
//   * a slow reader whose kernel receive buffer fills, pushing the
//     senders through the partial-write / EPOLLOUT re-arm path;
//   * burst arrivals that must coalesce into multi-frame Actor::on_batch
//     dispatches (the transport half of the staged ingest pipeline).
//
// All of it must preserve the reliable-FIFO exactly-once contract, which
// the delivery audit checks seq by seq.  The file runs under TSan in the
// sanitizer pass (`tcp` label).
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/serial.hpp"
#include "faults/link_fault.hpp"
#include "transport/tcp_cluster.hpp"

namespace modubft::transport {
namespace {

/// Deterministic first-frame kill on every link plus random kills,
/// truncations, corruption and delays (the tcp_chaos_test recipe).
LinkFaultPlan chaos_plan(std::uint64_t seed, double kill_prob) {
  faults::LinkFaultSpec kills;
  kills.kill_at_attempts = {0};
  kills.kill_prob = kill_prob;

  faults::LinkFaultSpec noise;
  noise.truncate_prob = 0.02;
  noise.flip_prob = 0.02;
  noise.delay_prob = 0.05;
  noise.delay_mean_us = 200;

  return LinkFaultPlan({kills, noise}, seed);
}

void assert_fifo_exactly_once(const TcpCluster& cluster, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::vector<std::uint64_t> seqs =
          cluster.delivered_seqs(ProcessId{i}, ProcessId{j});
      for (std::size_t k = 0; k < seqs.size(); ++k) {
        ASSERT_EQ(seqs[k], k) << "link p" << i + 1 << "->p" << j + 1
                              << ": duplicate or out-of-order delivery";
      }
    }
  }
}

/// Sends `count` sequenced frames to `to`, then waits for one ack.
class Pinger final : public sim::Actor {
 public:
  Pinger(ProcessId to, int count, std::size_t pad)
      : to_(to), count_(count), pad_(pad) {}

  void on_start(sim::Context& ctx) override {
    for (int i = 0; i < count_; ++i) {
      Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      w.raw(Bytes(pad_, 0xcd));
      ctx.send(to_, std::move(w).take());
    }
  }
  void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
    ctx.stop();
  }

 private:
  ProcessId to_;
  int count_;
  std::size_t pad_;
};

// --------------------------------------------- many-to-one under chaos

// Three pingers firehose one checker concurrently: the checker's single
// epoll loop multiplexes three inbound links that are all being killed
// and corrupted, and every per-sender stream must still arrive complete,
// in order, exactly once.
TEST(EpollChaos, ManyToOneFifoPerSenderUnderLinkChaos) {
  constexpr std::uint32_t kN = 4;
  static constexpr int kCount = 250;

  class Checker final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId from,
                    const Bytes& payload) override {
      ASSERT_LT(from.value, 3u);
      Reader r(payload);
      ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(next_[from.value]))
          << "per-sender FIFO broken on p" << from.value + 1;
      if (++next_[from.value] == kCount) {
        ctx.send(from, Bytes{1});  // release that pinger
        if (++finished_ == 3) ctx.stop();
      }
    }

    int finished() const { return finished_; }

   private:
    int next_[3] = {0, 0, 0};
    int finished_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.seed = 41;
  cfg.budget = std::chrono::milliseconds(30'000);
  cfg.audit_deliveries = true;
  cfg.faults = chaos_plan(cfg.seed, 0.03);
  TcpCluster cluster(cfg);

  auto checker = std::make_unique<Checker>();
  Checker* view = checker.get();
  for (std::uint32_t i = 0; i < 3; ++i) {
    cluster.set_actor(ProcessId{i},
                      std::make_unique<Pinger>(ProcessId{3}, kCount,
                                               /*pad=*/i * 17 + 5));
  }
  cluster.set_actor(ProcessId{3}, std::move(checker));
  EXPECT_TRUE(cluster.run()) << "unstopped: " << cluster.unstopped().size();
  EXPECT_EQ(view->finished(), 3);

  const TcpLinkStats stats = cluster.link_stats();
  // The first-frame kill hit (at least) the three firehose links, so the
  // epoll loop saw its fd set churn while frames were in flight.
  EXPECT_GE(stats.kills_injected, 3u);
  EXPECT_GE(stats.reconnects, 3u);
  EXPECT_GE(stats.retransmits, 1u);
  assert_fifo_exactly_once(cluster, kN);
}

// ------------------------------------------------ slow-reader backpressure

// The checker sleeps per delivery while the pinger fires 64 KiB frames as
// fast as it can: the kernel buffers fill, sends go partial, and the
// sender's epoll loop must finish each frame through EPOLLOUT re-arms.
// Nothing may be dropped, reordered or duplicated — backpressure, not
// loss.
TEST(EpollChaos, SlowReaderBackpressureKeepsFifoExactlyOnce) {
  static constexpr int kCount = 120;
  static constexpr std::size_t kPad = 64 * 1024;

  class SlowChecker final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId from,
                    const Bytes& payload) override {
      if (from != ProcessId{0}) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Reader r(payload);
      ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(next_)) << "FIFO broken";
      ASSERT_EQ(r.remaining(), kPad);
      if (++next_ == kCount) {
        ctx.send(ProcessId{0}, Bytes{1});
        ctx.stop();
      }
    }

    int delivered() const { return next_; }

   private:
    int next_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 43;
  cfg.budget = std::chrono::milliseconds(30'000);
  cfg.audit_deliveries = true;
  TcpCluster cluster(cfg);

  auto checker = std::make_unique<SlowChecker>();
  SlowChecker* view = checker.get();
  cluster.set_actor(ProcessId{0},
                    std::make_unique<Pinger>(ProcessId{1}, kCount, kPad));
  cluster.set_actor(ProcessId{1}, std::move(checker));
  EXPECT_TRUE(cluster.run()) << "unstopped: " << cluster.unstopped().size();
  EXPECT_EQ(view->delivered(), kCount);

  // ~7.5 MiB crossed one link against a reader consuming ≤ 1 frame/ms.
  EXPECT_GE(cluster.bytes_sent(),
            static_cast<std::uint64_t>(kCount) * kPad);
  assert_fifo_exactly_once(cluster, cfg.n);
}

// ---------------------------------------------------- batch coalescing

// Frames that pile up while the actor is busy must be drained into one
// multi-frame on_batch dispatch (capped by max_batch) — the property the
// staged ingest prologue feeds on.  The receiver stalls inside its first
// dispatches, so later drains are guaranteed to find queued frames.
TEST(EpollChaos, BurstArrivalsCoalesceIntoBatchDispatches) {
  static constexpr int kCount = 300;

  class BatchObserver final : public sim::Actor {
   public:
    void on_batch(sim::Context& ctx,
                  std::vector<sim::Incoming>& batch) override {
      max_batch_ = std::max(max_batch_, batch.size());
      if (stalls_ > 0) {
        --stalls_;  // let the mailbox fill behind our back
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      for (sim::Incoming& m : batch) {
        Reader r(m.payload);
        ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(next_)) << "order";
        if (++next_ == kCount) {
          ctx.send(ProcessId{0}, Bytes{1});
          ctx.stop();
        }
      }
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {
      FAIL() << "cluster must dispatch through on_batch";
    }

    std::size_t max_batch() const { return max_batch_; }
    int delivered() const { return next_; }

   private:
    int next_ = 0;
    int stalls_ = 3;
    std::size_t max_batch_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 47;
  cfg.budget = std::chrono::milliseconds(20'000);
  cfg.max_batch = 64;
  TcpCluster cluster(cfg);

  auto observer = std::make_unique<BatchObserver>();
  BatchObserver* view = observer.get();
  cluster.set_actor(ProcessId{0},
                    std::make_unique<Pinger>(ProcessId{1}, kCount,
                                             /*pad=*/24));
  cluster.set_actor(ProcessId{1}, std::move(observer));
  EXPECT_TRUE(cluster.run()) << "unstopped: " << cluster.unstopped().size();

  EXPECT_EQ(view->delivered(), kCount);
  EXPECT_GE(view->max_batch(), 2u) << "no multi-frame batch ever formed";
  EXPECT_LE(view->max_batch(), cfg.max_batch);
}

// ------------------------------------------------------- signal storms

// A stream of SIGUSR1s installed WITHOUT SA_RESTART lands while the node
// loops sit in epoll_wait / accept / read / write, so those syscalls fail
// with EINTR mid-drain.  Every loop must treat EINTR as "retry", never as
// "link dead" or "backlog drained" — a dropped accept sweep or an
// abandoned read batch shows up as a missing or duplicated frame in the
// exactly-once audit.  Regression test for the accept/wake-drain EINTR
// handling in the epoll loop.
TEST(EpollChaos, SignalStormMidDrainKeepsFifoExactlyOnce) {
  constexpr std::uint32_t kN = 3;
  static constexpr int kCount = 200;

  class Checker final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId from,
                    const Bytes& payload) override {
      ASSERT_LT(from.value, 2u);
      Reader r(payload);
      ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(next_[from.value]))
          << "per-sender FIFO broken on p" << from.value + 1;
      if (++next_[from.value] == kCount) {
        ctx.send(from, Bytes{1});
        if (++finished_ == 2) ctx.stop();
      }
    }

    int finished() const { return finished_; }

   private:
    int next_[2] = {0, 0};
    int finished_ = 0;
  };

  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: syscalls must see EINTR
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  std::atomic<bool> storm_on{true};
  std::thread storm([&storm_on] {
    while (storm_on.load()) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.seed = 53;
  cfg.budget = std::chrono::milliseconds(30'000);
  cfg.audit_deliveries = true;
  // Link kills force reconnects, so the accept path runs under the storm
  // too — not just the steady-state read path.
  cfg.faults = chaos_plan(cfg.seed, 0.02);
  TcpCluster cluster(cfg);

  auto checker = std::make_unique<Checker>();
  Checker* view = checker.get();
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.set_actor(ProcessId{i},
                      std::make_unique<Pinger>(ProcessId{2}, kCount,
                                               /*pad=*/i * 11 + 9));
  }
  cluster.set_actor(ProcessId{2}, std::move(checker));
  const bool ran = cluster.run();

  storm_on.store(false);
  storm.join();
  ::sigaction(SIGUSR1, &old, nullptr);

  EXPECT_TRUE(ran) << "unstopped: " << cluster.unstopped().size();
  EXPECT_EQ(view->finished(), 2);
  EXPECT_GE(cluster.link_stats().reconnects, 2u);
  assert_fifo_exactly_once(cluster, kN);
}

}  // namespace
}  // namespace modubft::transport
