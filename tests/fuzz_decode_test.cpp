// Wire-decoder hardening under mutation fuzzing (adversary/fuzzer.hpp).
//
// The decode path (bft::decode_message / Reader) faces bytes a Byzantine
// peer fully controls.  These tests drive it two ways:
//
//  * a seeded mutation fuzz loop — every mutated frame must either decode
//    or raise SerialError through the typed try_decode_message outcome
//    (nothing else escapes, no crash, no out-of-bounds read — the
//    sanitizer pass runs this file under ASan/UBSan), and every frame that
//    DOES decode must re-encode byte-identically (one message, one byte
//    string: the canonicality that makes signatures over re-encoded
//    messages sound);
//
//  * handcrafted regressions, one per malformed-input class the fuzzer
//    discovered while the decoder was being hardened: truncation at every
//    byte, unknown kind tags, out-of-range booleans, non-canonical null
//    est entries, sequence/depth/signature/frame caps, trailing bytes.
//
// The last test closes the loop at the module layer: a mutated frame fed
// to SignatureModule::authenticate yields a verdict naming the channel
// sender — garbage on the wire is a detection, never an exception.
#include <gtest/gtest.h>

#include <vector>

#include "adversary/fuzzer.hpp"
#include "bft/checkpoint_cert.hpp"
#include "bft/message.hpp"
#include "bft/modules.hpp"
#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "crypto/hmac_signer.hpp"
#include "smr/checkpoint.hpp"
#include "smr/recovery.hpp"

namespace modubft {
namespace {

using adversary::MutationSpec;
using adversary::mutate_frame;

crypto::SignatureSystem test_keys() {
  return crypto::HmacScheme{}.make_system(4, 42);
}

/// A realistic signed CURRENT with a two-deep certificate (INIT members
/// plus a nested pruned certificate) — the shape real traffic has.
bft::SignedMessage sample_message(const crypto::SignatureSystem& keys) {
  auto sign = [&](bft::MessageCore core, bft::Certificate cert) {
    bft::SignedMessage m;
    m.core = std::move(core);
    m.cert = std::move(cert);
    m.sig = keys.signers[m.core.sender.value]->sign(
        bft::signing_bytes(m.core, m.cert));
    return m;
  };

  bft::Certificate inits;
  for (std::uint32_t i = 0; i < 3; ++i) {
    bft::MessageCore init;
    init.kind = bft::BftKind::kInit;
    init.sender = ProcessId{i};
    init.round = Round{0};
    init.init_value = 1000 + i;
    inits.add(sign(std::move(init), bft::Certificate{}));
  }

  bft::MessageCore current;
  current.kind = bft::BftKind::kCurrent;
  current.sender = ProcessId{0};
  current.round = Round{1};
  current.est = {1000, 1001, 1002, std::nullopt};
  return sign(std::move(current), std::move(inits));
}

// ---------------------------------------------------------------- fuzz loop

TEST(FuzzDecode, MutatedFramesNeverEscapeTypedOutcome) {
  const crypto::SignatureSystem keys = test_keys();
  const Bytes frame = bft::encode_message(sample_message(keys));

  const MutationSpec specs[] = {
      {.bitflip_prob = 1.0},
      {.truncate_prob = 1.0},
      {.splice_prob = 1.0},
      {.bitflip_prob = 0.5, .truncate_prob = 0.3, .splice_prob = 0.5},
  };

  std::size_t decoded = 0, rejected = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed);
    for (const MutationSpec& spec : specs) {
      const Bytes mutated = mutate_frame(frame, rng, spec);
      // Must not throw: every failure is a typed outcome.
      const bft::DecodeOutcome out = bft::try_decode_message(mutated);
      if (out) {
        ++decoded;
        // Canonicality: a frame that decodes re-encodes byte-identically.
        EXPECT_EQ(bft::encode_message(out.msg), mutated);
      } else {
        ++rejected;
        EXPECT_FALSE(out.error.empty());
      }
    }
  }
  // The loop exercised both paths (unmutated-equivalent flips are rare but
  // single-bit flips inside the sig bytes still decode fine).
  EXPECT_GT(decoded, 0u);
  EXPECT_GT(rejected, 0u);
}

// Zero-copy egress property (docs/INGEST.md): encoding through an
// appending Writer over a *reused* pooled buffer is byte-identical to the
// one-shot encoder, no matter what the buffer previously held.  2000
// seeded mutations drive decodable frames of varying shape through the
// acquire → encode → release cycle; every surviving frame must re-encode
// to exactly the bytes that decoded, behind the same slot envelope the
// staged flush writes.
TEST(FuzzDecode, PooledEncodeBuffersRoundTripByteIdentically) {
  const crypto::SignatureSystem keys = test_keys();
  const Bytes frame = bft::encode_message(sample_message(keys));

  BufferPool pool;
  MutationSpec spec;
  spec.bitflip_prob = 0.6;
  spec.truncate_prob = 0.1;
  spec.splice_prob = 0.4;

  std::size_t reencoded = 0;
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    Rng rng(seed);
    const Bytes mutated = mutate_frame(frame, rng, spec);
    const bft::DecodeOutcome out = bft::try_decode_message(mutated);
    if (!out) continue;
    ++reencoded;

    // The staged-flush path: pooled buffer, envelope, appending encoder.
    Writer w(pool.acquire());
    w.u64(seed);  // stands in for the slot tag
    bft::encode_message(out.msg, w);
    const Bytes staged = std::move(w).take();

    // The pre-staging path: one-shot encode pasted behind the envelope.
    Writer ref;
    ref.u64(seed);
    ref.raw(mutated);
    EXPECT_EQ(staged, std::move(ref).take()) << "seed " << seed;

    pool.release(Bytes(staged));  // next acquire reuses this capacity
  }
  // The loop actually exercised reuse, not just fresh allocations.
  EXPECT_GT(reencoded, 1u);
  EXPECT_GT(pool.stats().reuses, 0u);
}

TEST(FuzzDecode, WireMutatorStreamIsDeterministic) {
  const crypto::SignatureSystem keys = test_keys();
  const Bytes frame = bft::encode_message(sample_message(keys));
  MutationSpec spec;
  spec.bitflip_prob = 0.5;
  spec.splice_prob = 0.5;

  Rng a(7), b(7), c(8);
  std::vector<Bytes> xs, ys, zs;
  for (int i = 0; i < 32; ++i) {
    xs.push_back(mutate_frame(frame, a, spec));
    ys.push_back(mutate_frame(frame, b, spec));
    zs.push_back(mutate_frame(frame, c, spec));
  }
  EXPECT_EQ(xs, ys);  // same seed, same byte stream — replayable cells
  EXPECT_NE(xs, zs);  // different seed, different stream
}

// ------------------------------------------------- handcrafted regressions

TEST(FuzzDecodeRegression, EveryTruncationRejected) {
  const Bytes frame = bft::encode_message(sample_message(test_keys()));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const Bytes cut(frame.begin(), frame.begin() + len);
    EXPECT_FALSE(bft::try_decode_message(cut)) << "prefix length " << len;
  }
}

TEST(FuzzDecodeRegression, TrailingByteRejected) {
  Bytes frame = bft::encode_message(sample_message(test_keys()));
  frame.push_back(0);
  const bft::DecodeOutcome out = bft::try_decode_message(frame);
  ASSERT_FALSE(out);
  EXPECT_NE(out.error.find("trailing"), std::string::npos);
}

// Frame layout: [core_len:u32][kind:u8][sender:u32][round:u32][init:u64]
// [est_len:u32][(flag:u8, value:u64) * est_len] ... — offsets below index
// straight into the sample message's encoding.
constexpr std::size_t kKindOffset = 4;
constexpr std::size_t kFirstEstFlagOffset = 4 + 1 + 4 + 4 + 8 + 4;

TEST(FuzzDecodeRegression, UnknownKindRejected) {
  const Bytes frame = bft::encode_message(sample_message(test_keys()));
  for (std::uint8_t kind : {0, 5, 6, 255}) {
    Bytes bad = frame;
    bad[kKindOffset] = kind;
    const bft::DecodeOutcome out = bft::try_decode_message(bad);
    ASSERT_FALSE(out) << "kind " << int(kind);
    EXPECT_NE(out.error.find("kind"), std::string::npos);
  }
}

TEST(FuzzDecodeRegression, BooleanOutOfRangeRejected) {
  const Bytes frame = bft::encode_message(sample_message(test_keys()));
  Bytes bad = frame;
  bad[kFirstEstFlagOffset] = 2;  // presence flag must be 0 or 1
  const bft::DecodeOutcome out = bft::try_decode_message(bad);
  ASSERT_FALSE(out);
  EXPECT_NE(out.error.find("boolean"), std::string::npos);
}

TEST(FuzzDecodeRegression, NonCanonicalNullEntryRejected) {
  // The sample est is {1000, 1001, 1002, null}: entry 3's flag is 0 and
  // its value slot must be all-zero.  A nonzero byte there would create a
  // second byte string decoding to the same message — covert variation.
  const Bytes frame = bft::encode_message(sample_message(test_keys()));
  const std::size_t null_value_offset = kFirstEstFlagOffset + 3 * 9 + 1;
  ASSERT_EQ(frame[null_value_offset - 1], 0);  // the flag byte
  Bytes bad = frame;
  bad[null_value_offset] = 7;
  const bft::DecodeOutcome out = bft::try_decode_message(bad);
  ASSERT_FALSE(out);
  EXPECT_NE(out.error.find("non-canonical"), std::string::npos);
}

TEST(FuzzDecodeRegression, VectorLengthCapEnforced) {
  const crypto::SignatureSystem keys = test_keys();
  bft::SignedMessage msg = sample_message(keys);
  msg.core.est.assign(10, std::optional<consensus::Value>(1));
  const Bytes frame = bft::encode_message(msg);
  bft::DecodeLimits limits;
  limits.max_vector = 5;
  EXPECT_FALSE(bft::try_decode_message(frame, limits));
  EXPECT_TRUE(bft::try_decode_message(frame));  // fine under the default cap
}

TEST(FuzzDecodeRegression, MemberCountCapEnforced) {
  const crypto::SignatureSystem keys = test_keys();
  bft::SignedMessage msg = sample_message(keys);
  bft::DecodeLimits limits;
  limits.max_members = 2;  // the sample cert has 3 members
  EXPECT_FALSE(bft::try_decode_message(bft::encode_message(msg), limits));
}

TEST(FuzzDecodeRegression, DepthBombRejected) {
  bft::SignedMessage msg;
  msg.core.kind = bft::BftKind::kNext;
  msg.core.sender = ProcessId{0};
  msg.core.round = Round{1};
  for (int depth = 0; depth < 40; ++depth) {
    bft::SignedMessage outer;
    outer.core = msg.core;
    outer.cert = bft::Certificate::of({msg});
    msg = std::move(outer);
  }
  const bft::DecodeOutcome out =
      bft::try_decode_message(bft::encode_message(msg));
  ASSERT_FALSE(out);
  EXPECT_NE(out.error.find("deep"), std::string::npos);
}

TEST(FuzzDecodeRegression, OversizedSignatureRejected) {
  bft::SignedMessage msg = sample_message(test_keys());
  msg.sig.assign(2000, 0xab);  // default max_sig_bytes = 1024
  const bft::DecodeOutcome out =
      bft::try_decode_message(bft::encode_message(msg));
  ASSERT_FALSE(out);
  EXPECT_NE(out.error.find("signature"), std::string::npos);
}

TEST(FuzzDecodeRegression, FrameSizeCapCheckedBeforeParsing) {
  Bytes huge(1 << 12, 0xff);
  bft::DecodeLimits limits;
  limits.max_frame_bytes = 1 << 10;
  const bft::DecodeOutcome out = bft::try_decode_message(huge, limits);
  ASSERT_FALSE(out);
  EXPECT_NE(out.error.find("size cap"), std::string::npos);
}

// ------------------------------------------------------ module-layer close

TEST(FuzzDecode, SignatureModuleFlagsSenderOnMutatedFrames) {
  const crypto::SignatureSystem keys = test_keys();
  const bft::SignatureModule module(keys.signers[3].get(), keys.verifier);
  const Bytes frame = bft::encode_message(sample_message(keys));

  Rng rng(99);
  MutationSpec spec;
  spec.bitflip_prob = 0.6;
  spec.truncate_prob = 0.2;
  spec.splice_prob = 0.6;

  std::size_t flagged = 0;
  for (int i = 0; i < 300; ++i) {
    const Bytes mutated = mutate_frame(frame, rng, spec);
    const bft::SignatureModule::Inbound in =
        module.authenticate(ProcessId{0}, mutated);
    if (in.ok) continue;  // mutation missed every covered byte
    ++flagged;
    EXPECT_FALSE(in.verdict.valid);
    // Malformed bytes or a broken signature — always a typed class.
    EXPECT_TRUE(in.verdict.kind == bft::FaultKind::kMalformed ||
                in.verdict.kind == bft::FaultKind::kBadSignature ||
                in.verdict.kind == bft::FaultKind::kIdentityMismatch)
        << bft::fault_kind_name(in.verdict.kind);
  }
  EXPECT_GT(flagged, 0u);
}

// ------------------------------------------- STATE_RESP (recovery) frames

/// A realistic certified STATE_RESP body: snapshot, quorum certificate,
/// two suffix slots — every field class the decoder parses.
Bytes sample_state_resp_body(const crypto::SignatureSystem& keys) {
  smr::Snapshot snap;
  snap.slot = 8;
  snap.applied = 14;
  snap.data = {{"alpha", "1"}, {"beta", "2"}};
  for (std::uint64_t id = 1; id <= 14; ++id) snap.committed_ids.insert(id);

  smr::StateResp resp;
  resp.ckpt_slot = 8;
  resp.snapshot = smr::encode_snapshot(snap);
  const crypto::Digest digest = smr::snapshot_digest(resp.snapshot);
  const Bytes preimage = bft::checkpoint_signing_bytes(8, digest);
  for (std::uint32_t i = 0; i < 3; ++i) {
    resp.cert_sigs.emplace_back(i, keys.signers[i]->sign(preimage));
  }
  resp.suffix = {{9, {15, 16}}, {10, {}}};
  const Bytes frame = smr::encode_control_state_resp(resp);
  return Bytes(frame.begin() + 9, frame.end());
}

TEST(FuzzStateResp, EveryTruncationRejectedWithoutUB) {
  const Bytes body = sample_state_resp_body(test_keys());
  for (std::size_t len = 0; len < body.size(); ++len) {
    const Bytes prefix(body.begin(), body.begin() + len);
    // The canonical encoding is exact: no strict prefix is a valid body.
    EXPECT_FALSE(
        smr::try_decode_state_resp(prefix, smr::StateLimits{}).has_value())
        << "prefix of length " << len << " decoded";
  }
}

TEST(FuzzStateResp, MutatedBodiesNeverCorruptInstalledState) {
  const crypto::SignatureSystem keys = test_keys();
  const Bytes body = sample_state_resp_body(keys);
  smr::RecoveryConfig rc;
  rc.n = 4;
  rc.cert_quorum = 3;
  rc.suffix_quorum = 2;
  rc.verifier = keys.verifier.get();

  const MutationSpec specs[] = {
      {.bitflip_prob = 1.0},
      {.truncate_prob = 1.0},
      {.splice_prob = 1.0},
  };
  // The certificate-covered bytes: the only snapshot a module may expose.
  const Bytes original_snapshot = [&] {
    Reader r(body);
    return smr::decode_state_resp(r, smr::StateLimits{}).snapshot;
  }();  // encoded Snapshot bytes (StateResp::snapshot)

  std::size_t decoded = 0, rejected = 0, verified = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(seed);
    for (const MutationSpec& spec : specs) {
      const Bytes mutated = mutate_frame(body, rng, spec);
      // Decode must never throw or read out of bounds (the sanitizer pass
      // runs this loop under ASan/UBSan).
      const auto out = smr::try_decode_state_resp(mutated, smr::StateLimits{});
      if (!out) {
        ++rejected;
        continue;
      }
      ++decoded;
      // The stronger property: whatever decodes, a fresh RecoveryModule
      // only ever exposes a snapshot whose bytes the certificate covers —
      // i.e. the original ones.  Mutations inside the (opaque) snapshot or
      // certificate fields decode fine but must fail verification.
      smr::RecoveryModule mod{rc};
      mod.ingest(ProcessId{1}, mutated);
      if (const auto best = mod.best_snapshot(0)) {
        ++verified;
        EXPECT_EQ(best->encoded, original_snapshot);
      }
    }
  }
  EXPECT_GT(decoded, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(verified, 0u);  // some mutations miss every covered byte
}

TEST(FuzzStateResp, DigestFlipInSnapshotRejected) {
  const crypto::SignatureSystem keys = test_keys();
  smr::RecoveryConfig rc;
  rc.n = 4;
  rc.cert_quorum = 3;
  rc.suffix_quorum = 2;
  rc.verifier = keys.verifier.get();

  Bytes body = sample_state_resp_body(keys);
  Reader r(body);
  smr::StateResp resp = smr::decode_state_resp(r, smr::StateLimits{});
  // Flip one bit in every snapshot byte position in turn: each flip moves
  // the digest outside the certificate, so each must be rejected.
  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < resp.snapshot.size(); pos += 7) {
    smr::StateResp bad = resp;
    bad.snapshot[pos] ^= 0x80;
    const Bytes frame = smr::encode_control_state_resp(bad);
    smr::RecoveryModule mod{rc};
    if (!mod.ingest(ProcessId{1}, Bytes(frame.begin() + 9, frame.end()))) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, (resp.snapshot.size() + 6) / 7);
}

}  // namespace
}  // namespace modubft
