// Fault-tolerant client/service layer (ISSUE 9), deterministic simulator:
//
//  * control-frame codec round trips for the REQUEST/REPLY/BUSY/RELAY/
//    FETCH/CLIENT_DONE family and the client-command id packing;
//  * snapshot client-table section: round trip, and byte-identity with
//    the pre-client encoding when no client has ever been admitted;
//  * end-to-end closed-loop runs on both backends with the exactly-once
//    audit (every accepted reply matches the committed log);
//  * duplicate suppression: aggressive client retries produce replica-side
//    duplicate hits and reply replays, never a double execution;
//  * overload protection: a tiny admission bound sheds with BUSY and the
//    queue peak respects the bound, while every operation still settles;
//  * failover: a client whose contact replica dies rotates to a live one;
//  * inertness: a run without clients reports all-zero client counters.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "adversary/client_campaign.hpp"
#include "common/serial.hpp"
#include "faults/scenario.hpp"
#include "smr/checkpoint.hpp"

namespace modubft {
namespace {

// ----------------------------------------------------------------- codec

TEST(ClientWire, CommandIdPacksClientAndSeq) {
  const std::uint64_t id = smr::make_client_cmd_id(7, 123456);
  EXPECT_EQ(smr::client_of_cmd(id), 7u);
  EXPECT_EQ(smr::seq_of_cmd(id), 123456u);
  // Distinct clients and seqs never collide.
  EXPECT_NE(smr::make_client_cmd_id(7, 8), smr::make_client_cmd_id(8, 7));
}

TEST(ClientWire, RequestRoundTrip) {
  smr::ClientRequest req;
  req.seq = 42;
  req.op = smr::Command::Op::kPut;
  req.key = "k3";
  req.value = "v3_1";
  req.sig = Bytes{0xAA, 0xBB, 0xCC};
  const Bytes frame = smr::encode_control_request(req);
  ASSERT_GE(frame.size(), 9u);
  EXPECT_EQ(static_cast<smr::ControlKind>(frame[8]),
            smr::ControlKind::kRequest);
  Reader r(frame);
  r.u64();
  r.u8();
  const smr::ClientRequest back = smr::decode_client_request(r);
  EXPECT_EQ(back.seq, req.seq);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.key, req.key);
  EXPECT_EQ(back.value, req.value);
  EXPECT_EQ(back.sig, req.sig);
}

TEST(ClientWire, SigningPreimagesAreDomainSeparated) {
  // The three client signature kinds must be mutually unforgeable: the
  // same (client, number) pair yields distinct preimages per kind.
  const Bytes done = smr::client_done_signing_bytes(6, 8);
  const Bytes bound = smr::seq_bound_signing_bytes(6, 8);
  EXPECT_NE(done, bound);
  const Bytes req =
      smr::client_request_signing_bytes(6, 8, smr::Command::Op::kPut, "", "");
  EXPECT_NE(req, done);
  EXPECT_NE(req, bound);
  // And the request preimage binds every command field.
  EXPECT_NE(req, smr::client_request_signing_bytes(
                     6, 8, smr::Command::Op::kPut, "k", ""));
  EXPECT_NE(req, smr::client_request_signing_bytes(
                     6, 8, smr::Command::Op::kPut, "", "v"));
  EXPECT_NE(req, smr::client_request_signing_bytes(
                     6, 9, smr::Command::Op::kPut, "", ""));
  EXPECT_NE(req, smr::client_request_signing_bytes(
                     7, 8, smr::Command::Op::kPut, "", ""));
}

TEST(ClientWire, ReplyRoundTrip) {
  smr::ClientReply reply;
  reply.seq = 5;
  reply.cmd_id = smr::make_client_cmd_id(4, 5);
  reply.slot = 17;
  reply.op = smr::Command::Op::kDel;
  reply.key = "gone";
  const Bytes frame = smr::encode_control_reply(reply);
  EXPECT_EQ(static_cast<smr::ControlKind>(frame[8]), smr::ControlKind::kReply);
  Reader r(frame);
  r.u64();
  r.u8();
  const smr::ClientReply back = smr::decode_client_reply(r);
  EXPECT_EQ(back.seq, reply.seq);
  EXPECT_EQ(back.cmd_id, reply.cmd_id);
  EXPECT_EQ(back.slot, reply.slot);
  EXPECT_EQ(back.op, reply.op);
  EXPECT_EQ(back.key, reply.key);
  EXPECT_EQ(back.value, reply.value);
}

TEST(ClientWire, BusyRelayFetchDoneRoundTrips) {
  const Bytes busy = smr::encode_control_busy({9, 64});
  {
    Reader r(busy);
    r.u64();
    ASSERT_EQ(static_cast<smr::ControlKind>(r.u8()), smr::ControlKind::kBusy);
    const smr::BusyFrame back = smr::decode_busy(r);
    EXPECT_EQ(back.seq, 9u);
    EXPECT_EQ(back.queue_depth, 64u);
  }
  smr::CmdRelay relay;
  relay.client = 6;
  relay.seq = 3;
  relay.op = smr::Command::Op::kPut;
  relay.key = "k";
  relay.value = "v";
  relay.sig = Bytes{0x01, 0x02};
  const Bytes rel = smr::encode_control_relay(relay);
  {
    Reader r(rel);
    r.u64();
    ASSERT_EQ(static_cast<smr::ControlKind>(r.u8()),
              smr::ControlKind::kCmdRelay);
    const smr::CmdRelay back = smr::decode_cmd_relay(r);
    EXPECT_EQ(back.client, relay.client);
    EXPECT_EQ(back.seq, relay.seq);
    EXPECT_EQ(back.key, relay.key);
    EXPECT_EQ(back.sig, relay.sig);
  }
  const std::vector<std::uint64_t> ids = {smr::make_client_cmd_id(4, 1),
                                          smr::make_client_cmd_id(5, 2)};
  const Bytes fetch = smr::encode_control_fetch(ids);
  {
    Reader r(fetch);
    r.u64();
    ASSERT_EQ(static_cast<smr::ControlKind>(r.u8()),
              smr::ControlKind::kCmdFetch);
    EXPECT_EQ(smr::decode_cmd_fetch(r, smr::StateLimits{}), ids);
  }
  smr::ClientDone cd;
  cd.client = 6;
  cd.final_seq = 8;
  cd.sig = Bytes{0x05};
  const Bytes done = smr::encode_control_client_done(cd);
  {
    Reader r(done);
    r.u64();
    ASSERT_EQ(static_cast<smr::ControlKind>(r.u8()),
              smr::ControlKind::kClientDone);
    const smr::ClientDone back = smr::decode_client_done(r);
    EXPECT_EQ(back.client, 6u);
    EXPECT_EQ(back.final_seq, 8u);
    EXPECT_EQ(back.sig, cd.sig);
  }
  smr::SeqBound sb;
  sb.client = 7;
  sb.bound = 12;
  sb.sig = Bytes{0x09, 0x0A};
  const Bytes bound = smr::encode_control_seq_bound(sb);
  {
    Reader r(bound);
    r.u64();
    ASSERT_EQ(static_cast<smr::ControlKind>(r.u8()),
              smr::ControlKind::kSeqBound);
    const smr::SeqBound back = smr::decode_seq_bound(r);
    EXPECT_EQ(back.client, 7u);
    EXPECT_EQ(back.bound, 12u);
    EXPECT_EQ(back.sig, sb.sig);
  }
}

TEST(ClientWire, SnapshotClientSectionRoundTripsAndEmptyIsByteIdentical) {
  smr::Snapshot snap;
  snap.slot = 8;
  snap.applied = 12;
  snap.data = {{"a", "1"}};
  for (std::uint64_t id = 1; id <= 12; ++id) snap.committed_ids.insert(id);

  // No client ever admitted: the encoding must be byte-identical to the
  // pre-client format (no trailing section at all).
  const Bytes bare = smr::encode_snapshot(snap);
  const smr::Snapshot bare_back = smr::decode_snapshot(bare, {});
  EXPECT_TRUE(bare_back.clients.empty());

  smr::Snapshot with = snap;
  with.clients[4][smr::make_client_cmd_id(4, 1)] = Bytes{0x01, 0x02};
  with.clients[5][smr::make_client_cmd_id(5, 1)] = Bytes{0x03};
  with.clients[5][smr::make_client_cmd_id(5, 2)] = Bytes{};
  const Bytes full = smr::encode_snapshot(with);
  EXPECT_GT(full.size(), bare.size());
  ASSERT_EQ(Bytes(full.begin(), full.begin() + bare.size()), bare)
      << "client section must be a pure suffix of the pre-client encoding";
  const smr::Snapshot back = smr::decode_snapshot(full, {});
  EXPECT_EQ(back.clients, with.clients);
}

// ------------------------------------------------------------ end to end

faults::SmrScenarioConfig client_scenario(smr::Backend backend,
                                          std::uint64_t seed) {
  faults::SmrScenarioConfig sc;
  sc.n = 4;
  sc.f = 1;
  sc.seed = seed;
  sc.backend = backend;
  sc.window = 4;
  sc.batch = 2;
  sc.checkpoint_interval = 4;
  sc.clients = faults::ClientLoadConfig{};  // 2 clients × 8 ops, closed loop
  // Closed-loop arrival commits thin batches and pipelined peers racing
  // for the same ids burn no-op slots: budget two slots per op plus
  // drain margin (see adversary/client_campaign.cpp).
  sc.slots = 2 * 16 + 2 * sc.window;
  return sc;
}

TEST(ClientService, ClosedLoopByzantineHappyPath) {
  const faults::SmrScenarioResult r =
      faults::run_smr_scenario(client_scenario(smr::Backend::kByzantine, 3));
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.stores_agree);
  EXPECT_EQ(r.clients_done.size(), 2u);
  EXPECT_EQ(r.run_stats.client.accepted, 16u);
  EXPECT_EQ(r.commit_log.size(), 16u);
  EXPECT_EQ(r.commit_log_duplicates, 0u);
  EXPECT_TRUE(adversary::audit_client_replies(r).empty());
  EXPECT_GT(r.run_stats.client.p50_us, 0u);
  EXPECT_GE(r.run_stats.client.p999_us, r.run_stats.client.p50_us);
  // Byzantine backend defaults to authenticated mode: honest traffic
  // never trips the signature check, and each client's CLIENT_DONE is
  // recorded as its standing seq bound on every correct replica.
  EXPECT_EQ(r.run_stats.client.auth_rejects, 0u);
  EXPECT_GT(r.run_stats.client.bounds_recorded, 0u);
}

TEST(ClientService, CrashBackendMajorityCertification) {
  const faults::SmrScenarioResult r = faults::run_smr_scenario(
      client_scenario(smr::Backend::kCrashHurfinRaynal, 5));
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_EQ(r.clients_done.size(), 2u);
  EXPECT_EQ(r.run_stats.client.accepted, 16u);
  EXPECT_TRUE(adversary::audit_client_replies(r).empty());
}

TEST(ClientService, AggressiveRetriesAreSuppressedNotReExecuted) {
  faults::SmrScenarioConfig sc = client_scenario(smr::Backend::kByzantine, 7);
  // Retry far faster than the commit latency: the contact sees the same
  // seq again while the command is in flight (duplicate hit) and again
  // after it committed (cached-reply replay).
  sc.clients->retry_base = 300;
  const faults::SmrScenarioResult r = faults::run_smr_scenario(sc);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.clients_done.size(), 2u);
  EXPECT_GT(r.run_stats.client.retries, 0u);
  EXPECT_GT(r.run_stats.client.duplicates + r.run_stats.client.replays, 0u);
  // The dedup core: 16 operations were submitted (plus every retry), and
  // exactly 16 commands were ever applied.
  EXPECT_EQ(r.commit_log.size(), 16u);
  EXPECT_EQ(r.commit_log_duplicates, 0u);
  EXPECT_EQ(r.run_stats.client.accepted, 16u);
  EXPECT_TRUE(adversary::audit_client_replies(r).empty());
}

TEST(ClientService, OverloadShedsWithBusyAndBoundsQueue) {
  faults::SmrScenarioConfig sc = client_scenario(smr::Backend::kByzantine, 9);
  sc.clients->open_loop = true;
  sc.clients->interval = 200;
  sc.clients->max_outstanding = 8;
  sc.clients->ops_per_client = 12;
  sc.clients->max_pending = 2;  // tiny admission bound: shedding guaranteed
  sc.slots = 2 * 24 + 2 * sc.window;
  const faults::SmrScenarioResult r = faults::run_smr_scenario(sc);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.clients_done.size(), 2u);
  EXPECT_GT(r.run_stats.client.sheds, 0u);
  EXPECT_GT(r.run_stats.client.busy, 0u);
  // BUSY sheds are unproductive rounds: they count toward failover, so a
  // loaded contact gets rotated away from instead of pinning the client.
  EXPECT_GT(r.run_stats.client.failovers, 0u);
  // The pending set holds local admissions plus peer relays, so the
  // enforced bound is n × max_pending (each relay origin is capped at
  // max_pending), plus slack of up to one frontier batch for bodies a
  // parked commit is actively fetching — those bypass the caps because
  // shedding them would starve the exact command progress depends on.
  EXPECT_LE(r.run_stats.client.queue_peak,
            static_cast<std::uint64_t>(sc.n) * 2u + sc.batch);
  // Overload degrades latency, never correctness.
  EXPECT_EQ(r.run_stats.client.accepted, 24u);
  EXPECT_EQ(r.commit_log_duplicates, 0u);
  EXPECT_TRUE(adversary::audit_client_replies(r).empty());
}

TEST(ClientService, FailoverWhenContactDies) {
  faults::SmrScenarioConfig sc = client_scenario(smr::Backend::kByzantine, 11);
  // Client 0's contact is replica 0; kill it early with no restart.  The
  // client must rotate to a live contact to finish its script.
  sc.crashes.push_back({ProcessId{0}, 1'000, std::nullopt});
  const faults::SmrScenarioResult r = faults::run_smr_scenario(sc);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.clients_done.size(), 2u);
  EXPECT_GT(r.run_stats.client.failovers, 0u);
  EXPECT_EQ(r.run_stats.client.accepted, 16u);
  EXPECT_TRUE(adversary::audit_client_replies(r).empty());
}

TEST(ClientService, SameSeedIsBitIdentical) {
  const faults::SmrScenarioConfig sc =
      client_scenario(smr::Backend::kByzantine, 13);
  const faults::SmrScenarioResult a = faults::run_smr_scenario(sc);
  const faults::SmrScenarioResult b = faults::run_smr_scenario(sc);
  EXPECT_TRUE(a.clean);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.commit_log, b.commit_log);
  EXPECT_EQ(a.run_stats.client.accepted, b.run_stats.client.accepted);
  EXPECT_EQ(a.run_stats.client.retries, b.run_stats.client.retries);
  EXPECT_EQ(a.run_stats.client.p99_us, b.run_stats.client.p99_us);
}

TEST(ClientService, DisabledClientsLeaveAllCountersZero) {
  // Pre-client configuration: preloaded workload, no client actors.  The
  // whole client service must be inert — zero counters, empty client maps.
  faults::SmrScenarioConfig sc;
  sc.n = 4;
  sc.f = 1;
  sc.seed = 15;
  sc.backend = smr::Backend::kByzantine;
  sc.window = 4;
  sc.batch = 2;
  sc.checkpoint_interval = 4;
  sc.workload = faults::sample_workload();
  sc.slots = 5;
  const faults::SmrScenarioResult r = faults::run_smr_scenario(sc);
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_EQ(r.run_stats.client.clients, 0u);
  EXPECT_EQ(r.run_stats.client.requests, 0u);
  EXPECT_EQ(r.run_stats.client.replies_sent, 0u);
  EXPECT_EQ(r.run_stats.client.admitted, 0u);
  EXPECT_EQ(r.run_stats.client.accepted, 0u);
  EXPECT_TRUE(r.commit_log.empty());
  EXPECT_TRUE(r.client_stats.empty());
  EXPECT_TRUE(r.clients_done.empty());
}

}  // namespace
}  // namespace modubft
