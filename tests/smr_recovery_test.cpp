// Certified checkpoints, log compaction and crash-recovery state transfer
// (ISSUE 6), exercised on the deterministic simulator:
//
//  * snapshot codec canonicality (byte-identical encodings, stable digest);
//  * checkpoint certificates: quorum discipline, distinct-signer rule,
//    digest binding, the vacuous genesis certificate;
//  * RecoveryModule: accepts a certified response, rejects forged
//    certificates, digest-flipped snapshots and spliced certificates;
//  * end-to-end kill/restart recovery on both SMR backends;
//  * determinism: same seed + same crash schedule ⇒ bit-identical stores;
//  * compaction: the committed-slot log never retains more than C+W slots.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "adversary/recovery_campaign.hpp"
#include "bft/checkpoint_cert.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/scenario.hpp"
#include "smr/checkpoint.hpp"
#include "smr/recovery.hpp"

namespace modubft {
namespace {

crypto::SignatureSystem test_keys() {
  return crypto::HmacScheme{}.make_system(4, 99);
}

smr::Snapshot sample_snapshot() {
  smr::Snapshot snap;
  snap.slot = 8;
  snap.applied = 14;
  snap.data = {{"alpha", "1"}, {"beta", "2"}, {"gamma", ""}};
  for (std::uint64_t id = 1; id <= 14; ++id) snap.committed_ids.insert(id);
  return snap;
}

/// A fully certified STATE_RESP body (bytes after the kind octet) signed
/// by `signers` processes.
Bytes certified_resp_body(const crypto::SignatureSystem& keys,
                          std::uint32_t signers,
                          std::vector<smr::SuffixEntry> suffix = {}) {
  smr::StateResp resp;
  const smr::Snapshot snap = sample_snapshot();
  resp.ckpt_slot = snap.slot;
  resp.snapshot = smr::encode_snapshot(snap);
  const crypto::Digest digest = smr::snapshot_digest(resp.snapshot);
  const Bytes preimage = bft::checkpoint_signing_bytes(snap.slot, digest);
  for (std::uint32_t i = 0; i < signers; ++i) {
    resp.cert_sigs.emplace_back(i, keys.signers[i]->sign(preimage));
  }
  resp.suffix = std::move(suffix);
  const Bytes frame = smr::encode_control_state_resp(resp);
  return Bytes(frame.begin() + 9, frame.end());
}

smr::RecoveryModule make_module(const crypto::SignatureSystem& keys) {
  smr::RecoveryConfig rc;
  rc.n = 4;
  rc.cert_quorum = 3;
  rc.suffix_quorum = 2;
  rc.verifier = keys.verifier.get();
  return smr::RecoveryModule(rc);
}

// ----------------------------------------------------------------- codec

TEST(Checkpoint, SnapshotCodecRoundTrip) {
  const smr::Snapshot snap = sample_snapshot();
  const Bytes buf = smr::encode_snapshot(snap);
  const smr::Snapshot back = smr::decode_snapshot(buf, smr::StateLimits{});
  EXPECT_EQ(back.slot, snap.slot);
  EXPECT_EQ(back.applied, snap.applied);
  EXPECT_EQ(back.data, snap.data);
  EXPECT_EQ(back.committed_ids, snap.committed_ids);
  // Canonical: re-encoding the decoded value is byte-identical, so every
  // correct replica at the same frontier votes for the same digest.
  EXPECT_EQ(smr::encode_snapshot(back), buf);
}

TEST(Checkpoint, GenesisDigestIsRecomputable) {
  const Bytes a = smr::genesis_snapshot();
  const Bytes b = smr::genesis_snapshot();
  EXPECT_EQ(a, b);
  const smr::Snapshot snap = smr::decode_snapshot(a, smr::StateLimits{});
  EXPECT_EQ(snap.slot, 0u);
  EXPECT_TRUE(snap.data.empty());
}

// ----------------------------------------------------------- certificates

TEST(CheckpointCert, QuorumOfDistinctSignersVerifies) {
  const crypto::SignatureSystem keys = test_keys();
  const crypto::Digest digest = smr::snapshot_digest(smr::genesis_snapshot());
  const Bytes preimage = bft::checkpoint_signing_bytes(8, digest);

  bft::CheckpointCert cert;
  cert.slot = 8;
  cert.digest = digest;
  for (std::uint32_t i = 0; i < 3; ++i) {
    cert.sigs.emplace_back(i, keys.signers[i]->sign(preimage));
  }
  EXPECT_TRUE(bft::verify_checkpoint_cert(cert, *keys.verifier, 4, 3));

  // Two signatures are one short of the quorum.
  cert.sigs.pop_back();
  EXPECT_FALSE(bft::verify_checkpoint_cert(cert, *keys.verifier, 4, 3));

  // A duplicated signer must not count twice.
  cert.sigs.emplace_back(0, keys.signers[0]->sign(preimage));
  EXPECT_FALSE(bft::verify_checkpoint_cert(cert, *keys.verifier, 4, 3));
}

TEST(CheckpointCert, WrongDigestRejected) {
  const crypto::SignatureSystem keys = test_keys();
  const crypto::Digest digest = smr::snapshot_digest(smr::genesis_snapshot());
  const Bytes preimage = bft::checkpoint_signing_bytes(8, digest);

  bft::CheckpointCert cert;
  cert.slot = 8;
  cert.digest = adversary::forged_checkpoint_digest(8);  // claims a lie
  for (std::uint32_t i = 0; i < 3; ++i) {
    cert.sigs.emplace_back(i, keys.signers[i]->sign(preimage));
  }
  EXPECT_FALSE(bft::verify_checkpoint_cert(cert, *keys.verifier, 4, 3));
}

TEST(CheckpointCert, GenesisIsVacuouslyValid) {
  const crypto::SignatureSystem keys = test_keys();
  bft::CheckpointCert cert;  // slot 0, no signatures
  EXPECT_TRUE(bft::verify_checkpoint_cert(cert, *keys.verifier, 4, 3));
}

// --------------------------------------------------------- RecoveryModule

TEST(RecoveryModule, AcceptsCertifiedResponse) {
  const crypto::SignatureSystem keys = test_keys();
  smr::RecoveryModule mod = make_module(keys);
  EXPECT_TRUE(mod.ingest(ProcessId{1}, certified_resp_body(keys, 3)));
  const auto best = mod.best_snapshot(0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->snapshot.slot, 8u);
  EXPECT_EQ(best->snapshot.data.at("alpha"), "1");
  EXPECT_EQ(mod.stats().resps_accepted, 1u);
}

TEST(RecoveryModule, RejectsSubQuorumCoalitionForgery) {
  const crypto::SignatureSystem keys = test_keys();
  smr::RecoveryModule mod = make_module(keys);
  // A single attacker fabricates a whole snapshot and "certifies" it with
  // the one key it holds — one valid signature, two short of the quorum.
  const Bytes frame = adversary::forged_state_resp(
      /*claim_slot=*/20, {keys.signers[1].get()});
  const Bytes body(frame.begin() + 9, frame.end());
  EXPECT_FALSE(mod.ingest(ProcessId{1}, body));
  EXPECT_FALSE(mod.best_snapshot(0).has_value());
  EXPECT_EQ(mod.stats().resps_rejected, 1u);
}

TEST(RecoveryModule, RejectsDigestFlippedSnapshot) {
  const crypto::SignatureSystem keys = test_keys();
  smr::RecoveryModule mod = make_module(keys);
  // Decode the certified body, flip one snapshot byte, re-encode: the
  // certificate no longer covers the bytes.
  const Bytes body = certified_resp_body(keys, 3);
  Reader r(body);
  smr::StateResp resp = smr::decode_state_resp(r, smr::StateLimits{});
  resp.snapshot[resp.snapshot.size() / 2] ^= 0x01;
  const Bytes frame = smr::encode_control_state_resp(resp);
  EXPECT_FALSE(mod.ingest(ProcessId{2}, Bytes(frame.begin() + 9, frame.end())));
}

TEST(RecoveryModule, RejectsSplicedCertificate) {
  const crypto::SignatureSystem keys = test_keys();
  smr::RecoveryModule mod = make_module(keys);
  // Graft a quorum certificate for the genesis digest onto a non-genesis
  // snapshot: every signature is individually valid, but over the wrong
  // preimage.
  const Bytes body = certified_resp_body(keys, 3);
  Reader r(body);
  smr::StateResp resp = smr::decode_state_resp(r, smr::StateLimits{});
  const crypto::Digest genesis =
      smr::snapshot_digest(smr::genesis_snapshot());
  const Bytes preimage = bft::checkpoint_signing_bytes(resp.ckpt_slot, genesis);
  for (auto& [id, sig] : resp.cert_sigs) {
    sig = keys.signers[id]->sign(preimage);
  }
  const Bytes frame = smr::encode_control_state_resp(resp);
  EXPECT_FALSE(mod.ingest(ProcessId{2}, Bytes(frame.begin() + 9, frame.end())));
}

TEST(RecoveryModule, SuffixNeedsQuorumOfResponders) {
  const crypto::SignatureSystem keys = test_keys();
  smr::RecoveryModule mod = make_module(keys);
  const std::vector<smr::SuffixEntry> suffix = {{9, {15, 16}}};
  EXPECT_TRUE(mod.ingest(ProcessId{0}, certified_resp_body(keys, 3, suffix)));
  // One responder is not enough (suffix batches are not cert-covered).
  EXPECT_FALSE(mod.batch_for(9).has_value());
  EXPECT_TRUE(mod.ingest(ProcessId{1}, certified_resp_body(keys, 3, suffix)));
  const auto batch = mod.batch_for(9);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(*batch, (std::vector<std::uint64_t>{15, 16}));
}

// ------------------------------------------------------------- end to end

faults::SmrScenarioConfig recovery_scenario(smr::Backend backend,
                                            std::uint64_t seed) {
  faults::SmrScenarioConfig sc;
  sc.n = 4;
  sc.f = 1;
  sc.seed = seed;
  sc.backend = backend;
  sc.window = 4;
  sc.batch = 2;
  sc.checkpoint_interval = 4;
  for (std::uint32_t c = 1; c <= 60; ++c) {
    smr::Command cmd;
    cmd.id = c;
    cmd.key = "key" + std::to_string(c % 8);
    cmd.op = c % 5 == 0 ? smr::Command::Op::kDel : smr::Command::Op::kPut;
    if (cmd.op == smr::Command::Op::kPut) cmd.value = "v" + std::to_string(c);
    sc.workload.push_back(cmd);
  }
  sc.slots = 30;
  // The simulator drains this workload in a few virtual ms; kill mid-run,
  // restart while the survivors are still committing.
  sc.crashes.push_back({ProcessId{2}, 1'500, 3'000});
  return sc;
}

TEST(Recovery, CrashBackendKillRestartRecovers) {
  const faults::SmrScenarioResult r = faults::run_smr_scenario(
      recovery_scenario(smr::Backend::kCrashHurfinRaynal, 7));
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.stores_agree);
  EXPECT_EQ(r.recovered.count(2), 1u);
  EXPECT_GT(r.run_stats.pipeline.recovery_installs, 0u);
  EXPECT_GT(r.run_stats.pipeline.checkpoint_certs, 0u);
}

TEST(Recovery, ByzantineBackendKillRestartRecovers) {
  const faults::SmrScenarioResult r =
      faults::run_smr_scenario(recovery_scenario(smr::Backend::kByzantine, 7));
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.stores_agree);
  EXPECT_EQ(r.recovered.count(2), 1u);
}

TEST(Recovery, SameSeedAndScheduleIsBitIdentical) {
  const faults::SmrScenarioConfig sc =
      recovery_scenario(smr::Backend::kCrashHurfinRaynal, 11);
  const faults::SmrScenarioResult a = faults::run_smr_scenario(sc);
  const faults::SmrScenarioResult b = faults::run_smr_scenario(sc);
  EXPECT_TRUE(a.clean);
  EXPECT_EQ(a.stores, b.stores);  // every replica, every key, every byte
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.run_stats.pipeline.recovery_installs,
            b.run_stats.pipeline.recovery_installs);
}

TEST(Recovery, LogNeverRetainsMoreThanIntervalPlusWindow) {
  faults::SmrScenarioConfig sc =
      recovery_scenario(smr::Backend::kCrashHurfinRaynal, 13);
  sc.crashes.clear();  // long steady-state run, compaction only
  const faults::SmrScenarioResult r = faults::run_smr_scenario(sc);
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_GT(r.run_stats.pipeline.log_truncated, 0u);
  EXPECT_LE(r.run_stats.pipeline.log_peak,
            sc.checkpoint_interval + sc.window);
}

TEST(Recovery, IntervalZeroSendsNoControlFrames) {
  faults::SmrScenarioConfig sc =
      recovery_scenario(smr::Backend::kCrashHurfinRaynal, 17);
  sc.checkpoint_interval = 0;
  sc.crashes.clear();
  const faults::SmrScenarioResult r = faults::run_smr_scenario(sc);
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_EQ(r.run_stats.pipeline.checkpoints_taken, 0u);
  EXPECT_EQ(r.run_stats.pipeline.state_reqs, 0u);
  EXPECT_EQ(r.run_stats.pipeline.state_resps, 0u);
  EXPECT_EQ(r.run_stats.pipeline.log_truncated, 0u);
}

}  // namespace
}  // namespace modubft
