// Tests for the synchronous substrate and the EIG Interactive Consistency
// baseline ([11], the origin of Vector Consensus per paper footnote 6).
#include <gtest/gtest.h>

#include <map>

#include "common/serial.hpp"
#include "sync/eig_ic.hpp"

namespace modubft::sync {
namespace {

// ------------------------------------------------------ lockstep runner

class Echoer final : public SyncProcess {
 public:
  Echoer(std::uint32_t n, std::vector<std::uint32_t>* counts)
      : n_(n), counts_(counts) {}

  std::vector<Outgoing> on_round(std::uint32_t round,
                                 const std::vector<Incoming>& inbox) override {
    counts_->push_back(static_cast<std::uint32_t>(inbox.size()));
    std::vector<Outgoing> out;
    if (round == 1) {
      for (std::uint32_t j = 0; j < n_; ++j) out.push_back({ProcessId{j}, {1}});
    }
    return out;
  }

  void on_finish(const std::vector<Incoming>& final_inbox) override {
    counts_->push_back(static_cast<std::uint32_t>(final_inbox.size()));
  }

 private:
  std::uint32_t n_;
  std::vector<std::uint32_t>* counts_;
};

TEST(SyncRunner, DeliversAtRoundBoundaries) {
  std::vector<std::uint32_t> c0, c1;
  std::vector<std::unique_ptr<SyncProcess>> procs;
  procs.push_back(std::make_unique<Echoer>(2, &c0));
  procs.push_back(std::make_unique<Echoer>(2, &c1));
  SyncStats stats = run_lockstep_rounds(procs, 2);
  // Round 1 inbox empty; round 2 inbox has both broadcasts; nothing after.
  EXPECT_EQ(c0, (std::vector<std::uint32_t>{0, 2, 0}));
  EXPECT_EQ(c1, (std::vector<std::uint32_t>{0, 2, 0}));
  EXPECT_EQ(stats.messages, 4u);
  EXPECT_EQ(stats.bytes, 4u);
}

TEST(SyncRunner, CrashedSlotSendsNothing) {
  std::vector<std::uint32_t> c0;
  std::vector<std::unique_ptr<SyncProcess>> procs;
  procs.push_back(std::make_unique<Echoer>(2, &c0));
  procs.push_back(nullptr);  // crashed from the start
  run_lockstep_rounds(procs, 2);
  EXPECT_EQ(c0, (std::vector<std::uint32_t>{0, 1, 0}));  // only own echo
}

// ------------------------------------------------------------ EIG codec

TEST(EigCodec, RoundTrip) {
  std::vector<std::pair<std::vector<std::uint32_t>, Value>> pairs = {
      {{}, 42}, {{1}, 7}, {{2, 0}, 9}};
  auto back = decode_eig_pairs(encode_eig_pairs(pairs));
  EXPECT_EQ(back, pairs);
}

TEST(EigCodec, RejectsTruncation) {
  auto buf = encode_eig_pairs({{{1, 2}, 5}});
  buf.pop_back();
  EXPECT_THROW(decode_eig_pairs(buf), SerialError);
}

// --------------------------------------------------------------- EIG IC

struct IcRun {
  std::map<std::uint32_t, std::vector<Value>> vectors;
  SyncStats stats;
};

/// faulty[i]: 0 = correct, 1 = liar, 2 = crashed.
IcRun run_ic(std::uint32_t n, std::uint32_t f,
             const std::vector<int>& faulty) {
  IcRun run;
  std::vector<std::unique_ptr<SyncProcess>> procs;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int kind = i < faulty.size() ? faulty[i] : 0;
    if (kind == 2) {
      procs.push_back(nullptr);
    } else if (kind == 1) {
      procs.push_back(std::make_unique<EigLiar>(n, f, ProcessId{i}));
    } else {
      procs.push_back(std::make_unique<EigProcess>(
          n, f, ProcessId{i}, 1000 + i,
          [&run](ProcessId who, const std::vector<Value>& v) {
            run.vectors.emplace(who.value, v);
          }));
    }
  }
  run.stats = run_lockstep_rounds(procs, EigProcess::rounds_for(f));
  return run;
}

TEST(EigIc, FailureFreeN4) {
  IcRun run = run_ic(4, 1, {});
  ASSERT_EQ(run.vectors.size(), 4u);
  const std::vector<Value> expected = {1000, 1001, 1002, 1003};
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, expected);
}

TEST(EigIc, EquivocatingLiarN4) {
  // n = 4 > 3f = 3: interactive consistency must hold.
  IcRun run = run_ic(4, 1, {0, 1, 0, 0});
  ASSERT_EQ(run.vectors.size(), 3u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) {
    EXPECT_EQ(v, ref) << "IC agreement broken at p" << i + 1;
  }
  // Correct entries are the true initial values.
  EXPECT_EQ(ref[0], 1000u);
  EXPECT_EQ(ref[2], 1002u);
  EXPECT_EQ(ref[3], 1003u);
}

TEST(EigIc, CrashedProcessYieldsDefaultEntry) {
  IcRun run = run_ic(4, 1, {0, 0, 2, 0});
  ASSERT_EQ(run.vectors.size(), 3u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, ref);
  EXPECT_EQ(ref[2], kEigDefault);
  EXPECT_EQ(ref[0], 1000u);
}

TEST(EigIc, TwoLiarsN7) {
  // n = 7 = 3·2 + 1: tolerates two Byzantine processes with f = 2
  // (3 rounds).
  IcRun run = run_ic(7, 2, {0, 1, 0, 1, 0, 0, 0});
  ASSERT_EQ(run.vectors.size(), 5u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) {
    EXPECT_EQ(v, ref) << "IC agreement broken at p" << i + 1;
  }
  for (std::uint32_t j : {0u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(ref[j], 1000u + j) << "correct entry falsified";
  }
}

TEST(EigIc, LiarAndCrashN7) {
  IcRun run = run_ic(7, 2, {1, 0, 2, 0, 0, 0, 0});
  ASSERT_EQ(run.vectors.size(), 5u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, ref);
  EXPECT_EQ(ref[2], kEigDefault);  // crashed: default by unanimity
}

TEST(EigIc, BeyondBoundBreaks) {
  // n = 4 with TWO liars (f parameter still 1): 3f ≥ n — the classical
  // impossibility region.  Agreement on the liars' entries may fail; this
  // documents that the n > 3f requirement is real, mirroring the async
  // bound-tightness test.
  bool any_disagreement = false;
  for (std::uint32_t liar2 : {1u, 2u, 3u}) {
    std::vector<int> faulty(4, 0);
    faulty[0] = 1;
    faulty[liar2] = 1;
    IcRun run = run_ic(4, 1, faulty);
    if (run.vectors.size() < 2) continue;
    const std::vector<Value>& ref = run.vectors.begin()->second;
    for (auto& [i, v] : run.vectors) any_disagreement |= v != ref;
  }
  EXPECT_TRUE(any_disagreement);
}


// A hostile relayer: floods structurally illegal EIG pairs (bad depth,
// repeated ids, out-of-range ids, sender already in path).  Correct
// processes must silently ignore all of it.
TEST(EigIc, HostileRelayPathsIgnored) {
  class PathGarbler final : public SyncProcess {
   public:
    explicit PathGarbler(std::uint32_t n) : n_(n) {}
    std::vector<Outgoing> on_round(std::uint32_t round,
                                   const std::vector<Incoming>&) override {
      std::vector<std::pair<std::vector<std::uint32_t>, Value>> junk;
      if (round == 1) {
        junk.emplace_back(std::vector<std::uint32_t>{}, 7777);  // honest-ish
      } else {
        junk.emplace_back(std::vector<std::uint32_t>{0, 0}, 1);      // repeat
        junk.emplace_back(std::vector<std::uint32_t>{99}, 2);        // range
        junk.emplace_back(std::vector<std::uint32_t>{0, 1, 2}, 3);   // depth
        junk.emplace_back(std::vector<std::uint32_t>{3}, 4);         // self-in-σ? (sender is p4)
      }
      std::vector<Outgoing> out;
      for (std::uint32_t j = 0; j < n_; ++j) {
        out.push_back(Outgoing{ProcessId{j}, encode_eig_pairs(junk)});
      }
      return out;
    }
    void on_finish(const std::vector<Incoming>&) override {}
   private:
    std::uint32_t n_;
  };

  std::map<std::uint32_t, std::vector<Value>> vectors;
  std::vector<std::unique_ptr<SyncProcess>> procs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    procs.push_back(std::make_unique<EigProcess>(
        4, 1, ProcessId{i}, 1000 + i,
        [&vectors](ProcessId who, const std::vector<Value>& v) {
          vectors.emplace(who.value, v);
        }));
  }
  procs.push_back(std::make_unique<PathGarbler>(4));
  run_lockstep_rounds(procs, 2);

  ASSERT_EQ(vectors.size(), 3u);
  const std::vector<Value>& ref = vectors.begin()->second;
  for (auto& [i, v] : vectors) EXPECT_EQ(v, ref);
  for (std::uint32_t j = 0; j < 3; ++j) EXPECT_EQ(ref[j], 1000 + j);
}

TEST(EigIc, MessageGrowthIsExponentialInF) {
  // The EIG price: bytes grow with n^(f+1).  The transformed async
  // protocol replaces this with certificates (see bench E11).
  IcRun small = run_ic(7, 1, {});  // ignores the extra tolerance
  IcRun big = run_ic(7, 2, {});
  EXPECT_GT(big.stats.bytes, 3 * small.stats.bytes);
}

}  // namespace
}  // namespace modubft::sync
