// Tests for the pipelined, batching SMR replica.
//
// The load-bearing property: the commit rule (anchor decided by consensus,
// batch re-derived from the committed set at the frontier) makes the
// store's application order the increasing command-id order for *any*
// (window, batch) configuration — so a pipelined run must commit a
// KvStore bit-identical to the sequential run's.  The tests assert that
// equivalence on both back-ends and both the sim and threads substrates,
// plus the envelope-buffering bounds (early frames parked, far-future and
// over-cap frames dropped, post-commit stragglers discarded) and a
// Byzantine replica attacking one mid-window slot.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bft/message.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/verify_pool.hpp"
#include "faults/scenario.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace modubft::smr {
namespace {

// A 12-command put/overwrite/delete mix over a small key space, so batch
// boundaries land in the middle of overwrite chains.
std::vector<Command> workload12() {
  std::vector<Command> cmds;
  for (std::uint64_t id = 1; id <= 12; ++id) {
    const std::string key = "k" + std::to_string(id % 5);
    if (id % 4 == 0) {
      cmds.push_back({id, Command::Op::kDel, key, ""});
    } else {
      cmds.push_back({id, Command::Op::kPut, key, "v" + std::to_string(id)});
    }
  }
  return cmds;
}

faults::SmrScenarioConfig pipelined_config(Backend backend, std::uint32_t w,
                                           std::uint32_t b) {
  faults::SmrScenarioConfig cfg;
  cfg.n = backend == Backend::kByzantine ? 4 : 5;
  cfg.f = 1;
  cfg.seed = 11;
  cfg.backend = backend;
  cfg.workload = workload12();
  cfg.window = w;
  cfg.batch = b;
  // Two slack slots beyond ceil(12 / B): racing proposals can produce the
  // occasional no-op slot under pipelining, and the equivalence claim is
  // about runs that commit the whole workload.
  cfg.slots = (12 + b - 1) / b + 2;
  return cfg;
}

void expect_full_commit(const faults::SmrScenarioResult& r,
                        const char* what) {
  EXPECT_TRUE(r.clean) << what;
  EXPECT_TRUE(r.all_committed) << what;
  EXPECT_TRUE(r.stores_agree) << what;
  EXPECT_EQ(r.run_stats.pipeline.commands_committed, 12u) << what;
}

TEST(SmrPipeline, CrashBackendStoreEquivalentAcrossWindowAndBatch) {
  const faults::SmrScenarioResult seq =
      faults::run_smr_scenario(pipelined_config(Backend::kCrashHurfinRaynal,
                                                1, 1));
  expect_full_commit(seq, "W1 B1");
  ASSERT_FALSE(seq.store.empty());

  for (const auto& [w, b] : std::vector<std::pair<std::uint32_t,
                                                  std::uint32_t>>{
           {4, 4}, {2, 3}, {3, 1}, {1, 4}}) {
    const faults::SmrScenarioResult piped = faults::run_smr_scenario(
        pipelined_config(Backend::kCrashHurfinRaynal, w, b));
    expect_full_commit(piped, "pipelined crash");
    EXPECT_EQ(piped.store, seq.store) << "W" << w << " B" << b;
  }
}

TEST(SmrPipeline, ByzantineBackendStoreEquivalentAcrossWindowAndBatch) {
  const faults::SmrScenarioResult seq = faults::run_smr_scenario(
      pipelined_config(Backend::kByzantine, 1, 1));
  expect_full_commit(seq, "W1 B1");
  ASSERT_FALSE(seq.store.empty());

  for (const auto& [w, b] : std::vector<std::pair<std::uint32_t,
                                                  std::uint32_t>>{
           {4, 4}, {2, 2}}) {
    const faults::SmrScenarioResult piped =
        faults::run_smr_scenario(pipelined_config(Backend::kByzantine, w, b));
    expect_full_commit(piped, "pipelined byz");
    EXPECT_EQ(piped.store, seq.store) << "W" << w << " B" << b;
  }
}

TEST(SmrPipeline, CrashBackendPipelinedSurvivesReplicaCrash) {
  faults::SmrScenarioConfig cfg =
      pipelined_config(Backend::kCrashHurfinRaynal, 3, 2);
  cfg.crashes.push_back({ProcessId{4}, 3'000, std::nullopt});
  const faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.stores_agree);
  EXPECT_EQ(r.correct.size(), 4u);
}

TEST(SmrPipeline, WindowStatsReachConfiguredPeak) {
  faults::SmrScenarioConfig cfg = pipelined_config(Backend::kByzantine, 4, 4);
  const faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
  expect_full_commit(r, "W4 B4");
  EXPECT_EQ(r.run_stats.pipeline.window, 4u);
  EXPECT_EQ(r.run_stats.pipeline.batch, 4u);
  EXPECT_EQ(r.run_stats.pipeline.window_peak, 4u);
  EXPECT_GT(r.run_stats.pipeline.avg_window, 1.0);
  EXPECT_EQ(r.run_stats.pipeline.max_batch, 4u);
  // The Byzantine back-end shares one verification cache per replica
  // across slots, so pipelined runs must show cross-slot hits.
  EXPECT_GT(r.run_stats.verify.cache_hits, 0u);
}

// --- threads substrate (TSan customers; `threads` ctest label) ---------

TEST(SmrPipeline, ThreadsCrashBackendMatchesSimSequentialStore) {
  const faults::SmrScenarioResult seq = faults::run_smr_scenario(
      pipelined_config(Backend::kCrashHurfinRaynal, 1, 1));
  expect_full_commit(seq, "sim W1 B1");

  faults::SmrScenarioConfig cfg =
      pipelined_config(Backend::kCrashHurfinRaynal, 3, 2);
  cfg.substrate = runtime::Backend::kThreads;
  const faults::SmrScenarioResult piped = faults::run_smr_scenario(cfg);
  expect_full_commit(piped, "threads W3 B2");
  EXPECT_EQ(piped.store, seq.store);
}

TEST(SmrPipeline, ThreadsByzantineBackendMatchesSimSequentialStore) {
  const faults::SmrScenarioResult seq = faults::run_smr_scenario(
      pipelined_config(Backend::kByzantine, 1, 1));
  expect_full_commit(seq, "sim W1 B1");

  faults::SmrScenarioConfig cfg = pipelined_config(Backend::kByzantine, 4, 4);
  cfg.substrate = runtime::Backend::kThreads;
  // Pin the pool size: the wall-clock default scales with the machine's
  // spare cores, and this test asserts pool accounting exactly.
  cfg.verify_workers = 3;
  const faults::SmrScenarioResult piped = faults::run_smr_scenario(cfg);
  expect_full_commit(piped, "threads W4 B4");
  EXPECT_EQ(piped.store, seq.store);
  EXPECT_EQ(piped.run_stats.verify.pool_workers, 3u);
  EXPECT_GT(piped.run_stats.verify.pool_jobs, 0u);
  // threads default: the staged ingest pipeline is in force.
  EXPECT_EQ(piped.run_stats.ingest.staged, 1u);
}

TEST(SmrPipeline, ThreadsStagedIngestToggleIsStoreInvariant) {
  const faults::SmrScenarioResult seq = faults::run_smr_scenario(
      pipelined_config(Backend::kByzantine, 1, 1));
  expect_full_commit(seq, "sim W1 B1");

  for (bool staged : {true, false}) {
    SCOPED_TRACE(staged ? "staged" : "sequential");
    faults::SmrScenarioConfig cfg =
        pipelined_config(Backend::kByzantine, 4, 4);
    cfg.substrate = runtime::Backend::kThreads;
    cfg.staged_ingest = staged;
    const faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);
    expect_full_commit(r, "threads W4 B4");
    EXPECT_EQ(r.store, seq.store);
    EXPECT_EQ(r.run_stats.ingest.staged, staged ? 1u : 0u);
    if (!staged) {
      EXPECT_EQ(r.run_stats.ingest.batches, 0u);
    }
  }
}

// --- envelope buffering bounds -----------------------------------------

Bytes envelope(std::uint64_t slot, const Bytes& inner) {
  Writer w;
  w.u64(slot);
  w.raw(inner);
  return std::move(w).take();
}

// Floods the three real replicas with early frames before the pipeline
// has started the targeted slots: within-horizon frames must be parked
// (bounded per slot), beyond-horizon frames dropped, and the parked
// garbage must be replayed harmlessly (the BFT instance rejects it).
class EarlyFrameInjector final : public sim::Actor {
 public:
  void on_start(sim::Context& ctx) override {
    const Bytes junk = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04,
                        0x05, 0x06, 0x07, 0x08};
    for (std::uint32_t to = 0; to < 3; ++to) {
      // Slot 2 is unstarted but within the horizon (cap 2): two parked,
      // the third dropped.
      for (int i = 0; i < 3; ++i) ctx.send(ProcessId{to}, envelope(2, junk));
      // Slots 5 and 7 are beyond the horizon 0 + W(1) + 2 = 3: dropped.
      ctx.send(ProcessId{to}, envelope(5, junk));
      ctx.send(ProcessId{to}, envelope(7, junk));
      // Not even an envelope (truncated tag): ignored, not counted.
      ctx.send(ProcessId{to}, Bytes{0x01, 0x02});
    }
    ctx.stop();
  }
  void on_message(sim::Context&, ProcessId, const Bytes&) override {}
};

TEST(SmrPipeline, FutureFramesBufferedWithinBoundsAndDroppedBeyond) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 5);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 5;
  sim::Simulation world(sim_cfg);

  bft::BftConfig bft_cfg;
  bft_cfg.n = kN;
  bft_cfg.f = 1;

  std::vector<Replica*> replicas(3, nullptr);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = Backend::kByzantine;
    cfg.slots = 8;
    cfg.window = 1;
    cfg.max_future_slots = 2;
    cfg.max_future_msgs_per_slot = 2;
    cfg.bft = bft_cfg;
    cfg.signer = keys.signers[i].get();
    cfg.verifier = keys.verifier;
    auto replica = std::make_unique<Replica>(
        cfg, faults::sample_workload(), CommitFn{});
    replicas[i] = replica.get();
    world.set_actor(ProcessId{i}, std::move(replica));
  }
  world.set_actor(ProcessId{3}, std::make_unique<EarlyFrameInjector>());
  world.run();

  for (std::uint32_t i = 0; i < 3; ++i) {
    const PipelineStats& p = replicas[i]->pipeline_stats();
    EXPECT_EQ(replicas[i]->committed_slots(), 8u) << "replica " << i;
    EXPECT_EQ(p.future_buffered, 2u) << "replica " << i;   // slot-2 pair
    EXPECT_EQ(p.future_dropped, 3u) << "replica " << i;    // cap + 5 + 7
    EXPECT_EQ(replicas[i]->store().contents(),
              replicas[0]->store().contents());
  }
  EXPECT_EQ(replicas[0]->store().get("alpha"), "3");
}

// --- post-commit stragglers --------------------------------------------

// Minimal Context for poking a finished replica outside any runtime.
class StubContext final : public sim::Context {
 public:
  ProcessId id() const override { return ProcessId{0}; }
  std::uint32_t n() const override { return 4; }
  SimTime now() const override { return 0; }
  void send(ProcessId, Bytes) override {}
  void broadcast(const Bytes&) override {}
  std::uint64_t set_timer(SimTime) override { return ++timers_; }
  void cancel_timer(std::uint64_t) override {}
  Rng& rng() override { return rng_; }
  void stop() override {}

 private:
  std::uint64_t timers_ = 0;
  Rng rng_{0};
};

TEST(SmrPipeline, PostCommitStragglersAreCountedAndIgnored) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 7);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 7;
  sim::Simulation world(sim_cfg);

  bft::BftConfig bft_cfg;
  bft_cfg.n = kN;
  bft_cfg.f = 1;

  std::vector<Replica*> replicas(kN, nullptr);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = Backend::kByzantine;
    cfg.slots = 3;
    cfg.window = 2;
    cfg.bft = bft_cfg;
    cfg.signer = keys.signers[i].get();
    cfg.verifier = keys.verifier;
    auto replica = std::make_unique<Replica>(
        cfg, faults::sample_workload(), CommitFn{});
    replicas[i] = replica.get();
    world.set_actor(ProcessId{i}, std::move(replica));
  }
  world.run();
  ASSERT_TRUE(replicas[0]->done());

  const std::uint64_t stale_before =
      replicas[0]->pipeline_stats().stale_dropped;
  const auto contents_before = replicas[0]->store().contents();

  StubContext stub;
  const Bytes junk = {0x11, 0x22, 0x33};
  // A frame for an already-committed slot: counted as stale, no effect.
  replicas[0]->on_message(stub, ProcessId{1}, envelope(0, junk));
  EXPECT_EQ(replicas[0]->pipeline_stats().stale_dropped, stale_before + 1);
  // A frame for a slot the replica was never configured to run: ignored.
  replicas[0]->on_message(stub, ProcessId{1}, envelope(99, junk));
  EXPECT_EQ(replicas[0]->pipeline_stats().stale_dropped, stale_before + 1);
  EXPECT_EQ(replicas[0]->store().contents(), contents_before);
}

// --- Byzantine attack on a mid-window slot -----------------------------

// Wraps a genuine replica and corrupts the inner payload of every frame
// it emits for one slot (to everyone but itself): the signatures then
// fail at the receivers, making the wrapped replica Byzantine in exactly
// that mid-window slot while behaving honestly in all the others.
class SlotCorruptingReplica final : public sim::Actor {
 public:
  SlotCorruptingReplica(std::unique_ptr<Replica> inner,
                        std::uint64_t target_slot)
      : inner_(std::move(inner)), target_(target_slot) {}

  void on_start(sim::Context& ctx) override {
    Corrupting sub(ctx, target_);
    inner_->on_start(sub);
  }
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override {
    Corrupting sub(ctx, target_);
    inner_->on_message(sub, from, payload);
  }
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override {
    Corrupting sub(ctx, target_);
    inner_->on_timer(sub, timer_id);
  }

 private:
  class Corrupting final : public sim::ForwardingContext {
   public:
    Corrupting(sim::Context& base, std::uint64_t target)
        : ForwardingContext(base), target_(target) {}

    void send(ProcessId to, Bytes payload) override {
      base_.send(to, to == id() ? std::move(payload) : mutate(payload));
    }
    void broadcast(const Bytes& payload) override {
      // Keep the self-copy intact so the wrapped replica's own instance
      // stays consistent and the replica terminates.
      for (std::uint32_t i = 0; i < n(); ++i) {
        base_.send(ProcessId{i},
                   ProcessId{i} == id() ? payload : mutate(payload));
      }
    }

   private:
    Bytes mutate(Bytes payload) const {
      if (payload.size() <= 8) return payload;
      Reader r(payload);
      if (r.u64() != target_) return payload;
      for (std::size_t i = 8; i < payload.size(); ++i) payload[i] ^= 0x5a;
      return payload;
    }
    std::uint64_t target_;
  };

  std::unique_ptr<Replica> inner_;
  std::uint64_t target_;
};

TEST(SmrPipeline, CorrectReplicasCommitDespiteMidWindowByzantineSlot) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 13);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 13;
  sim::Simulation world(sim_cfg);

  bft::BftConfig bft_cfg;
  bft_cfg.n = kN;
  bft_cfg.f = 1;

  std::vector<Replica*> correct(3, nullptr);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = Backend::kByzantine;
    cfg.slots = 6;
    cfg.window = 3;
    cfg.bft = bft_cfg;
    cfg.signer = keys.signers[i].get();
    cfg.verifier = keys.verifier;
    auto replica = std::make_unique<Replica>(
        cfg, faults::sample_workload(), CommitFn{});
    if (i == 3) {
      // Slot 1 is mid-window at launch (window {0, 1, 2}).
      world.set_actor(ProcessId{i}, std::make_unique<SlotCorruptingReplica>(
                                        std::move(replica), 1));
    } else {
      correct[i] = replica.get();
      world.set_actor(ProcessId{i}, std::move(replica));
    }
  }
  world.run();

  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(correct[i]->committed_slots(), 6u) << "replica " << i;
    EXPECT_EQ(correct[i]->store().contents(), correct[0]->store().contents());
  }
  EXPECT_EQ(correct[0]->store().get("alpha"), "3");
  EXPECT_EQ(correct[0]->store().get("gamma"), "5");
}

// --- staged ingest: deterministic dispatch equivalence ------------------

// Records every frame the replica hands to the transport, in order.
class RecordingContext final : public sim::Context {
 public:
  ProcessId id() const override { return ProcessId{0}; }
  std::uint32_t n() const override { return 4; }
  SimTime now() const override { return 0; }
  void send(ProcessId, Bytes payload) override {
    out.push_back(std::move(payload));
  }
  void broadcast(const Bytes& payload) override { out.push_back(payload); }
  std::uint64_t set_timer(SimTime) override { return ++timers_; }
  void cancel_timer(std::uint64_t) override {}
  Rng& rng() override { return rng_; }
  void stop() override {}

  std::vector<Bytes> out;

 private:
  std::uint64_t timers_ = 0;
  Rng rng_{0};
};

Bytes init_frame(const crypto::SignatureSystem& keys, std::uint32_t sender,
                 std::uint64_t value) {
  bft::SignedMessage m;
  m.core.kind = bft::BftKind::kInit;
  m.core.sender = ProcessId{sender};
  m.core.round = Round{0};
  m.core.init_value = value;
  m.sig = keys.signers[sender]->sign(bft::signing_bytes(m.core, m.cert));
  return envelope(0, bft::encode_message(m));
}

struct DispatchResult {
  std::vector<Bytes> out;  // every frame emitted, in emission order
  IngestStats ingest;
  crypto::VerifyCacheStats cache;
};

// Feeds one replica a batch of three peer INITs for slot 0 through
// on_batch.  Replica 0 is the round-1 coordinator, so the quorum-completing
// INIT makes it emit a CURRENT — inline on the sequential path, via the
// staged sign+encode flush on the staged path.
DispatchResult dispatch_init_batch(bool staged) {
  const crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(4, 23);
  auto pool = std::make_shared<crypto::VerifyPool>(2);

  ReplicaConfig cfg;
  cfg.n = 4;
  cfg.backend = Backend::kByzantine;
  cfg.slots = 1;
  cfg.bft.n = 4;
  cfg.bft.f = 1;
  cfg.bft.verify_pool = pool;
  cfg.signer = keys.signers[0].get();
  cfg.verifier = keys.verifier;
  cfg.staged_ingest = staged;
  Replica replica(cfg, faults::sample_workload(), CommitFn{});

  RecordingContext ctx;
  replica.on_start(ctx);
  std::vector<sim::Incoming> batch;
  for (std::uint32_t sender : {1u, 2u, 3u}) {
    batch.push_back({ProcessId{sender}, init_frame(keys, sender, sender + 1)});
  }
  replica.on_batch(ctx, batch);

  DispatchResult r;
  r.out = std::move(ctx.out);
  r.ingest = replica.ingest_stats();
  if (replica.verify_cache() != nullptr) {
    r.cache = replica.verify_cache()->stats();
  }
  return r;
}

// The tentpole determinism claim (docs/INGEST.md): a staged on_batch
// dispatch emits the *byte-identical frame sequence* the sequential
// message-for-message dispatch emits.  The prologue only warms the verify
// cache, the sequential stage replays in arrival order, and the flush
// re-creates each deferred frame from the same (core, cert, slot) triple
// the inline path would have encoded.
TEST(SmrStagedIngest, StagedDispatchBitIdenticalToSequential) {
  const DispatchResult seq = dispatch_init_batch(false);
  const DispatchResult stg = dispatch_init_batch(true);

  // Same frames, same bytes, same order: own INIT from on_start, then the
  // round-1 coordinator CURRENT triggered by the quorum-completing INIT.
  ASSERT_EQ(seq.out.size(), stg.out.size());
  ASSERT_GE(seq.out.size(), 2u);
  for (std::size_t i = 0; i < seq.out.size(); ++i) {
    EXPECT_EQ(seq.out[i], stg.out[i]) << "frame " << i;
  }

  // The sequential run never staged anything…
  EXPECT_EQ(seq.ingest.batches, 0u);
  EXPECT_EQ(seq.ingest.staged_sends, 0u);

  // …while the staged run ran the full three-stage dispatch: one batch of
  // three recognized frames through the prologue, one deferred CURRENT,
  // one signing flush over a pooled encode buffer.
  EXPECT_EQ(stg.ingest.batches, 1u);
  EXPECT_EQ(stg.ingest.batch_messages, 3u);
  EXPECT_EQ(stg.ingest.max_batch, 3u);
  EXPECT_EQ(stg.ingest.prologue_frames, 3u);
  EXPECT_EQ(stg.ingest.prologue_jobs, 3u);
  EXPECT_EQ(stg.ingest.staged_sends, 1u);
  EXPECT_EQ(stg.ingest.sign_flushes, 1u);
  EXPECT_GT(stg.ingest.staged_bytes, 0u);

  // The prologue's warming paid off: the sequential stage authenticated
  // the three INITs against a warm cache.
  EXPECT_GE(stg.cache.hits, 3u);
}

}  // namespace
}  // namespace modubft::smr
