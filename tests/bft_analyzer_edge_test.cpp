// Adversarial edge cases for the certificate analyzer: hand-built
// structures a Byzantine process could craft that the main suite's happy
// paths never produce.
#include <gtest/gtest.h>

#include "bft/analyzer.hpp"
#include "crypto/hmac_signer.hpp"

namespace modubft::bft {
namespace {

class EdgeFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;
  static constexpr std::uint32_t kQuorum = 3;

  EdgeFixture()
      : sys_(crypto::HmacScheme{}.make_system(kN, 99)),
        analyzer_(kN, kQuorum, sys_.verifier) {}

  SignedMessage sign(MessageCore core, Certificate cert = {}) const {
    SignedMessage msg;
    msg.core = std::move(core);
    msg.cert = std::move(cert);
    msg.sig = sys_.signers[msg.core.sender.value]->sign(
        signing_bytes(msg.core, msg.cert));
    return msg;
  }

  SignedMessage init_msg(std::uint32_t sender) const {
    MessageCore core;
    core.kind = BftKind::kInit;
    core.sender = ProcessId{sender};
    core.round = Round{0};
    core.init_value = 100 + sender;
    return sign(core);
  }

  VectorValue base_vector() const {
    return {Value{100}, Value{101}, Value{102}, std::nullopt};
  }

  Certificate init_quorum() const {
    Certificate cert = Certificate::of({init_msg(0), init_msg(1), init_msg(2)});
    return cert;
  }

  SignedMessage current_msg(std::uint32_t sender, std::uint32_t round,
                            VectorValue est, Certificate cert) const {
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{sender};
    core.round = Round{round};
    core.est = std::move(est);
    return sign(core, std::move(cert));
  }

  SignedMessage next_msg(std::uint32_t sender, std::uint32_t round,
                         Certificate cert = {}) const {
    MessageCore core;
    core.kind = BftKind::kNext;
    core.sender = ProcessId{sender};
    core.round = Round{round};
    return sign(core, std::move(cert));
  }

  crypto::SignatureSystem sys_;
  CertAnalyzer analyzer_;
};

TEST_F(EdgeFixture, RelayRingNeverReachingCoordinatorRejected) {
  // p3 "relays" p4's CURRENT which "relays" p3's... a forged mutual ring
  // cannot be built without both signatures, but a Byzantine pair controls
  // both.  The chain never reaches an est witness, so it must die at the
  // innermost certificate, not loop.
  Certificate empty;
  SignedMessage inner = current_msg(3, 1, base_vector(), empty);
  Certificate c1 = Certificate::of({inner});
  SignedMessage mid = current_msg(2, 1, base_vector(), c1);
  Certificate c2 = Certificate::of({mid});
  SignedMessage outer = current_msg(3, 1, base_vector(), c2);

  Verdict v = analyzer_.current_wf(outer);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
  EXPECT_EQ(analyzer_.chain_base(outer), nullptr);
}

TEST_F(EdgeFixture, EstEvidenceWithTwoCurrentsAmbiguous) {
  SignedMessage coord = current_msg(0, 1, base_vector(), init_quorum());
  Certificate cert = Certificate::of({coord, coord});
  Verdict v = analyzer_.est_wf(cert, base_vector());
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(EdgeFixture, EntryEvidencePrunedRejected) {
  Certificate nexts = Certificate::of({next_msg(0, 1), next_msg(1, 1), next_msg(2, 1)});
  Certificate pruned = prune(nexts);
  Verdict v = analyzer_.entry_wf(pruned, Round{2});
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(EdgeFixture, DecideCertWithWrongRoundCurrentsRejected) {
  // Q CURRENTs exist, but for round 1 while the DECIDE claims round 2.
  SignedMessage coord = current_msg(0, 1, base_vector(), init_quorum());
  Certificate relay_cert = Certificate::of({coord});
  Certificate cert = Certificate::of({coord, current_msg(2, 1, base_vector(), relay_cert),
                  current_msg(3, 1, base_vector(), relay_cert)});
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{2};
  dec.est = base_vector();
  Verdict v = analyzer_.decide_wf(sign(dec, cert));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(EdgeFixture, DecideCertDuplicateSendersDoNotCount) {
  SignedMessage coord = current_msg(0, 1, base_vector(), init_quorum());
  Certificate cert = Certificate::of({coord, coord, coord});  // one sender, three copies
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{1};
  dec.est = base_vector();
  EXPECT_FALSE(analyzer_.decide_wf(sign(dec, cert)));
}

TEST_F(EdgeFixture, NextJustificationIgnoresOtherRoundVotes) {
  // Round-2 NEXT whose certificate holds a quorum of *round-1* NEXTs: that
  // witnesses entry into round 2, not an end-of-round-2 situation.
  Certificate old_nexts = Certificate::of({next_msg(0, 1), next_msg(1, 1), next_msg(2, 1)});
  SignedMessage nm = next_msg(3, 2, old_nexts);
  // From q1 (sender voted CURRENT in round 2) the change-mind path needs
  // round-2 evidence, which is absent.
  Verdict v = analyzer_.next_wf(nm, PeerPhase::kQ1);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
  // From q0 it reads as a suspicion claim (no round-2 CURRENT evidence):
  // structurally acceptable, exactly like the paper's unverifiable
  // suspicion.
  EXPECT_TRUE(analyzer_.next_wf(nm, PeerPhase::kQ0));
}

TEST_F(EdgeFixture, CurrentWithForeignInitValuesRejected) {
  // The coordinator pairs its vector with a quorum of INITs whose values
  // do not match the vector entries.
  VectorValue wrong = {Value{900}, Value{901}, Value{902}, std::nullopt};
  Verdict v = analyzer_.current_wf(current_msg(0, 1, wrong, init_quorum()));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(EdgeFixture, InitQuorumWithForeignExtraMembersStillWellFormed) {
  // Honest certificates may carry NEXT members alongside the INITs (the
  // line-24 union); the est check must ignore them rather than choke.
  Certificate cert = init_quorum();
  cert.add(next_msg(1, 1));
  EXPECT_TRUE(analyzer_.est_wf(cert, base_vector()));
}

TEST_F(EdgeFixture, SignatureOverPrunedCertStillBindsContents) {
  // A signer cannot claim a different certificate after the fact: the
  // digest in the signing preimage pins it.
  Certificate nexts = Certificate::of({next_msg(0, 1), next_msg(1, 1), next_msg(2, 1)});
  SignedMessage nm = next_msg(3, 2, nexts);
  SignedMessage swapped = nm;
  Certificate other = Certificate::of({next_msg(0, 1)});
  swapped.cert = other;
  EXPECT_FALSE(analyzer_.signature_ok(swapped));
  swapped.cert = prune(nexts);
  EXPECT_TRUE(analyzer_.signature_ok(swapped));
}

TEST_F(EdgeFixture, MemberWithOutOfRangeSenderRejected) {
  Certificate cert = init_quorum();
  cert.mutate_member(0, [](SignedMessage& m) {
    m.core.sender = ProcessId{77};  // breaks sig too
  });
  Verdict v = analyzer_.est_wf(cert, base_vector());
  EXPECT_FALSE(v);
}

}  // namespace
}  // namespace modubft::bft
