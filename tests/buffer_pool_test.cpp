// Error-path coverage for the encode-path buffer arena
// (common/buffer_pool.hpp).  The happy path — acquire, encode, release,
// reuse — is exercised all over the staged-ingest tests; what was missing
// is the contract under failure:
//
//   * an exception thrown between acquire() and release() (an encode
//     epilogue that throws) must leak nothing into the pool and must not
//     wedge later acquires;
//   * an exhausted free list must fall back to fresh allocation, never
//     block or fail;
//   * the retention caps (max_pooled, max_buffer_bytes) must drop — not
//     retain — buffers that would unbind the pool's memory.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "common/buffer_pool.hpp"
#include "common/serial.hpp"

namespace modubft {
namespace {

TEST(BufferPool, ExhaustedFreeListFallsBackToFreshAllocation) {
  BufferPool pool;
  // Nothing was ever released: every acquire must be satisfied fresh.
  for (int i = 0; i < 8; ++i) {
    Bytes buf = pool.acquire();
    EXPECT_TRUE(buf.empty());
  }
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 8u);
  EXPECT_EQ(stats.reuses, 0u);
  EXPECT_EQ(stats.releases, 0u);
  EXPECT_DOUBLE_EQ(stats.reuse_rate(), 0.0);
}

TEST(BufferPool, ReuseKeepsCapacityAndEncodesIdentically) {
  BufferPool pool;
  Bytes first = pool.acquire();
  Writer seed(std::move(first));
  seed.u64(0x1122334455667788ull);
  seed.str("warm the capacity");
  Bytes frame = std::move(seed).take();
  const Bytes reference = frame;
  const std::size_t warmed = frame.capacity();
  pool.release(std::move(frame));
  ASSERT_EQ(pool.pooled(), 1u);

  // The reused buffer arrives empty but warm, and a Writer over it
  // produces byte-identical output to a cold Writer.
  Bytes again = pool.acquire();
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), warmed);
  Writer w(std::move(again));
  w.u64(0x1122334455667788ull);
  w.str("warm the capacity");
  EXPECT_EQ(std::move(w).take(), reference);
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(BufferPool, EncodeEpilogueThrowLeaksNothingAndPoolKeepsWorking) {
  BufferPool pool;
  // Warm one buffer into the free list.
  pool.release(Bytes(64, 0xab));
  ASSERT_EQ(pool.pooled(), 1u);

  // An encode epilogue that throws after acquire(): the buffer dies with
  // the exception (dropping without release is legal) and the free list
  // simply stays drained — no double-release, no poisoned entry.
  auto throwing_encode = [&pool] {
    Bytes buf = pool.acquire();
    buf.push_back(0x01);
    throw std::runtime_error("epilogue failed");
  };
  EXPECT_THROW(throwing_encode(), std::runtime_error);
  EXPECT_EQ(pool.pooled(), 0u);

  // The pool is fully functional afterwards: fresh allocation fallback,
  // then a normal release/acquire cycle reuses again.
  Bytes buf = pool.acquire();
  EXPECT_TRUE(buf.empty());
  buf.resize(16);
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);
  pool.acquire();
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 3u);  // throwing + fallback + reuse
  EXPECT_EQ(stats.reuses, 2u);    // pre-warmed + post-recovery
  EXPECT_EQ(stats.releases, 2u);  // pre-warm + post-recovery
}

TEST(BufferPool, FullFreeListDropsInsteadOfGrowing) {
  BufferPool pool(/*max_pooled=*/2);
  pool.release(Bytes(8, 0x01));
  pool.release(Bytes(8, 0x02));
  pool.release(Bytes(8, 0x03));  // over the cap: dropped, not retained
  EXPECT_EQ(pool.pooled(), 2u);
  EXPECT_EQ(pool.stats().releases, 3u);  // the drop still counts
}

TEST(BufferPool, OversizedBufferIsNotRetained) {
  BufferPool pool(/*max_pooled=*/4, /*max_buffer_bytes=*/128);
  Bytes huge;
  huge.reserve(4096);  // capacity, not size, is what pins memory
  pool.release(std::move(huge));
  EXPECT_EQ(pool.pooled(), 0u) << "oversized capacity must not be pinned";

  pool.release(Bytes(64, 0xcd));  // under the cap: retained
  EXPECT_EQ(pool.pooled(), 1u);
}

}  // namespace
}  // namespace modubft
