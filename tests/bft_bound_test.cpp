// Tightness of the resilience bound F ≤ min(⌊(n−1)/2⌋, C).
//
// Footnote 2: "usual certification mechanisms require C = ⌊(n−1)/3⌋".
// This file demonstrates *why* the certification bound is necessary, not
// just sufficient: with n = 7 and the bound overridden to admit F = 3
// (quorum n−F = 4), two decision quorums intersect in a single process —
// which can be the Byzantine coordinator itself.  The dual-INIT-quorum
// equivocation attack then drives one half of the group to decide vector A
// and the other half vector B: an Agreement violation.  At the paper's
// F = 2 (quorum 5) the same attack is harmless: neither side can assemble
// a quorum, change-mind fires, and an honest round-2 coordinator finishes.
#include <gtest/gtest.h>

#include <map>

#include "bft/bft_consensus.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/split_brain.hpp"
#include "sim/simulation.hpp"

namespace modubft::bft {
namespace {

constexpr std::uint32_t kN = 7;

std::map<std::uint32_t, VectorDecision> run_split_brain(std::uint32_t f,
                                                        std::uint64_t seed) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, seed);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = seed;
  sim::Simulation world(sim_cfg);

  BftConfig proto;
  proto.n = kN;
  proto.f = f;
  // Override the certification bound so F = 3 passes validation — the
  // whole point is to show what that override costs.
  proto.certification_bound = f;

  std::map<std::uint32_t, VectorDecision> decisions;
  world.set_actor(ProcessId{0},
                  std::make_unique<faults::SplitBrainCoordinator>(
                      kN, keys.signers[0].get(), kN - f, 3));
  for (std::uint32_t i = 1; i < kN; ++i) {
    world.set_actor(ProcessId{i},
                    std::make_unique<BftProcess>(
                        proto, 1000 + i, keys.signers[i].get(), keys.verifier,
                        [&decisions, i](ProcessId, const VectorDecision& d) {
                          decisions.emplace(i, d);
                        }));
  }
  world.run();
  return decisions;
}

TEST(ResilienceBound, ConfigRejectsExcessiveFWithoutOverride) {
  BftConfig cfg;
  cfg.n = 7;
  cfg.f = 3;  // > ⌊6/3⌋ = 2
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.certification_bound = 3;
  EXPECT_NO_THROW(cfg.validate());
  cfg.f = 4;  // > ⌊6/2⌋ = 3: rejected even with a generous C
  cfg.certification_bound = 10;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(ResilienceBound, SplitBrainBreaksAgreementBeyondCertificationBound) {
  // F = 3 (quorum 4): the attack must be able to split the group.  This is
  // the *negative* result validating footnote 2 — the override trades away
  // Agreement.
  bool violated_somewhere = false;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    auto decisions = run_split_brain(3, seed);
    if (decisions.size() < 2) continue;
    const VectorValue& ref = decisions.begin()->second.entries;
    for (auto& [i, d] : decisions) {
      if (d.entries != ref) violated_somewhere = true;
    }
  }
  EXPECT_TRUE(violated_somewhere)
      << "expected the dual-quorum attack to break Agreement at F=3, n=7";
}

TEST(ResilienceBound, SameAttackHarmlessWithinBound) {
  // F = 2 (quorum 5): neither half can decide in round 1; change-mind moves
  // everyone to round 2 where an honest coordinator finishes.  Agreement
  // holds on every seed.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    auto decisions = run_split_brain(2, seed);
    ASSERT_EQ(decisions.size(), kN - 1) << "seed " << seed;
    const VectorValue& ref = decisions.begin()->second.entries;
    for (auto& [i, d] : decisions) {
      EXPECT_EQ(d.entries, ref) << "seed " << seed << " p" << (i + 1);
    }
  }
}

}  // namespace
}  // namespace modubft::bft
