// Targeted-timing adversary tests: per-channel delay injection on the
// simulator and its effect on failure detectors and both consensus
// protocols.  The asynchronous model permits arbitrary finite delays, so
// everything here must preserve safety; what timing attacks can do is
// cause false suspicions and extra rounds.
#include <gtest/gtest.h>

#include <map>

#include "bft/bft_consensus.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "fd/heartbeat_fd.hpp"
#include "sim/simulation.hpp"

namespace modubft {
namespace {

TEST(TimingAdversary, ChannelDelayIsApplied) {
  class Sender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.send(ProcessId{1}, {1});
      ctx.send(ProcessId{2}, {1});
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class Receiver final : public sim::Actor {
   public:
    explicit Receiver(SimTime* at) : at_(at) {}
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      *at_ = ctx.now();
    }
   private:
    SimTime* at_;
  };

  sim::SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 1;
  sim::Simulation world(cfg);
  SimTime slow_at = 0, fast_at = 0;
  world.set_actor(ProcessId{0}, std::make_unique<Sender>());
  world.set_actor(ProcessId{1}, std::make_unique<Receiver>(&slow_at));
  world.set_actor(ProcessId{2}, std::make_unique<Receiver>(&fast_at));
  world.delay_channel(ProcessId{0}, ProcessId{1}, 500'000, 1'000'000);
  world.run();
  EXPECT_GT(slow_at, fast_at + 400'000);
}

TEST(TimingAdversary, DelayExpiresAtDeadline) {
  class PeriodicSender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override { ctx.set_timer(10'000); }
    void on_timer(sim::Context& ctx, std::uint64_t) override {
      ctx.send(ProcessId{1}, {1});
      if (++count_ < 30) ctx.set_timer(10'000);
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
   private:
    int count_ = 0;
  };
  class Gaps final : public sim::Actor {
   public:
    explicit Gaps(std::vector<SimTime>* arrivals) : arrivals_(arrivals) {}
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      arrivals_->push_back(ctx.now());
    }
   private:
    std::vector<SimTime>* arrivals_;
  };

  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 2;
  sim::Simulation world(cfg);
  std::vector<SimTime> arrivals;
  world.set_actor(ProcessId{0}, std::make_unique<PeriodicSender>());
  world.set_actor(ProcessId{1}, std::make_unique<Gaps>(&arrivals));
  world.delay_channel(ProcessId{0}, ProcessId{1}, 200'000, 100'000);
  world.run();
  ASSERT_GE(arrivals.size(), 20u);
  // Early messages (sent before t=100ms) arrive after the 200ms penalty;
  // later ones arrive promptly, so arrivals bunch then smooth out.
  EXPECT_GT(arrivals.front(), 200'000u);
  EXPECT_LT(arrivals.back(), 500'000u);
}

TEST(TimingAdversary, CausesFalseSuspicionThenRecovery) {
  fd::HeartbeatConfig hb;
  hb.period = 5'000;
  hb.initial_timeout = 25'000;

  class Idle final : public sim::Actor {
   public:
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };

  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 3;
  cfg.max_time = 2'000'000;
  sim::Simulation world(cfg);
  auto d0 = std::make_shared<fd::HeartbeatDetector>(2, ProcessId{0}, hb);
  auto d1 = std::make_shared<fd::HeartbeatDetector>(2, ProcessId{1}, hb);
  world.set_actor(ProcessId{0}, std::make_unique<fd::HeartbeatWrapper>(
                                    std::make_unique<Idle>(), d0, hb));
  world.set_actor(ProcessId{1}, std::make_unique<fd::HeartbeatWrapper>(
                                    std::make_unique<Idle>(), d1, hb));
  // Strangle p2's heartbeats towards p1 for 300ms.
  world.delay_channel(ProcessId{1}, ProcessId{0}, 100'000, 300'000);

  bool suspected_during_attack = false;
  for (SimTime probe = 40'000; probe <= 280'000; probe += 10'000) {
    world.run_until(probe);
    suspected_during_attack |= d0->suspects(ProcessId{1}, world.now());
  }
  EXPECT_TRUE(suspected_during_attack);
  world.run();
  // After the attack and the adaptive backoff, accuracy returns.
  EXPECT_FALSE(d0->suspects(ProcessId{1}, world.now()));
}

TEST(TimingAdversary, HurfinRaynalSafeUnderSlowCoordinator) {
  // Slow (not crash) the round-1 coordinator so it is falsely suspected:
  // some processes vote NEXT, yet agreement and validity must hold.
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    sim::SimConfig cfg;
    cfg.n = 5;
    cfg.seed = seed;
    sim::Simulation world(cfg);

    // ◇S with aggressive timing: heartbeat detectors.
    fd::HeartbeatConfig hb;
    hb.period = 4'000;
    hb.initial_timeout = 20'000;

    std::map<std::uint32_t, consensus::Decision> decisions;
    for (std::uint32_t i = 0; i < 5; ++i) {
      auto det = std::make_shared<fd::HeartbeatDetector>(5, ProcessId{i}, hb);
      auto inner = std::make_unique<consensus::HurfinRaynalActor>(
          5, 100 + i, det,
          [&decisions, i](ProcessId, const consensus::Decision& d) {
            decisions.emplace(i, d);
          });
      world.set_actor(ProcessId{i},
                      std::make_unique<fd::HeartbeatWrapper>(std::move(inner),
                                                             det, hb));
    }
    world.delay_process(ProcessId{0}, 80'000, 200'000);
    world.run();

    ASSERT_EQ(decisions.size(), 5u) << "seed " << seed;
    for (auto& [i, d] : decisions) {
      EXPECT_EQ(d.value, decisions.begin()->second.value) << "seed " << seed;
    }
  }
}

TEST(TimingAdversary, BftSafeUnderSlowCoordinator) {
  for (std::uint64_t seed : {7ull, 8ull}) {
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(4, seed);
    sim::SimConfig cfg;
    cfg.n = 4;
    cfg.seed = seed;
    sim::Simulation world(cfg);

    bft::BftConfig proto;
    proto.n = 4;
    proto.f = 1;
    proto.muteness.initial_timeout = 30'000;  // aggressive ◇M

    std::map<std::uint32_t, bft::VectorDecision> decisions;
    std::vector<const bft::BftProcess*> views(4, nullptr);
    for (std::uint32_t i = 0; i < 4; ++i) {
      auto proc = std::make_unique<bft::BftProcess>(
          proto, 100 + i, keys.signers[i].get(), keys.verifier,
          [&decisions, i](ProcessId, const bft::VectorDecision& d) {
            decisions.emplace(i, d);
          });
      views[i] = proc.get();
      world.set_actor(ProcessId{i}, std::move(proc));
    }
    world.delay_process(ProcessId{0}, 100'000, 250'000);
    world.run();

    ASSERT_EQ(decisions.size(), 4u) << "seed " << seed;
    for (auto& [i, d] : decisions) {
      EXPECT_EQ(d.entries, decisions.begin()->second.entries);
    }
    // Slowness is NOT misbehaviour: nobody may convict the slow process.
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(views[i]->nonmuteness().faulty_set().empty())
          << "timing attack produced a false conviction";
    }
  }
}

}  // namespace
}  // namespace modubft
