// Tests for the parallel signature-verification pool.
//
// The pool's contract (see crypto/verify_pool.hpp): 0 workers = fully
// synchronous submission-order execution (the deterministic-simulator
// configuration); otherwise the calling thread participates in draining,
// so a batch never deadlocks; verify_all returns the exact failure count;
// all execution is routed through one stats block.  The concurrent-caller
// stress below is a TSan customer (tests/CMakeLists.txt labels this
// binary `threads`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "crypto/hmac_signer.hpp"
#include "crypto/verify_cache.hpp"
#include "crypto/verify_pool.hpp"

namespace modubft::crypto {
namespace {

TEST(VerifyPool, ZeroWorkersRunsInlineInOrder) {
  VerifyPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);

  std::vector<int> order;  // no mutex: the whole batch must run inline
  std::vector<VerifyPool::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i, &order] {
      order.push_back(i);
      return i % 3 != 0;
    });
  }
  const std::size_t failures = pool.verify_all(std::move(jobs));
  EXPECT_EQ(failures, 3u);  // i = 0, 3, 6
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);

  const VerifyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.jobs, 8u);
  EXPECT_EQ(stats.inline_jobs, 8u);
  EXPECT_EQ(stats.dispatched_jobs, 0u);
  EXPECT_EQ(stats.failures, 3u);
}

TEST(VerifyPool, SingleJobBatchRunsInlineEvenWithWorkers) {
  VerifyPool pool(2);
  std::vector<VerifyPool::Job> jobs;
  jobs.push_back([] { return true; });
  EXPECT_EQ(pool.verify_all(std::move(jobs)), 0u);
  const VerifyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.inline_jobs, 1u);
  EXPECT_EQ(stats.dispatched_jobs, 0u);
}

TEST(VerifyPool, VerifyOneIsAccounted) {
  VerifyPool pool(2);
  EXPECT_TRUE(pool.verify_one([] { return true; }));
  EXPECT_FALSE(pool.verify_one([] { return false; }));
  const VerifyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.inline_jobs, 2u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(VerifyPool, ThrowingJobCountsAsFailure) {
  VerifyPool pool(0);
  std::vector<VerifyPool::Job> jobs;
  jobs.push_back([] { return true; });
  jobs.push_back([]() -> bool { throw std::runtime_error("boom"); });
  EXPECT_EQ(pool.verify_all(std::move(jobs)), 1u);
  EXPECT_EQ(pool.stats().failures, 1u);
}

TEST(VerifyPool, ParallelBatchReportsExactFailureCount) {
  VerifyPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::vector<VerifyPool::Job> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back([i] { return i % 4 != 1; });
  }
  EXPECT_EQ(pool.verify_all(std::move(jobs)), 16u);
  const VerifyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.jobs, 64u);
  EXPECT_EQ(stats.inline_jobs + stats.dispatched_jobs, 64u);
  EXPECT_EQ(stats.failures, 16u);
}

// Proves genuine multi-thread execution: 4 jobs that each block until all
// 4 have started can only complete when 4 execution contexts run them
// concurrently — the caller plus the 3 workers.  The caller pops jobs one
// at a time, so exactly 3 land on workers.
TEST(VerifyPool, WorkersAndCallerDrainConcurrently) {
  VerifyPool pool(3);
  std::atomic<int> started{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::vector<VerifyPool::Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back([&started, deadline] {
      started.fetch_add(1);
      while (started.load() < 4) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::yield();
      }
      return true;
    });
  }
  EXPECT_EQ(pool.verify_all(std::move(jobs)), 0u);
  const VerifyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.jobs, 4u);
  EXPECT_EQ(stats.dispatched_jobs, 3u);
  EXPECT_EQ(stats.inline_jobs, 1u);
}

// Many actors share one pool in a scenario run; batches from concurrent
// callers must not interleave their failure accounting.  Jobs go through
// a real CachingVerifier so the cache's internal lock is contended too.
TEST(VerifyPool, ConcurrentCallersKeepBatchesIsolated) {
  constexpr std::uint32_t kN = 4;
  const SignatureSystem keys = HmacScheme{}.make_system(kN, 42);
  const auto cache =
      std::make_shared<CachingVerifier>(keys.verifier, /*capacity=*/256);

  VerifyPool pool(3);
  constexpr int kCallers = 8;
  constexpr int kBatches = 20;
  constexpr int kJobsPerBatch = 16;

  std::atomic<int> wrong_counts{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<VerifyPool::Job> jobs;
        for (int j = 0; j < kJobsPerBatch; ++j) {
          const std::uint32_t signer =
              static_cast<std::uint32_t>((t + b + j) % kN);
          Bytes msg = {static_cast<std::uint8_t>(t),
                       static_cast<std::uint8_t>(b % 7),
                       static_cast<std::uint8_t>(j % 5)};
          Signature sig = keys.signers[signer]->sign(msg);
          const bool corrupt = j % 4 == 0;
          if (corrupt) sig[0] ^= 0xff;
          jobs.push_back([cache, signer, msg = std::move(msg),
                          sig = std::move(sig)] {
            return cache->verify(ProcessId{signer}, msg, sig);
          });
        }
        // Every 4th job is corrupted: exactly 4 failures per batch.
        if (pool.verify_all(std::move(jobs)) != 4u) wrong_counts.fetch_add(1);
      }
    });
  }
  for (std::thread& th : callers) th.join();

  EXPECT_EQ(wrong_counts.load(), 0);
  const VerifyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.batches,
            static_cast<std::uint64_t>(kCallers) * kBatches);
  EXPECT_EQ(stats.jobs,
            static_cast<std::uint64_t>(kCallers) * kBatches * kJobsPerBatch);
  EXPECT_EQ(stats.failures,
            static_cast<std::uint64_t>(kCallers) * kBatches * 4);
  // Every job goes through the cache exactly once (a hit or a miss); the
  // split between the two is schedule-dependent here because corrupt and
  // genuine signatures for the same key overwrite each other's entries.
  // Deterministic hit coverage lives in SmrPipeline.WindowStatsReachConfiguredPeak.
  const VerifyCacheStats cstats = cache->stats();
  EXPECT_EQ(cstats.hits + cstats.misses,
            static_cast<std::uint64_t>(kCallers) * kBatches * kJobsPerBatch);
}

}  // namespace
}  // namespace modubft::crypto
