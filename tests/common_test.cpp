// Unit tests for the common substrate: hex, serialization, RNG, contracts.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"

namespace modubft {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringRoundTrip) {
  EXPECT_EQ(string_of(bytes_of("hello")), "hello");
  EXPECT_TRUE(bytes_of("").empty());
}

TEST(Serial, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.boolean(false);
  w.bytes({1, 2, 3});
  w.str("consensus");

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "consensus");
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serial, TruncatedInputThrows) {
  Writer w;
  w.u32(42);
  Bytes buf = w.data();
  buf.pop_back();
  Reader r(buf);
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(Serial, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // length prefix claiming 100 bytes with no payload
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), SerialError);
}

TEST(Serial, BadBooleanThrows) {
  Writer w;
  w.u8(2);
  Reader r(w.data());
  EXPECT_THROW(r.boolean(), SerialError);
}

TEST(Serial, SeqLenCapEnforced) {
  Writer w;
  w.u32(5000);
  Reader r(w.data());
  EXPECT_THROW(r.seq_len(4096), SerialError);
}

TEST(Serial, TrailingGarbageDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_end(), SerialError);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApprox) {
  Rng r(13);
  double sum = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) sum += r.next_exponential(100.0);
  EXPECT_NEAR(sum / k, 100.0, 5.0);
}

TEST(Rng, BoolProbabilityApprox) {
  Rng r(17);
  int hits = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / k, 0.25, 0.02);
}

TEST(Rng, BoolDegenerateProbabilities) {
  Rng r(19);
  EXPECT_FALSE(r.next_bool(0.0));
  EXPECT_TRUE(r.next_bool(1.0));
  EXPECT_FALSE(r.next_bool(-1.0));
  EXPECT_TRUE(r.next_bool(2.0));
}

TEST(Rng, SplitIndependence) {
  Rng root(23);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Check, ExpectsThrowsOnViolation) {
  EXPECT_THROW(MODUBFT_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(MODUBFT_EXPECTS(1 == 1));
}

TEST(Ids, ProcessIdOrderingAndHash) {
  ProcessId a{1}, b{2};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, (ProcessId{1}));
  EXPECT_NE(std::hash<ProcessId>{}(a), std::hash<ProcessId>{}(b));
}

TEST(Ids, RoundNavigation) {
  Round r{3};
  EXPECT_EQ(r.next().value, 4u);
  EXPECT_EQ(r.prev().value, 2u);
  EXPECT_EQ(Round{0}.prev().value, 0u);
}

TEST(Ids, StreamFormatting) {
  std::ostringstream os;
  os << ProcessId{0} << ' ' << Round{5};
  EXPECT_EQ(os.str(), "p1 r5");
}

}  // namespace
}  // namespace modubft
