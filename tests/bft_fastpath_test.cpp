// Certificate fast path: digest memoization, the verified-signature cache
// and copy-free assembly.  These tests pin the three invariants the
// optimization rests on:
//   1. memoized digests are invalidated by every mutation path, so a cached
//      digest always equals a freshly computed one;
//   2. the CachingVerifier is observationally equivalent to the verifier it
//      wraps — including for adversarial (garbage) signatures — while its
//      LRU bound holds;
//   3. encoded_size() and the wire encoding agree byte-for-byte with the
//      pre-optimization format for every certificate shape.
#include <gtest/gtest.h>

#include <memory>

#include "bft/message.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/verify_cache.hpp"

namespace modubft::bft {
namespace {

constexpr std::uint32_t kN = 4;

class FastPathFixture : public ::testing::Test {
 protected:
  FastPathFixture() : sys_(crypto::HmacScheme{}.make_system(kN, 2026)) {}

  SignedMessage sign(MessageCore core, Certificate cert = {}) const {
    SignedMessage msg;
    msg.core = std::move(core);
    msg.cert = std::move(cert);
    msg.sig = sys_.signers[msg.core.sender.value]->sign(
        signing_bytes(msg.core, msg.cert));
    return msg;
  }

  SignedMessage init_msg(std::uint32_t sender) const {
    MessageCore core;
    core.kind = BftKind::kInit;
    core.sender = ProcessId{sender};
    core.round = Round{0};
    core.init_value = 100 + sender;
    return sign(core);
  }

  SignedMessage next_msg(std::uint32_t sender, std::uint32_t round,
                         Certificate cert = {}) const {
    MessageCore core;
    core.kind = BftKind::kNext;
    core.sender = ProcessId{sender};
    core.round = Round{round};
    return sign(core, std::move(cert));
  }

  /// A CURRENT with an est vector and a nested INIT-quorum certificate —
  /// the deepest shape the happy path produces.
  SignedMessage current_msg() const {
    Certificate inits = Certificate::of({init_msg(0), init_msg(1), init_msg(2)});
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{0};
    core.round = Round{1};
    core.est = {Value{100}, Value{101}, Value{102}, std::nullopt};
    return sign(core, std::move(inits));
  }

  crypto::SignatureSystem sys_;
};

// ------------------------------------------------------------ digest cache

TEST_F(FastPathFixture, CertDigestIsMemoized) {
  Certificate cert = Certificate::of({init_msg(0), init_msg(1)});
  EXPECT_FALSE(cert.digest_cached());
  const crypto::Digest first = cert_digest(cert);
  EXPECT_TRUE(cert.digest_cached());
  EXPECT_EQ(cert_digest(cert), first);  // stable across calls
}

TEST_F(FastPathFixture, AddInvalidatesDigest) {
  Certificate cert = Certificate::of({init_msg(0)});
  const crypto::Digest before = cert_digest(cert);
  cert.add(init_msg(1));
  EXPECT_FALSE(cert.digest_cached());
  EXPECT_NE(cert_digest(cert), before);
}

TEST_F(FastPathFixture, ReplaceInvalidatesDigest) {
  Certificate cert = Certificate::of({init_msg(0), init_msg(1)});
  const crypto::Digest before = cert_digest(cert);
  cert.replace(1, init_msg(2));
  EXPECT_FALSE(cert.digest_cached());
  EXPECT_NE(cert_digest(cert), before);
}

TEST_F(FastPathFixture, MutateMemberInvalidatesDigestAndSigningDigest) {
  Certificate cert = Certificate::of({init_msg(0), init_msg(1)});
  const crypto::Digest cert_before = cert_digest(cert);
  const crypto::Digest sig_before = cert.member_signing_digest(0);

  cert.mutate_member(0, [](SignedMessage& m) { m.core.init_value = 999; });

  EXPECT_FALSE(cert.digest_cached());
  EXPECT_NE(cert_digest(cert), cert_before);
  EXPECT_NE(cert.member_signing_digest(0), sig_before);

  // The freshly computed memo agrees with first-principles hashing.
  const SignedMessage& m = cert.member(0);
  EXPECT_EQ(cert.member_signing_digest(0),
            crypto::sha256(signing_bytes(m.core, m.cert)));
}

TEST_F(FastPathFixture, MemberSigningDigestMatchesSigningBytes) {
  SignedMessage cur = current_msg();
  Certificate cert = Certificate::of({cur});
  const SignedMessage& m = cert.member(0);
  EXPECT_EQ(cert.member_signing_digest(0),
            crypto::sha256(signing_bytes(m.core, m.cert)));
}

TEST_F(FastPathFixture, PruneInvarianceSurvivesMemoization) {
  // Memoize, prune, and check the pruning invariant still holds (the
  // pruned digest must equal the memoized inline digest).
  Certificate cert = Certificate::of({next_msg(0, 1), next_msg(1, 1)});
  const crypto::Digest inline_digest = cert_digest(cert);
  Certificate pruned = prune(cert);
  EXPECT_TRUE(pruned.pruned);
  EXPECT_EQ(cert_digest(pruned), inline_digest);
}

TEST_F(FastPathFixture, SharedMembersShareDigestWork) {
  // Copy-free assembly: copying a certificate shares the member pointers.
  SignedMessage m = current_msg();
  Certificate a = Certificate::of({m});
  Certificate b = a;  // shares members
  EXPECT_EQ(a.member_ptr(0).get(), b.member_ptr(0).get());
  EXPECT_EQ(cert_digest(a), cert_digest(b));
}

// ------------------------------------------------------- verification cache

TEST_F(FastPathFixture, CacheHitsOnRepeatAndStaysSound) {
  auto cache =
      std::make_shared<crypto::CachingVerifier>(sys_.verifier, 64);
  SignedMessage m = init_msg(1);
  const Bytes preimage = signing_bytes(m.core, m.cert);

  EXPECT_TRUE(cache->verify(m.core.sender, preimage, m.sig));
  EXPECT_TRUE(cache->verify(m.core.sender, preimage, m.sig));
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);

  // Soundness: a garbage signature under the SAME (signer, digest) key must
  // not ride the cached positive verdict.
  crypto::Signature garbage = m.sig;
  garbage[0] ^= 0xff;
  EXPECT_FALSE(cache->verify(m.core.sender, preimage, garbage));
  // And the genuine signature still verifies afterwards.
  EXPECT_TRUE(cache->verify(m.core.sender, preimage, m.sig));
}

TEST_F(FastPathFixture, CacheMatchesInnerVerifierOnWrongSigner) {
  auto cache =
      std::make_shared<crypto::CachingVerifier>(sys_.verifier, 64);
  SignedMessage m = init_msg(1);
  const Bytes preimage = signing_bytes(m.core, m.cert);
  EXPECT_FALSE(cache->verify(ProcessId{2}, preimage, m.sig));
  EXPECT_FALSE(cache->verify(ProcessId{2}, preimage, m.sig));
  EXPECT_EQ(cache->verify(ProcessId{2}, preimage, m.sig),
            sys_.verifier->verify(ProcessId{2}, preimage, m.sig));
}

TEST_F(FastPathFixture, VerifyDigestSkipsMaterializeOnHit) {
  auto cache =
      std::make_shared<crypto::CachingVerifier>(sys_.verifier, 64);
  SignedMessage m = init_msg(0);
  const Bytes preimage = signing_bytes(m.core, m.cert);
  const crypto::Digest d = crypto::sha256(preimage);

  int materialized = 0;
  auto materialize = [&]() {
    ++materialized;
    return preimage;
  };
  EXPECT_TRUE(cache->verify_digest(m.core.sender, d, m.sig, materialize));
  EXPECT_EQ(materialized, 1);
  EXPECT_TRUE(cache->verify_digest(m.core.sender, d, m.sig, materialize));
  EXPECT_EQ(materialized, 1);  // hit: the message bytes were never rebuilt
}

TEST_F(FastPathFixture, LruEvictsLeastRecentlyUsed) {
  auto cache = std::make_shared<crypto::CachingVerifier>(sys_.verifier, 2);
  SignedMessage a = init_msg(0), b = init_msg(1), c = init_msg(2);
  const Bytes pa = signing_bytes(a.core, a.cert);
  const Bytes pb = signing_bytes(b.core, b.cert);
  const Bytes pc = signing_bytes(c.core, c.cert);

  EXPECT_TRUE(cache->verify(a.core.sender, pa, a.sig));  // miss {a}
  EXPECT_TRUE(cache->verify(b.core.sender, pb, b.sig));  // miss {a,b}
  EXPECT_TRUE(cache->verify(a.core.sender, pa, a.sig));  // hit, a is MRU
  EXPECT_TRUE(cache->verify(c.core.sender, pc, c.sig));  // miss, evicts b
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->size(), 2u);

  // b was evicted (miss); a survived (hit).  Correctness is unaffected.
  crypto::VerifyCacheStats before = cache->stats();
  EXPECT_TRUE(cache->verify(b.core.sender, pb, b.sig));
  EXPECT_EQ(cache->stats().misses, before.misses + 1);
  EXPECT_TRUE(cache->verify(a.core.sender, pa, a.sig));
}

TEST_F(FastPathFixture, ClearResetsEntriesAndCounters) {
  auto cache = std::make_shared<crypto::CachingVerifier>(sys_.verifier, 8);
  SignedMessage m = init_msg(3);
  const Bytes p = signing_bytes(m.core, m.cert);
  EXPECT_TRUE(cache->verify(m.core.sender, p, m.sig));
  EXPECT_EQ(cache->size(), 1u);
  cache->clear();
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_EQ(cache->stats().misses, 0u);
  // A cleared cache re-verifies from scratch, and correctly so.
  EXPECT_TRUE(cache->verify(m.core.sender, p, m.sig));
  EXPECT_EQ(cache->stats().misses, 1u);
}

// ------------------------------------------------- sizes and wire identity

TEST_F(FastPathFixture, EncodedSizeMatchesEncodingForAllShapes) {
  // empty cert
  SignedMessage flat = init_msg(0);
  EXPECT_EQ(encoded_size(flat), encode_message(flat).size());

  // nested cert
  SignedMessage cur = current_msg();
  EXPECT_EQ(encoded_size(cur), encode_message(cur).size());

  // doubly nested + pruned inner cert
  Certificate nexts = Certificate::of({next_msg(0, 1), next_msg(1, 1)});
  SignedMessage vote = next_msg(2, 2, nexts);
  SignedMessage pruned_vote{vote.core, prune(vote.cert), vote.sig};
  Certificate outer = Certificate::of({cur, vote, pruned_vote});
  SignedMessage top = sign(
      [] {
        MessageCore core;
        core.kind = BftKind::kDecide;
        core.sender = ProcessId{3};
        core.round = Round{2};
        core.est = {Value{100}, Value{101}, Value{102}, std::nullopt};
        return core;
      }(),
      outer);
  EXPECT_EQ(encoded_size(top), encode_message(top).size());
}

TEST_F(FastPathFixture, EncodingUnchangedByDigestMemoization) {
  // Encoding must not depend on whether digests were memoized before or
  // after: the wire format carries no cache state.
  SignedMessage a = current_msg();
  SignedMessage b = a;
  const Bytes cold = encode_message(a);
  (void)cert_digest(b.cert);
  (void)b.cert.member_signing_digest(0);
  EXPECT_EQ(encode_message(b), cold);
}

TEST_F(FastPathFixture, DecodeReencodeRoundTripIsByteIdentical) {
  SignedMessage msg = current_msg();
  const Bytes wire = encode_message(msg);
  SignedMessage back = decode_message(wire);
  EXPECT_EQ(encode_message(back), wire);
  EXPECT_EQ(encoded_size(back), wire.size());
}

// ------------------------------------------------------------ Reader views

TEST(ReaderNested, CarvesAliasedSubRange) {
  Writer w;
  {
    Writer inner;
    inner.u32(7);
    inner.u8(9);
    w.bytes(std::move(inner).take());
  }
  w.u32(42);
  Bytes buf = std::move(w).take();

  Reader r(buf);
  Reader sub = r.nested();
  EXPECT_EQ(sub.remaining(), 5u);
  EXPECT_EQ(sub.u32(), 7u);
  EXPECT_EQ(sub.u8(), 9u);
  EXPECT_TRUE(sub.at_end());
  // The outer reader advanced past the nested range.
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_TRUE(r.at_end());
}

TEST(ReaderNested, RejectsTruncatedLengthPrefix) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_THROW(r.nested(), SerialError);
}

}  // namespace
}  // namespace modubft::bft
