// Tests for the generic transformation pipeline (TransformedActor) and its
// second instantiation, the certified lockstep barrier.
#include <gtest/gtest.h>

#include <map>

#include "bft/lockstep.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "sim/simulation.hpp"

namespace modubft::bft {
namespace {

struct LockstepRun {
  std::map<std::uint32_t, Round> finished;          // pid → final round
  std::map<std::uint32_t, SimTime> finish_time;
  // Snapshots of each correct process's detection state, taken before the
  // simulation (which owns the actors) is destroyed.
  std::vector<std::set<ProcessId>> faulty;
  std::vector<std::vector<FaultRecord>> records;
  sim::RunOutcome outcome;
};

/// A hostile participant: follows the barrier but applies a mutation to its
/// own votes.  Implemented directly against the wire format — a Byzantine
/// process is not obliged to run our pipeline.
class EvilVoter : public sim::Actor {
 public:
  enum class Mode { kDoubleVote, kSkipRound, kGarbageSig, kNoWitness };

  EvilVoter(LockstepConfig config, const crypto::Signer* signer, Mode mode)
      : config_(config), signer_(signer), mode_(mode) {}

  void on_start(sim::Context& ctx) override {
    vote(ctx, Round{1}, Certificate{});
    if (mode_ == Mode::kDoubleVote) vote(ctx, Round{1}, Certificate{});
    if (mode_ == Mode::kSkipRound) vote(ctx, Round{3}, Certificate{});
  }

  void on_message(sim::Context& ctx, ProcessId, const Bytes& payload) override {
    // Follow the barrier: collect enough round-r votes, then vote r+1.
    SignedMessage msg;
    try {
      msg = decode_message(payload);
    } catch (const modubft::SerialError&) {
      return;
    }
    if (msg.core.kind != BftKind::kNext || msg.core.round != round_) return;
    collected_.add(msg);
    if (collected_.size() < config_.quorum()) return;
    Certificate witness =
        mode_ == Mode::kNoWitness ? Certificate{} : collected_;
    collected_ = Certificate{};
    round_ = round_.next();
    if (round_.value > config_.rounds) {
      ctx.stop();
      return;
    }
    vote(ctx, round_, witness);
  }

 private:
  void vote(sim::Context& ctx, Round r, Certificate cert) {
    MessageCore core;
    core.kind = BftKind::kNext;
    core.sender = ctx.id();
    core.round = r;
    SignedMessage msg;
    msg.core = std::move(core);
    msg.cert = std::move(cert);
    msg.sig = signer_->sign(signing_bytes(msg.core, msg.cert));
    if (mode_ == Mode::kGarbageSig && !msg.sig.empty()) msg.sig[0] ^= 0xff;
    ctx.broadcast(encode_message(msg));
  }

  LockstepConfig config_;
  const crypto::Signer* signer_;
  Mode mode_;
  Round round_{1};
  Certificate collected_;
};

LockstepRun run_lockstep(std::uint32_t n, std::uint32_t f,
                         std::uint32_t rounds, std::uint64_t seed,
                         std::optional<EvilVoter::Mode> evil = {},
                         std::optional<SimTime> crash_p_last = {}) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, seed);

  sim::SimConfig sim_cfg;
  sim_cfg.n = n;
  sim_cfg.seed = seed;
  sim::Simulation world(sim_cfg);

  LockstepRun run;
  std::vector<const TransformedActor*> views(n, nullptr);

  LockstepConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.rounds = rounds;

  for (std::uint32_t i = 0; i < n; ++i) {
    const bool is_evil = evil.has_value() && i == n - 1;
    const bool is_crash = crash_p_last.has_value() && i == n - 1;
    if (is_evil) {
      world.set_actor(ProcessId{i}, std::make_unique<EvilVoter>(
                                        cfg, keys.signers[i].get(), *evil));
      continue;
    }
    auto actor = make_lockstep_actor(
        cfg, keys.signers[i].get(), keys.verifier,
        [&run, i](ProcessId, Round r, SimTime t) {
          run.finished.emplace(i, r);
          run.finish_time.emplace(i, t);
        },
        &views[i]);
    world.set_actor(ProcessId{i}, std::move(actor));
    if (is_crash) world.crash_at(ProcessId{i}, *crash_p_last);
  }
  run.outcome = world.run();
  run.faulty.resize(n);
  run.records.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (views[i] == nullptr) continue;  // evil / non-pipeline actor
    run.faulty[i] = views[i]->faulty();
    run.records[i] = views[i]->records();
  }
  return run;
}

TEST(Lockstep, AllProcessesCrossAllBarriers) {
  LockstepRun run = run_lockstep(4, 1, 5, 1);
  ASSERT_EQ(run.finished.size(), 4u);
  for (auto& [i, r] : run.finished) EXPECT_EQ(r.value, 5u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(run.faulty[i].empty());
  }
}

TEST(Lockstep, ToleratesSilentProcess) {
  LockstepRun run = run_lockstep(4, 1, 5, 2, {}, SimTime{0});
  // The three survivors (quorum = 3) finish; the crashed one does not.
  EXPECT_EQ(run.finished.size(), 3u);
  for (auto& [i, r] : run.finished) EXPECT_EQ(r.value, 5u);
}

TEST(Lockstep, LargerGroupAndDepth) {
  LockstepRun run = run_lockstep(7, 2, 10, 3);
  ASSERT_EQ(run.finished.size(), 7u);
  for (auto& [i, r] : run.finished) EXPECT_EQ(r.value, 10u);
}

TEST(Lockstep, DoubleVoterConvicted) {
  LockstepRun run = run_lockstep(4, 1, 5, 4, EvilVoter::Mode::kDoubleVote);
  // Correct processes (p1..p3) finish and convict p4.
  EXPECT_EQ(run.finished.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(run.faulty[i].count(ProcessId{3}))
        << "p" << i + 1 << " did not convict";
    for (const FaultRecord& rec : run.records[i]) {
      EXPECT_EQ(rec.culprit, (ProcessId{3}));
      EXPECT_EQ(rec.kind, FaultKind::kOutOfOrder);
    }
  }
}

TEST(Lockstep, RoundSkipperConvicted) {
  LockstepRun run = run_lockstep(4, 1, 5, 5, EvilVoter::Mode::kSkipRound);
  EXPECT_EQ(run.finished.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(run.faulty[i].count(ProcessId{3}));
  }
}

TEST(Lockstep, GarbageSignatureConvicted) {
  LockstepRun run = run_lockstep(4, 1, 5, 6, EvilVoter::Mode::kGarbageSig);
  EXPECT_EQ(run.finished.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_FALSE(run.records[i].empty());
    EXPECT_EQ(run.records[i][0].kind, FaultKind::kBadSignature);
  }
}

TEST(Lockstep, MissingWitnessConvicted) {
  LockstepRun run = run_lockstep(4, 1, 5, 7, EvilVoter::Mode::kNoWitness);
  EXPECT_EQ(run.finished.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(run.faulty[i].count(ProcessId{3}));
    bool saw_cert_fault = false;
    for (const FaultRecord& rec : run.records[i]) {
      saw_cert_fault |= rec.kind == FaultKind::kBadCertificate;
    }
    EXPECT_TRUE(saw_cert_fault);
  }
}

TEST(Lockstep, PrunedWitnessesStayVerifiable) {
  // Deep barrier with pruning on (the default): witness certificates nested
  // inside votes travel as digests yet every signature still verifies —
  // no convictions of correct processes across 20 rounds.
  LockstepRun run = run_lockstep(4, 1, 20, 8);
  ASSERT_EQ(run.finished.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(run.faulty[i].empty());
  }
}

TEST(Lockstep, DeterministicReplay) {
  LockstepRun a = run_lockstep(5, 1, 6, 9);
  LockstepRun b = run_lockstep(5, 1, 6, 9);
  ASSERT_EQ(a.finish_time.size(), b.finish_time.size());
  for (auto& [i, t] : a.finish_time) EXPECT_EQ(t, b.finish_time.at(i));
}

}  // namespace
}  // namespace modubft::bft
