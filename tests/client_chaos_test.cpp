// Client chaos campaign (ISSUE 9): the request/reply path under live
// adversaries, replica kill/restart, and (on TCP) link faults — see
// adversary/client_campaign.hpp for the attack taxonomy.
//
// Every cell asserts full liveness (every client certifies its whole
// script, the victim rejoins via verified state transfer) plus the
// exactly-once audit (every accepted reply matches the committed log, no
// command applied twice).  The negative control proves the audit works:
// universal forgery + uncritical clients MUST be flagged.
#include <gtest/gtest.h>

#include <chrono>

#include "adversary/client_campaign.hpp"

namespace modubft::adversary {
namespace {

ClientCellConfig cell(ClientAttackKind attack, runtime::Backend substrate,
                      std::uint64_t seed) {
  ClientCellConfig config;
  config.attack = attack;
  config.substrate = substrate;
  config.seed = seed;
  if (substrate != runtime::Backend::kSim) {
    config.budget = std::chrono::milliseconds(60'000);
  }
  return config;
}

// ------------------------------------------------------------- simulator

TEST(ClientChaos, SimNoAttackBaseline) {
  const ClientCellOutcome out =
      run_client_cell(cell(ClientAttackKind::kNone, runtime::Backend::kSim, 3));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, SimDroppedRepliesForceRetryAndFailover) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kDropReplies, runtime::Backend::kSim, 5));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, SimDelayedRepliesCrossRetriesWithoutDuplication) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kDelayReplies, runtime::Backend::kSim, 7));
  EXPECT_TRUE(out.pass) << out.detail;
  EXPECT_EQ(out.result.commit_log_duplicates, 0u);
}

TEST(ClientChaos, SimForgedRepliesNeverCertify) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kForgeReplies, runtime::Backend::kSim, 9));
  EXPECT_TRUE(out.pass) << out.detail;
  // The clients saw the forgeries and rejected them at the content check;
  // none survived into an accepted reply (pass already implies the audit
  // came back clean).
  EXPECT_GT(out.result.run_stats.client.mismatched_replies, 0u);
}

TEST(ClientChaos, SimDeterministicRerun) {
  const ClientCellConfig config =
      cell(ClientAttackKind::kDropReplies, runtime::Backend::kSim, 11);
  const ClientCellOutcome a = run_client_cell(config);
  const ClientCellOutcome b = run_client_cell(config);
  EXPECT_TRUE(a.pass) << a.detail;
  EXPECT_EQ(a.result.stores, b.result.stores);
  EXPECT_EQ(a.result.commit_log, b.result.commit_log);
  EXPECT_EQ(a.result.run_stats.client.accepted,
            b.result.run_stats.client.accepted);
}

// ------------------------------------------------------- negative control

TEST(ClientChaos, NegativeControlFlagsAcceptedForgeries) {
  const ClientControlOutcome out =
      run_client_negative_control(3, runtime::Backend::kSim);
  EXPECT_GT(out.accepted, 0u)
      << "the broken clients accepted nothing — the control proves nothing";
  EXPECT_TRUE(out.flagged)
      << "universal forgery + trust-first-reply was not flagged; the "
         "client audit cannot catch the violation it exists for";
}

// ------------------------------------------------- wall-clock substrates

TEST(ClientChaos, ThreadsDroppedReplies) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kDropReplies, runtime::Backend::kThreads, 13));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, ThreadsForgedReplies) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kForgeReplies, runtime::Backend::kThreads, 15));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, TcpForgedRepliesUnderLinkChaos) {
  ClientCellConfig config =
      cell(ClientAttackKind::kForgeReplies, runtime::Backend::kTcp, 17);
  config.link_chaos = true;
  const ClientCellOutcome out = run_client_cell(config);
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, CellReportRendersJson) {
  const ClientCellOutcome out =
      run_client_cell(cell(ClientAttackKind::kNone, runtime::Backend::kSim, 19));
  const std::string json = to_json(out);
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos) << json;
}

}  // namespace
}  // namespace modubft::adversary
