// Client chaos campaign (ISSUE 9): the request/reply path under live
// adversaries, replica kill/restart, and (on TCP) link faults — see
// adversary/client_campaign.hpp for the attack taxonomy.
//
// Every cell asserts full liveness (every client certifies its whole
// script, the victim rejoins via verified state transfer) plus the
// exactly-once audit (every accepted reply matches the committed log, no
// command applied twice).  The negative control proves the audit works:
// universal forgery + uncritical clients MUST be flagged.
#include <gtest/gtest.h>

#include <chrono>

#include "adversary/client_campaign.hpp"

namespace modubft::adversary {
namespace {

ClientCellConfig cell(ClientAttackKind attack, runtime::Backend substrate,
                      std::uint64_t seed) {
  ClientCellConfig config;
  config.attack = attack;
  config.substrate = substrate;
  config.seed = seed;
  if (substrate != runtime::Backend::kSim) {
    config.budget = std::chrono::milliseconds(60'000);
  }
  return config;
}

// ------------------------------------------------------------- simulator

TEST(ClientChaos, SimNoAttackBaseline) {
  const ClientCellOutcome out =
      run_client_cell(cell(ClientAttackKind::kNone, runtime::Backend::kSim, 3));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, SimDroppedRepliesForceRetryAndFailover) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kDropReplies, runtime::Backend::kSim, 5));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, SimDelayedRepliesCrossRetriesWithoutDuplication) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kDelayReplies, runtime::Backend::kSim, 7));
  EXPECT_TRUE(out.pass) << out.detail;
  EXPECT_EQ(out.result.commit_log_duplicates, 0u);
}

TEST(ClientChaos, SimForgedRepliesNeverCertify) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kForgeReplies, runtime::Backend::kSim, 9));
  EXPECT_TRUE(out.pass) << out.detail;
  // The clients saw the forgeries and rejected them at the content check;
  // none survived into an accepted reply (pass already implies the audit
  // came back clean).
  EXPECT_GT(out.result.run_stats.client.mismatched_replies, 0u);
}

TEST(ClientChaos, SimForgedBodiesRejectedAndRecoveredViaFetch) {
  // The attacker corrupts every relay body it emits while keeping the
  // client's signature.  Honest replicas must refuse the body (the
  // signature check) and recover the genuine bytes through the fetch
  // path, so every operation still certifies against the real content.
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kForgeBodies, runtime::Backend::kSim, 21));
  EXPECT_TRUE(out.pass) << out.detail;
  EXPECT_GT(out.result.run_stats.client.auth_rejects, 0u)
      << "no forged body was ever rejected — the attack did not bite";
  // The genuine bodies came back through the fetch path: parked replicas
  // asked Π and the owning clients re-served signed REQUESTs.
  EXPECT_GT(out.result.run_stats.client.fetches_answered, 0u);
}

TEST(ClientChaos, SimPhantomIdsAreSkippedNotParkedOn) {
  // The attacker proposes fabricated client ids it alone has bodies for.
  // Honest replicas must skip them deterministically — by the eligibility
  // window for the far-future id, by the client's signed SEQ_BOUND /
  // CLIENT_DONE for the one just past the script — instead of parking the
  // commit frontier on a fetch that can never be answered.
  ClientCellConfig config =
      cell(ClientAttackKind::kPhantomIds, runtime::Backend::kSim, 23);
  config.open_loop = true;  // wide window: the just-past phantom is
                            // eligible early, forcing the refutation path
  const ClientCellOutcome out = run_client_cell(config);
  EXPECT_TRUE(out.pass) << out.detail;
  const runtime::ClientSummary& cs = out.result.run_stats.client;
  EXPECT_GT(cs.ineligible_skips, 0u)
      << "no decided id was ever skipped — the phantoms never decided";
  EXPECT_GT(cs.bounds_recorded, 0u);
  EXPECT_GT(cs.bounds_sent, 0u)
      << "no client ever refuted a fetch — the park/refute path idled";
}

TEST(ClientChaos, SimDeterministicRerun) {
  const ClientCellConfig config =
      cell(ClientAttackKind::kDropReplies, runtime::Backend::kSim, 11);
  const ClientCellOutcome a = run_client_cell(config);
  const ClientCellOutcome b = run_client_cell(config);
  EXPECT_TRUE(a.pass) << a.detail;
  EXPECT_EQ(a.result.stores, b.result.stores);
  EXPECT_EQ(a.result.commit_log, b.result.commit_log);
  EXPECT_EQ(a.result.run_stats.client.accepted,
            b.result.run_stats.client.accepted);
}

// ------------------------------------------------------- negative control

TEST(ClientChaos, NegativeControlFlagsAcceptedForgeries) {
  const ClientControlOutcome out =
      run_client_negative_control(3, runtime::Backend::kSim);
  EXPECT_GT(out.accepted, 0u)
      << "the broken clients accepted nothing — the control proves nothing";
  EXPECT_TRUE(out.flagged)
      << "universal forgery + trust-first-reply was not flagged; the "
         "client audit cannot catch the violation it exists for";
}

TEST(ClientChaos, BodyAuthNegativeControl) {
  // Same body forgery with authentication forced off: the corrupted body
  // wins first-write-wins ingest, commits, and the owning client can
  // never certify.  If this configuration still passed, the signature
  // check above would be decoration, not defence.
  const ClientBodyControlOutcome out =
      run_client_body_control(25, runtime::Backend::kSim);
  EXPECT_TRUE(out.landed)
      << "unauthenticated body forgery did not wedge any client ("
      << out.clients_done << "/" << out.clients
      << " finished) — the auth check is not load-bearing";
  EXPECT_GT(out.mismatched_replies, 0u);
}

// ------------------------------------------------- wall-clock substrates

TEST(ClientChaos, ThreadsDroppedReplies) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kDropReplies, runtime::Backend::kThreads, 13));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, ThreadsForgedReplies) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kForgeReplies, runtime::Backend::kThreads, 15));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, ThreadsForgedBodies) {
  const ClientCellOutcome out = run_client_cell(
      cell(ClientAttackKind::kForgeBodies, runtime::Backend::kThreads, 27));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, TcpForgedRepliesUnderLinkChaos) {
  ClientCellConfig config =
      cell(ClientAttackKind::kForgeReplies, runtime::Backend::kTcp, 17);
  config.link_chaos = true;
  const ClientCellOutcome out = run_client_cell(config);
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(ClientChaos, CellReportRendersJson) {
  const ClientCellOutcome out =
      run_client_cell(cell(ClientAttackKind::kNone, runtime::Backend::kSim, 19));
  const std::string json = to_json(out);
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos) << json;
}

}  // namespace
}  // namespace modubft::adversary
