// A genuine equivocation attack on the transformed protocol.
//
// The fault-injection wrapper cannot produce *well-formed* equivocation:
// an honest process stores exactly one n−F INIT quorum, and mutating the
// vector breaks the certificate.  A real attacker, however, can wait for
// ALL n INITs and assemble two different quorums — {p1..p5} and
// {p1,p2,p3,p6,p7} for n = 7 — each certifying a different vector.  Both
// CURRENTs are individually well-formed, so the Figure 4 monitors accept
// them; detection must come from the *cross-message* equivocation check in
// the protocol module (two conflicting certified vectors in one round ⇒
// the coordinator signed both ⇒ provable misbehaviour).
//
// This is the strongest adversary the certificate design admits, and the
// test shows the protocol still satisfies Agreement, Termination, Vector
// Validity and detector reliability under it.
#include <gtest/gtest.h>

#include <map>

#include "bft/bft_consensus.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/split_brain.hpp"
#include "sim/simulation.hpp"

namespace modubft::bft {
namespace {

constexpr std::uint32_t kN = 7;
constexpr std::uint32_t kF = 2;
constexpr std::uint32_t kQuorum = kN - kF;

struct Snapshot {
  std::map<std::uint32_t, VectorDecision> decisions;
  std::vector<std::vector<FaultRecord>> records;
};

Snapshot run_attack(std::uint64_t seed) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, seed);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = seed;
  sim::Simulation world(sim_cfg);

  BftConfig proto;
  proto.n = kN;
  proto.f = kF;

  Snapshot snap;
  std::vector<const BftProcess*> views(kN, nullptr);

  world.set_actor(ProcessId{0},
                  std::make_unique<faults::SplitBrainCoordinator>(
                      kN, keys.signers[0].get(), kQuorum, kN / 2));
  for (std::uint32_t i = 1; i < kN; ++i) {
    auto proc = std::make_unique<BftProcess>(
        proto, 1000 + i, keys.signers[i].get(), keys.verifier,
        [&snap, i](ProcessId, const VectorDecision& d) {
          snap.decisions.emplace(i, d);
        });
    views[i] = proc.get();
    world.set_actor(ProcessId{i}, std::move(proc));
  }
  world.run();

  snap.records.resize(kN);
  for (std::uint32_t i = 1; i < kN; ++i) {
    snap.records[i] = views[i]->nonmuteness().records();
  }
  return snap;
}

TEST(Equivocation, BothVariantsAreIndividuallyWellFormed) {
  // Sanity: the attack really does produce two well-formed CURRENTs, i.e.
  // it cannot be caught by any single-message check.
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 1);
  CertAnalyzer analyzer(kN, kQuorum, keys.verifier);

  auto make_init = [&](std::uint32_t j) {
    MessageCore core;
    core.kind = BftKind::kInit;
    core.sender = ProcessId{j};
    core.round = Round{0};
    core.init_value = 1000 + j;
    SignedMessage m;
    m.core = core;
    m.sig = keys.signers[j]->sign(signing_bytes(m.core, m.cert));
    return m;
  };
  auto make_current = [&](const std::vector<std::uint32_t>& quorum) {
    Certificate cert;
    VectorValue vect(kN, std::nullopt);
    for (std::uint32_t j : quorum) {
      cert.members.push_back(make_init(j));
      vect[j] = 1000 + j;
    }
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{0};
    core.round = Round{1};
    core.est = vect;
    SignedMessage m;
    m.core = std::move(core);
    m.cert = std::move(cert);
    m.sig = keys.signers[0]->sign(signing_bytes(m.core, m.cert));
    return m;
  };

  SignedMessage a = make_current({0, 1, 2, 3, 4});
  SignedMessage b = make_current({0, 1, 2, 5, 6});
  EXPECT_TRUE(analyzer.current_wf(a));
  EXPECT_TRUE(analyzer.current_wf(b));
  EXPECT_NE(a.core.est, b.core.est);
}

TEST(Equivocation, AttackIsDetectedAndMasked) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Snapshot snap = run_attack(seed);

    // All six correct processes decide the same vector.
    ASSERT_EQ(snap.decisions.size(), kN - 1) << "seed " << seed;
    const VectorValue& ref = snap.decisions.begin()->second.entries;
    for (auto& [i, d] : snap.decisions) {
      EXPECT_EQ(d.entries, ref) << "seed " << seed << " p" << i + 1;
    }

    // At least one correct process convicted the coordinator of
    // equivocation, and nobody accused a correct process.
    bool equivocation_seen = false;
    for (std::uint32_t i = 1; i < kN; ++i) {
      for (const FaultRecord& rec : snap.records[i]) {
        EXPECT_EQ(rec.culprit, (ProcessId{0}))
            << "false accusation by p" << i + 1 << " (seed " << seed << ")";
        equivocation_seen |= rec.kind == FaultKind::kEquivocation;
      }
    }
    EXPECT_TRUE(equivocation_seen) << "seed " << seed;
  }
}

TEST(Equivocation, DecidedVectorStillMeetsValidityFloor) {
  Snapshot snap = run_attack(42);
  ASSERT_FALSE(snap.decisions.empty());
  const VectorValue& v = snap.decisions.begin()->second.entries;
  std::uint32_t correct_entries = 0;
  for (std::uint32_t j = 1; j < kN; ++j) {
    if (v[j].has_value() && *v[j] == 1000 + j) ++correct_entries;
  }
  EXPECT_GE(correct_entries, kN - 2 * kF);
}

}  // namespace
}  // namespace modubft::bft
