// A genuine equivocation attack on the transformed protocol.
//
// The fault-injection wrapper cannot produce *well-formed* equivocation:
// an honest process stores exactly one n−F INIT quorum, and mutating the
// vector breaks the certificate.  A real attacker, however, can wait for
// ALL n INITs and assemble two different quorums — {p1..p5} and
// {p1,p2,p3,p6,p7} for n = 7 — each certifying a different vector.  Both
// CURRENTs are individually well-formed, so the Figure 4 monitors accept
// them; detection must come from the *cross-message* equivocation check in
// the protocol module (two conflicting certified vectors in one round ⇒
// the coordinator signed both ⇒ provable misbehaviour).
//
// This is the strongest adversary the certificate design admits, and the
// test shows the protocol still satisfies Agreement, Termination, Vector
// Validity and detector reliability under it.
#include <gtest/gtest.h>

#include <map>

#include "bft/bft_consensus.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_cache.hpp"
#include "faults/split_brain.hpp"
#include "sim/simulation.hpp"

namespace modubft::bft {
namespace {

constexpr std::uint32_t kN = 7;
constexpr std::uint32_t kF = 2;
constexpr std::uint32_t kQuorum = kN - kF;

struct Snapshot {
  std::map<std::uint32_t, VectorDecision> decisions;
  std::vector<std::vector<FaultRecord>> records;
  /// Digest of the full delivery trace (from ‖ to ‖ wire bytes, in
  /// delivery order).  Byte-identical traffic ⇒ equal digests.
  crypto::Digest wire_digest{};
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

Snapshot run_attack(std::uint64_t seed, bool verify_cache = true) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, seed);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = seed;
  sim::Simulation world(sim_cfg);

  BftConfig proto;
  proto.n = kN;
  proto.f = kF;
  proto.verify_cache = verify_cache;

  Snapshot snap;
  crypto::Sha256 trace;
  world.set_delivery_tap([&trace](const sim::Delivery& d) {
    const std::uint8_t ends[2] = {static_cast<std::uint8_t>(d.from.value),
                                  static_cast<std::uint8_t>(d.to.value)};
    trace.update(ends, sizeof ends);
    trace.update(*d.payload);
  });
  std::vector<const BftProcess*> views(kN, nullptr);

  world.set_actor(ProcessId{0},
                  std::make_unique<faults::SplitBrainCoordinator>(
                      kN, keys.signers[0].get(), kQuorum, kN / 2));
  for (std::uint32_t i = 1; i < kN; ++i) {
    auto proc = std::make_unique<BftProcess>(
        proto, 1000 + i, keys.signers[i].get(), keys.verifier,
        [&snap, i](ProcessId, const VectorDecision& d) {
          snap.decisions.emplace(i, d);
        });
    views[i] = proc.get();
    world.set_actor(ProcessId{i}, std::move(proc));
  }
  world.run();

  snap.records.resize(kN);
  for (std::uint32_t i = 1; i < kN; ++i) {
    snap.records[i] = views[i]->nonmuteness().records();
    if (const crypto::CachingVerifier* cache = views[i]->verify_cache()) {
      snap.cache_hits += cache->stats().hits;
      snap.cache_misses += cache->stats().misses;
    }
  }
  snap.wire_digest = trace.finish();
  return snap;
}

TEST(Equivocation, BothVariantsAreIndividuallyWellFormed) {
  // Sanity: the attack really does produce two well-formed CURRENTs, i.e.
  // it cannot be caught by any single-message check.
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 1);
  CertAnalyzer analyzer(kN, kQuorum, keys.verifier);

  auto make_init = [&](std::uint32_t j) {
    MessageCore core;
    core.kind = BftKind::kInit;
    core.sender = ProcessId{j};
    core.round = Round{0};
    core.init_value = 1000 + j;
    SignedMessage m;
    m.core = core;
    m.sig = keys.signers[j]->sign(signing_bytes(m.core, m.cert));
    return m;
  };
  auto make_current = [&](const std::vector<std::uint32_t>& quorum) {
    Certificate cert;
    VectorValue vect(kN, std::nullopt);
    for (std::uint32_t j : quorum) {
      cert.add(make_init(j));
      vect[j] = 1000 + j;
    }
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{0};
    core.round = Round{1};
    core.est = vect;
    SignedMessage m;
    m.core = std::move(core);
    m.cert = std::move(cert);
    m.sig = keys.signers[0]->sign(signing_bytes(m.core, m.cert));
    return m;
  };

  SignedMessage a = make_current({0, 1, 2, 3, 4});
  SignedMessage b = make_current({0, 1, 2, 5, 6});
  EXPECT_TRUE(analyzer.current_wf(a));
  EXPECT_TRUE(analyzer.current_wf(b));
  EXPECT_NE(a.core.est, b.core.est);
}

TEST(Equivocation, AttackIsDetectedAndMasked) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Snapshot snap = run_attack(seed);

    // All six correct processes decide the same vector.
    ASSERT_EQ(snap.decisions.size(), kN - 1) << "seed " << seed;
    const VectorValue& ref = snap.decisions.begin()->second.entries;
    for (auto& [i, d] : snap.decisions) {
      EXPECT_EQ(d.entries, ref) << "seed " << seed << " p" << i + 1;
    }

    // At least one correct process convicted the coordinator of
    // equivocation, and nobody accused a correct process.
    bool equivocation_seen = false;
    for (std::uint32_t i = 1; i < kN; ++i) {
      for (const FaultRecord& rec : snap.records[i]) {
        EXPECT_EQ(rec.culprit, (ProcessId{0}))
            << "false accusation by p" << i + 1 << " (seed " << seed << ")";
        equivocation_seen |= rec.kind == FaultKind::kEquivocation;
      }
    }
    EXPECT_TRUE(equivocation_seen) << "seed " << seed;
  }
}

// Certificate fast path: the verified-signature cache is an optimization,
// never a semantic change.  Under the strongest adversary in this suite the
// cached and uncached runs must be indistinguishable on the wire and in
// every verdict.
TEST(Equivocation, VerifyCacheOnOffEquivalentUnderAttack) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    Snapshot on = run_attack(seed, /*verify_cache=*/true);
    Snapshot off = run_attack(seed, /*verify_cache=*/false);

    // Byte-identical traffic: same messages, same order, same encoding.
    EXPECT_EQ(on.wire_digest, off.wire_digest) << "seed " << seed;

    // Same decisions...
    ASSERT_EQ(on.decisions.size(), off.decisions.size()) << "seed " << seed;
    for (auto& [i, d] : on.decisions) {
      auto it = off.decisions.find(i);
      ASSERT_NE(it, off.decisions.end()) << "seed " << seed << " p" << i + 1;
      EXPECT_EQ(d.entries, it->second.entries) << "seed " << seed;
      EXPECT_EQ(d.round, it->second.round) << "seed " << seed;
    }

    // ...and the same fault verdicts, in the same order.
    for (std::uint32_t i = 1; i < kN; ++i) {
      ASSERT_EQ(on.records[i].size(), off.records[i].size())
          << "seed " << seed << " p" << i + 1;
      for (std::size_t k = 0; k < on.records[i].size(); ++k) {
        EXPECT_EQ(on.records[i][k].culprit, off.records[i][k].culprit);
        EXPECT_EQ(on.records[i][k].kind, off.records[i][k].kind);
      }
    }

    // The cached run actually exercised the cache; the uncached one never
    // touched it.
    EXPECT_GT(on.cache_hits, 0u) << "seed " << seed;
    EXPECT_EQ(off.cache_hits + off.cache_misses, 0u) << "seed " << seed;
  }
}

TEST(Equivocation, DecidedVectorStillMeetsValidityFloor) {
  Snapshot snap = run_attack(42);
  ASSERT_FALSE(snap.decisions.empty());
  const VectorValue& v = snap.decisions.begin()->second.entries;
  std::uint32_t correct_entries = 0;
  for (std::uint32_t j = 1; j < kN; ++j) {
    if (v[j].has_value() && *v[j] == 1000 + j) ++correct_entries;
  }
  EXPECT_GE(correct_entries, kN - 2 * kF);
}

}  // namespace
}  // namespace modubft::bft
