// Tests for the Chandra–Toueg ◇S baseline.
#include <gtest/gtest.h>

#include "faults/scenario.hpp"

namespace modubft {
namespace {

using faults::CrashProtocol;
using faults::CrashScenarioConfig;
using faults::CrashScenarioResult;
using faults::run_crash_scenario;

CrashScenarioConfig base(std::uint32_t n, std::uint64_t seed) {
  CrashScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.protocol = CrashProtocol::kChandraToueg;
  return cfg;
}

TEST(ChandraToueg, FailureFreeDecides) {
  CrashScenarioResult r = run_crash_scenario(base(5, 1));
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  // Participants advance rounds while the DECIDE propagates, so the round a
  // process *records* its decision in can trail the locking round slightly.
  EXPECT_LE(r.max_decision_round.value, 4u);
}

TEST(ChandraToueg, CoordinatorCrash) {
  CrashScenarioConfig cfg = base(5, 2);
  cfg.crash_times = {SimTime{0}, std::nullopt, std::nullopt, std::nullopt,
                     std::nullopt};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_GE(r.max_decision_round.value, 2u);
}

TEST(ChandraToueg, MinorityCrashes) {
  CrashScenarioConfig cfg = base(7, 3);
  cfg.crash_times.assign(7, std::nullopt);
  cfg.crash_times[0] = SimTime{0};
  cfg.crash_times[1] = SimTime{100'000};
  cfg.crash_times[2] = SimTime{200'000};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(ChandraToueg, SurvivesFalseSuspicions) {
  CrashScenarioConfig cfg = base(5, 4);
  cfg.oracle.stabilization_time = 400'000;
  cfg.oracle.false_suspicion_prob = 0.3;
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
}

TEST(ChandraToueg, LockedValueSurvivesRoundChange) {
  // With the round-1 coordinator crashing mid-protocol, any value locked
  // (acked) in round 1 must be preserved by the timestamp rule.  Agreement
  // across deciders is the observable consequence.
  CrashScenarioConfig cfg = base(5, 5);
  cfg.crash_times = {SimTime{500}, std::nullopt, std::nullopt, std::nullopt,
                     std::nullopt};
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
}

struct SweepParam {
  std::uint32_t n;
  std::uint32_t crashes;
  std::uint64_t seed;
};

class ChandraTouegSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ChandraTouegSweep, SafetyAndLiveness) {
  const SweepParam p = GetParam();
  CrashScenarioConfig cfg = base(p.n, p.seed);
  cfg.crash_times.assign(p.n, std::nullopt);
  for (std::uint32_t i = 0; i < p.crashes; ++i) {
    cfg.crash_times[i] = SimTime{i * 30'000};
  }
  CrashScenarioResult r = run_crash_scenario(cfg);
  EXPECT_TRUE(r.termination) << "n=" << p.n << " crashes=" << p.crashes;
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (std::uint32_t n : {3u, 5u, 7u}) {
    for (std::uint32_t crashes = 0; crashes <= (n - 1) / 2; ++crashes) {
      for (std::uint64_t seed : {21u, 22u}) {
        out.push_back({n, crashes, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Resilience, ChandraTouegSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           const SweepParam& p = info.param;
                           return "n" + std::to_string(p.n) + "_c" +
                                  std::to_string(p.crashes) + "_s" +
                                  std::to_string(p.seed);
                         });

TEST(ChandraToueg, AgreesWithHurfinRaynalOnValidity) {
  // Both protocols must decide a proposed value; this guards against
  // decode/encode asymmetries between the two users of the shared codec.
  CrashScenarioResult hr = run_crash_scenario(
      [] { auto c = base(5, 6); c.protocol = CrashProtocol::kHurfinRaynal;
           return c; }());
  CrashScenarioResult ct = run_crash_scenario(base(5, 6));
  EXPECT_TRUE(hr.validity);
  EXPECT_TRUE(ct.validity);
}

}  // namespace
}  // namespace modubft
