// Kill/restart recovery on the wall-clock substrates: the same certified
// state transfer that the sim tests pin down must survive real threads,
// real mailboxes and real sockets — dormant node threads, restart while
// frames are in flight, recovery racing live consensus traffic.  The
// whole file runs under TSan in scripts/run_sanitizers.sh (labels
// threads/tcp/recovery), which is what makes the restart path's handoff
// of the node's actor, timers and rng stream a checked property instead
// of a hope.
#include <gtest/gtest.h>

#include "faults/scenario.hpp"
#include "smr/replica.hpp"

namespace modubft {
namespace {

faults::SmrScenarioConfig wall_clock_scenario(runtime::Backend substrate,
                                              smr::Backend backend,
                                              std::uint64_t seed) {
  faults::SmrScenarioConfig sc;
  sc.n = 4;
  sc.f = 1;
  sc.seed = seed;
  sc.substrate = substrate;
  sc.backend = backend;
  sc.window = 4;
  sc.batch = 2;
  sc.checkpoint_interval = 8;
  for (std::uint32_t c = 1; c <= 200; ++c) {
    smr::Command cmd;
    cmd.id = c;
    cmd.key = "key" + std::to_string(c % 8);
    cmd.op = c % 5 == 0 ? smr::Command::Op::kDel : smr::Command::Op::kPut;
    if (cmd.op == smr::Command::Op::kPut) cmd.value = "v" + std::to_string(c);
    sc.workload.push_back(cmd);
  }
  sc.slots = 100;
  sc.budget = std::chrono::milliseconds(30'000);
  // Wall-clock instants: kill while the run is mid-flight, restart after
  // the survivors have certified further checkpoints (the dormancy loop
  // must discard the victim's stale mailbox the whole time).
  const SimTime kill = substrate == runtime::Backend::kTcp ? 5'000 : 3'000;
  const SimTime back = substrate == runtime::Backend::kTcp ? 80'000 : 60'000;
  sc.crashes.push_back({ProcessId{2}, kill, back});
  return sc;
}

void expect_recovered(const faults::SmrScenarioResult& r) {
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.all_committed);
  EXPECT_TRUE(r.stores_agree);
  EXPECT_EQ(r.recovered.count(2), 1u);
  EXPECT_GT(r.run_stats.pipeline.recovery_installs, 0u);
  EXPECT_GT(r.run_stats.pipeline.checkpoint_certs, 0u);
}

TEST(RecoveryThreads, CrashBackendKillRestartRecovers) {
  expect_recovered(faults::run_smr_scenario(wall_clock_scenario(
      runtime::Backend::kThreads, smr::Backend::kCrashHurfinRaynal, 21)));
}

TEST(RecoveryThreads, ByzantineBackendKillRestartRecovers) {
  expect_recovered(faults::run_smr_scenario(wall_clock_scenario(
      runtime::Backend::kThreads, smr::Backend::kByzantine, 22)));
}

// The TSan determinism variant: not bit-identical stores across runs (a
// wall-clock substrate schedules freely) but the invariant determinism
// protects — every run, whatever the interleaving, converges every correct
// replica (including the restarted one) onto one store.
TEST(RecoveryThreads, RestartRacesConvergeAcrossSeeds) {
  for (std::uint64_t seed : {31, 32}) {
    const faults::SmrScenarioResult r = faults::run_smr_scenario(
        wall_clock_scenario(runtime::Backend::kThreads,
                            smr::Backend::kCrashHurfinRaynal, seed));
    EXPECT_TRUE(r.clean) << "seed " << seed;
    EXPECT_TRUE(r.stores_agree) << "seed " << seed;
    EXPECT_EQ(r.recovered.count(2), 1u) << "seed " << seed;
  }
}

TEST(RecoveryTcp, CrashBackendKillRestartRecovers) {
  expect_recovered(faults::run_smr_scenario(wall_clock_scenario(
      runtime::Backend::kTcp, smr::Backend::kCrashHurfinRaynal, 23)));
}

TEST(RecoveryTcp, ByzantineBackendKillRestartRecovers) {
  expect_recovered(faults::run_smr_scenario(wall_clock_scenario(
      runtime::Backend::kTcp, smr::Backend::kByzantine, 24)));
}

}  // namespace
}  // namespace modubft
