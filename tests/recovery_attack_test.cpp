// Recovery under active Byzantine attack (adversary/recovery_campaign.hpp):
// a victim is killed and restarted while an attacker replica forges
// checkpoint votes and fabricates or corrupts STATE_RESP frames.  Every
// sound cell must end with the victim holding the correct quorum's store
// and zero audit violations; the negative control proves the audit can
// catch the planted violation when verification is switched off.
#include <gtest/gtest.h>

#include "adversary/recovery_campaign.hpp"

namespace modubft {
namespace {

using adversary::RecoveryAttackKind;
using adversary::RecoveryCellConfig;
using adversary::RecoveryCellOutcome;
using adversary::run_recovery_cell;

RecoveryCellConfig cell(RecoveryAttackKind attack, runtime::Backend substrate,
                        std::uint64_t seed) {
  RecoveryCellConfig config;
  config.attack = attack;
  config.substrate = substrate;
  config.seed = seed;
  if (substrate != runtime::Backend::kSim) {
    // Wall-clock substrates need a longer run and later instants.
    config.commands = 200;
    config.checkpoint_interval = 8;
    config.kill_at = substrate == runtime::Backend::kTcp ? 5'000 : 3'000;
    config.restart_at = substrate == runtime::Backend::kTcp ? 80'000 : 60'000;
    config.budget = std::chrono::milliseconds(30'000);
  }
  return config;
}

TEST(RecoveryAttack, ForgedCheckpointCellSim) {
  const RecoveryCellOutcome out =
      run_recovery_cell(cell(RecoveryAttackKind::kForgedCheckpoint,
                             runtime::Backend::kSim, 41));
  EXPECT_TRUE(out.pass) << out.detail;
  EXPECT_TRUE(out.violations.empty());
}

TEST(RecoveryAttack, CorruptStateRespCellSim) {
  const RecoveryCellOutcome out =
      run_recovery_cell(cell(RecoveryAttackKind::kCorruptStateResp,
                             runtime::Backend::kSim, 42));
  EXPECT_TRUE(out.pass) << out.detail;
  EXPECT_TRUE(out.violations.empty());
}

TEST(RecoveryAttack, ForgedCheckpointCellThreads) {
  const RecoveryCellOutcome out =
      run_recovery_cell(cell(RecoveryAttackKind::kForgedCheckpoint,
                             runtime::Backend::kThreads, 43));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST(RecoveryAttack, CorruptStateRespCellTcp) {
  const RecoveryCellOutcome out =
      run_recovery_cell(cell(RecoveryAttackKind::kCorruptStateResp,
                             runtime::Backend::kTcp, 44));
  EXPECT_TRUE(out.pass) << out.detail;
}

// The audit itself, unit-level: a restarted replica whose store differs
// from the quorum store is a named violation.
TEST(RecoveryAttack, AuditFlagsDivergentRecoveredStore) {
  faults::SmrScenarioResult result;
  result.stores[0] = {{"k", "v"}};
  result.stores[1] = {{"k", "v"}};
  result.stores[2] = {{"k", "v"}};
  result.stores[3] = {{"k", "FORGED"}};
  result.recovered = {3};
  const auto violations =
      adversary::audit_recovered_stores(result, {3}, /*quorum=*/3);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind,
            adversary::ViolationKind::kRecoveredStoreMismatch);
}

TEST(RecoveryAttack, AuditFlagsNeverInstalled) {
  faults::SmrScenarioResult result;
  result.stores[0] = {{"k", "v"}};
  result.stores[1] = {{"k", "v"}};
  result.stores[2] = {{"k", "v"}};
  result.stores[3] = {{"k", "v"}};
  result.recovered = {};  // p4 restarted but never installed state
  const auto violations =
      adversary::audit_recovered_stores(result, {3}, /*quorum=*/3);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind,
            adversary::ViolationKind::kRecoveredStoreMismatch);
}

// Negative control: all peers forge, the victim installs unverified state
// — the harness must flag the planted kRecoveredStoreMismatch, or a clean
// report from the sound cells means nothing.
TEST(RecoveryAttack, NegativeControlFlagsPlantedViolation) {
  const adversary::RecoveryControlOutcome out =
      adversary::run_recovery_negative_control(45, runtime::Backend::kSim);
  EXPECT_TRUE(out.flagged);
  EXPECT_FALSE(out.violations.empty());
  // The victim really did install the fabricated state.
  EXPECT_EQ(out.installed.count("forged"), 1u);
}

}  // namespace
}  // namespace modubft
