// Coverage for pieces not owned by another suite: the logger, SMR under
// failure-detector mistakes, the lockstep barrier over RSA signatures, and
// a large-group soak at the paper's maximum resilience.
#include <gtest/gtest.h>

#include <map>

#include "bft/lockstep.hpp"
#include "common/log.hpp"
#include "crypto/rsa64.hpp"
#include "faults/scenario.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace modubft {
namespace {

TEST(Log, LevelGatingAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  // Nothing observable to assert on stderr without capturing it; the point
  // is that these calls are safe at every level.
  log_trace("trace ", 1);
  log_debug("debug ", 2);
  log_info("info ", 3);
  log_warn("warn ", 4);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
  set_log_level(before);
}

TEST(SmrCrash, SurvivesFalseSuspicions) {
  // FD mistakes during replication: slots may burn extra rounds, but the
  // stores must still converge identically.
  constexpr std::uint32_t kN = 5;
  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 31;
  sim::Simulation world(sim_cfg);

  std::vector<smr::Replica*> replicas(kN, nullptr);
  std::vector<smr::Command> workload = {
      {1, smr::Command::Op::kPut, "a", "1"},
      {2, smr::Command::Op::kPut, "b", "2"},
      {3, smr::Command::Op::kDel, "a", ""},
      {4, smr::Command::Op::kPut, "c", "4"},
  };
  for (std::uint32_t i = 0; i < kN; ++i) {
    fd::OracleConfig oracle;
    oracle.stabilization_time = 150'000;
    oracle.false_suspicion_prob = 0.3;
    oracle.seed = 100 + i;
    auto detector = std::make_shared<fd::OracleDetector>(
        std::vector<std::optional<SimTime>>(kN, std::nullopt), oracle);
    smr::ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = smr::Backend::kCrashHurfinRaynal;
    cfg.slots = workload.size();
    cfg.detector = detector;
    auto replica = std::make_unique<smr::Replica>(cfg, workload,
                                                  smr::CommitFn{});
    replicas[i] = replica.get();
    world.set_actor(ProcessId{i}, std::move(replica));
  }
  world.run();
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(replicas[i]->committed_slots(), workload.size());
    EXPECT_EQ(replicas[i]->store().contents(),
              replicas[0]->store().contents());
  }
  EXPECT_EQ(replicas[0]->store().get("a"), std::nullopt);
  EXPECT_EQ(replicas[0]->store().get("c"), "4");
}

TEST(Lockstep, RunsOverRsaSignatures) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::Rsa64Scheme{}.make_system(kN, 17);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 17;
  sim::Simulation world(sim_cfg);

  bft::LockstepConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  cfg.rounds = 6;

  std::map<std::uint32_t, Round> finished;
  for (std::uint32_t i = 0; i < kN; ++i) {
    world.set_actor(ProcessId{i},
                    bft::make_lockstep_actor(
                        cfg, keys.signers[i].get(), keys.verifier,
                        [&finished, i](ProcessId, Round r, SimTime) {
                          finished.emplace(i, r);
                        }));
  }
  world.run();
  ASSERT_EQ(finished.size(), kN);
  for (auto& [i, r] : finished) EXPECT_EQ(r.value, 6u);
}

TEST(LargeGroup, ThirteenProcessesFourByzantine) {
  // n = 13: C = ⌊12/3⌋ = 4 = F_max.  The largest stock configuration, with
  // a hostile mix occupying all four fault slots.
  faults::BftScenarioConfig cfg;
  cfg.n = 13;
  cfg.f = 4;
  cfg.seed = 41;
  const faults::Behavior mix[] = {
      faults::Behavior::kMute, faults::Behavior::kCorruptVector,
      faults::Behavior::kBadSignature, faults::Behavior::kDuplicateCurrent};
  for (std::uint32_t i = 0; i < 4; ++i) {
    faults::FaultSpec spec;
    spec.who = ProcessId{i};
    spec.behavior = mix[i];
    cfg.faults.push_back(spec);
  }
  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.vector_validity);
  EXPECT_TRUE(r.detectors_reliable);
  EXPECT_GE(r.min_correct_entries, 5u);  // n − 2F = 5
}

TEST(LargeGroup, ThirteenProcessesDeterministic) {
  faults::BftScenarioConfig cfg;
  cfg.n = 13;
  cfg.f = 4;
  cfg.seed = 43;
  faults::FaultSpec spec;
  spec.who = ProcessId{0};
  spec.behavior = faults::Behavior::kMute;
  cfg.faults = {spec};
  faults::BftScenarioResult a = faults::run_bft_scenario(cfg);
  faults::BftScenarioResult b = faults::run_bft_scenario(cfg);
  EXPECT_EQ(a.last_decision_time, b.last_decision_time);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);
}

}  // namespace
}  // namespace modubft
