// Unit tests for the link-fault vocabulary and its deterministic
// scheduling: same seed → same schedule, distinct links → independent
// schedules, caps and wildcards behave as specified.  No sockets here —
// the injector is driven directly, which is exactly what makes chaos runs
// replayable.
#include <gtest/gtest.h>

#include "faults/link_fault.hpp"
#include "transport/link_faults.hpp"

namespace modubft::transport {
namespace {

faults::LinkFaultSpec noisy_spec() {
  faults::LinkFaultSpec spec;
  spec.kill_prob = 0.08;
  spec.truncate_prob = 0.05;
  spec.flip_prob = 0.05;
  spec.delay_prob = 0.2;
  spec.delay_mean_us = 300;
  spec.kill_at_attempts = {0, 17};
  return spec;
}

TEST(LinkFaults, SameSeedSameSchedule) {
  const LinkFaultPlan plan_a({noisy_spec()}, 42);
  const LinkFaultPlan plan_b({noisy_spec()}, 42);
  auto inj_a = plan_a.make_injector(ProcessId{0}, ProcessId{1});
  auto inj_b = plan_b.make_injector(ProcessId{0}, ProcessId{1});
  ASSERT_NE(inj_a, nullptr);
  ASSERT_NE(inj_b, nullptr);
  for (int i = 0; i < 500; ++i) {
    const std::size_t wire_len = 16 + static_cast<std::size_t>(i % 113);
    const FrameFaultDecision a = inj_a->next_attempt(wire_len);
    const FrameFaultDecision b = inj_b->next_attempt(wire_len);
    EXPECT_EQ(a.kill_before, b.kill_before) << "attempt " << i;
    EXPECT_EQ(a.truncate, b.truncate) << "attempt " << i;
    EXPECT_EQ(a.truncate_prefix, b.truncate_prefix) << "attempt " << i;
    EXPECT_EQ(a.flip, b.flip) << "attempt " << i;
    EXPECT_EQ(a.flip_offset, b.flip_offset) << "attempt " << i;
    EXPECT_EQ(a.delay_us, b.delay_us) << "attempt " << i;
  }
  EXPECT_EQ(inj_a->events(), inj_b->events());
  EXPECT_FALSE(inj_a->events().empty());
}

TEST(LinkFaults, DifferentSeedsDiverge) {
  const LinkFaultPlan plan_a({noisy_spec()}, 1);
  const LinkFaultPlan plan_b({noisy_spec()}, 2);
  auto inj_a = plan_a.make_injector(ProcessId{0}, ProcessId{1});
  auto inj_b = plan_b.make_injector(ProcessId{0}, ProcessId{1});
  for (int i = 0; i < 500; ++i) {
    inj_a->next_attempt(64);
    inj_b->next_attempt(64);
  }
  // The deterministic kill points coincide, but the random parts of the
  // schedules must not.
  EXPECT_NE(inj_a->events(), inj_b->events());
}

TEST(LinkFaults, DistinctLinksGetIndependentSchedules) {
  const LinkFaultPlan plan({noisy_spec()}, 7);
  auto inj_ab = plan.make_injector(ProcessId{0}, ProcessId{1});
  auto inj_ba = plan.make_injector(ProcessId{1}, ProcessId{0});
  for (int i = 0; i < 500; ++i) {
    inj_ab->next_attempt(64);
    inj_ba->next_attempt(64);
  }
  EXPECT_NE(inj_ab->events(), inj_ba->events());
}

TEST(LinkFaults, DeterministicKillPointsFire) {
  faults::LinkFaultSpec spec;
  spec.kill_at_attempts = {0, 3};
  const LinkFaultPlan plan({spec}, 5);
  auto inj = plan.make_injector(ProcessId{2}, ProcessId{0});
  for (std::uint64_t i = 0; i < 6; ++i) {
    const FrameFaultDecision d = inj->next_attempt(32);
    EXPECT_EQ(d.kill_before, i == 0 || i == 3) << "attempt " << i;
  }
  ASSERT_EQ(inj->events().size(), 2u);
  EXPECT_EQ(inj->events()[0].kind, faults::LinkFaultKind::kKill);
  EXPECT_EQ(inj->events()[0].attempt, 0u);
  EXPECT_EQ(inj->events()[1].attempt, 3u);
}

TEST(LinkFaults, RandomFaultCapIsHonored) {
  faults::LinkFaultSpec spec;
  spec.kill_prob = 1.0;  // would kill every attempt without the cap
  spec.max_random_faults = 3;
  const LinkFaultPlan plan({spec}, 11);
  auto inj = plan.make_injector(ProcessId{0}, ProcessId{1});
  std::uint64_t kills = 0;
  for (int i = 0; i < 100; ++i) {
    if (inj->next_attempt(32).kill_before) ++kills;
  }
  EXPECT_EQ(kills, 3u);
}

TEST(LinkFaults, SpecMatchingSelectsLinks) {
  faults::LinkFaultSpec targeted;
  targeted.from = ProcessId{0};
  targeted.to = ProcessId{2};
  targeted.kill_prob = 1.0;
  const LinkFaultPlan plan({targeted}, 3);
  EXPECT_NE(plan.make_injector(ProcessId{0}, ProcessId{2}), nullptr);
  EXPECT_EQ(plan.make_injector(ProcessId{0}, ProcessId{1}), nullptr);
  EXPECT_EQ(plan.make_injector(ProcessId{2}, ProcessId{0}), nullptr);

  faults::LinkFaultSpec from_only;
  from_only.from = ProcessId{1};
  const LinkFaultPlan plan2({from_only}, 3);
  EXPECT_NE(plan2.make_injector(ProcessId{1}, ProcessId{0}), nullptr);
  EXPECT_NE(plan2.make_injector(ProcessId{1}, ProcessId{3}), nullptr);
  EXPECT_EQ(plan2.make_injector(ProcessId{0}, ProcessId{1}), nullptr);
}

TEST(LinkFaults, ThrottleAndDelayComposeWithDisruption) {
  faults::LinkFaultSpec spec;
  spec.throttle_chunk_bytes = 8;
  spec.kill_at_attempts = {0};
  const LinkFaultPlan plan({spec}, 9);
  auto inj = plan.make_injector(ProcessId{0}, ProcessId{1});
  const FrameFaultDecision d = inj->next_attempt(64);
  EXPECT_TRUE(d.kill_before);
  EXPECT_EQ(d.throttle_chunk, 8u);
}

TEST(LinkFaults, KillEveryLinkHelperCoversAllLinks) {
  const LinkFaultPlan plan = LinkFaultPlan::kill_every_link(0.0, 13);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      auto inj = plan.make_injector(ProcessId{i}, ProcessId{j});
      ASSERT_NE(inj, nullptr);
      EXPECT_TRUE(inj->next_attempt(32).kill_before);
      EXPECT_FALSE(inj->next_attempt(32).kill_before);
    }
  }
}

TEST(LinkFaults, KindNamesAreStable) {
  using faults::LinkFaultKind;
  EXPECT_STREQ(faults::link_fault_kind_name(LinkFaultKind::kKill), "kill");
  EXPECT_STREQ(faults::link_fault_kind_name(LinkFaultKind::kFlip), "flip");
  EXPECT_STREQ(faults::link_fault_kind_name(LinkFaultKind::kTruncate),
               "truncate");
}

}  // namespace
}  // namespace modubft::transport
