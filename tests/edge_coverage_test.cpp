// Last-mile edge coverage: TCP frame caps, SMR no-op slots, scenario
// proposal plumbing, and detector accessors.
#include <gtest/gtest.h>

#include <atomic>

#include "faults/scenario.hpp"
#include "fd/heartbeat_fd.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"
#include "transport/tcp_cluster.hpp"

namespace modubft {
namespace {

TEST(TcpEdge, OversizedFrameClosesOnlyThatChannel) {
  class BigSender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.send(ProcessId{1}, Bytes(2048, 0xaa));  // over the cap
      ctx.send(ProcessId{1}, Bytes(16, 0xbb));    // never arrives (channel dead)
      ctx.stop();
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class SmallSender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.send(ProcessId{1}, Bytes(16, 0xcc));
      ctx.stop();
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class Counter final : public sim::Actor {
   public:
    Counter(std::atomic<int>* big, std::atomic<int>* small)
        : big_(big), small_(small) {}
    void on_message(sim::Context& ctx, ProcessId from, const Bytes&) override {
      if (from == ProcessId{0}) ++*big_;
      if (from == ProcessId{2}) ++*small_;
      if (small_->load() >= 1) ctx.stop();
    }
   private:
    std::atomic<int>* big_;
    std::atomic<int>* small_;
  };

  transport::TcpClusterConfig cfg;
  cfg.n = 3;
  cfg.budget = std::chrono::milliseconds(2000);
  cfg.max_frame_bytes = 1024;
  transport::TcpCluster cluster(cfg);
  std::atomic<int> from_big{0}, from_small{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<BigSender>());
  cluster.set_actor(ProcessId{1},
                    std::make_unique<Counter>(&from_big, &from_small));
  cluster.set_actor(ProcessId{2}, std::make_unique<SmallSender>());
  cluster.run();
  EXPECT_EQ(from_big.load(), 0) << "oversized channel should be dropped";
  EXPECT_EQ(from_small.load(), 1) << "other channels must be unaffected";
}

TEST(SmrEdge, ExtraSlotsCommitNoOps) {
  constexpr std::uint32_t kN = 4;
  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 51;
  sim::Simulation world(sim_cfg);

  std::vector<smr::Command> workload = {
      {1, smr::Command::Op::kPut, "only", "one"},
  };
  std::vector<smr::Replica*> replicas(kN, nullptr);
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto detector = std::make_shared<fd::OracleDetector>(
        std::vector<std::optional<SimTime>>(kN, std::nullopt),
        fd::OracleConfig{});
    smr::ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = smr::Backend::kCrashHurfinRaynal;
    cfg.slots = 3;  // two more than there are commands
    cfg.detector = detector;
    auto replica = std::make_unique<smr::Replica>(cfg, workload,
                                                  smr::CommitFn{});
    replicas[i] = replica.get();
    world.set_actor(ProcessId{i}, std::move(replica));
  }
  world.run();
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(replicas[i]->committed_slots(), 3u);
    EXPECT_EQ(replicas[i]->store().applied_count(), 1u);
    EXPECT_EQ(replicas[i]->store().get("only"), "one");
  }
}

TEST(ScenarioEdge, ExplicitProposalsAreUsed) {
  faults::BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 53;
  cfg.proposals = {11, 22, 33, 44};
  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
  ASSERT_TRUE(r.termination);
  const auto& vect = r.decisions.begin()->second.entries;
  for (std::uint32_t j = 0; j < 4; ++j) {
    if (vect[j].has_value()) {
      EXPECT_EQ(*vect[j], (j + 1) * 11) << "entry " << j;
    }
  }
}

TEST(ScenarioEdge, ProposalArityValidated) {
  faults::BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.proposals = {1, 2};  // wrong arity
  EXPECT_THROW(faults::run_bft_scenario(cfg), ContractViolation);
}

TEST(ScenarioEdge, DeliveryTapObservesScenario) {
  faults::BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 54;
  std::uint64_t taps = 0;
  cfg.delivery_tap = [&taps](const sim::Delivery&) { ++taps; };
  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_EQ(taps, r.net.messages_delivered);
}

TEST(DetectorEdge, HeartbeatSuspectedSetAndTimeouts) {
  fd::HeartbeatConfig cfg;
  cfg.initial_timeout = 1000;
  fd::HeartbeatDetector fd(3, ProcessId{0}, cfg);
  fd.record_alive(ProcessId{1}, 0);
  fd.record_alive(ProcessId{2}, 2000);
  auto set = fd.suspected_set(3, 2500);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.count(ProcessId{1}));
  EXPECT_EQ(fd.timeout_of(ProcessId{2}), SimTime{1000});
}

TEST(ScenarioEdge, CrashScenarioRejectsWrongCrashArity) {
  faults::CrashScenarioConfig cfg;
  cfg.n = 4;
  cfg.crash_times = {std::nullopt, std::nullopt};  // 2 != 4 and non-empty
  EXPECT_THROW(faults::run_crash_scenario(cfg), ContractViolation);
}

}  // namespace
}  // namespace modubft
