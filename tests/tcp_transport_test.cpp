// Tests for the TCP loopback cluster: framing, FIFO over real sockets,
// the consensus protocols end-to-end on the socket substrate, and the
// hardened hello/frame parsing against malformed peers.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "bft/bft_consensus.hpp"
#include "common/serial.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/byzantine.hpp"
#include "fd/oracle_fd.hpp"
#include "transport/resilient_channel.hpp"
#include "transport/tcp_cluster.hpp"

namespace modubft::transport {
namespace {

TEST(TcpCluster, FifoFramingOverSockets) {
  class Pinger final : public sim::Actor {
   public:
    Pinger(std::atomic<int>* done, int count) : done_(done), count_(count) {}
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < count_; ++i) {
        Writer w;
        w.u32(static_cast<std::uint32_t>(i));
        // Vary sizes to exercise partial reads and coalesced writes.
        w.raw(Bytes(static_cast<std::size_t>(i % 97), 0xab));
        ctx.send(ProcessId{1}, std::move(w).take());
      }
    }
    void on_message(sim::Context& ctx, ProcessId, const Bytes& payload) override {
      Reader r(payload);
      EXPECT_EQ(r.u32(), 0xdeadbeefu);
      done_->store(1);
      ctx.stop();
    }
   private:
    std::atomic<int>* done_;
    int count_;
  };

  class Checker final : public sim::Actor {
   public:
    explicit Checker(int count) : count_(count) {}
    void on_message(sim::Context& ctx, ProcessId from, const Bytes& payload) override {
      if (from != ProcessId{0}) return;
      Reader r(payload);
      EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(next_)) << "FIFO broken";
      EXPECT_EQ(r.remaining(), static_cast<std::size_t>(next_ % 97));
      ++next_;
      if (next_ == count_) {
        Writer w;
        w.u32(0xdeadbeef);
        ctx.send(ProcessId{0}, std::move(w).take());
        ctx.stop();
      }
    }
   private:
    int count_;
    int next_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(8000);
  TcpCluster cluster(cfg);
  std::atomic<int> done{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<Pinger>(&done, 500));
  cluster.set_actor(ProcessId{1}, std::make_unique<Checker>(500));
  EXPECT_TRUE(cluster.run());
  EXPECT_EQ(done.load(), 1);
  EXPECT_GE(cluster.frames_sent(), 501u);
}

TEST(TcpCluster, HurfinRaynalOverSockets) {
  constexpr std::uint32_t kN = 5;
  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(10'000);
  TcpCluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, consensus::Decision> decisions;
  auto detector = std::make_shared<fd::OracleDetector>(
      std::vector<std::optional<SimTime>>(kN, std::nullopt),
      fd::OracleConfig{});

  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<consensus::HurfinRaynalActor>(
            kN, 700 + i, detector,
            [&mu, &decisions, i](ProcessId, const consensus::Decision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }
  EXPECT_TRUE(cluster.run());
  ASSERT_EQ(decisions.size(), kN);
  for (auto& [i, d] : decisions) {
    EXPECT_EQ(d.value, decisions.begin()->second.value);
  }
}

TEST(TcpCluster, BftConsensusOverSockets) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 33);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  proto.muteness.initial_timeout = 1'000'000;  // wall clock: be generous
  proto.suspicion_poll_period = 100'000;

  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(10'000);
  TcpCluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;
  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<bft::BftProcess>(
            proto, 800 + i, keys.signers[i].get(), keys.verifier,
            [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }
  EXPECT_TRUE(cluster.run());
  ASSERT_EQ(decisions.size(), kN);
  const auto& ref = decisions.begin()->second.entries;
  for (auto& [i, d] : decisions) EXPECT_EQ(d.entries, ref);
}

TEST(TcpCluster, ByzantineCorrupterOverSockets) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 37);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  proto.muteness.initial_timeout = 1'000'000;
  proto.suspicion_poll_period = 100'000;

  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(10'000);
  TcpCluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto proc = std::make_unique<bft::BftProcess>(
        proto, 800 + i, keys.signers[i].get(), keys.verifier,
        [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
          std::lock_guard<std::mutex> lock(mu);
          decisions.emplace(i, d);
        });
    if (i == 0) {
      faults::FaultSpec spec;
      spec.who = ProcessId{0};
      spec.behavior = faults::Behavior::kCorruptVector;
      cluster.set_actor(ProcessId{0},
                        std::make_unique<faults::ByzantineActor>(
                            std::move(proc), keys.signers[0].get(), spec, kN));
    } else {
      cluster.set_actor(ProcessId{i}, std::move(proc));
    }
  }
  cluster.run();
  std::lock_guard<std::mutex> lock(mu);
  for (std::uint32_t i = 1; i < kN; ++i) {
    ASSERT_TRUE(decisions.count(i)) << "p" << i + 1 << " did not decide";
  }
  for (std::uint32_t i = 2; i < kN; ++i) {
    EXPECT_EQ(decisions.at(i).entries, decisions.at(1).entries);
  }
}

// Actor that idles for a while and then stops — gives a hostile test
// thread time to poke the node's wire protocol directly.
class IdleActor final : public sim::Actor {
 public:
  explicit IdleActor(SimTime linger_us) : linger_us_(linger_us) {}
  void on_start(sim::Context& ctx) override { ctx.set_timer(linger_us_); }
  void on_timer(sim::Context& ctx, std::uint64_t) override { ctx.stop(); }
  void on_message(sim::Context&, ProcessId, const Bytes&) override {}

 private:
  SimTime linger_us_;
};

int dial_loopback(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(TcpCluster, MalformedPeersAreRejectedCleanly) {
  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(8'000);
  TcpCluster cluster(cfg);
  cluster.set_actor(ProcessId{0}, std::make_unique<IdleActor>(400'000));
  cluster.set_actor(ProcessId{1}, std::make_unique<IdleActor>(400'000));

  std::thread hostile([&cluster] {
    // Wait for p1's listen socket to come up.
    std::uint16_t port = 0;
    for (int i = 0; i < 1'000 && port == 0; ++i) {
      port = cluster.port(ProcessId{0});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(port, 0);

    // 1. Garbage magic.
    int fd = dial_loopback(port);
    ASSERT_GE(fd, 0);
    const std::uint8_t junk[8] = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4};
    ASSERT_TRUE(net_write_all(fd, junk, sizeof junk));
    ::close(fd);

    // 2. Valid magic, out-of-range sender id.
    fd = dial_loopback(port);
    ASSERT_GE(fd, 0);
    const Bytes bad_id = encode_hello(7);  // n = 2: ids are 0 and 1
    ASSERT_TRUE(net_write_all(fd, bad_id.data(), bad_id.size()));
    ::close(fd);

    // 3. A node must not accept a hello claiming to be itself.
    fd = dial_loopback(port);
    ASSERT_GE(fd, 0);
    const Bytes self_id = encode_hello(0);
    ASSERT_TRUE(net_write_all(fd, self_id.data(), self_id.size()));
    ::close(fd);

    // 4. Valid hello, then a frame whose length exceeds max_frame_bytes.
    fd = dial_loopback(port);
    ASSERT_GE(fd, 0);
    const Bytes hello = encode_hello(1);
    ASSERT_TRUE(net_write_all(fd, hello.data(), hello.size()));
    std::uint8_t resume[kAckBytes];
    ASSERT_TRUE(net_read_exact(fd, resume, kAckBytes));
    std::uint8_t huge_hdr[kFrameHeaderBytes] = {};
    huge_hdr[0] = 0xff;  // len = 0xffffffff
    huge_hdr[1] = 0xff;
    huge_hdr[2] = 0xff;
    huge_hdr[3] = 0xff;
    ASSERT_TRUE(net_write_all(fd, huge_hdr, kFrameHeaderBytes));
    ::close(fd);
  });

  EXPECT_TRUE(cluster.run());
  hostile.join();

  const std::vector<std::string> errors = cluster.errors(ProcessId{0});
  ASSERT_GE(errors.size(), 3u);
  const TcpLinkStats stats = cluster.link_stats();
  EXPECT_GE(stats.malformed_hellos, 3u);
  bool saw_oversize = false;
  for (const std::string& e : errors) {
    if (e.find("max_frame_bytes") != std::string::npos) saw_oversize = true;
  }
  EXPECT_TRUE(saw_oversize) << "oversized frame was not reported";
  // The malformed connections must not have hurt p0's own state.
  EXPECT_TRUE(cluster.unstopped().empty());
}

TEST(TcpCluster, BudgetExpiryReportsUnstoppedNodes) {
  class NeverStops final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.set_timer(60'000'000);  // a timer far beyond the budget
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(150);
  TcpCluster cluster(cfg);
  cluster.set_actor(ProcessId{0}, std::make_unique<IdleActor>(1'000));
  cluster.set_actor(ProcessId{1}, std::make_unique<NeverStops>());
  EXPECT_FALSE(cluster.run());
  const std::vector<ProcessId> hung = cluster.unstopped();
  ASSERT_EQ(hung.size(), 1u);
  EXPECT_EQ(hung[0], ProcessId{1});
  EXPECT_TRUE(cluster.stopped(ProcessId{0}));
}

// --- crash_after / stats / delivery-tap parity with the other runtimes --

TEST(TcpCluster, CrashAfterSilencesNode) {
  class Chatter final : public sim::Actor {
   public:
    explicit Chatter(std::atomic<int>* received) : received_(received) {}
    void on_start(sim::Context& ctx) override { ctx.set_timer(5'000); }
    void on_timer(sim::Context& ctx, std::uint64_t) override {
      ctx.broadcast({1});
      ctx.set_timer(5'000);
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {
      ++*received_;
    }
   private:
    std::atomic<int>* received_;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(600);
  TcpCluster cluster(cfg);
  std::atomic<int> a{0}, b{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<Chatter>(&a));
  cluster.set_actor(ProcessId{1}, std::make_unique<Chatter>(&b));
  cluster.crash_after(ProcessId{1}, std::chrono::microseconds(150'000));
  cluster.run();  // budget expiry expected (p1 chats forever)
  // p2 crashed a quarter of the way in: it stopped receiving and sending,
  // so it saw far less traffic than the survivor.
  EXPECT_GT(b.load(), 0);
  EXPECT_LT(b.load(), a.load());
  // The crash victim is not an unstopped straggler — only genuinely hung
  // nodes get named.
  for (ProcessId id : cluster.unstopped()) EXPECT_NE(id, ProcessId{1});
}

TEST(TcpCluster, StatsAndTapCountDeliveries) {
  class Sender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < 8; ++i) ctx.send(ProcessId{1}, {7, 7});
      ctx.stop();
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class Sink final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      if (++seen_ == 8) ctx.stop();
    }
   private:
    int seen_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(5000);
  TcpCluster cluster(cfg);
  int taps = 0;
  bool shape_ok = true;
  cluster.set_delivery_tap([&](const sim::Delivery& d) {
    ++taps;
    shape_ok = shape_ok && d.from == ProcessId{0} && d.to == ProcessId{1} &&
               d.size == 2 && d.payload != nullptr;
  });
  cluster.set_actor(ProcessId{0}, std::make_unique<Sender>());
  cluster.set_actor(ProcessId{1}, std::make_unique<Sink>());
  EXPECT_TRUE(cluster.run());

  EXPECT_EQ(taps, 8);
  EXPECT_TRUE(shape_ok);
  const sim::Stats stats = cluster.stats();
  EXPECT_EQ(stats.messages_sent, 8u);
  EXPECT_EQ(stats.messages_delivered, 8u);
  EXPECT_EQ(stats.bytes_sent, 16u);  // protocol bytes, not wire bytes
  EXPECT_GE(cluster.bytes_sent(), stats.bytes_sent);  // wire adds framing
}

TEST(TcpCluster, FrameCodecRoundTripsAndCatchesCorruption) {
  const Bytes payload = bytes_of("frame body with some entropy 0123456789");
  const Bytes wire = encode_frame(41, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());
  const FrameHeader h = decode_frame_header(wire.data());
  EXPECT_EQ(h.len, payload.size());
  EXPECT_EQ(h.seq, 41u);
  EXPECT_TRUE(verify_frame_crc(h, payload));

  Bytes corrupted = payload;
  corrupted[5] ^= 0x01;
  EXPECT_FALSE(verify_frame_crc(h, corrupted));

  FrameHeader bad_seq = h;
  bad_seq.seq = 42;
  EXPECT_FALSE(verify_frame_crc(bad_seq, payload));

  FrameHeader bad_len = h;
  bad_len.len = h.len - 1;
  EXPECT_FALSE(verify_frame_crc(bad_len, Bytes(payload.begin(),
                                               payload.end() - 1)));
}

}  // namespace
}  // namespace modubft::transport
