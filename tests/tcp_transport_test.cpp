// Tests for the TCP loopback cluster: framing, FIFO over real sockets, and
// the consensus protocols end-to-end on the socket substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "bft/bft_consensus.hpp"
#include "common/serial.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/byzantine.hpp"
#include "fd/oracle_fd.hpp"
#include "transport/tcp_cluster.hpp"

namespace modubft::transport {
namespace {

TEST(TcpCluster, FifoFramingOverSockets) {
  class Pinger final : public sim::Actor {
   public:
    Pinger(std::atomic<int>* done, int count) : done_(done), count_(count) {}
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < count_; ++i) {
        Writer w;
        w.u32(static_cast<std::uint32_t>(i));
        // Vary sizes to exercise partial reads and coalesced writes.
        w.raw(Bytes(static_cast<std::size_t>(i % 97), 0xab));
        ctx.send(ProcessId{1}, std::move(w).take());
      }
    }
    void on_message(sim::Context& ctx, ProcessId, const Bytes& payload) override {
      Reader r(payload);
      EXPECT_EQ(r.u32(), 0xdeadbeefu);
      done_->store(1);
      ctx.stop();
    }
   private:
    std::atomic<int>* done_;
    int count_;
  };

  class Checker final : public sim::Actor {
   public:
    explicit Checker(int count) : count_(count) {}
    void on_message(sim::Context& ctx, ProcessId from, const Bytes& payload) override {
      if (from != ProcessId{0}) return;
      Reader r(payload);
      EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(next_)) << "FIFO broken";
      EXPECT_EQ(r.remaining(), static_cast<std::size_t>(next_ % 97));
      ++next_;
      if (next_ == count_) {
        Writer w;
        w.u32(0xdeadbeef);
        ctx.send(ProcessId{0}, std::move(w).take());
        ctx.stop();
      }
    }
   private:
    int count_;
    int next_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(8000);
  TcpCluster cluster(cfg);
  std::atomic<int> done{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<Pinger>(&done, 500));
  cluster.set_actor(ProcessId{1}, std::make_unique<Checker>(500));
  EXPECT_TRUE(cluster.run());
  EXPECT_EQ(done.load(), 1);
  EXPECT_GE(cluster.frames_sent(), 501u);
}

TEST(TcpCluster, HurfinRaynalOverSockets) {
  constexpr std::uint32_t kN = 5;
  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(10'000);
  TcpCluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, consensus::Decision> decisions;
  auto detector = std::make_shared<fd::OracleDetector>(
      std::vector<std::optional<SimTime>>(kN, std::nullopt),
      fd::OracleConfig{});

  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<consensus::HurfinRaynalActor>(
            kN, 700 + i, detector,
            [&mu, &decisions, i](ProcessId, const consensus::Decision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }
  EXPECT_TRUE(cluster.run());
  ASSERT_EQ(decisions.size(), kN);
  for (auto& [i, d] : decisions) {
    EXPECT_EQ(d.value, decisions.begin()->second.value);
  }
}

TEST(TcpCluster, BftConsensusOverSockets) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 33);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  proto.muteness.initial_timeout = 1'000'000;  // wall clock: be generous
  proto.suspicion_poll_period = 100'000;

  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(10'000);
  TcpCluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;
  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<bft::BftProcess>(
            proto, 800 + i, keys.signers[i].get(), keys.verifier,
            [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }
  EXPECT_TRUE(cluster.run());
  ASSERT_EQ(decisions.size(), kN);
  const auto& ref = decisions.begin()->second.entries;
  for (auto& [i, d] : decisions) EXPECT_EQ(d.entries, ref);
}

TEST(TcpCluster, ByzantineCorrupterOverSockets) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 37);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  proto.muteness.initial_timeout = 1'000'000;
  proto.suspicion_poll_period = 100'000;

  TcpClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(10'000);
  TcpCluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto proc = std::make_unique<bft::BftProcess>(
        proto, 800 + i, keys.signers[i].get(), keys.verifier,
        [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
          std::lock_guard<std::mutex> lock(mu);
          decisions.emplace(i, d);
        });
    if (i == 0) {
      faults::FaultSpec spec;
      spec.who = ProcessId{0};
      spec.behavior = faults::Behavior::kCorruptVector;
      cluster.set_actor(ProcessId{0},
                        std::make_unique<faults::ByzantineActor>(
                            std::move(proc), keys.signers[0].get(), spec, kN));
    } else {
      cluster.set_actor(ProcessId{i}, std::move(proc));
    }
  }
  cluster.run();
  std::lock_guard<std::mutex> lock(mu);
  for (std::uint32_t i = 1; i < kN; ++i) {
    ASSERT_TRUE(decisions.count(i)) << "p" << i + 1 << " did not decide";
  }
  for (std::uint32_t i = 2; i < kN; ++i) {
    EXPECT_EQ(decisions.at(i).entries, decisions.at(1).entries);
  }
}

}  // namespace
}  // namespace modubft::transport
