// Tests for the certificate analyzer and the Figure 4 peer monitors,
// exercised on hand-built certificates (n = 4, F = 1, quorum = 3).
#include <gtest/gtest.h>

#include "bft/analyzer.hpp"
#include "bft/monitor.hpp"
#include "crypto/hmac_signer.hpp"

namespace modubft::bft {
namespace {

class AnalyzerFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;
  static constexpr std::uint32_t kQuorum = 3;

  AnalyzerFixture()
      : sys_(crypto::HmacScheme{}.make_system(kN, 7)),
        analyzer_(kN, kQuorum, sys_.verifier) {}

  SignedMessage sign(MessageCore core, Certificate cert = {}) const {
    SignedMessage msg;
    msg.core = std::move(core);
    msg.cert = std::move(cert);
    msg.sig = sys_.signers[msg.core.sender.value]->sign(
        signing_bytes(msg.core, msg.cert));
    return msg;
  }

  SignedMessage init_msg(std::uint32_t sender, Value v) const {
    MessageCore core;
    core.kind = BftKind::kInit;
    core.sender = ProcessId{sender};
    core.round = Round{0};
    core.init_value = v;
    return sign(core);
  }

  /// The canonical certified vector: INITs from p1..p3, entry for p4 null.
  VectorValue base_vector() const {
    return {Value{100}, Value{101}, Value{102}, std::nullopt};
  }

  Certificate init_quorum() const {
    Certificate cert = Certificate::of({init_msg(0, 100), init_msg(1, 101), init_msg(2, 102)});
    return cert;
  }

  SignedMessage next_msg(std::uint32_t sender, std::uint32_t round,
                         Certificate cert = {}) const {
    MessageCore core;
    core.kind = BftKind::kNext;
    core.sender = ProcessId{sender};
    core.round = Round{round};
    return sign(core, std::move(cert));
  }

  /// Round-1 coordinator (p1) CURRENT over the base vector.
  SignedMessage coord_current() const {
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{0};
    core.round = Round{1};
    core.est = base_vector();
    return sign(core, init_quorum());
  }

  crypto::SignatureSystem sys_;
  CertAnalyzer analyzer_;
};

TEST_F(AnalyzerFixture, InitWf) {
  EXPECT_TRUE(analyzer_.init_wf(init_msg(0, 5)));
}

TEST_F(AnalyzerFixture, InitWithCertificateRejected) {
  MessageCore core;
  core.kind = BftKind::kInit;
  core.sender = ProcessId{0};
  core.round = Round{0};
  SignedMessage msg = sign(core, init_quorum());
  Verdict v = analyzer_.init_wf(msg);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(AnalyzerFixture, InitWithRoundRejected) {
  MessageCore core;
  core.kind = BftKind::kInit;
  core.sender = ProcessId{0};
  core.round = Round{2};
  EXPECT_FALSE(analyzer_.init_wf(sign(core)));
}

TEST_F(AnalyzerFixture, EstWfAcceptsQuorumOfInits) {
  EXPECT_TRUE(analyzer_.est_wf(init_quorum(), base_vector()));
}

TEST_F(AnalyzerFixture, EstWfRejectsTooFewInits) {
  Certificate cert = Certificate::of({init_msg(0, 100), init_msg(1, 101)});
  VectorValue v = {Value{100}, Value{101}, std::nullopt, std::nullopt};
  EXPECT_FALSE(analyzer_.est_wf(cert, v));
}

TEST_F(AnalyzerFixture, EstWfRejectsFalsifiedEntry) {
  VectorValue v = base_vector();
  v[1] = Value{999};  // does not match p2's signed INIT
  Verdict verdict = analyzer_.est_wf(init_quorum(), v);
  EXPECT_FALSE(verdict);
  EXPECT_EQ(verdict.kind, FaultKind::kBadCertificate);
}

TEST_F(AnalyzerFixture, EstWfRejectsUnwitnessedEntry) {
  VectorValue v = base_vector();
  v[3] = Value{777};  // no INIT from p4 in the certificate
  EXPECT_FALSE(analyzer_.est_wf(init_quorum(), v));
}

TEST_F(AnalyzerFixture, EstWfRejectsForgedInitMember) {
  Certificate cert = init_quorum();
  cert.mutate_member(0,
                     [](SignedMessage& m) { m.core.init_value = 55; });
  VectorValue v = base_vector();
  v[0] = Value{55};
  Verdict verdict = analyzer_.est_wf(cert, v);
  EXPECT_FALSE(verdict);
}

TEST_F(AnalyzerFixture, EstWfRejectsWrongArity) {
  VectorValue v = {Value{100}, Value{101}, Value{102}};  // size 3 ≠ n
  EXPECT_FALSE(analyzer_.est_wf(init_quorum(), v));
}

TEST_F(AnalyzerFixture, EstWfAcceptsAdoptionChain) {
  // A relayed adoption: est_cert = {coordinator CURRENT}.
  Certificate chain = Certificate::of({coord_current()});
  EXPECT_TRUE(analyzer_.est_wf(chain, base_vector()));
}

TEST_F(AnalyzerFixture, EstWfRejectsChainWithDifferentVector) {
  Certificate chain = Certificate::of({coord_current()});
  VectorValue other = base_vector();
  other[0] = Value{1};
  EXPECT_FALSE(analyzer_.est_wf(chain, other));
}

TEST_F(AnalyzerFixture, EntryWfRoundOneNeedsNothing) {
  EXPECT_TRUE(analyzer_.entry_wf(Certificate{}, Round{1}));
}

TEST_F(AnalyzerFixture, EntryWfAcceptsNextQuorum) {
  Certificate cert = Certificate::of({next_msg(0, 1), next_msg(1, 1), next_msg(2, 1)});
  EXPECT_TRUE(analyzer_.entry_wf(cert, Round{2}));
}

TEST_F(AnalyzerFixture, EntryWfCountsDistinctSendersOnly) {
  Certificate cert = Certificate::of({next_msg(0, 1), next_msg(0, 1), next_msg(2, 1)});
  EXPECT_FALSE(analyzer_.entry_wf(cert, Round{2}));
}

TEST_F(AnalyzerFixture, EntryWfRejectsWrongRoundNexts) {
  Certificate cert = Certificate::of({next_msg(0, 2), next_msg(1, 2), next_msg(2, 2)});
  EXPECT_FALSE(analyzer_.entry_wf(cert, Round{2}));  // wants round-1 NEXTs
}

TEST_F(AnalyzerFixture, EntryWfAcceptsPrunedNextMembers) {
  // NEXT members whose own certificates are pruned still witness the round:
  // only their cores are read.
  Certificate inner = Certificate::of({init_msg(0, 100)});
  Certificate cert;
  for (std::uint32_t i = 0; i < 3; ++i) {
    SignedMessage nm = next_msg(i, 1, inner);
    nm.cert = prune(nm.cert);
    // Note: signature was made over (core ‖ digest(inner)) so it still
    // verifies after pruning.
    cert.add(nm);
  }
  EXPECT_TRUE(analyzer_.entry_wf(cert, Round{2}));
}

TEST_F(AnalyzerFixture, CurrentWfCoordinatorForm) {
  EXPECT_TRUE(analyzer_.current_wf(coord_current()));
}

TEST_F(AnalyzerFixture, CurrentWfRejectsCoordinatorWithoutEstEvidence) {
  MessageCore core;
  core.kind = BftKind::kCurrent;
  core.sender = ProcessId{0};
  core.round = Round{1};
  core.est = base_vector();
  Verdict v = analyzer_.current_wf(sign(core));  // empty certificate
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(AnalyzerFixture, CurrentWfRelayForm) {
  MessageCore relay;
  relay.kind = BftKind::kCurrent;
  relay.sender = ProcessId{2};
  relay.round = Round{1};
  relay.est = base_vector();
  Certificate cert = Certificate::of({coord_current()});
  EXPECT_TRUE(analyzer_.current_wf(sign(relay, cert)));
}

TEST_F(AnalyzerFixture, CurrentWfRejectsRelaySubstitutedVector) {
  MessageCore relay;
  relay.kind = BftKind::kCurrent;
  relay.sender = ProcessId{2};
  relay.round = Round{1};
  relay.est = base_vector();
  relay.est[2] = Value{666};  // differs from the adopted CURRENT
  Certificate cert = Certificate::of({coord_current()});
  Verdict v = analyzer_.current_wf(sign(relay, cert));
  EXPECT_FALSE(v);
}

TEST_F(AnalyzerFixture, CurrentWfRejectsNonCoordinatorFreshProposal) {
  // A non-coordinator fabricating a CURRENT from raw INITs (spurious
  // statement): must be rejected — only the relay form is allowed.
  MessageCore fake;
  fake.kind = BftKind::kCurrent;
  fake.sender = ProcessId{2};
  fake.round = Round{1};
  fake.est = base_vector();
  Verdict v = analyzer_.current_wf(sign(fake, init_quorum()));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(AnalyzerFixture, CurrentWfCoordinatorRoundTwo) {
  // Round-2 coordinator is p2; its CURRENT must carry round-1 NEXTs.
  MessageCore core;
  core.kind = BftKind::kCurrent;
  core.sender = ProcessId{1};
  core.round = Round{2};
  core.est = base_vector();
  Certificate cert = init_quorum();
  cert.add(next_msg(0, 1));
  cert.add(next_msg(1, 1));
  cert.add(next_msg(3, 1));
  EXPECT_TRUE(analyzer_.current_wf(sign(core, cert)));

  // Without the NEXT quorum the round number is uncertified.
  Verdict v = analyzer_.current_wf(sign(core, init_quorum()));
  EXPECT_FALSE(v);
}

TEST_F(AnalyzerFixture, NextWfSuspicionPathFromQ0) {
  SignedMessage nm = next_msg(2, 1, init_quorum());  // est_cert, no CURRENTs
  EXPECT_TRUE(analyzer_.next_wf(nm, PeerPhase::kQ0));
}

TEST_F(AnalyzerFixture, NextWfRejectsCurrentEvidenceFromQ0) {
  Certificate cert = Certificate::of({coord_current()});
  SignedMessage nm = next_msg(2, 1, cert);
  Verdict v = analyzer_.next_wf(nm, PeerPhase::kQ0);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(AnalyzerFixture, NextWfChangeMindFromQ1) {
  Certificate cert = Certificate::of({coord_current(), next_msg(1, 1), next_msg(3, 1)});
  // REC_FROM = {p1 (CURRENT), p2, p4} — quorum reached, ≥1 CURRENT.
  SignedMessage nm = next_msg(2, 1, cert);
  EXPECT_TRUE(analyzer_.next_wf(nm, PeerPhase::kQ1));
}

TEST_F(AnalyzerFixture, NextWfRejectsThinChangeMind) {
  Certificate cert = Certificate::of({coord_current(), next_msg(1, 1)});  // REC_FROM = 2 < 3
  SignedMessage nm = next_msg(2, 1, cert);
  EXPECT_FALSE(analyzer_.next_wf(nm, PeerPhase::kQ1));
}

TEST_F(AnalyzerFixture, NextWfEndOfRoundFromEitherPhase) {
  Certificate cert = Certificate::of({next_msg(0, 1), next_msg(1, 1), next_msg(3, 1)});
  SignedMessage nm = next_msg(2, 1, cert);
  EXPECT_TRUE(analyzer_.next_wf(nm, PeerPhase::kQ0));
  EXPECT_TRUE(analyzer_.next_wf(nm, PeerPhase::kQ1));
}

TEST_F(AnalyzerFixture, NextWfDuplicateFromQ2) {
  SignedMessage nm = next_msg(2, 1, init_quorum());
  Verdict v = analyzer_.next_wf(nm, PeerPhase::kQ2);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kOutOfOrder);
}

TEST_F(AnalyzerFixture, DecideWfAcceptsQuorum) {
  // p3 relays, p4 relays, coordinator proposes: 3 matching CURRENTs.
  SignedMessage c0 = coord_current();
  auto relay = [&](std::uint32_t sender) {
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{sender};
    core.round = Round{1};
    core.est = base_vector();
    Certificate cert = Certificate::of({c0});
    return sign(core, cert);
  };
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{1};
  dec.est = base_vector();
  Certificate cert = Certificate::of({c0, relay(2), relay(3)});
  EXPECT_TRUE(analyzer_.decide_wf(sign(dec, cert)));
}

TEST_F(AnalyzerFixture, DecideWfRejectsThinQuorum) {
  SignedMessage c0 = coord_current();
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{1};
  dec.est = base_vector();
  Certificate cert = Certificate::of({c0});
  Verdict v = analyzer_.decide_wf(sign(dec, cert));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);
}

TEST_F(AnalyzerFixture, DecideWfRejectsMismatchedVector) {
  SignedMessage c0 = coord_current();
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{1};
  dec.est = base_vector();
  dec.est[0] = Value{31337};
  Certificate cert = Certificate::of({c0, c0, c0});
  EXPECT_FALSE(analyzer_.decide_wf(sign(dec, cert)));
}

TEST_F(AnalyzerFixture, DecideForgeryWithEstCertRejected) {
  // Ablation for the Figure-3/§5.1 discrepancy (see DESIGN.md §3): the
  // figure's line 21 sends DECIDE certified by est_cert, but *every*
  // process holds a perfectly valid est_cert (its INIT quorum) right after
  // the preliminary phase — so under the figure's rule any single
  // Byzantine process could fabricate a DECIDE for any round without one
  // CURRENT ever having been sent.  The prose rule (current_cert: a quorum
  // of matching CURRENTs) makes that forgery impossible; this test pins
  // our checker to the prose rule by rejecting the figure-style message.
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{1};
  dec.est = base_vector();
  SignedMessage forged = sign(dec, init_quorum());  // est_cert only
  Verdict v = analyzer_.decide_wf(forged);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kBadCertificate);

  // Sanity for the ablation claim: the same certificate *does* satisfy the
  // est_wf predicate, i.e. the forgery would pass a checker that only
  // demanded a well-formed est_cert.
  EXPECT_TRUE(analyzer_.est_wf(forged.cert, forged.core.est));
}

TEST_F(AnalyzerFixture, ChainBaseFindsCoordinator) {
  SignedMessage c0 = coord_current();
  MessageCore relay;
  relay.kind = BftKind::kCurrent;
  relay.sender = ProcessId{2};
  relay.round = Round{1};
  relay.est = base_vector();
  Certificate cert = Certificate::of({c0});
  SignedMessage relayed = sign(relay, cert);
  const SignedMessage* base = analyzer_.chain_base(relayed);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->core.sender, (ProcessId{0}));
}

// ------------------------------ monitor -----------------------------------

TEST_F(AnalyzerFixture, MonitorHappyPath) {
  PeerMonitor mon(ProcessId{0}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(0, 100)));
  EXPECT_EQ(mon.state(), PeerMonitor::State::kInRound);
  EXPECT_TRUE(mon.observe(coord_current()));
  EXPECT_EQ(mon.phase(), PeerPhase::kQ1);
}

TEST_F(AnalyzerFixture, MonitorRejectsRoundMessageBeforeInit) {
  PeerMonitor mon(ProcessId{0}, analyzer_);
  Verdict v = mon.observe(coord_current());
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kOutOfOrder);
  EXPECT_EQ(mon.state(), PeerMonitor::State::kFaulty);
}

TEST_F(AnalyzerFixture, MonitorRejectsDuplicateInit) {
  PeerMonitor mon(ProcessId{0}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(0, 100)));
  Verdict v = mon.observe(init_msg(0, 100));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kOutOfOrder);
}

TEST_F(AnalyzerFixture, MonitorRejectsDuplicateCurrent) {
  PeerMonitor mon(ProcessId{0}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(0, 100)));
  EXPECT_TRUE(mon.observe(coord_current()));
  Verdict v = mon.observe(coord_current());
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kOutOfOrder);
}

TEST_F(AnalyzerFixture, MonitorRejectsSkippedRound) {
  PeerMonitor mon(ProcessId{2}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(2, 102)));
  SignedMessage nm = next_msg(2, 3, init_quorum());  // round 3 from round 1
  Verdict v = mon.observe(nm);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kOutOfOrder);
}

TEST_F(AnalyzerFixture, MonitorAdvancesRoundAfterNext) {
  PeerMonitor mon(ProcessId{2}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(2, 102)));
  EXPECT_TRUE(mon.observe(next_msg(2, 1, init_quorum())));
  EXPECT_EQ(mon.phase(), PeerPhase::kQ2);
  // Round-2 NEXT (suspicion of p2 — wait, p2 *is* round 2's coordinator;
  // use p3's monitor instead for coordinator-agnostic NEXT).
  PeerMonitor mon3(ProcessId{3}, analyzer_);
  EXPECT_TRUE(mon3.observe(init_msg(3, 103)));
  EXPECT_TRUE(mon3.observe(next_msg(3, 1, init_quorum())));
  EXPECT_TRUE(mon3.observe(next_msg(3, 2, init_quorum())));
  EXPECT_EQ(mon3.tracked_round(), (Round{2}));
}

TEST_F(AnalyzerFixture, MonitorRejectsCoordinatorFirstVoteNext) {
  // p2 coordinates round 2; its first vote there must be CURRENT.
  PeerMonitor mon(ProcessId{1}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(1, 101)));
  EXPECT_TRUE(mon.observe(next_msg(1, 1, init_quorum())));  // leaves round 1
  SignedMessage nm = next_msg(1, 2, init_quorum());
  Verdict v = mon.observe(nm);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kWrongExpected);
}

TEST_F(AnalyzerFixture, MonitorFinalAfterDecide) {
  PeerMonitor mon(ProcessId{2}, analyzer_);
  EXPECT_TRUE(mon.observe(init_msg(2, 102)));

  SignedMessage c0 = coord_current();
  auto relay = [&](std::uint32_t sender) {
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{sender};
    core.round = Round{1};
    core.est = base_vector();
    Certificate cert = Certificate::of({c0});
    return sign(core, cert);
  };
  MessageCore dec;
  dec.kind = BftKind::kDecide;
  dec.sender = ProcessId{2};
  dec.round = Round{1};
  dec.est = base_vector();
  Certificate cert = Certificate::of({c0, relay(2), relay(3)});
  EXPECT_TRUE(mon.observe(sign(dec, cert)));
  EXPECT_EQ(mon.state(), PeerMonitor::State::kFinal);

  Verdict v = mon.observe(next_msg(2, 1, init_quorum()));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kOutOfOrder);
}

TEST_F(AnalyzerFixture, MonitorFaultyIsTerminal) {
  PeerMonitor mon(ProcessId{0}, analyzer_);
  EXPECT_FALSE(mon.observe(coord_current()));  // before INIT → faulty
  Verdict v = mon.observe(init_msg(0, 100));
  EXPECT_FALSE(v);
  EXPECT_EQ(v.kind, FaultKind::kNone);  // swallowed, no fresh accusation
}

}  // namespace
}  // namespace modubft::bft
