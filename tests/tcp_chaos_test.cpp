// Chaos tests for the resilient TCP transport: every directed link is
// killed at least once mid-run (plus random kills, truncations, byte
// flips and delays below the framing layer), and the reliable-FIFO
// contract must be re-established by the transport — the protocols above
// never notice.  The sequence-number audit asserts that no retransmitted
// frame is ever delivered twice or out of FIFO order.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "bft/bft_consensus.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/byzantine.hpp"
#include "faults/link_fault.hpp"
#include "transport/tcp_cluster.hpp"

namespace modubft::transport {
namespace {

/// Full chaos: deterministic first-frame kill on every link, plus random
/// kills, truncations, corruption and delays.
LinkFaultPlan chaos_plan(std::uint64_t seed, double kill_prob) {
  faults::LinkFaultSpec kills;
  kills.kill_at_attempts = {0};
  kills.kill_prob = kill_prob;

  faults::LinkFaultSpec noise;
  noise.truncate_prob = 0.02;
  noise.flip_prob = 0.02;
  noise.delay_prob = 0.05;
  noise.delay_mean_us = 200;

  return LinkFaultPlan({kills, noise}, seed);
}

/// Asserts the audit trail of every directed link is exactly 0,1,2,…:
/// contiguous (FIFO, no loss among delivered frames) and duplicate-free.
void assert_fifo_exactly_once(const TcpCluster& cluster, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::vector<std::uint64_t> seqs =
          cluster.delivered_seqs(ProcessId{i}, ProcessId{j});
      for (std::size_t k = 0; k < seqs.size(); ++k) {
        ASSERT_EQ(seqs[k], k) << "link p" << i + 1 << "->p" << j + 1
                              << ": duplicate or out-of-order delivery";
      }
    }
  }
}

TEST(TcpChaos, FifoSurvivesLinkKillsAndCorruption) {
  // One-directional firehose under heavy chaos: the checker must see the
  // exact FIFO sequence even though the link dies many times mid-stream.
  constexpr int kCount = 400;

  class Pinger final : public sim::Actor {
   public:
    explicit Pinger(std::atomic<int>* done) : done_(done) {}
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < kCount; ++i) {
        Writer w;
        w.u32(static_cast<std::uint32_t>(i));
        w.raw(Bytes(static_cast<std::size_t>(i % 61), 0xcd));
        ctx.send(ProcessId{1}, std::move(w).take());
      }
    }
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      done_->store(1);
      ctx.stop();
    }

   private:
    std::atomic<int>* done_;
  };

  class Checker final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId from,
                    const Bytes& payload) override {
      if (from != ProcessId{0}) return;
      Reader r(payload);
      ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(next_)) << "FIFO broken";
      ++next_;
      if (next_ == kCount) {
        ctx.send(ProcessId{0}, Bytes{1});
        ctx.stop();
      }
    }

   private:
    int next_ = 0;
  };

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 99;
  cfg.budget = std::chrono::milliseconds(20'000);
  cfg.audit_deliveries = true;
  cfg.faults = chaos_plan(cfg.seed, 0.03);
  TcpCluster cluster(cfg);
  std::atomic<int> done{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<Pinger>(&done));
  cluster.set_actor(ProcessId{1}, std::make_unique<Checker>());
  EXPECT_TRUE(cluster.run()) << "unstopped: " << cluster.unstopped().size();
  EXPECT_EQ(done.load(), 1);

  const TcpLinkStats stats = cluster.link_stats();
  EXPECT_GE(stats.kills_injected, 2u);  // both links died at least once
  EXPECT_GE(stats.reconnects, 2u);
  EXPECT_GE(stats.retransmits, 1u);
  assert_fifo_exactly_once(cluster, cfg.n);
}

TEST(TcpChaos, ConsensusSurvivesEveryLinkKilledAcrossSeeds) {
  // Acceptance scenario: n = 4, F = 1, HMAC signatures, one Byzantine
  // process, every directed link killed at least once, three seeds.  All
  // correct processes must decide identical vectors, with the audit
  // proving exactly-once FIFO delivery under retransmission.
  constexpr std::uint32_t kN = 4;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 33);

    bft::BftConfig proto;
    proto.n = kN;
    proto.f = 1;
    proto.muteness.initial_timeout = 2'000'000;  // wall clock: chaos is slow
    proto.suspicion_poll_period = 100'000;

    TcpClusterConfig cfg;
    cfg.n = kN;
    cfg.seed = seed;
    cfg.budget = std::chrono::milliseconds(30'000);
    cfg.audit_deliveries = true;
    cfg.faults = chaos_plan(seed, 0.05);
    TcpCluster cluster(cfg);

    std::mutex mu;
    std::map<std::uint32_t, bft::VectorDecision> decisions;
    for (std::uint32_t i = 0; i < kN; ++i) {
      auto proc = std::make_unique<bft::BftProcess>(
          proto, 800 + i, keys.signers[i].get(), keys.verifier,
          [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
            std::lock_guard<std::mutex> lock(mu);
            decisions.emplace(i, d);
          });
      if (i == 0) {
        faults::FaultSpec spec;
        spec.who = ProcessId{0};
        spec.behavior = faults::Behavior::kCorruptVector;
        cluster.set_actor(ProcessId{0},
                          std::make_unique<faults::ByzantineActor>(
                              std::move(proc), keys.signers[0].get(), spec,
                              kN));
      } else {
        cluster.set_actor(ProcessId{i}, std::move(proc));
      }
    }
    cluster.run();

    std::lock_guard<std::mutex> lock(mu);
    for (std::uint32_t i = 1; i < kN; ++i) {
      ASSERT_TRUE(decisions.count(i))
          << "p" << i + 1 << " did not decide; unstopped count "
          << cluster.unstopped().size();
    }
    for (std::uint32_t i = 2; i < kN; ++i) {
      EXPECT_EQ(decisions.at(i).entries, decisions.at(1).entries);
    }

    const TcpLinkStats stats = cluster.link_stats();
    // Every one of the n(n−1) directed links was killed at least once.
    EXPECT_GE(stats.kills_injected, static_cast<std::uint64_t>(kN * (kN - 1)))
        << "chaos plan failed to kill every link";
    EXPECT_GE(stats.reconnects, static_cast<std::uint64_t>(kN * (kN - 1)));
    assert_fifo_exactly_once(cluster, kN);
  }
}

TEST(TcpChaos, ChecksumCatchesWireCorruption) {
  // Flip-heavy link: corrupted frames must be caught by the CRC at the
  // transport (checksum_failures > 0), never delivered upward, and the
  // stream must still arrive complete and in order.
  constexpr int kCount = 200;

  class Pinger final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < kCount; ++i) {
        Writer w;
        w.u32(static_cast<std::uint32_t>(i));
        w.raw(Bytes(32, 0x5a));
        ctx.send(ProcessId{1}, std::move(w).take());
      }
    }
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      ctx.stop();
    }
  };

  class Checker final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId from,
                    const Bytes& payload) override {
      if (from != ProcessId{0}) return;
      Reader r(payload);
      ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(next_));
      ASSERT_EQ(r.remaining(), 32u);
      ++next_;
      if (next_ == kCount) {
        ctx.send(ProcessId{0}, Bytes{1});
        ctx.stop();
      }
    }

   private:
    int next_ = 0;
  };

  faults::LinkFaultSpec flips;
  flips.from = ProcessId{0};
  flips.to = ProcessId{1};
  flips.flip_prob = 0.10;
  flips.max_random_faults = 1'000;

  TcpClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 17;
  cfg.budget = std::chrono::milliseconds(20'000);
  cfg.audit_deliveries = true;
  cfg.faults = LinkFaultPlan({flips}, cfg.seed);
  TcpCluster cluster(cfg);
  cluster.set_actor(ProcessId{0}, std::make_unique<Pinger>());
  cluster.set_actor(ProcessId{1}, std::make_unique<Checker>());
  EXPECT_TRUE(cluster.run());

  const TcpLinkStats stats = cluster.link_stats();
  EXPECT_GE(stats.flips_injected, 1u);
  EXPECT_GE(stats.checksum_failures, 1u);
  EXPECT_GE(stats.retransmits, 1u);
  assert_fifo_exactly_once(cluster, cfg.n);
}

}  // namespace
}  // namespace modubft::transport
