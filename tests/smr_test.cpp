// Tests for the replicated state machine built on repeated consensus.
#include <gtest/gtest.h>

#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/byzantine.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace modubft::smr {
namespace {

std::vector<Command> sample_workload() {
  return {
      {1, Command::Op::kPut, "alpha", "1"},
      {2, Command::Op::kPut, "beta", "2"},
      {3, Command::Op::kPut, "alpha", "3"},  // overwrite
      {4, Command::Op::kDel, "beta", ""},
      {5, Command::Op::kPut, "gamma", "5"},
  };
}

TEST(Command, CodecRoundTrip) {
  Command cmd{7, Command::Op::kPut, "key", "value"};
  Command back = decode_command(encode_command(cmd));
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.op, Command::Op::kPut);
  EXPECT_EQ(back.key, "key");
  EXPECT_EQ(back.value, "value");
}

TEST(Command, CodecRejectsBadOp) {
  Command cmd{7, Command::Op::kPut, "k", "v"};
  Bytes buf = encode_command(cmd);
  buf[8] = 9;  // op byte
  EXPECT_THROW(decode_command(buf), modubft::SerialError);
}

TEST(KvStore, AppliesCommands) {
  KvStore store;
  for (const Command& c : sample_workload()) store.apply(c);
  EXPECT_EQ(store.get("alpha"), "3");
  EXPECT_EQ(store.get("beta"), std::nullopt);
  EXPECT_EQ(store.get("gamma"), "5");
  EXPECT_EQ(store.applied_count(), 5u);
  EXPECT_EQ(store.size(), 2u);
}

struct SmrRun {
  std::vector<const Replica*> replicas;
  sim::RunOutcome outcome;
};

// Runs an n-replica crash-backend cluster committing the sample workload.
void run_crash_smr(std::uint32_t n, std::uint64_t seed,
                   std::vector<std::optional<SimTime>> crash_times,
                   std::vector<KvStore>* stores,
                   std::vector<std::uint64_t>* committed) {
  crash_times.resize(n);
  sim::SimConfig sim_cfg;
  sim_cfg.n = n;
  sim_cfg.seed = seed;
  sim::Simulation world(sim_cfg);

  std::vector<Replica*> replicas(n, nullptr);
  for (std::uint32_t i = 0; i < n; ++i) {
    fd::OracleConfig oracle;
    auto detector =
        std::make_shared<fd::OracleDetector>(crash_times, oracle);
    ReplicaConfig cfg;
    cfg.n = n;
    cfg.backend = Backend::kCrashHurfinRaynal;
    cfg.slots = 5;
    cfg.detector = detector;
    auto replica =
        std::make_unique<Replica>(cfg, sample_workload(), CommitFn{});
    replicas[i] = replica.get();
    world.set_actor(ProcessId{i}, std::move(replica));
    if (crash_times[i].has_value()) {
      world.crash_at(ProcessId{i}, *crash_times[i]);
    }
  }
  world.run();
  stores->clear();
  committed->clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (crash_times[i].has_value()) continue;
    stores->push_back(replicas[i]->store());
    committed->push_back(replicas[i]->committed_slots());
  }
}

TEST(SmrCrash, AllReplicasConvergeFailureFree) {
  std::vector<KvStore> stores;
  std::vector<std::uint64_t> committed;
  run_crash_smr(5, 1, {}, &stores, &committed);
  ASSERT_EQ(stores.size(), 5u);
  for (std::uint64_t c : committed) EXPECT_EQ(c, 5u);
  for (const KvStore& s : stores) {
    EXPECT_EQ(s.contents(), stores[0].contents());
    EXPECT_EQ(s.applied_count(), 5u);
  }
  EXPECT_EQ(stores[0].get("alpha"), "3");
  EXPECT_EQ(stores[0].get("beta"), std::nullopt);
}

TEST(SmrCrash, ConvergesDespiteCrash) {
  std::vector<KvStore> stores;
  std::vector<std::uint64_t> committed;
  std::vector<std::optional<SimTime>> crashes(5, std::nullopt);
  crashes[0] = SimTime{2000};  // early coordinator crashes mid-stream
  run_crash_smr(5, 2, crashes, &stores, &committed);
  ASSERT_EQ(stores.size(), 4u);
  for (std::uint64_t c : committed) EXPECT_EQ(c, 5u);
  for (const KvStore& s : stores) {
    EXPECT_EQ(s.contents(), stores[0].contents());
  }
}

TEST(SmrCrash, DeterministicReplay) {
  std::vector<KvStore> a_stores, b_stores;
  std::vector<std::uint64_t> a_c, b_c;
  run_crash_smr(4, 7, {}, &a_stores, &a_c);
  run_crash_smr(4, 7, {}, &b_stores, &b_c);
  ASSERT_EQ(a_stores.size(), b_stores.size());
  for (std::size_t i = 0; i < a_stores.size(); ++i) {
    EXPECT_EQ(a_stores[i].contents(), b_stores[i].contents());
  }
}

TEST(SmrByzantine, ConvergesWithByzantineReplica) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 3);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 3;
  sim::Simulation world(sim_cfg);

  bft::BftConfig bft_cfg;
  bft_cfg.n = kN;
  bft_cfg.f = 1;

  std::vector<Replica*> replicas(kN, nullptr);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = Backend::kByzantine;
    cfg.slots = 5;
    cfg.bft = bft_cfg;
    cfg.signer = keys.signers[i].get();
    cfg.verifier = keys.verifier;
    auto replica =
        std::make_unique<Replica>(cfg, sample_workload(), CommitFn{});
    replicas[i] = replica.get();

    if (i == 3) {
      // p4 mutes from round 1 of every instance: a Byzantine replica.
      // The Byzantine wrapper operates on BFT frames; here the frames are
      // slot-tagged, so we use the simplest Byzantine behaviour at the
      // replica level: crash-stop silence (mute w.r.t. every instance).
      world.set_actor(ProcessId{i}, std::move(replica));
      world.crash_at(ProcessId{i}, 0);
    } else {
      world.set_actor(ProcessId{i}, std::move(replica));
    }
  }
  world.run();

  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replicas[i]->committed_slots(), 5u) << "replica " << i;
    EXPECT_EQ(replicas[i]->store().contents(), replicas[0]->store().contents());
  }
  EXPECT_EQ(replicas[0]->store().get("alpha"), "3");
  EXPECT_EQ(replicas[0]->store().get("gamma"), "5");
}

TEST(SmrByzantine, CommitCallbackSeesMonotonicSlots) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 9);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = 9;
  sim::Simulation world(sim_cfg);

  bft::BftConfig bft_cfg;
  bft_cfg.n = kN;
  bft_cfg.f = 1;

  std::vector<std::vector<std::uint64_t>> slots(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = Backend::kByzantine;
    cfg.slots = 3;
    cfg.bft = bft_cfg;
    cfg.signer = keys.signers[i].get();
    cfg.verifier = keys.verifier;
    world.set_actor(
        ProcessId{i},
        std::make_unique<Replica>(
            cfg, sample_workload(),
            [&slots, i](InstanceId slot, const Command*, const KvStore&) {
              slots[i].push_back(slot.value);
            }));
  }
  world.run();
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[i].size(), 3u);
    EXPECT_EQ(slots[i], (std::vector<std::uint64_t>{0, 1, 2}));
  }
}

}  // namespace
}  // namespace modubft::smr
