// Broad property sweeps for the transformed protocol: every combination of
// signature scheme × network model × pruning mode × adversary, checked for
// the paper's four properties (Agreement, Termination, Vector Validity,
// detector reliability).
#include <gtest/gtest.h>

#include "bft/config.hpp"
#include "faults/scenario.hpp"
#include "sim/trace.hpp"

namespace modubft {
namespace {

using faults::Behavior;
using faults::BftScenarioConfig;
using faults::BftScenarioResult;
using faults::FaultSpec;
using faults::run_bft_scenario;
using faults::Scheme;

enum class Net { kCalm, kTurbulent };

struct Param {
  Scheme scheme;
  Net net;
  bool prune;
  Behavior behavior;
  std::uint64_t seed;
};

std::string param_name(const Param& p) {
  std::string out;
  out += p.scheme == Scheme::kHmac ? "hmac" : "rsa";
  out += p.net == Net::kCalm ? "_calm" : "_turb";
  out += p.prune ? "_pruned" : "_full";
  out += "_";
  std::string b = behavior_name(p.behavior);
  for (char& c : b)
    if (c == '-') c = '_';
  out += b;
  out += "_s" + std::to_string(p.seed);
  return out;
}

class BftMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(BftMatrix, FourProperties) {
  const Param p = GetParam();
  BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = p.seed;
  cfg.scheme = p.scheme;
  cfg.prune = p.prune;
  if (p.net == Net::kTurbulent) cfg.latency = sim::turbulent_until(120'000);
  if (p.behavior != Behavior::kNone) {
    FaultSpec spec;
    spec.who = ProcessId{0};  // the round-1 coordinator misbehaves
    spec.behavior = p.behavior;
    if (p.behavior == Behavior::kCrash) spec.at = 0;
    cfg.faults = {spec};
  }

  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination) << param_name(p);
  EXPECT_TRUE(r.agreement) << param_name(p);
  EXPECT_TRUE(r.vector_validity) << param_name(p);
  EXPECT_TRUE(r.detectors_reliable) << param_name(p);
}

std::vector<Param> matrix() {
  std::vector<Param> out;
  const Behavior behaviors[] = {Behavior::kNone, Behavior::kCrash,
                                Behavior::kMute, Behavior::kCorruptVector,
                                Behavior::kEquivocate};
  for (Scheme scheme : {Scheme::kHmac, Scheme::kRsa64}) {
    for (Net net : {Net::kCalm, Net::kTurbulent}) {
      for (bool prune : {true, false}) {
        for (Behavior b : behaviors) {
          // Keep the matrix tractable: the RSA × turbulent × full-cert
          // corner contributes little beyond its neighbours.
          if (scheme == Scheme::kRsa64 && net == Net::kTurbulent && !prune) {
            continue;
          }
          out.push_back({scheme, net, prune, b, 77});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, BftMatrix, ::testing::ValuesIn(matrix()),
                         [](const auto& info) { return param_name(info.param); });

// Seed soak: many seeds on the most adversarial tractable configuration.
class BftSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BftSoak, MaxFaultMixedAdversaries) {
  BftScenarioConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.seed = GetParam();
  FaultSpec a;
  a.who = ProcessId{0};
  a.behavior = Behavior::kCorruptVector;
  FaultSpec b;
  b.who = ProcessId{1};  // round-2 coordinator is also hostile
  b.behavior = Behavior::kMute;
  cfg.faults = {a, b};

  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination) << "seed " << GetParam();
  EXPECT_TRUE(r.agreement) << "seed " << GetParam();
  EXPECT_TRUE(r.vector_validity) << "seed " << GetParam();
  EXPECT_TRUE(r.detectors_reliable) << "seed " << GetParam();
  // Both hostile coordinators stall their rounds: decision lands in
  // round 3 under an honest coordinator.
  EXPECT_GE(r.max_decision_round.value, 3u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BftSoak,
                         ::testing::Range<std::uint64_t>(1, 26));

// The protocol also works at the n = 2F + 1 extreme permitted by an
// external certification service — for *crash* faults (which never attack
// agreement), the HR quorum logic alone suffices.
TEST(BftEdge, ExternalCertificationBoundWithCrashFaults) {
  BftScenarioConfig cfg;
  cfg.n = 5;
  cfg.f = 2;  // beyond ⌊4/3⌋ = 1: needs the override
  cfg.certification_bound = 2;
  FaultSpec c1;
  c1.who = ProcessId{0};
  c1.behavior = Behavior::kCrash;
  c1.at = 0;
  FaultSpec c2;
  c2.who = ProcessId{1};
  c2.behavior = Behavior::kCrash;
  c2.at = 0;
  cfg.faults = {c1, c2};
  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.detectors_reliable);
}

// Smallest legal group: n = 2, F = 0 (nothing to tolerate, but the
// machinery must not wedge on the degenerate quorum n − F = 2).
TEST(BftEdge, MinimalGroup) {
  BftScenarioConfig cfg;
  cfg.n = 2;
  cfg.f = 0;
  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.vector_validity);
}

// Trace-level determinism: the *entire delivery schedule* (not just the
// decisions) replays identically for equal seeds — the strongest
// reproducibility statement the simulator can make.
TEST(BftEdge, TraceLevelDeterminism) {
  auto fingerprint = [](std::uint64_t seed) {
    sim::TraceRecorder trace;
    BftScenarioConfig cfg;
    cfg.n = 7;
    cfg.f = 2;
    cfg.seed = seed;
    FaultSpec spec;
    spec.who = ProcessId{0};
    spec.behavior = Behavior::kEquivocate;
    cfg.faults = {spec};
    cfg.delivery_tap = [&trace](const sim::Delivery& d) { trace.record(d); };
    (void)run_bft_scenario(cfg);
    return trace.fingerprint();
  };
  EXPECT_EQ(fingerprint(71), fingerprint(71));
  EXPECT_NE(fingerprint(71), fingerprint(72));
}

// Byzantine flooding of far-future rounds must not exhaust the buffer.
TEST(BftEdge, FutureRoundFloodIsBounded) {
  BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 5;
  FaultSpec spec;
  spec.who = ProcessId{2};
  spec.behavior = Behavior::kWrongRound;  // every message re-labelled
  spec.from_round = Round{1};
  cfg.faults = {spec};
  BftScenarioResult r = run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_TRUE(r.agreement);
}

}  // namespace
}  // namespace modubft
