// Tests for signed-message Interactive Consistency (SM(f), Lamport–
// Shostak–Pease) — the signatures-buy-resilience counterpart of EIG.
#include <gtest/gtest.h>

#include <map>

#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "sync/sm_ic.hpp"

namespace modubft::sync {
namespace {

struct SmRun {
  std::map<std::uint32_t, std::vector<Value>> vectors;
  SyncStats stats;
};

/// faulty[i]: 0 = correct, 1 = signing equivocator, 2 = crashed.
SmRun run_sm(std::uint32_t n, std::uint32_t f, const std::vector<int>& faulty,
             std::uint64_t seed = 5) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, seed);
  SmRun run;
  std::vector<std::unique_ptr<SyncProcess>> procs;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int kind = i < faulty.size() ? faulty[i] : 0;
    if (kind == 2) {
      procs.push_back(nullptr);
    } else if (kind == 1) {
      procs.push_back(std::make_unique<SmEquivocator>(n, ProcessId{i},
                                                      keys.signers[i].get()));
    } else {
      procs.push_back(std::make_unique<SmProcess>(
          n, f, ProcessId{i}, 1000 + i, keys.signers[i].get(), keys.verifier,
          [&run](ProcessId who, const std::vector<Value>& v) {
            run.vectors.emplace(who.value, v);
          }));
    }
  }
  run.stats = run_lockstep_rounds(procs, SmProcess::rounds_for(f));
  return run;
}

TEST(SmCodec, RoundTrip) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(2, 1);
  ChainedValue cv;
  cv.value = 42;
  cv.chain.emplace_back(0, keys.signers[0]->sign(chain_preimage(42, {0})));
  cv.chain.emplace_back(1, keys.signers[1]->sign(chain_preimage(42, {0, 1})));
  auto back = decode_chained(encode_chained({cv}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].value, 42u);
  ASSERT_EQ(back[0].chain.size(), 2u);
  EXPECT_EQ(back[0].chain[1].first, 1u);
  EXPECT_EQ(back[0].chain[1].second, cv.chain[1].second);
}

TEST(SmCodec, RejectsTruncation) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(1, 1);
  ChainedValue cv;
  cv.value = 1;
  cv.chain.emplace_back(0, keys.signers[0]->sign(chain_preimage(1, {0})));
  Bytes buf = encode_chained({cv});
  buf.pop_back();
  EXPECT_THROW(decode_chained(buf), SerialError);
}

TEST(SmIc, FailureFree) {
  SmRun run = run_sm(4, 1, {});
  ASSERT_EQ(run.vectors.size(), 4u);
  const std::vector<Value> expected = {1000, 1001, 1002, 1003};
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, expected);
}

TEST(SmIc, SigningEquivocatorUnmaskedAtN3) {
  // The headline of signed messages: n = 3, f = 1 works — impossible for
  // oral messages (3 ≤ 3f).  The equivocator's conflicting signed values
  // are cross-relayed, every correct process sees both, and the entry
  // resolves to the default identically everywhere.
  SmRun run = run_sm(3, 1, {0, 1, 0});
  ASSERT_EQ(run.vectors.size(), 2u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, ref);
  EXPECT_EQ(ref[1], kEigDefault);  // equivocation ⇒ default
  EXPECT_EQ(ref[0], 1000u);
  EXPECT_EQ(ref[2], 1002u);
}

TEST(SmIc, CrashedOriginDefaults) {
  SmRun run = run_sm(4, 1, {0, 0, 2, 0});
  ASSERT_EQ(run.vectors.size(), 3u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, ref);
  EXPECT_EQ(ref[2], kEigDefault);
}

TEST(SmIc, TwoFaultsN4) {
  // n = 4, f = 2: far beyond the oral-messages bound (4 ≤ 3·2), fine with
  // signatures (n ≥ f + 2).
  SmRun run = run_sm(4, 2, {0, 1, 2, 0});
  ASSERT_EQ(run.vectors.size(), 2u);
  const std::vector<Value>& ref = run.vectors.begin()->second;
  for (auto& [i, v] : run.vectors) EXPECT_EQ(v, ref);
  EXPECT_EQ(ref[0], 1000u);
  EXPECT_EQ(ref[3], 1003u);
  EXPECT_EQ(ref[1], kEigDefault);
  EXPECT_EQ(ref[2], kEigDefault);
}

TEST(SmIc, ForgedChainRejected) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(3, 7);
  std::map<std::uint32_t, std::vector<Value>> vectors;

  // p2 tries to inject a value "from p1" without p1's signature by signing
  // it itself in position 0 of the chain with a mismatched id.
  class Forger final : public SyncProcess {
   public:
    Forger(std::uint32_t n, const crypto::Signer* self_signer)
        : n_(n), signer_(self_signer) {}
    std::vector<Outgoing> on_round(std::uint32_t round,
                                   const std::vector<Incoming>&) override {
      std::vector<Outgoing> out;
      if (round != 1) return out;
      ChainedValue cv;
      cv.value = 31337;
      // Chain claims origin p1 (id 0) but carries p2's signature.
      cv.chain.emplace_back(0, signer_->sign(chain_preimage(31337, {0})));
      Bytes payload = encode_chained({cv});
      for (std::uint32_t j = 0; j < n_; ++j) {
        out.push_back(Outgoing{ProcessId{j}, payload});
      }
      return out;
    }
    void on_finish(const std::vector<Incoming>&) override {}
   private:
    std::uint32_t n_;
    const crypto::Signer* signer_;
  };

  std::vector<std::unique_ptr<SyncProcess>> procs;
  procs.push_back(std::make_unique<SmProcess>(
      3, 1, ProcessId{0}, 1000, keys.signers[0].get(), keys.verifier,
      [&vectors](ProcessId who, const std::vector<Value>& v) {
        vectors.emplace(who.value, v);
      }));
  procs.push_back(std::make_unique<Forger>(3, keys.signers[1].get()));
  procs.push_back(std::make_unique<SmProcess>(
      3, 1, ProcessId{2}, 1002, keys.signers[2].get(), keys.verifier,
      [&vectors](ProcessId who, const std::vector<Value>& v) {
        vectors.emplace(who.value, v);
      }));
  run_lockstep_rounds(procs, 2);

  ASSERT_EQ(vectors.size(), 2u);
  for (auto& [i, v] : vectors) {
    EXPECT_EQ(v[0], 1000u) << "forged entry accepted";  // p1's true value
    EXPECT_EQ(v[1], kEigDefault);  // the forger sent nothing honest
  }
}

TEST(SmIc, CrossoverAgainstEigAsFGrows) {
  // Signature chains grow linearly with f while the EIG tree grows like
  // n^f, so EIG is *cheaper* at small f (32-byte signatures dominate) and
  // SM wins decisively once the tree explodes — measured crossover between
  // f = 1 and f = 2.
  auto eig_bytes = [](std::uint32_t n, std::uint32_t f) {
    std::map<std::uint32_t, std::vector<Value>> sink;
    std::vector<std::unique_ptr<SyncProcess>> procs;
    for (std::uint32_t i = 0; i < n; ++i) {
      procs.push_back(std::make_unique<EigProcess>(
          n, f, ProcessId{i}, 1000 + i,
          [&sink](ProcessId who, const std::vector<Value>& v) {
            sink.emplace(who.value, v);
          }));
    }
    return run_lockstep_rounds(procs, f + 1).bytes;
  };

  SmRun sm1 = run_sm(7, 1, {});
  EXPECT_LT(eig_bytes(7, 1), sm1.stats.bytes)
      << "at f=1 the signature overhead should still dominate";

  SmRun sm3 = run_sm(10, 3, {});
  EXPECT_LT(sm3.stats.bytes * 2, eig_bytes(10, 3))
      << "at f=3 the EIG tree should dwarf the signature chains";
}

}  // namespace
}  // namespace modubft::sync
