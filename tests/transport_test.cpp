// Tests for the threaded in-memory runtime: mailbox semantics, FIFO
// channels under real threads, and the consensus protocols running on it.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "bft/bft_consensus.hpp"
#include "faults/byzantine.hpp"
#include "common/serial.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "fd/oracle_fd.hpp"
#include "transport/cluster.hpp"
#include "transport/mailbox.hpp"

namespace modubft::transport {
namespace {

TEST(Mailbox, PushPopOrder) {
  Mailbox<int> mb;
  mb.push(1);
  mb.push(2);
  mb.push(3);
  auto deadline = std::chrono::steady_clock::now();
  EXPECT_EQ(mb.pop_until(deadline), 1);
  EXPECT_EQ(mb.pop_until(deadline), 2);
  EXPECT_EQ(mb.try_pop(), 3);
  EXPECT_EQ(mb.try_pop(), std::nullopt);
}

TEST(Mailbox, PopTimesOut) {
  Mailbox<int> mb;
  auto start = std::chrono::steady_clock::now();
  auto got = mb.pop_until(start + std::chrono::milliseconds(30));
  EXPECT_EQ(got, std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(Mailbox, CloseWakesWaiter) {
  Mailbox<int> mb;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.close();
  });
  auto got = mb.pop_until(std::chrono::steady_clock::now() +
                          std::chrono::seconds(5));
  EXPECT_EQ(got, std::nullopt);
  closer.join();
  EXPECT_FALSE(mb.push(7));
}

TEST(Mailbox, DrainsAfterClose) {
  Mailbox<int> mb;
  mb.push(9);
  mb.close();
  EXPECT_EQ(mb.try_pop(), 9);
}

TEST(Mailbox, ConcurrentPushersPreservePerSenderOrder) {
  Mailbox<std::pair<int, int>> mb;  // (sender, seq)
  constexpr int kPer = 500;
  std::vector<std::thread> senders;
  for (int s = 0; s < 4; ++s) {
    senders.emplace_back([&mb, s] {
      for (int i = 0; i < kPer; ++i) mb.push({s, i});
    });
  }
  for (auto& t : senders) t.join();
  std::vector<int> last(4, -1);
  for (int k = 0; k < 4 * kPer; ++k) {
    auto got = mb.try_pop();
    ASSERT_TRUE(got.has_value());
    auto [s, i] = *got;
    EXPECT_EQ(i, last[s] + 1) << "per-sender order broken";
    last[s] = i;
  }
}

// Echo actor: p2 replies to each numbered message; p1 checks FIFO.
TEST(Cluster, FifoUnderRealThreads) {
  class Pinger final : public sim::Actor {
   public:
    Pinger(std::atomic<int>* acked, int count) : acked_(acked), count_(count) {}
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < count_; ++i) {
        Writer w;
        w.u32(static_cast<std::uint32_t>(i));
        ctx.send(ProcessId{1}, std::move(w).take());
      }
    }
    void on_message(sim::Context& ctx, ProcessId, const Bytes& payload) override {
      Reader r(payload);
      const std::uint32_t seq = r.u32();
      EXPECT_EQ(seq, static_cast<std::uint32_t>(next_)) << "FIFO violated";
      ++next_;
      acked_->store(next_);
      if (next_ == count_) ctx.stop();
    }
   private:
    std::atomic<int>* acked_;
    int count_;
    int next_ = 0;
  };

  class Echo final : public sim::Actor {
   public:
    explicit Echo(int count) : count_(count) {}
    void on_message(sim::Context& ctx, ProcessId from, const Bytes& payload) override {
      ctx.send(from, payload);
      if (++seen_ == count_) ctx.stop();
    }
   private:
    int count_;
    int seen_ = 0;
  };

  ClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(5000);
  Cluster cluster(cfg);
  std::atomic<int> acked{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<Pinger>(&acked, 200));
  cluster.set_actor(ProcessId{1}, std::make_unique<Echo>(200));
  EXPECT_TRUE(cluster.run());
  EXPECT_EQ(acked.load(), 200);
}

TEST(Cluster, TimersFire) {
  class TimerCounter final : public sim::Actor {
   public:
    explicit TimerCounter(std::atomic<int>* count) : count_(count) {}
    void on_start(sim::Context& ctx) override { ctx.set_timer(1000); }
    void on_timer(sim::Context& ctx, std::uint64_t) override {
      if (++*count_ >= 5) {
        ctx.stop();
        return;
      }
      ctx.set_timer(1000);
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
   private:
    std::atomic<int>* count_;
  };

  ClusterConfig cfg;
  cfg.n = 1;
  cfg.budget = std::chrono::milliseconds(3000);
  Cluster cluster(cfg);
  std::atomic<int> count{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<TimerCounter>(&count));
  EXPECT_TRUE(cluster.run());
  EXPECT_EQ(count.load(), 5);
}

TEST(Cluster, HurfinRaynalDecidesOnThreads) {
  constexpr std::uint32_t kN = 5;
  ClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(8000);
  Cluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, consensus::Decision> decisions;

  // Nobody crashes: a never-suspecting oracle is a valid ◇S detector here.
  auto detector = std::make_shared<fd::OracleDetector>(
      std::vector<std::optional<SimTime>>(kN, std::nullopt),
      fd::OracleConfig{});

  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<consensus::HurfinRaynalActor>(
            kN, 500 + i, detector,
            [&mu, &decisions, i](ProcessId, const consensus::Decision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }
  EXPECT_TRUE(cluster.run());
  ASSERT_EQ(decisions.size(), kN);
  for (auto& [i, d] : decisions) EXPECT_EQ(d.value, decisions.at(0).value);
}

TEST(Cluster, BftConsensusDecidesOnThreads) {
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 5);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  // Wall-clock timings: keep the ◇M timeouts generous to avoid spurious
  // round changes under scheduler noise.
  proto.muteness.initial_timeout = 500'000;
  proto.suspicion_poll_period = 50'000;

  ClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(8000);
  Cluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;

  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<bft::BftProcess>(
            proto, 900 + i, keys.signers[i].get(), keys.verifier,
            [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }
  EXPECT_TRUE(cluster.run());
  ASSERT_EQ(decisions.size(), kN);
  const auto& ref = decisions.at(0).entries;
  std::size_t non_null = 0;
  for (const auto& e : ref) non_null += e.has_value();
  EXPECT_GE(non_null, 3u);
  for (auto& [i, d] : decisions) EXPECT_EQ(d.entries, ref);
}

TEST(Cluster, CrashAfterSilencesNode) {
  class Chatter final : public sim::Actor {
   public:
    explicit Chatter(std::atomic<int>* received) : received_(received) {}
    void on_start(sim::Context& ctx) override { ctx.set_timer(5'000); }
    void on_timer(sim::Context& ctx, std::uint64_t) override {
      ctx.broadcast({1});
      ctx.set_timer(5'000);
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {
      ++*received_;
    }
   private:
    std::atomic<int>* received_;
  };

  ClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(400);
  Cluster cluster(cfg);
  std::atomic<int> a{0}, b{0};
  cluster.set_actor(ProcessId{0}, std::make_unique<Chatter>(&a));
  cluster.set_actor(ProcessId{1}, std::make_unique<Chatter>(&b));
  cluster.crash_after(ProcessId{1}, std::chrono::microseconds(100'000));
  cluster.run();  // budget expiry expected (p1 chats forever)
  // p2 crashed a quarter of the way in: it stopped receiving (and sending),
  // so it saw far less traffic than the survivor.
  EXPECT_GT(b.load(), 0);
  EXPECT_LT(b.load(), a.load());
}

// --- Stats / delivery-tap / unstopped parity with the simulator ---------

TEST(Cluster, StatsCountProtocolTraffic) {
  class Sender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < 10; ++i) ctx.send(ProcessId{1}, {1, 2, 3});
      ctx.stop();
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class Sink final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      if (++seen_ == 10) ctx.stop();
    }
   private:
    int seen_ = 0;
  };

  ClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(5000);
  Cluster cluster(cfg);
  cluster.set_actor(ProcessId{0}, std::make_unique<Sender>());
  cluster.set_actor(ProcessId{1}, std::make_unique<Sink>());
  EXPECT_TRUE(cluster.run());

  const sim::Stats stats = cluster.stats();
  EXPECT_EQ(stats.messages_sent, 10u);
  EXPECT_EQ(stats.messages_delivered, 10u);
  EXPECT_EQ(stats.bytes_sent, 30u);
  EXPECT_GE(stats.events_executed, 10u);
}

TEST(Cluster, DeliveryTapObservesEveryDelivery) {
  class Sender final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      for (int i = 0; i < 7; ++i) ctx.send(ProcessId{1}, {9});
      ctx.stop();
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class Sink final : public sim::Actor {
   public:
    void on_message(sim::Context& ctx, ProcessId, const Bytes&) override {
      if (++seen_ == 7) ctx.stop();
    }
   private:
    int seen_ = 0;
  };

  ClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(5000);
  Cluster cluster(cfg);
  int taps = 0;
  bool shape_ok = true;
  cluster.set_delivery_tap([&](const sim::Delivery& d) {
    ++taps;  // tap calls are serialized by the cluster
    shape_ok = shape_ok && d.from == ProcessId{0} && d.to == ProcessId{1} &&
               d.size == 1 && d.payload != nullptr &&
               d.deliver_time >= d.send_time;
  });
  cluster.set_actor(ProcessId{0}, std::make_unique<Sender>());
  cluster.set_actor(ProcessId{1}, std::make_unique<Sink>());
  EXPECT_TRUE(cluster.run());
  EXPECT_EQ(taps, 7);
  EXPECT_TRUE(shape_ok);
  EXPECT_EQ(static_cast<std::uint64_t>(taps),
            cluster.stats().messages_delivered);
}

TEST(Cluster, UnstoppedNamesTheCulprit) {
  class Quits final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override { ctx.stop(); }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };
  class Hangs final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override { ctx.set_timer(10'000); }
    void on_timer(sim::Context& ctx, std::uint64_t) override {
      ctx.set_timer(10'000);  // rearm forever
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };

  ClusterConfig cfg;
  cfg.n = 2;
  cfg.budget = std::chrono::milliseconds(200);
  Cluster cluster(cfg);
  cluster.set_actor(ProcessId{0}, std::make_unique<Quits>());
  cluster.set_actor(ProcessId{1}, std::make_unique<Hangs>());
  EXPECT_FALSE(cluster.run());
  const std::vector<ProcessId> stuck = cluster.unstopped();
  ASSERT_EQ(stuck.size(), 1u);
  EXPECT_EQ(stuck[0], ProcessId{1});
}

TEST(Cluster, BftToleratesByzantineOnThreads) {
  // The Byzantine wrapper is itself just an Actor, so fault injection runs
  // unchanged on the threaded substrate: p1 corrupts its vectors while the
  // other three decide.
  constexpr std::uint32_t kN = 4;
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, 21);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  proto.muteness.initial_timeout = 500'000;
  proto.suspicion_poll_period = 50'000;

  ClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(8000);
  Cluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;

  for (std::uint32_t i = 0; i < kN; ++i) {
    auto proc = std::make_unique<bft::BftProcess>(
        proto, 900 + i, keys.signers[i].get(), keys.verifier,
        [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
          std::lock_guard<std::mutex> lock(mu);
          decisions.emplace(i, d);
        });
    if (i == 0) {
      faults::FaultSpec spec;
      spec.who = ProcessId{0};
      spec.behavior = faults::Behavior::kCorruptVector;
      cluster.set_actor(ProcessId{i},
                        std::make_unique<faults::ByzantineActor>(
                            std::move(proc), keys.signers[i].get(), spec, kN));
    } else {
      cluster.set_actor(ProcessId{i}, std::move(proc));
    }
  }
  cluster.run();
  std::lock_guard<std::mutex> lock(mu);
  // The three correct processes must decide identically (the corrupter may
  // or may not decide; its wrapper still runs the protocol underneath).
  for (std::uint32_t i = 1; i < kN; ++i) {
    ASSERT_TRUE(decisions.count(i)) << "p" << i + 1 << " did not decide";
  }
  for (std::uint32_t i = 2; i < kN; ++i) {
    EXPECT_EQ(decisions.at(i).entries, decisions.at(1).entries);
  }
}

}  // namespace
}  // namespace modubft::transport
