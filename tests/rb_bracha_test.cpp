// Tests for Bracha reliable broadcast (the footnote-1 masking approach).
#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "rb/bracha.hpp"
#include "sim/simulation.hpp"

namespace modubft::rb {
namespace {

/// An equivocating sender for instance `self`: INITIAL(a) to low ids,
/// INITIAL(b) to high ids, while participating honestly in other instances.
class EquivocatingSender final : public sim::Actor {
 public:
  EquivocatingSender(BrachaConfig config, Bytes a, Bytes b)
      : honest_(config, std::nullopt, DeliverFn{}),
        a_(std::move(a)),
        b_(std::move(b)) {}

  void on_start(sim::Context& ctx) override {
    for (std::uint32_t j = 0; j < ctx.n(); ++j) {
      Writer w;
      w.u8(1);  // INITIAL
      w.u32(ctx.id().value);
      w.bytes(j < ctx.n() / 2 ? a_ : b_);
      ctx.send(ProcessId{j}, std::move(w).take());
    }
  }

  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override {
    honest_.on_message(ctx, from, payload);  // echo/ready like anyone else
  }

 private:
  BrachaActor honest_;
  Bytes a_;
  Bytes b_;
};

struct RbRun {
  // deliveries[receiver][instance] = message
  std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> deliveries;
};

TEST(Bracha, ValidityAllCorrect) {
  BrachaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  sim::SimConfig sim_cfg;
  sim_cfg.n = 4;
  sim_cfg.seed = 1;
  sim::Simulation world(sim_cfg);

  RbRun run;
  for (std::uint32_t i = 0; i < 4; ++i) {
    world.set_actor(ProcessId{i},
                    std::make_unique<BrachaActor>(
                        cfg, bytes_of("msg-from-" + std::to_string(i)),
                        [&run, i](ProcessId inst, const Bytes& m) {
                          run.deliveries[i][inst.value] = m;
                        }));
  }
  world.run();

  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(run.deliveries[i].size(), 4u) << "receiver " << i;
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(string_of(run.deliveries[i][s]),
                "msg-from-" + std::to_string(s));
    }
  }
}

TEST(Bracha, SilentSenderDeliversNothingForThatInstance) {
  BrachaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  sim::SimConfig sim_cfg;
  sim_cfg.n = 4;
  sim_cfg.seed = 2;
  sim::Simulation world(sim_cfg);

  RbRun run;
  for (std::uint32_t i = 0; i < 4; ++i) {
    std::optional<Bytes> msg;
    if (i != 2) msg = bytes_of("m" + std::to_string(i));
    world.set_actor(ProcessId{i},
                    std::make_unique<BrachaActor>(
                        cfg, msg,
                        [&run, i](ProcessId inst, const Bytes& m) {
                          run.deliveries[i][inst.value] = m;
                        }));
  }
  world.run();

  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(run.deliveries[i].count(2), 0u);
    EXPECT_EQ(run.deliveries[i].size(), 3u);
  }
}

TEST(Bracha, EquivocationIsMaskedNotDetected) {
  // Footnote 1 in action: the equivocating sender is *masked* — correct
  // processes either deliver the same one of its two messages or nothing —
  // but no correct process learns anything about who misbehaved (the API
  // has no faulty set at all).
  for (std::uint64_t seed : {3ull, 4ull, 5ull, 6ull}) {
    BrachaConfig cfg;
    cfg.n = 4;
    cfg.f = 1;

    sim::SimConfig sim_cfg;
    sim_cfg.n = 4;
    sim_cfg.seed = seed;
    sim::Simulation world(sim_cfg);

    RbRun run;
    world.set_actor(ProcessId{0},
                    std::make_unique<EquivocatingSender>(cfg, bytes_of("AAA"),
                                                         bytes_of("BBB")));
    for (std::uint32_t i = 1; i < 4; ++i) {
      world.set_actor(ProcessId{i},
                      std::make_unique<BrachaActor>(
                          cfg, bytes_of("m" + std::to_string(i)),
                          [&run, i](ProcessId inst, const Bytes& m) {
                            run.deliveries[i][inst.value] = m;
                          }));
    }
    world.run();

    // Consistency for instance 0 across correct receivers.
    std::optional<Bytes> seen;
    for (std::uint32_t i = 1; i < 4; ++i) {
      auto it = run.deliveries[i].find(0);
      if (it == run.deliveries[i].end()) continue;
      if (!seen.has_value()) seen = it->second;
      EXPECT_EQ(it->second, *seen) << "seed " << seed;
    }
    // Totality: all-or-none.
    std::size_t delivered_count = 0;
    for (std::uint32_t i = 1; i < 4; ++i) {
      delivered_count += run.deliveries[i].count(0);
    }
    EXPECT_TRUE(delivered_count == 0 || delivered_count == 3)
        << "seed " << seed << ": " << delivered_count;
    // The honest instances are untouched by the attack.
    for (std::uint32_t i = 1; i < 4; ++i) {
      for (std::uint32_t s = 1; s < 4; ++s) {
        ASSERT_TRUE(run.deliveries[i].count(s));
      }
    }
  }
}

TEST(Bracha, GarbageFramesIgnored) {
  BrachaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  class Garbler final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.broadcast(Bytes{0xff, 0x01});
      ctx.broadcast(Bytes{});
      Writer w;
      w.u8(2);       // ECHO
      w.u32(99);     // instance out of range
      w.bytes({1});
      ctx.broadcast(std::move(w).take());
    }
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };

  sim::SimConfig sim_cfg;
  sim_cfg.n = 4;
  sim_cfg.seed = 7;
  sim::Simulation world(sim_cfg);

  RbRun run;
  world.set_actor(ProcessId{3}, std::make_unique<Garbler>());
  for (std::uint32_t i = 0; i < 3; ++i) {
    world.set_actor(ProcessId{i},
                    std::make_unique<BrachaActor>(
                        cfg, bytes_of("x" + std::to_string(i)),
                        [&run, i](ProcessId inst, const Bytes& m) {
                          run.deliveries[i][inst.value] = m;
                        }));
  }
  world.run();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(run.deliveries[i].size(), 3u);
  }
}

TEST(Bracha, ConfigRejectsBadResilience) {
  BrachaConfig cfg;
  cfg.n = 3;
  cfg.f = 1;  // 3 ≤ 3f
  EXPECT_THROW(BrachaActor(cfg, std::nullopt, DeliverFn{}),
               modubft::ContractViolation);
}

TEST(Bracha, ReadyAmplificationDeliversLateJoiner) {
  // A process that misses the sender's INITIAL (and thus never echoes)
  // must still deliver via the f+1 READY amplification rule.  We force the
  // miss with a targeted channel delay on sender → p4.
  BrachaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  sim::SimConfig sim_cfg;
  sim_cfg.n = 4;
  sim_cfg.seed = 8;
  sim::Simulation world(sim_cfg);

  RbRun run;
  for (std::uint32_t i = 0; i < 4; ++i) {
    std::optional<Bytes> msg;
    if (i == 0) msg = bytes_of("late");
    world.set_actor(ProcessId{i},
                    std::make_unique<BrachaActor>(
                        cfg, msg,
                        [&run, i](ProcessId inst, const Bytes& m) {
                          run.deliveries[i][inst.value] = m;
                        }));
  }
  world.delay_channel(ProcessId{0}, ProcessId{3}, 400'000, 100'000);
  world.run();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(run.deliveries[i].count(0)) << "p" << i + 1;
    EXPECT_EQ(string_of(run.deliveries[i][0]), "late");
  }
}

}  // namespace
}  // namespace modubft::rb
