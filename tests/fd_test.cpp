// Unit tests for the failure detectors: oracle ◇S, heartbeat ◇P/◇S,
// muteness ◇M.
#include <gtest/gtest.h>

#include "fd/heartbeat_fd.hpp"
#include "fd/muteness_fd.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"

namespace modubft::fd {
namespace {

TEST(OracleFd, CompletenessAfterLag) {
  OracleConfig cfg;
  cfg.detection_lag = 1000;
  OracleDetector fd({std::nullopt, SimTime{5000}}, cfg);
  EXPECT_FALSE(fd.suspects(ProcessId{1}, 5500));   // within lag
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 6000));    // lag elapsed
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 100'000)); // forever after
}

TEST(OracleFd, NeverSuspectsCorrectAfterStabilization) {
  OracleConfig cfg;
  cfg.stabilization_time = 10'000;
  cfg.false_suspicion_prob = 0.9;
  OracleDetector fd({std::nullopt, std::nullopt}, cfg);
  for (SimTime t = 10'000; t < 100'000; t += 777) {
    EXPECT_FALSE(fd.suspects(ProcessId{0}, t));
  }
}

TEST(OracleFd, MakesMistakesBeforeStabilization) {
  OracleConfig cfg;
  cfg.stabilization_time = 1'000'000;
  cfg.false_suspicion_prob = 0.5;
  cfg.mistake_window = 1000;
  cfg.seed = 42;
  OracleDetector fd({std::nullopt}, cfg);
  int suspicions = 0;
  for (SimTime t = 0; t < 200'000; t += 1000) {
    suspicions += fd.suspects(ProcessId{0}, t);
  }
  EXPECT_GT(suspicions, 50);
  EXPECT_LT(suspicions, 150);
}

TEST(OracleFd, MistakesStableWithinWindow) {
  OracleConfig cfg;
  cfg.stabilization_time = 1'000'000;
  cfg.false_suspicion_prob = 0.5;
  cfg.mistake_window = 10'000;
  OracleDetector fd({std::nullopt}, cfg);
  for (SimTime base = 0; base < 100'000; base += 10'000) {
    bool first = fd.suspects(ProcessId{0}, base + 1);
    for (SimTime t = base + 1; t < base + 10'000; t += 1234) {
      EXPECT_EQ(fd.suspects(ProcessId{0}, t), first);
    }
  }
}

TEST(OracleFd, OutOfRangeProcessNotSuspected) {
  OracleDetector fd({std::nullopt}, OracleConfig{});
  EXPECT_FALSE(fd.suspects(ProcessId{7}, 1000));
}

TEST(OracleFd, SuspectedSetHelper) {
  OracleConfig cfg;
  cfg.detection_lag = 0;
  OracleDetector fd({std::nullopt, SimTime{0}, SimTime{0}}, cfg);
  auto set = fd.suspected_set(3, 10);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(ProcessId{1}));
  EXPECT_TRUE(set.count(ProcessId{2}));
}

TEST(HeartbeatFd, SuspectsSilentPeer) {
  HeartbeatConfig cfg;
  cfg.initial_timeout = 1000;
  HeartbeatDetector fd(3, ProcessId{0}, cfg);
  fd.record_alive(ProcessId{1}, 100);
  EXPECT_FALSE(fd.suspects(ProcessId{1}, 1000));
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 1200));
}

TEST(HeartbeatFd, NeverSuspectsSelf) {
  HeartbeatDetector fd(3, ProcessId{0}, HeartbeatConfig{});
  EXPECT_FALSE(fd.suspects(ProcessId{0}, 1'000'000));
}

TEST(HeartbeatFd, TimeoutGrowsAfterFalseSuspicion) {
  HeartbeatConfig cfg;
  cfg.initial_timeout = 1000;
  HeartbeatDetector fd(2, ProcessId{0}, cfg);
  fd.record_alive(ProcessId{1}, 0);
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 2000));  // false suspicion
  fd.record_alive(ProcessId{1}, 2100);           // peer speaks: adapt
  EXPECT_GT(fd.timeout_of(ProcessId{1}), SimTime{1000});
  // The grown timeout tolerates the same silence that previously tripped.
  EXPECT_FALSE(fd.suspects(ProcessId{1}, 2100 + 1500));
}

TEST(HeartbeatFd, WrapperAchievesEventualAccuracyInSim) {
  // Two heartbeat-wrapped silent actors on a calm network: after warm-up,
  // neither should suspect the other.
  class Idle final : public sim::Actor {
   public:
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };

  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 8;
  cfg.max_time = 2'000'000;
  sim::Simulation world(cfg);
  HeartbeatConfig hb;
  auto d0 = std::make_shared<HeartbeatDetector>(2, ProcessId{0}, hb);
  auto d1 = std::make_shared<HeartbeatDetector>(2, ProcessId{1}, hb);
  world.set_actor(ProcessId{0}, std::make_unique<HeartbeatWrapper>(
                                    std::make_unique<Idle>(), d0, hb));
  world.set_actor(ProcessId{1}, std::make_unique<HeartbeatWrapper>(
                                    std::make_unique<Idle>(), d1, hb));
  world.run();
  EXPECT_FALSE(d0->suspects(ProcessId{1}, world.now()));
  EXPECT_FALSE(d1->suspects(ProcessId{0}, world.now()));
}

TEST(HeartbeatFd, WrapperDetectsCrashedPeer) {
  class Idle final : public sim::Actor {
   public:
    void on_message(sim::Context&, ProcessId, const Bytes&) override {}
  };

  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 8;
  cfg.max_time = 1'000'000;
  sim::Simulation world(cfg);
  HeartbeatConfig hb;
  auto d0 = std::make_shared<HeartbeatDetector>(2, ProcessId{0}, hb);
  auto d1 = std::make_shared<HeartbeatDetector>(2, ProcessId{1}, hb);
  world.set_actor(ProcessId{0}, std::make_unique<HeartbeatWrapper>(
                                    std::make_unique<Idle>(), d0, hb));
  world.set_actor(ProcessId{1}, std::make_unique<HeartbeatWrapper>(
                                    std::make_unique<Idle>(), d1, hb));
  world.crash_at(ProcessId{1}, 200'000);
  world.run();
  EXPECT_TRUE(d0->suspects(ProcessId{1}, world.now()));
}

TEST(MutenessFd, SuspectsMutePeer) {
  MutenessConfig cfg;
  cfg.initial_timeout = 5000;
  MutenessDetector fd(3, ProcessId{0}, cfg);
  fd.on_protocol_message(ProcessId{1}, 0);
  EXPECT_FALSE(fd.suspects(ProcessId{1}, 4000));
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 6000));
}

TEST(MutenessFd, BackoffOnFalseSuspicion) {
  MutenessConfig cfg;
  cfg.initial_timeout = 5000;
  cfg.backoff_factor = 2.0;
  MutenessDetector fd(2, ProcessId{0}, cfg);
  fd.on_protocol_message(ProcessId{1}, 0);
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 6000));
  fd.on_protocol_message(ProcessId{1}, 6100);
  EXPECT_EQ(fd.timeout_of(ProcessId{1}), SimTime{10'000});
  EXPECT_FALSE(fd.suspects(ProcessId{1}, 6100 + 8000));
}

TEST(MutenessFd, NewRoundResetsDeadlines) {
  MutenessConfig cfg;
  cfg.initial_timeout = 5000;
  MutenessDetector fd(2, ProcessId{0}, cfg);
  fd.on_protocol_message(ProcessId{1}, 0);
  fd.on_new_round(4000);
  // The silence clock restarts at the round boundary.
  EXPECT_FALSE(fd.suspects(ProcessId{1}, 8000));
  EXPECT_TRUE(fd.suspects(ProcessId{1}, 9500));
}

TEST(MutenessFd, SelfNeverSuspected) {
  MutenessDetector fd(2, ProcessId{0}, MutenessConfig{});
  EXPECT_FALSE(fd.suspects(ProcessId{0}, 1'000'000'000));
}

TEST(MutenessFd, MuteCompletenessPermanent) {
  MutenessConfig cfg;
  cfg.initial_timeout = 5000;
  MutenessDetector fd(2, ProcessId{0}, cfg);
  fd.on_protocol_message(ProcessId{1}, 0);
  for (SimTime t = 10'000; t < 500'000; t += 7000) {
    EXPECT_TRUE(fd.suspects(ProcessId{1}, t));
  }
}

}  // namespace
}  // namespace modubft::fd
