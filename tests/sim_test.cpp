// Unit tests for the simulation substrate: determinism, FIFO channels,
// crash semantics, timers, run outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/serial.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace modubft::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(1); });
  q.push(5, [&] { order.push_back(2); });
  q.push(10, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.push(42, [] {});
  EXPECT_EQ(q.next_time(), 42u);
}

TEST(Latency, SampleIsPositiveAndBounded) {
  LatencyModel m = calm_network();
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    SimTime s = m.sample(rng, 0);
    EXPECT_GE(s, 1u);
    EXPECT_LT(s, 100'000u);  // calm network: no heavy tail
  }
}

TEST(Latency, TurbulentSlowerBeforeGst) {
  LatencyModel m = turbulent_until(1'000'000);
  Rng rng(1);
  double pre = 0, post = 0;
  const int k = 4000;
  for (int i = 0; i < k; ++i) pre += static_cast<double>(m.sample(rng, 0));
  for (int i = 0; i < k; ++i)
    post += static_cast<double>(m.sample(rng, 2'000'000));
  EXPECT_GT(pre / k, post / k * 2);
}

// Test actor: records deliveries, echoes on request.
class Recorder final : public Actor {
 public:
  struct Event {
    SimTime time;
    ProcessId from;
    Bytes payload;
  };

  explicit Recorder(std::vector<Event>* log) : log_(log) {}

  void on_message(Context& ctx, ProcessId from, const Bytes& payload) override {
    log_->push_back({ctx.now(), from, payload});
  }

 private:
  std::vector<Event>* log_;
};

// Sends `count` numbered messages to process 1 at start.
class Burster final : public Actor {
 public:
  explicit Burster(int count) : count_(count) {}

  void on_start(Context& ctx) override {
    for (int i = 0; i < count_; ++i) {
      Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      ctx.send(ProcessId{1}, std::move(w).take());
    }
  }

  void on_message(Context&, ProcessId, const Bytes&) override {}

 private:
  int count_;
};

TEST(Simulation, FifoPerChannel) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 3;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(50));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.run();
  ASSERT_EQ(log.size(), 50u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    Reader r(log[i].payload);
    EXPECT_EQ(r.u32(), i) << "FIFO violated at delivery " << i;
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimConfig cfg;
    cfg.n = 3;
    cfg.seed = 17;
    Simulation world(cfg);
    std::vector<Recorder::Event> log;
    world.set_actor(ProcessId{0}, std::make_unique<Burster>(20));
    world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
    world.set_actor(ProcessId{2}, std::make_unique<Burster>(0));
    world.run();
    std::vector<SimTime> times;
    for (const auto& e : log) times.push_back(e.time);
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, SeedChangesSchedule) {
  auto run_once = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.n = 2;
    cfg.seed = seed;
    Simulation world(cfg);
    std::vector<Recorder::Event> log;
    world.set_actor(ProcessId{0}, std::make_unique<Burster>(20));
    world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
    world.run();
    std::vector<SimTime> times;
    for (const auto& e : log) times.push_back(e.time);
    return times;
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(Simulation, CrashStopsDeliveryAndSending) {
  // p1 sends a message every 1000µs; crashes at t=5000.
  class Ticker final : public Actor {
   public:
    void on_start(Context& ctx) override { ctx.set_timer(1000); }
    void on_timer(Context& ctx, std::uint64_t) override {
      Writer w;
      w.u32(1);
      ctx.send(ProcessId{1}, std::move(w).take());
      ctx.set_timer(1000);
    }
    void on_message(Context&, ProcessId, const Bytes&) override {}
  };

  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  cfg.max_time = 50'000;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Ticker>());
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.crash_at(ProcessId{0}, 5000);
  world.run();
  EXPECT_TRUE(world.crashed(ProcessId{0}));
  // At most ~5 ticks happened before the crash.
  EXPECT_LE(log.size(), 5u);
  EXPECT_GE(log.size(), 3u);
}

TEST(Simulation, MessagesInFlightAtCrashStillDelivered) {
  // Sender emits at t=0 and crashes immediately after: the channel is
  // reliable, so messages already sent must arrive.
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(3));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.crash_at(ProcessId{0}, 1);  // after on_start at t=0
  world.run();
  EXPECT_EQ(log.size(), 3u);
}

TEST(Simulation, CrashedDestinationReceivesNothing) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(3));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.crash_at(ProcessId{1}, 0);
  world.run();
  EXPECT_TRUE(log.empty());
}

TEST(Simulation, StopHaltsActor) {
  class StopAfterOne final : public Actor {
   public:
    explicit StopAfterOne(int* count) : count_(count) {}
    void on_message(Context& ctx, ProcessId, const Bytes&) override {
      ++*count_;
      ctx.stop();
    }
   private:
    int* count_;
  };

  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation world(cfg);
  int count = 0;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(10));
  world.set_actor(ProcessId{1}, std::make_unique<StopAfterOne>(&count));
  world.run();
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(world.stopped(ProcessId{1}));
}

TEST(Simulation, TimerCancellation) {
  class Canceller final : public Actor {
   public:
    explicit Canceller(int* fired) : fired_(fired) {}
    void on_start(Context& ctx) override {
      std::uint64_t id = ctx.set_timer(100);
      ctx.set_timer(50);
      pending_ = id;
    }
    void on_timer(Context& ctx, std::uint64_t id) override {
      ++*fired_;
      if (id != pending_) ctx.cancel_timer(pending_);
    }
    void on_message(Context&, ProcessId, const Bytes&) override {}
   private:
    int* fired_;
    std::uint64_t pending_ = 0;
  };

  SimConfig cfg;
  cfg.n = 1;
  cfg.seed = 5;
  Simulation world(cfg);
  int fired = 0;
  world.set_actor(ProcessId{0}, std::make_unique<Canceller>(&fired));
  world.run();
  EXPECT_EQ(fired, 1);  // the 100µs timer was cancelled by the 50µs one
}

TEST(Simulation, BroadcastReachesAllIncludingSelf) {
  class Caster final : public Actor {
   public:
    void on_start(Context& ctx) override { ctx.broadcast({42}); }
    void on_message(Context&, ProcessId, const Bytes&) override {}
  };

  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 5;
  Simulation world(cfg);
  std::vector<Recorder::Event> a, b;
  world.set_actor(ProcessId{0}, std::make_unique<Caster>());
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&a));
  world.set_actor(ProcessId{2}, std::make_unique<Recorder>(&b));
  world.run();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(world.stats().messages_sent, 3u);   // includes self-delivery
  EXPECT_EQ(world.stats().messages_delivered, 3u);
}

TEST(Simulation, StatsCountBytes) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(4));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.run();
  EXPECT_EQ(world.stats().messages_sent, 4u);
  EXPECT_EQ(world.stats().bytes_sent, 16u);  // 4 × u32
}

TEST(Simulation, DeliveryTapObservesTraffic) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  int tapped = 0;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(7));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.set_delivery_tap([&](const Delivery& d) {
    ++tapped;
    EXPECT_LE(d.send_time, d.deliver_time);
    EXPECT_EQ(d.from, (ProcessId{0}));
  });
  world.run();
  EXPECT_EQ(tapped, 7);
}

TEST(Simulation, RunOutcomeAllStopped) {
  class StopNow final : public Actor {
   public:
    void on_start(Context& ctx) override {
      ctx.set_timer(10);  // leaves a pending event behind
      ctx.stop();
    }
    void on_message(Context&, ProcessId, const Bytes&) override {}
  };

  SimConfig cfg;
  cfg.n = 1;
  cfg.seed = 5;
  Simulation world(cfg);
  world.set_actor(ProcessId{0}, std::make_unique<StopNow>());
  EXPECT_EQ(world.run(), RunOutcome::kAllStopped);
}

TEST(Simulation, RunUntilExecutesPrefix) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 3;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(10));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.run_until(0);  // starts actors, delivers nothing (latency >= 1)
  EXPECT_TRUE(log.empty());
  world.run_until(10'000'000);
  EXPECT_EQ(log.size(), 10u);
  for (const auto& e : log) EXPECT_LE(e.time, 10'000'000u);
}

TEST(Simulation, RunUntilThenRunCompletes) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 4;
  Simulation world(cfg);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(5));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.run_until(150);  // partial
  const std::size_t partial = log.size();
  world.run();
  EXPECT_EQ(log.size(), 5u);
  EXPECT_LE(partial, 5u);
}

TEST(Trace, FingerprintDeterministicPerSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.n = 3;
    cfg.seed = seed;
    Simulation world(cfg);
    TraceRecorder trace;
    trace.attach(world);
    std::vector<Recorder::Event> log;
    world.set_actor(ProcessId{0}, std::make_unique<Burster>(25));
    world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
    world.set_actor(ProcessId{2}, std::make_unique<Burster>(0));
    world.run();
    return trace.fingerprint();
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  EXPECT_NE(fingerprint(5), fingerprint(6));
}

TEST(Trace, RecordsEveryDeliveryAndSummarizes) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation world(cfg);
  TraceRecorder trace;
  trace.attach(world);
  std::vector<Recorder::Event> log;
  world.set_actor(ProcessId{0}, std::make_unique<Burster>(7));
  world.set_actor(ProcessId{1}, std::make_unique<Recorder>(&log));
  world.run();
  EXPECT_EQ(trace.events().size(), 7u);
  auto channels = trace.by_channel();
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels.at({0, 1}).messages, 7u);
  EXPECT_EQ(channels.at({0, 1}).bytes, 28u);

  std::ostringstream os;
  trace.write_jsonl(os);
  std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 7);
  EXPECT_NE(text.find("\"from\":1"), std::string::npos);
}

TEST(Simulation, RunOutcomeTimeLimit) {
  class Forever final : public Actor {
   public:
    void on_start(Context& ctx) override { ctx.set_timer(1000); }
    void on_timer(Context& ctx, std::uint64_t) override { ctx.set_timer(1000); }
    void on_message(Context&, ProcessId, const Bytes&) override {}
  };

  SimConfig cfg;
  cfg.n = 1;
  cfg.seed = 5;
  cfg.max_time = 10'000;
  Simulation world(cfg);
  world.set_actor(ProcessId{0}, std::make_unique<Forever>());
  EXPECT_EQ(world.run(), RunOutcome::kTimeLimit);
}

}  // namespace
}  // namespace modubft::sim
