// Cross-module integration tests:
//   * Hurfin–Raynal consensus driven by the *heartbeat* ◇S detector (the
//     real implementation, not the oracle) end to end;
//   * protocol robustness against garbage traffic (a frame-fuzzing peer);
//   * the full stack under combined stress (turbulence + Byzantine +
//     crash).
#include <gtest/gtest.h>

#include <map>

#include "consensus/chandra_toueg.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/scenario.hpp"
#include "fd/heartbeat_fd.hpp"
#include "sim/simulation.hpp"

namespace modubft {
namespace {

// ---------------------------------------------------------------------
// Hurfin–Raynal over heartbeat-◇S.
// ---------------------------------------------------------------------

struct HeartbeatRun {
  std::map<std::uint32_t, consensus::Decision> decisions;
  sim::RunOutcome outcome;
};

HeartbeatRun run_hr_with_heartbeats(std::uint32_t n, std::uint64_t seed,
                                    std::vector<std::optional<SimTime>> crashes,
                                    sim::LatencyModel latency) {
  crashes.resize(n);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.latency = latency;
  sim::Simulation world(cfg);

  HeartbeatRun run;
  fd::HeartbeatConfig hb;
  hb.period = 5'000;
  hb.initial_timeout = 30'000;

  for (std::uint32_t i = 0; i < n; ++i) {
    auto detector =
        std::make_shared<fd::HeartbeatDetector>(n, ProcessId{i}, hb);
    auto inner = std::make_unique<consensus::HurfinRaynalActor>(
        n, 100 + i, detector,
        [&run, i](ProcessId, const consensus::Decision& d) {
          run.decisions.emplace(i, d);
        });
    world.set_actor(ProcessId{i},
                    std::make_unique<fd::HeartbeatWrapper>(
                        std::move(inner), detector, hb));
    if (crashes[i].has_value()) world.crash_at(ProcessId{i}, *crashes[i]);
  }
  run.outcome = world.run();
  return run;
}

TEST(HeartbeatIntegration, FailureFreeDecides) {
  HeartbeatRun run = run_hr_with_heartbeats(5, 1, {}, sim::calm_network());
  ASSERT_EQ(run.decisions.size(), 5u);
  for (auto& [i, d] : run.decisions) {
    EXPECT_EQ(d.value, run.decisions.begin()->second.value);
  }
}

TEST(HeartbeatIntegration, DetectsCrashedCoordinator) {
  std::vector<std::optional<SimTime>> crashes(5, std::nullopt);
  crashes[0] = SimTime{0};
  HeartbeatRun run =
      run_hr_with_heartbeats(5, 2, crashes, sim::calm_network());
  ASSERT_EQ(run.decisions.size(), 4u);
  for (auto& [i, d] : run.decisions) {
    EXPECT_EQ(d.value, run.decisions.begin()->second.value);
    EXPECT_GE(d.round.value, 2u);
  }
}

TEST(HeartbeatIntegration, SurvivesTurbulence) {
  // Before GST the network stalls messages; the adaptive timeouts must
  // recover without violating agreement.
  HeartbeatRun run =
      run_hr_with_heartbeats(5, 3, {}, sim::turbulent_until(150'000));
  ASSERT_EQ(run.decisions.size(), 5u);
  for (auto& [i, d] : run.decisions) {
    EXPECT_EQ(d.value, run.decisions.begin()->second.value);
  }
}

TEST(HeartbeatIntegration, MidRunCrashWithMinorityFaulty) {
  std::vector<std::optional<SimTime>> crashes(7, std::nullopt);
  crashes[0] = SimTime{0};
  crashes[1] = SimTime{60'000};
  crashes[2] = SimTime{120'000};
  HeartbeatRun run =
      run_hr_with_heartbeats(7, 4, crashes, sim::calm_network());
  // Processes crashing late may well decide before their crash instant;
  // the four never-crashing ones must decide, and all deciders must agree.
  EXPECT_GE(run.decisions.size(), 4u);
  for (std::uint32_t i = 3; i < 7; ++i) EXPECT_TRUE(run.decisions.count(i));
  for (auto& [i, d] : run.decisions) {
    EXPECT_EQ(d.value, run.decisions.begin()->second.value);
  }
}

// ---------------------------------------------------------------------
// Frame fuzzing: a peer that blasts deterministic garbage at everyone.
// The BFT pipeline must neither crash nor convict anyone except the
// blaster, and the group must still decide.
// ---------------------------------------------------------------------

class GarbageBlaster final : public sim::Actor {
 public:
  explicit GarbageBlaster(std::uint64_t seed) : rng_(seed) {}

  void on_start(sim::Context& ctx) override {
    blast(ctx);
    ctx.set_timer(2'000);
  }

  void on_timer(sim::Context& ctx, std::uint64_t) override {
    blast(ctx);
    if (++bursts_ < 50) ctx.set_timer(2'000);
  }

  void on_message(sim::Context&, ProcessId, const Bytes&) override {}

 private:
  void blast(sim::Context& ctx) {
    const std::size_t len = rng_.next_below(300);
    Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng_.next_u64());
    ctx.broadcast(junk);
  }

  Rng rng_;
  std::uint64_t bursts_ = 0;
};

TEST(Robustness, GarbageTrafficCannotCrashOrConfuse) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(4, seed);
    sim::SimConfig sim_cfg;
    sim_cfg.n = 4;
    sim_cfg.seed = seed;
    sim::Simulation world(sim_cfg);

    bft::BftConfig proto;
    proto.n = 4;
    proto.f = 1;

    std::map<std::uint32_t, bft::VectorDecision> decisions;
    std::vector<const bft::BftProcess*> views(4, nullptr);
    for (std::uint32_t i = 0; i < 3; ++i) {
      auto proc = std::make_unique<bft::BftProcess>(
          proto, 100 + i, keys.signers[i].get(), keys.verifier,
          [&decisions, i](ProcessId, const bft::VectorDecision& d) {
            decisions.emplace(i, d);
          });
      views[i] = proc.get();
      world.set_actor(ProcessId{i}, std::move(proc));
    }
    world.set_actor(ProcessId{3}, std::make_unique<GarbageBlaster>(seed));
    world.run();

    ASSERT_EQ(decisions.size(), 3u) << "seed " << seed;
    for (auto& [i, d] : decisions) {
      EXPECT_EQ(d.entries, decisions.begin()->second.entries);
    }
    for (std::uint32_t i = 0; i < 3; ++i) {
      for (const bft::FaultRecord& rec : views[i]->nonmuteness().records()) {
        EXPECT_EQ(rec.culprit, (ProcessId{3}))
            << "garbage caused a false accusation";
      }
    }
  }
}

// Mutation fuzzing of valid frames through the signature module: random
// single-byte flips must always be rejected (decode failure or signature
// failure), never accepted as a different message.
TEST(Robustness, MutatedFramesAlwaysRejected) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(4, 9);
  bft::SignatureModule module(keys.signers[1].get(), keys.verifier);

  bft::MessageCore core;
  core.kind = bft::BftKind::kCurrent;
  core.sender = ProcessId{1};
  core.round = Round{1};
  core.est = {consensus::Value{5}, std::nullopt, consensus::Value{7},
              std::nullopt};
  bft::SignedMessage msg = module.sign(core, bft::Certificate{});
  Bytes frame = bft::encode_message(msg);

  // The untouched frame authenticates.
  ASSERT_TRUE(module.authenticate(ProcessId{1}, frame).ok);

  Rng rng(1234);
  int rejected = 0, trials = 0;
  for (int t = 0; t < 2000; ++t) {
    Bytes mutated = frame;
    const std::size_t pos = rng.next_below(mutated.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.next_below(255));
    mutated[pos] ^= flip;
    ++trials;
    bft::SignatureModule::Inbound in = module.authenticate(ProcessId{1}, mutated);
    if (!in.ok) {
      ++rejected;
    } else {
      // Only acceptable if the mutation produced a byte-identical message
      // (impossible with a non-zero flip) — so this must never happen.
      ADD_FAILURE() << "mutated frame accepted at offset " << pos;
    }
  }
  EXPECT_EQ(rejected, trials);
}

// A process isolated through the whole INIT phase and round 1 must still
// decide: the relayed DECIDE is valid in every monitor state, including
// "still collecting INITs" (Fig 3's concurrent line-2 task).
TEST(LaggardIntegration, DecideReachesProcessStuckInInitPhase) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(4, 77);
  sim::SimConfig sim_cfg;
  sim_cfg.n = 4;
  sim_cfg.seed = 77;
  sim::Simulation world(sim_cfg);

  bft::BftConfig proto;
  proto.n = 4;
  proto.f = 1;

  std::map<std::uint32_t, bft::VectorDecision> decisions;
  for (std::uint32_t i = 0; i < 4; ++i) {
    world.set_actor(ProcessId{i},
                    std::make_unique<bft::BftProcess>(
                        proto, 100 + i, keys.signers[i].get(), keys.verifier,
                        [&decisions, i](ProcessId, const bft::VectorDecision& d) {
                          decisions.emplace(i, d);
                        }));
  }
  // Everything to and from p4 is delayed far past the group's decision.
  world.delay_process(ProcessId{3}, 500'000, 400'000);
  world.run();

  ASSERT_EQ(decisions.size(), 4u);
  for (auto& [i, d] : decisions) {
    EXPECT_EQ(d.entries, decisions.begin()->second.entries);
  }
  // The quorum decided without p4's INIT; p4 caught up via relayed DECIDE.
  EXPECT_GT(decisions.at(3).time, decisions.at(0).time + 300'000);
}

// Chandra-Toueg driven by the heartbeat detector (rather than the oracle).
TEST(HeartbeatIntegration, ChandraTouegOverHeartbeats) {
  sim::SimConfig cfg;
  cfg.n = 5;
  cfg.seed = 21;
  sim::Simulation world(cfg);

  fd::HeartbeatConfig hb;
  hb.period = 5'000;
  hb.initial_timeout = 30'000;

  std::map<std::uint32_t, consensus::Decision> decisions;
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto det = std::make_shared<fd::HeartbeatDetector>(5, ProcessId{i}, hb);
    auto inner = std::make_unique<consensus::ChandraTouegActor>(
        5, 300 + i, det,
        [&decisions, i](ProcessId, const consensus::Decision& d) {
          decisions.emplace(i, d);
        });
    world.set_actor(ProcessId{i},
                    std::make_unique<fd::HeartbeatWrapper>(std::move(inner),
                                                           det, hb));
  }
  world.crash_at(ProcessId{0}, 0);  // round-1 coordinator dies at start
  world.run();
  ASSERT_EQ(decisions.size(), 4u);
  for (auto& [i, d] : decisions) {
    EXPECT_EQ(d.value, decisions.begin()->second.value);
  }
}

// ---------------------------------------------------------------------
// Combined stress: turbulence + a Byzantine corrupter + a crash, at the
// resilience limit.
// ---------------------------------------------------------------------

TEST(Stress, EverythingAtOnce) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    faults::BftScenarioConfig cfg;
    cfg.n = 7;
    cfg.f = 2;
    cfg.seed = seed;
    cfg.latency = sim::turbulent_until(100'000);
    faults::FaultSpec corrupt;
    corrupt.who = ProcessId{0};
    corrupt.behavior = faults::Behavior::kCorruptVector;
    faults::FaultSpec crash;
    crash.who = ProcessId{3};
    crash.behavior = faults::Behavior::kCrash;
    crash.at = 40'000;
    cfg.faults = {corrupt, crash};

    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    EXPECT_TRUE(r.termination) << "seed " << seed;
    EXPECT_TRUE(r.agreement) << "seed " << seed;
    EXPECT_TRUE(r.vector_validity) << "seed " << seed;
    EXPECT_TRUE(r.detectors_reliable) << "seed " << seed;
  }
}

}  // namespace
}  // namespace modubft
