// Adversarial campaign engine end-to-end (src/adversary/).
//
// Runs a small (attack × substrate × seed) grid through the campaign
// runner with the safety auditor tapped into every cell and asserts the
// paper's invariants hold on every substrate; proves the auditor has teeth
// by aiming it at the deliberately broken protocol double (negative
// control); unit-tests the failing-attack minimizer against a synthetic
// predicate; and pins the delivery-tap payload-copy contract on the
// threaded substrates (this file runs under TSan via its threads/tcp
// labels — a tap racing node internals is a test failure here, not a
// heisenbug in production).
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "adversary/attack.hpp"
#include "adversary/auditor.hpp"
#include "adversary/campaign.hpp"
#include "faults/scenario.hpp"

namespace modubft {
namespace {

using adversary::AttackSpec;
using adversary::CellOutcome;

// ---------------------------------------------------------------- taxonomy

TEST(AttackCatalog, CoversTheTaxonomyAndFits) {
  const std::vector<AttackSpec> catalog = adversary::attack_catalog(4, 1);
  EXPECT_GE(catalog.size(), 20u);
  for (const AttackSpec& a : catalog) {
    EXPECT_TRUE(a.fits(4, 1)) << a.name;
    EXPECT_LE(a.attackers().size(), 1u) << a.name;
    EXPECT_FALSE(a.paper_class.empty()) << a.name;
  }
  EXPECT_NE(adversary::find_attack(catalog, "equivocate"), nullptr);
  EXPECT_NE(adversary::find_attack(catalog, "fuzz-storm"), nullptr);
  EXPECT_EQ(adversary::find_attack(catalog, "no-such-attack"), nullptr);
  // Coalitions need f >= 2 and must not appear at f = 1...
  EXPECT_EQ(adversary::find_attack(catalog, "coalition-equivocate-mute"),
            nullptr);
  // ...but do at (7, 2), within the larger coalition bound.
  const std::vector<AttackSpec> wide = adversary::attack_catalog(7, 2);
  const AttackSpec* coalition =
      adversary::find_attack(wide, "coalition-equivocate-mute");
  ASSERT_NE(coalition, nullptr);
  EXPECT_EQ(coalition->attackers().size(), 2u);
}

// ------------------------------------------------------------ audited grid

void expect_cell_passes(const CellOutcome& cell) {
  EXPECT_TRUE(cell.pass)
      << cell.attack << " on " << runtime::backend_name(cell.substrate)
      << " seed " << cell.seed << ": termination=" << cell.termination
      << " agreement=" << cell.agreement << " audit="
      << adversary::to_json(cell.audit);
}

TEST(AdversaryCampaign, SimGridHoldsEveryInvariant) {
  adversary::CampaignConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seeds = 3;
  cfg.negative_control = false;
  const adversary::CampaignReport report = adversary::run_campaign(cfg);
  EXPECT_GE(report.cells_run, 60u);  // full catalog × 3 seeds
  for (const CellOutcome& cell : report.cells) expect_cell_passes(cell);
  EXPECT_TRUE(report.ok);
}

TEST(AdversaryCampaign, ThreadedSubstrateGrid) {
  adversary::CampaignConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seeds = 2;
  cfg.attacks = {"none", "crash", "equivocate", "truncate-cert", "fuzz-storm",
                 "split-brain"};
  cfg.substrates = {runtime::Backend::kThreads};
  cfg.negative_control = false;
  const adversary::CampaignReport report = adversary::run_campaign(cfg);
  EXPECT_EQ(report.cells_run, 12u);
  for (const CellOutcome& cell : report.cells) expect_cell_passes(cell);
}

TEST(AdversaryCampaign, TcpSubstrateGrid) {
  adversary::CampaignConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seeds = 2;
  cfg.attacks = {"none", "equivocate", "forge-cert", "fuzz-bitflip"};
  cfg.substrates = {runtime::Backend::kTcp};
  cfg.negative_control = false;
  const adversary::CampaignReport report = adversary::run_campaign(cfg);
  EXPECT_EQ(report.cells_run, 8u);
  for (const CellOutcome& cell : report.cells) expect_cell_passes(cell);
}

TEST(AdversaryCampaign, CoalitionGridAtLargerResilience) {
  adversary::CampaignConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.seeds = 2;
  cfg.attacks = {"coalition-equivocate-mute", "coalition-forge-fuzz",
                 "coalition-replay-pair"};
  cfg.negative_control = false;
  const adversary::CampaignReport report = adversary::run_campaign(cfg);
  EXPECT_EQ(report.cells_run, 6u);
  for (const CellOutcome& cell : report.cells) expect_cell_passes(cell);
}

TEST(AdversaryCampaign, EquivocationIsObservedOnTheWire) {
  // The auditor must not pass vacuously: a split-brain run contains real
  // signed-conflict evidence, and the detectors convict the equivocator —
  // "detected", not merely "harmless".
  const std::vector<AttackSpec> catalog = adversary::attack_catalog(4, 1);
  const AttackSpec* attack = adversary::find_attack(catalog, "split-brain");
  ASSERT_NE(attack, nullptr);
  const CellOutcome cell =
      adversary::run_attack_cell(4, 1, *attack, runtime::Backend::kSim, 1,
                                 std::chrono::milliseconds(20'000));
  expect_cell_passes(cell);
  EXPECT_GE(cell.audit.stats.equivocations, 1u);
}

// ------------------------------------------------------- negative control

TEST(AdversaryCampaign, NegativeControlIsFlagged) {
  const adversary::AuditReport audit =
      adversary::run_negative_control(4, 1, 1);
  EXPECT_FALSE(audit.ok);
  auto has = [&](adversary::ViolationKind kind) {
    return std::any_of(audit.violations.begin(), audit.violations.end(),
                       [&](const adversary::Violation& v) {
                         return v.kind == kind;
                       });
  };
  EXPECT_TRUE(has(adversary::ViolationKind::kDisagreement));
  EXPECT_TRUE(has(adversary::ViolationKind::kUncertifiedDecision));
}

// ------------------------------------------------------------ minimization

TEST(Minimizer, ShrinksToTheSmallestFailingAdversary) {
  // Synthetic predicate: the "failure" needs the forge-cert fault AND a
  // nonzero bitflip rate; everything else is dead weight the minimizer
  // must strip.
  AttackSpec bloated;
  bloated.name = "kitchen-sink";
  for (faults::Behavior b :
       {faults::Behavior::kMute, faults::Behavior::kForgeCert,
        faults::Behavior::kDuplicateNext}) {
    faults::FaultSpec spec;
    spec.who = ProcessId{static_cast<std::uint32_t>(bloated.faults.size())};
    spec.behavior = b;
    bloated.faults.push_back(spec);
  }
  bloated.fuzzed = {3, 4};
  bloated.mutation.bitflip_prob = 0.5;
  bloated.mutation.truncate_prob = 0.5;
  bloated.mutation.reorder_prob = 0.5;

  auto fails = [](const AttackSpec& a) {
    const bool forge =
        std::any_of(a.faults.begin(), a.faults.end(),
                    [](const faults::FaultSpec& s) {
                      return s.behavior == faults::Behavior::kForgeCert;
                    });
    return forge && a.mutation.bitflip_prob > 0 && !a.fuzzed.empty();
  };
  ASSERT_TRUE(fails(bloated));

  const AttackSpec minimal = adversary::minimize_attack(bloated, fails);
  ASSERT_EQ(minimal.faults.size(), 1u);
  EXPECT_EQ(minimal.faults[0].behavior, faults::Behavior::kForgeCert);
  EXPECT_EQ(minimal.fuzzed.size(), 1u);
  EXPECT_GT(minimal.mutation.bitflip_prob, 0);
  EXPECT_EQ(minimal.mutation.truncate_prob, 0);
  EXPECT_EQ(minimal.mutation.reorder_prob, 0);
  EXPECT_TRUE(fails(minimal));
}

TEST(Minimizer, FixpointOnAlwaysFailingPredicate) {
  const std::vector<AttackSpec> catalog = adversary::attack_catalog(4, 1);
  const AttackSpec* storm = adversary::find_attack(catalog, "fuzz-storm");
  ASSERT_NE(storm, nullptr);
  const AttackSpec minimal =
      adversary::minimize_attack(*storm, [](const AttackSpec&) {
        return true;
      });
  // Everything removable is removed.
  EXPECT_TRUE(minimal.faults.empty());
  EXPECT_TRUE(minimal.fuzzed.empty());
  EXPECT_FALSE(minimal.mutation.any());
}

// ------------------------------------------------------ tap payload safety

TEST(DeliveryTap, ThreadedTapReceivesStablePayloadCopies) {
  // The threaded substrates copy each payload on the node thread *outside*
  // the tap mutex before invoking the tap (transport/cluster.cpp): the tap
  // may decode at leisure without racing the sender.  Run under TSan via
  // this test's threads label; also assert the bytes are genuine frames.
  std::mutex mu;
  std::vector<Bytes> seen;
  faults::BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 7;
  cfg.substrate = runtime::Backend::kThreads;
  cfg.delivery_tap = [&](const sim::Delivery& d) {
    ASSERT_NE(d.payload, nullptr);
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(*d.payload);  // deep copy; must stay valid afterwards
  };
  const faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  ASSERT_FALSE(seen.empty());
  std::size_t decodable = 0;
  for (const Bytes& frame : seen) {
    if (bft::try_decode_message(frame)) ++decodable;
  }
  EXPECT_EQ(decodable, seen.size());
}

TEST(DeliveryTap, TcpTapReceivesStablePayloadCopies) {
  std::mutex mu;
  std::size_t frames = 0, decodable = 0;
  faults::BftScenarioConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 9;
  cfg.substrate = runtime::Backend::kTcp;
  cfg.delivery_tap = [&](const sim::Delivery& d) {
    ASSERT_NE(d.payload, nullptr);
    const bool ok = static_cast<bool>(bft::try_decode_message(*d.payload));
    std::lock_guard<std::mutex> lock(mu);
    ++frames;
    if (ok) ++decodable;
  };
  const faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
  EXPECT_TRUE(r.termination);
  EXPECT_GT(frames, 0u);
  EXPECT_EQ(decodable, frames);
}

}  // namespace
}  // namespace modubft
