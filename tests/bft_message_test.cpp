// Tests for the certified-message wire format: canonical encoding,
// digest-chained signatures, pruning invariance, defensive decoding.
#include <gtest/gtest.h>

#include "bft/message.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"

namespace modubft::bft {
namespace {

MessageCore make_core(BftKind kind, std::uint32_t sender, std::uint32_t round) {
  MessageCore core;
  core.kind = kind;
  core.sender = ProcessId{sender};
  core.round = Round{round};
  if (kind == BftKind::kInit) core.init_value = 42;
  if (kind == BftKind::kCurrent || kind == BftKind::kDecide) {
    core.est = {Value{1}, std::nullopt, Value{3}};
  }
  return core;
}

SignedMessage sign_msg(const crypto::SignatureSystem& sys, MessageCore core,
                       Certificate cert = {}) {
  SignedMessage msg;
  msg.core = std::move(core);
  msg.cert = std::move(cert);
  msg.sig = sys.signers[msg.core.sender.value]->sign(
      signing_bytes(msg.core, msg.cert));
  return msg;
}

TEST(BftMessage, CoreRoundTrip) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage msg = sign_msg(sys, make_core(BftKind::kCurrent, 1, 4));
  SignedMessage back = decode_message(encode_message(msg));
  EXPECT_EQ(back.core, msg.core);
  EXPECT_EQ(back.sig, msg.sig);
  EXPECT_FALSE(back.cert.pruned);
  EXPECT_TRUE(back.cert.members().empty());
}

TEST(BftMessage, NestedCertificateRoundTrip) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage init0 = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  SignedMessage init1 = sign_msg(sys, make_core(BftKind::kInit, 1, 0));
  Certificate cert = Certificate::of({init0, init1});
  SignedMessage cur = sign_msg(sys, make_core(BftKind::kCurrent, 0, 1), cert);

  SignedMessage back = decode_message(encode_message(cur));
  ASSERT_EQ(back.cert.size(), 2u);
  EXPECT_EQ(back.cert.member(0).core, init0.core);
  EXPECT_EQ(back.cert.member(1).core, init1.core);
  EXPECT_EQ(cert_digest(back.cert), cert_digest(cur.cert));
}

TEST(BftMessage, DigestInvariantUnderPruning) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage init0 = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  Certificate inner = Certificate::of({init0});
  SignedMessage next = sign_msg(sys, make_core(BftKind::kNext, 1, 1), inner);

  Certificate outer_full = Certificate::of({next});

  // Prune the *nested* certificate: the outer digest must not change.
  Certificate outer_pruned = outer_full;
  outer_pruned.mutate_member(
      0, [&](SignedMessage& m) { m.cert = prune(next.cert); });
  EXPECT_EQ(cert_digest(outer_full), cert_digest(outer_pruned));
}

TEST(BftMessage, SignatureSurvivesNestedPruning) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage init0 = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  Certificate inner = Certificate::of({init0});
  SignedMessage next = sign_msg(sys, make_core(BftKind::kNext, 1, 1), inner);

  Certificate outer = Certificate::of({next});
  SignedMessage cur = sign_msg(sys, make_core(BftKind::kCurrent, 2, 1), outer);

  // Prune the NEXT's certificate inside the CURRENT's certificate.
  SignedMessage shrunk = cur;
  shrunk.cert.mutate_member(
      0, [&](SignedMessage& m) { m.cert = prune(next.cert); });

  // Top-level signature still verifies on the pruned form.
  EXPECT_TRUE(sys.verifier->verify(
      cur.core.sender, signing_bytes(shrunk.core, shrunk.cert), shrunk.sig));
  // And the nested NEXT's own signature also still verifies.
  const SignedMessage& nested = shrunk.cert.member(0);
  EXPECT_TRUE(sys.verifier->verify(
      nested.core.sender, signing_bytes(nested.core, nested.cert), nested.sig));
}

TEST(BftMessage, PruningShrinksEncoding) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(4, 1);
  Certificate inner;
  for (std::uint32_t i = 0; i < 4; ++i) {
    inner.add(sign_msg(sys, make_core(BftKind::kInit, i, 0)));
  }
  SignedMessage next = sign_msg(sys, make_core(BftKind::kNext, 1, 1), inner);
  SignedMessage pruned = next;
  pruned.cert = prune(next.cert);
  EXPECT_LT(encoded_size(pruned), encoded_size(next));
}

TEST(BftMessage, TamperedCertificateChangesDigest) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage init0 = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  Certificate cert = Certificate::of({init0});
  crypto::Digest before = cert_digest(cert);
  // Falsify a witnessed value.  mutate_member is the only way to edit a
  // member, and it drops the memoized digest computed just above.
  cert.mutate_member(0, [](SignedMessage& m) { m.core.init_value = 43; });
  EXPECT_NE(before, cert_digest(cert));
}

TEST(BftMessage, DecodeRejectsTruncation) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  Bytes buf = encode_message(sign_msg(sys, make_core(BftKind::kInit, 0, 0)));
  for (std::size_t cut : {1u, 5u, 10u}) {
    Bytes shorter(buf.begin(), buf.end() - static_cast<long>(cut));
    EXPECT_THROW(decode_message(shorter), SerialError) << "cut=" << cut;
  }
}

TEST(BftMessage, DecodeRejectsTrailingGarbage) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  Bytes buf = encode_message(sign_msg(sys, make_core(BftKind::kInit, 0, 0)));
  buf.push_back(0);
  EXPECT_THROW(decode_message(buf), SerialError);
}

TEST(BftMessage, DecodeRejectsUnknownKind) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage msg = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  Bytes buf = encode_message(msg);
  // The core is length-prefixed at offset 0; kind is its first byte.
  buf[4] = 99;
  EXPECT_THROW(decode_message(buf), SerialError);
}

TEST(BftMessage, DecodeRejectsDeepNesting) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(2, 1);
  SignedMessage msg = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  for (int i = 0; i < 40; ++i) {
    Certificate cert = Certificate::of({msg});
    msg = sign_msg(sys, make_core(BftKind::kNext, 0, 1), cert);
  }
  Bytes buf = encode_message(msg);
  DecodeLimits limits;
  limits.max_depth = 32;
  EXPECT_THROW(decode_message(buf, limits), SerialError);
}

TEST(BftMessage, DecodeRejectsOversizedVector) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(2, 1);
  MessageCore core = make_core(BftKind::kCurrent, 0, 1);
  core.est.assign(5000, std::nullopt);
  SignedMessage msg = sign_msg(sys, core);
  EXPECT_THROW(decode_message(encode_message(msg)), SerialError);
}

TEST(BftMessage, DecodeRejectsHugeMemberCount) {
  // Hand-craft a frame whose certificate claims 2^31 members.
  Writer w;
  w.bytes(encode_core(make_core(BftKind::kNext, 0, 1)));
  w.boolean(false);            // inline certificate
  w.u32(0x80000000u);          // absurd member count
  Bytes buf = std::move(w).take();
  EXPECT_THROW(decode_message(buf), SerialError);
}

TEST(BftMessage, PrunedCertificateRoundTrip) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage init0 = sign_msg(sys, make_core(BftKind::kInit, 0, 0));
  Certificate cert = Certificate::of({init0});
  Certificate pruned = prune(cert);
  SignedMessage next = sign_msg(sys, make_core(BftKind::kNext, 1, 2), pruned);

  SignedMessage back = decode_message(encode_message(next));
  ASSERT_TRUE(back.cert.pruned);
  EXPECT_EQ(back.cert.digest, cert_digest(cert));
}

TEST(BftMessage, KindNames) {
  EXPECT_STREQ(kind_name(BftKind::kInit), "INIT");
  EXPECT_STREQ(kind_name(BftKind::kCurrent), "CURRENT");
  EXPECT_STREQ(kind_name(BftKind::kNext), "NEXT");
  EXPECT_STREQ(kind_name(BftKind::kDecide), "DECIDE");
}

TEST(BftMessage, EncodedSizeMatchesEncoding) {
  crypto::SignatureSystem sys = crypto::HmacScheme{}.make_system(3, 1);
  SignedMessage msg = sign_msg(sys, make_core(BftKind::kCurrent, 1, 4));
  EXPECT_EQ(encoded_size(msg), encode_message(msg).size());
}

}  // namespace
}  // namespace modubft::bft
