// Unit tests for the individual pipeline modules (paper Figure 1):
// signature module, muteness module, non-muteness module, certification
// module.
#include <gtest/gtest.h>

#include "bft/modules.hpp"
#include "crypto/hmac_signer.hpp"

namespace modubft::bft {
namespace {

class ModulesFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;

  ModulesFixture()
      : keys_(crypto::HmacScheme{}.make_system(kN, 11)),
        module_(keys_.signers[1].get(), keys_.verifier) {}

  MessageCore current_core(std::uint32_t sender) const {
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ProcessId{sender};
    core.round = Round{1};
    core.est = {consensus::Value{1}, std::nullopt, consensus::Value{3},
                std::nullopt};
    return core;
  }

  crypto::SignatureSystem keys_;
  SignatureModule module_;  // signs as p2
};

TEST_F(ModulesFixture, SignatureRoundTrip) {
  SignedMessage msg = module_.sign(current_core(1), Certificate{});
  Bytes frame = encode_message(msg);
  SignatureModule::Inbound in = module_.authenticate(ProcessId{1}, frame);
  EXPECT_TRUE(in.ok);
  EXPECT_EQ(in.msg.core, msg.core);
}

TEST_F(ModulesFixture, RejectsUndecodableFrame) {
  SignatureModule::Inbound in =
      module_.authenticate(ProcessId{1}, Bytes{1, 2, 3});
  EXPECT_FALSE(in.ok);
  EXPECT_EQ(in.verdict.kind, FaultKind::kMalformed);
}

TEST_F(ModulesFixture, RejectsIdentityMismatch) {
  // p2 signs honestly, but the frame arrives on p3's channel: the relayer
  // is impersonating (or replaying) — the channel sender is the culprit.
  SignedMessage msg = module_.sign(current_core(1), Certificate{});
  SignatureModule::Inbound in =
      module_.authenticate(ProcessId{2}, encode_message(msg));
  EXPECT_FALSE(in.ok);
  EXPECT_EQ(in.verdict.kind, FaultKind::kIdentityMismatch);
}

TEST_F(ModulesFixture, RejectsWrongKeySignature) {
  // Claimed sender p3, but signed with p2's key.
  SignedMessage msg = module_.sign(current_core(2), Certificate{});
  SignatureModule::Inbound in =
      module_.authenticate(ProcessId{2}, encode_message(msg));
  EXPECT_FALSE(in.ok);
  EXPECT_EQ(in.verdict.kind, FaultKind::kBadSignature);
}

TEST_F(ModulesFixture, RejectsNonCanonicalFrame) {
  SignedMessage msg = module_.sign(current_core(1), Certificate{});
  Bytes frame = encode_message(msg);
  // Mutate the ignored value slot of the null entry at index 1: the frame
  // still decodes to the same message, but is not the canonical encoding.
  // Core layout: [u32 len][kind u8][sender u32][round u32][init u64]
  //              [vec len u32][ (present u8 + value u64) × 4 ]...
  const std::size_t entry1_value = 4 + 1 + 4 + 4 + 8 + 4 + 9 + 1;
  frame[entry1_value] ^= 0xff;
  SignatureModule::Inbound in = module_.authenticate(ProcessId{1}, frame);
  EXPECT_FALSE(in.ok);
  EXPECT_EQ(in.verdict.kind, FaultKind::kMalformed);
}

TEST_F(ModulesFixture, MutenessModuleTracksActivity) {
  MutenessModule mute(kN, ProcessId{0}, fd::MutenessConfig{});
  mute.on_protocol_message(ProcessId{1}, 0);
  EXPECT_FALSE(mute.suspects(ProcessId{1}, 10'000));
  EXPECT_TRUE(mute.suspects(ProcessId{1}, 100'000));
  mute.on_protocol_message(ProcessId{1}, 100'000);
  EXPECT_FALSE(mute.suspects(ProcessId{1}, 110'000));
}

TEST_F(ModulesFixture, NonMutenessModuleRecordsAndFilters) {
  auto analyzer =
      std::make_shared<const CertAnalyzer>(kN, 3, keys_.verifier);
  NonMutenessModule nonmute(kN, ProcessId{0}, analyzer);

  EXPECT_FALSE(nonmute.is_faulty(ProcessId{2}));
  nonmute.declare_faulty(ProcessId{2}, FaultKind::kBadSignature, "test", 42);
  EXPECT_TRUE(nonmute.is_faulty(ProcessId{2}));
  ASSERT_EQ(nonmute.records().size(), 1u);
  EXPECT_EQ(nonmute.records()[0].culprit, (ProcessId{2}));
  EXPECT_EQ(nonmute.records()[0].time, 42u);
  EXPECT_EQ(nonmute.faulty_set().size(), 1u);
}

TEST_F(ModulesFixture, NonMutenessMonitorPathConvicts) {
  auto analyzer =
      std::make_shared<const CertAnalyzer>(kN, 3, keys_.verifier);
  NonMutenessModule nonmute(kN, ProcessId{0}, analyzer);

  // A CURRENT before INIT violates FIFO expectations.
  SignedMessage msg = module_.sign(current_core(1), Certificate{});
  Verdict v = nonmute.observe(ProcessId{1}, msg, 7);
  EXPECT_FALSE(v);
  EXPECT_TRUE(nonmute.is_faulty(ProcessId{1}));
  // Subsequent messages are swallowed without fresh records.
  const std::size_t before = nonmute.records().size();
  (void)nonmute.observe(ProcessId{1}, msg, 8);
  EXPECT_EQ(nonmute.records().size(), before);
}

class CertModuleFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;

  CertModuleFixture() : keys_(crypto::HmacScheme{}.make_system(kN, 13)) {
    config_.n = kN;
    config_.f = 1;
  }

  SignedMessage make(BftKind kind, std::uint32_t sender, std::uint32_t round,
                     Certificate cert = {}) const {
    MessageCore core;
    core.kind = kind;
    core.sender = ProcessId{sender};
    core.round = Round{round};
    if (kind == BftKind::kInit) core.init_value = 100 + sender;
    SignedMessage msg;
    msg.core = std::move(core);
    msg.cert = std::move(cert);
    msg.sig = keys_.signers[sender]->sign(signing_bytes(msg.core, msg.cert));
    return msg;
  }

  crypto::SignatureSystem keys_;
  BftConfig config_;
};

TEST_F(CertModuleFixture, InitCountDeduplicatesSenders) {
  CertificationModule cert(config_);
  cert.add_init(make(BftKind::kInit, 0, 0));
  cert.add_init(make(BftKind::kInit, 1, 0));
  cert.add_init(make(BftKind::kInit, 1, 0));  // duplicate sender
  EXPECT_EQ(cert.init_count(), 2u);
}

TEST_F(CertModuleFixture, RecFromUnionsAllVoteSources) {
  CertificationModule cert(config_);
  cert.add_current(make(BftKind::kCurrent, 0, 1));
  cert.add_next(make(BftKind::kNext, 1, 1));
  cert.add_conflicting_current(make(BftKind::kCurrent, 2, 1));
  auto rec = cert.rec_from();
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_TRUE(rec.count(ProcessId{2}));
}

TEST_F(CertModuleFixture, ResetRoundClearsVoteCertsOnly) {
  CertificationModule cert(config_);
  cert.add_init(make(BftKind::kInit, 0, 0));
  cert.add_current(make(BftKind::kCurrent, 0, 1));
  cert.add_next(make(BftKind::kNext, 1, 1));
  cert.add_conflicting_current(make(BftKind::kCurrent, 2, 1));
  cert.reset_round();
  EXPECT_EQ(cert.current_count(), 0u);
  EXPECT_EQ(cert.next_count(), 0u);
  EXPECT_TRUE(cert.conflict_cert().empty());
  EXPECT_EQ(cert.init_count(), 1u);  // est_cert survives rounds
}

TEST_F(CertModuleFixture, BuildPrunesNestedNextCerts) {
  CertificationModule cert(config_);
  Certificate inner;
  inner.add(make(BftKind::kInit, 0, 0));
  cert.add_next(make(BftKind::kNext, 1, 1, inner));
  Certificate built = cert.build({&cert.next_cert()});
  ASSERT_EQ(built.size(), 1u);
  EXPECT_TRUE(built.member(0).cert.pruned);
  // Digest-chaining keeps the nested signature verifiable after pruning.
  const SignedMessage& m = built.member(0);
  EXPECT_TRUE(keys_.verifier->verify(m.core.sender,
                                     signing_bytes(m.core, m.cert), m.sig));
}

TEST_F(CertModuleFixture, BuildKeepsNextCertsWhenPruningDisabled) {
  config_.prune_nested_next = false;
  CertificationModule cert(config_);
  Certificate inner;
  inner.add(make(BftKind::kInit, 0, 0));
  cert.add_next(make(BftKind::kNext, 1, 1, inner));
  Certificate built = cert.build({&cert.next_cert()});
  ASSERT_EQ(built.size(), 1u);
  EXPECT_FALSE(built.member(0).cert.pruned);
  EXPECT_EQ(built.member(0).cert.size(), 1u);
}

TEST_F(CertModuleFixture, BuildNeverPrunesCurrents) {
  CertificationModule cert(config_);
  Certificate inner;
  inner.add(make(BftKind::kInit, 0, 0));
  cert.add_current(make(BftKind::kCurrent, 0, 1, inner));
  Certificate built = cert.build({&cert.current_cert()});
  ASSERT_EQ(built.size(), 1u);
  EXPECT_FALSE(built.member(0).cert.pruned);
}

TEST_F(CertModuleFixture, RelayOfKeepsAdoptedMessageIntact) {
  CertificationModule cert(config_);
  Certificate inner;
  inner.add(make(BftKind::kInit, 0, 0));
  SignedMessage adopted = make(BftKind::kCurrent, 0, 1, inner);
  Certificate relay = cert.relay_of(adopted);
  ASSERT_EQ(relay.size(), 1u);
  EXPECT_FALSE(relay.member(0).cert.pruned);
  EXPECT_EQ(relay.member(0).core, adopted.core);
}

TEST_F(CertModuleFixture, AdoptEstReplacesWholesale) {
  CertificationModule cert(config_);
  cert.add_init(make(BftKind::kInit, 0, 0));
  Certificate adopted;
  adopted.add(make(BftKind::kInit, 1, 0));
  adopted.add(make(BftKind::kInit, 2, 0));
  cert.adopt_est(adopted);
  EXPECT_EQ(cert.est_cert().size(), 2u);
}

}  // namespace
}  // namespace modubft::bft
