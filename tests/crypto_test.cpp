// Unit tests for the cryptographic substrate.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/rsa64.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_cache.hpp"

namespace modubft::crypto {
namespace {

std::string hex_of(const Digest& d) {
  return to_hex(Bytes(d.begin(), d.end()));
}

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex_of(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex_of(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i));
  Sha256 ctx;
  ctx.update(data.data(), 100);
  ctx.update(data.data() + 100, 150);
  ctx.update(data.data() + 250, 50);
  EXPECT_EQ(ctx.finish(), sha256(data));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise the padding edge cases around the 64-byte block boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes data(len, 0x5a);
    Sha256 ctx;
    ctx.update(data);
    Digest streamed = ctx.finish();
    EXPECT_EQ(streamed, sha256(data)) << "len=" << len;
  }
}

TEST(Sha256, ResetReuses) {
  Sha256 ctx;
  ctx.update(bytes_of("abc"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(bytes_of("abc"));
  EXPECT_EQ(ctx.finish(), sha256(bytes_of("abc")));
}

// RFC 4231 test case 2.
TEST(Hmac, Rfc4231Case2) {
  Bytes key = bytes_of("Jefe");
  Bytes data = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = bytes_of("Hi There");
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 3 (block-filling key and data).
TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  Bytes long_key(100, 0x61);
  Bytes data = bytes_of("payload");
  // Must not throw and must be deterministic.
  EXPECT_EQ(hmac_sha256(long_key, data), hmac_sha256(long_key, data));
}

TEST(Hmac, DigestEqualConstantTime) {
  Digest a = sha256(bytes_of("x"));
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Rsa64, ModPow) {
  EXPECT_EQ(rsa64_modpow(2, 10, 1000), 24u);  // 1024 mod 1000
  EXPECT_EQ(rsa64_modpow(7, 0, 13), 1u);
  EXPECT_EQ(rsa64_modpow(0, 5, 13), 0u);
}

TEST(Rsa64, KeyGenerationDeterministic) {
  RsaKeyPair a = rsa64_generate(99);
  RsaKeyPair b = rsa64_generate(99);
  EXPECT_EQ(a.pub.modulus, b.pub.modulus);
  EXPECT_EQ(a.private_exponent, b.private_exponent);
  RsaKeyPair c = rsa64_generate(100);
  EXPECT_NE(a.pub.modulus, c.pub.modulus);
}

TEST(Rsa64, SignVerifyRoundTrip) {
  SignatureSystem sys = Rsa64Scheme{}.make_system(3, 5);
  Bytes msg = bytes_of("decide on round 4");
  Signature sig = sys.signers[1]->sign(msg);
  EXPECT_TRUE(sys.verifier->verify(ProcessId{1}, msg, sig));
}

TEST(Rsa64, RejectsWrongSigner) {
  SignatureSystem sys = Rsa64Scheme{}.make_system(3, 5);
  Bytes msg = bytes_of("hello");
  Signature sig = sys.signers[1]->sign(msg);
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, sig));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{2}, msg, sig));
}

TEST(Rsa64, RejectsTamperedMessage) {
  SignatureSystem sys = Rsa64Scheme{}.make_system(2, 5);
  Bytes msg = bytes_of("original");
  Signature sig = sys.signers[0]->sign(msg);
  Bytes tampered = bytes_of("originaX");
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, tampered, sig));
}

TEST(Rsa64, RejectsTamperedSignature) {
  SignatureSystem sys = Rsa64Scheme{}.make_system(2, 5);
  Bytes msg = bytes_of("original");
  Signature sig = sys.signers[0]->sign(msg);
  sig[0] ^= 0xff;
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, sig));
}

TEST(Rsa64, RejectsGarbageSignatureShapes) {
  SignatureSystem sys = Rsa64Scheme{}.make_system(2, 5);
  Bytes msg = bytes_of("m");
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, {}));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, Bytes(7, 0)));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, Bytes(9, 0)));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{9}, msg, Bytes(8, 0)));
}

TEST(HmacScheme, SignVerifyRoundTrip) {
  SignatureSystem sys = HmacScheme{}.make_system(4, 77);
  Bytes msg = bytes_of("vote CURRENT r3");
  Signature sig = sys.signers[2]->sign(msg);
  EXPECT_TRUE(sys.verifier->verify(ProcessId{2}, msg, sig));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{1}, msg, sig));
}

TEST(HmacScheme, RejectsTampering) {
  SignatureSystem sys = HmacScheme{}.make_system(2, 77);
  Bytes msg = bytes_of("vote");
  Signature sig = sys.signers[0]->sign(msg);
  sig[5] ^= 1;
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, sig));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, bytes_of("votf"),
                                    sys.signers[0]->sign(msg)));
  EXPECT_FALSE(sys.verifier->verify(ProcessId{0}, msg, Bytes(3, 1)));
}

TEST(Schemes, DeterministicAcrossRuns) {
  for (auto* scheme :
       std::initializer_list<const SignatureScheme*>{new Rsa64Scheme,
                                                     new HmacScheme}) {
    SignatureSystem a = scheme->make_system(2, 123);
    SignatureSystem b = scheme->make_system(2, 123);
    Bytes msg = bytes_of("replay");
    EXPECT_EQ(a.signers[0]->sign(msg), b.signers[0]->sign(msg))
        << scheme->name();
    delete scheme;
  }
}

TEST(Schemes, SignerIdsMatchIndices) {
  SignatureSystem sys = HmacScheme{}.make_system(5, 3);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sys.signers[i]->id(), (ProcessId{i}));
  }
}

TEST(VerifyCache, FlushNegativeDropsOnlyNegativeVerdicts) {
  SignatureSystem sys = HmacScheme{}.make_system(2, 7);
  CachingVerifier cache(sys.verifier, 16);

  const Bytes good_msg = bytes_of("good");
  const Signature good_sig = sys.signers[0]->sign(good_msg);
  const Bytes bad_msg = bytes_of("bad");
  const Signature bad_sig(good_sig.size(), 0x5a);

  EXPECT_TRUE(cache.verify(ProcessId{0}, good_msg, good_sig));
  EXPECT_FALSE(cache.verify(ProcessId{0}, bad_msg, bad_sig));
  EXPECT_FALSE(cache.verify(ProcessId{1}, bad_msg, bad_sig));
  EXPECT_EQ(cache.size(), 3u);

  // A restarting replica flushes the stale negatives it cached in its
  // previous life; sound positives survive (a valid signature never
  // becomes invalid).
  EXPECT_EQ(cache.flush_negative(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  const std::uint64_t misses_before = cache.stats().misses;
  EXPECT_TRUE(cache.verify(ProcessId{0}, good_msg, good_sig));
  EXPECT_EQ(cache.stats().misses, misses_before);  // still a hit
  // The flushed verdicts re-derive on demand.
  EXPECT_FALSE(cache.verify(ProcessId{0}, bad_msg, bad_sig));
  EXPECT_GT(cache.stats().misses, misses_before);
}

}  // namespace
}  // namespace modubft::crypto
