// Reusable byte-buffer arena for the encode path.
//
// The staged ingest pipeline (docs/INGEST.md) encodes many frames per
// dispatch: batched signatures on egress, slot-prefixed wrappers, wire
// frames in the resilient channels.  Each of those used to allocate a
// fresh Bytes and throw it away after the copy into the transport — the
// "residual per-send copies" called out in PR 2.  BufferPool keeps a
// small free list of retired buffers so a hot encode loop reuses the same
// allocations instead of hammering the allocator.
//
// Ownership contract (see docs/INGEST.md "Buffer-pool ownership"):
//
//   * acquire() transfers ownership OUT of the pool: the caller owns the
//     buffer outright and may resize, move or abandon it freely.  The
//     returned buffer is always empty (size 0) but keeps its previous
//     capacity — that retained capacity is the entire point.
//   * release() transfers ownership back IN.  The caller must not touch
//     the buffer afterwards.  Releasing a buffer that came from anywhere
//     else is fine (the pool does not track provenance).
//   * Dropping an acquired buffer without releasing it is legal — the
//     pool never blocks on outstanding buffers, it just allocates fresh
//     ones when the free list is empty.
//
// Thread-safe: acquire/release are a mutex-guarded free-list exchange, so
// a pool can back concurrent encode paths (e.g. one per node thread).
// Buffers above `max_buffer_bytes` are not retained: a single oversized
// frame must not pin megabytes in the free list forever.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"

namespace modubft {

/// Pool counters, exposed for RunStats / benchmarks / tests.
struct BufferPoolStats {
  std::uint64_t acquires = 0;  ///< total acquire() calls
  std::uint64_t reuses = 0;    ///< acquires satisfied from the free list
  std::uint64_t releases = 0;  ///< buffers returned (retained or not)

  double reuse_rate() const {
    return acquires == 0 ? 0.0
                         : static_cast<double>(reuses) /
                               static_cast<double>(acquires);
  }
};

class BufferPool {
 public:
  static constexpr std::size_t kDefaultMaxPooled = 64;
  static constexpr std::size_t kDefaultMaxBufferBytes = 1u << 20;

  explicit BufferPool(std::size_t max_pooled = kDefaultMaxPooled,
                      std::size_t max_buffer_bytes = kDefaultMaxBufferBytes)
      : max_pooled_(max_pooled), max_buffer_bytes_(max_buffer_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer, reusing a retired one's capacity when the
  /// free list is non-empty.
  Bytes acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquires;
    if (free_.empty()) return Bytes{};
    ++stats_.reuses;
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();  // keeps capacity
    return buf;
  }

  /// Retires a buffer back into the free list (or drops it when the list
  /// is full or the buffer grew past the retention cap).
  void release(Bytes buf) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.releases;
    if (free_.size() >= max_pooled_ || buf.capacity() > max_buffer_bytes_) {
      return;  // drop: bounded memory beats a perfect hit rate
    }
    free_.push_back(std::move(buf));
  }

  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  const std::size_t max_pooled_;
  const std::size_t max_buffer_bytes_;
  mutable std::mutex mu_;
  std::vector<Bytes> free_;
  BufferPoolStats stats_;
};

}  // namespace modubft
