// Strong identifier and quantity types shared by all protocol layers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace modubft {

/// Identifies a process p_1..p_n.  Zero-based internally (0..n-1); the
/// paper's 1-based names appear only in logs.
struct ProcessId {
  std::uint32_t value = 0;

  auto operator<=>(const ProcessId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, ProcessId id) {
  return os << 'p' << (id.value + 1);
}

/// Asynchronous round number.  Rounds start at 1; 0 means "before the first
/// round" (used by certificates that certify entry into round 1).
struct Round {
  std::uint32_t value = 0;

  auto operator<=>(const Round&) const = default;

  Round next() const { return Round{value + 1}; }
  Round prev() const { return Round{value == 0 ? 0 : value - 1}; }
};

inline std::ostream& operator<<(std::ostream& os, Round r) {
  return os << 'r' << r.value;
}

/// Simulated time in abstract microseconds.
using SimTime = std::uint64_t;

/// Consensus instance number (used by the replicated state machine).
struct InstanceId {
  std::uint64_t value = 0;

  auto operator<=>(const InstanceId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, InstanceId id) {
  return os << "inst" << id.value;
}

}  // namespace modubft

template <>
struct std::hash<modubft::ProcessId> {
  std::size_t operator()(modubft::ProcessId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<modubft::Round> {
  std::size_t operator()(modubft::Round r) const noexcept {
    return std::hash<std::uint32_t>{}(r.value);
  }
};

template <>
struct std::hash<modubft::InstanceId> {
  std::size_t operator()(modubft::InstanceId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
