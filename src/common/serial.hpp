// Bounds-checked binary serialization.
//
// All protocol messages, certificates and signatures cross module (and, in
// the threaded runtime, thread) boundaries as flat octet buffers encoded by
// Writer and decoded by Reader.  Decoding is fully defensive: a Byzantine
// peer controls the buffer contents, so every read is bounds-checked and
// every length field is validated before allocation.  Malformed input
// raises SerialError, which the receiving module translates into a
// "syntactically incorrect message" verdict (paper §3).
//
// Encoding: fixed-width little-endian integers, length-prefixed byte
// strings and sequences.  No varints: simplicity and a canonical (unique)
// encoding matter more than compactness, and canonical encodings are what
// make signature verification over re-serialized messages sound.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace modubft {

/// Raised by Reader on any malformed or truncated input.
class SerialError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Encodes into `reuse`'s storage: the buffer is cleared but keeps its
  /// capacity, so a hot encode loop (or a BufferPool arena) amortizes the
  /// allocation across frames.  The encoded bytes are identical to a
  /// default-constructed Writer's — reuse changes where the buffer lives,
  /// never what it contains.
  explicit Writer(Bytes reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Length-prefixed UTF-8/opaque string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw append without a length prefix (caller manages framing).
  void raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequentially decodes a byte buffer written by Writer.
/// Every accessor throws SerialError instead of reading out of bounds.
///
/// A Reader is a non-owning view (pointer + length): `nested()` carves a
/// length-prefixed sub-view out of the same buffer without copying, so
/// nested structures (e.g. a message core inside a signed message) decode
/// straight from the original allocation.  The viewed buffer must outlive
/// the Reader and every sub-Reader derived from it.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  bool boolean() {
    std::uint8_t v = u8();
    if (v > 1) throw SerialError("boolean field out of range");
    return v == 1;
  }

  Bytes bytes() {
    std::uint32_t len = u32();
    need(len);
    Bytes out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
  }

  std::string str() {
    std::uint32_t len = u32();
    need(len);
    std::string out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
  }

  /// Reads a length prefix and returns a sub-Reader aliasing the next `len`
  /// bytes of this buffer — the copy-free counterpart of `bytes()` for
  /// nested length-prefixed structures.  Advances past the sub-range.
  Reader nested() {
    std::uint32_t len = u32();
    need(len);
    Reader sub(data_ + pos_, len);
    pos_ += len;
    return sub;
  }

  /// Reads a sequence length and validates it against a sanity cap so a
  /// hostile length prefix cannot trigger a huge allocation.
  std::uint32_t seq_len(std::uint32_t max_elems) {
    std::uint32_t len = u32();
    if (len > max_elems) throw SerialError("sequence length exceeds cap");
    return len;
  }

  bool at_end() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Decoders for complete messages call this to reject trailing garbage —
  /// a canonical encoding has exactly one valid byte string per value.
  void expect_end() const {
    if (!at_end()) throw SerialError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw SerialError("truncated input");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace modubft
