// Minimal leveled logger.
//
// The protocols log through this instead of std::cerr directly so tests can
// silence output and examples can turn on tracing.  A single global level
// keeps the interface small; per-run sinks were not needed.
#pragma once

#include <sstream>
#include <string>

namespace modubft {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` passes the global threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
  if (log_level() <= LogLevel::kTrace)
    log_line(LogLevel::kTrace, detail::format_parts(args...));
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::format_parts(args...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::format_parts(args...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::format_parts(args...));
}

}  // namespace modubft
