// Deterministic pseudo-random number generation.
//
// Every run of the simulator is driven by a single seed; all stochastic
// choices (latencies, adversary schedules, workload values) derive from Rng
// instances split off that seed, so a failing run can be replayed exactly.
// Implementation: xoshiro256** seeded via SplitMix64 (Blackman & Vigna).
#pragma once

#include <cstdint>

namespace modubft {

/// Small, fast, deterministic PRNG (xoshiro256**).
/// Not cryptographic — used only for simulation and workload generation.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Exponentially distributed double with the given mean (> 0).
  double next_exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Derives an independent child generator; children with distinct labels
  /// produce independent streams.
  Rng split(std::uint64_t label);

 private:
  std::uint64_t s_[4];
};

}  // namespace modubft
