// Lightweight precondition / postcondition / invariant checking.
//
// Following the C++ Core Guidelines (I.5/I.7), interfaces state their
// contracts explicitly.  Violations indicate programmer error and throw
// ContractViolation so tests can assert on them; they are never used for
// recoverable runtime conditions (use error returns / domain exceptions for
// those).
#pragma once

#include <stdexcept>
#include <string>

namespace modubft {

/// Thrown when a stated contract (precondition, postcondition, invariant)
/// is violated.  Indicates a bug in the caller or callee, not an
/// environmental failure.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace modubft

/// Precondition check: caller must guarantee `cond`.
#define MODUBFT_EXPECTS(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::modubft::detail::contract_failed("precondition", #cond, __FILE__,  \
                                         __LINE__);                        \
  } while (false)

/// Postcondition check: callee guarantees `cond` on normal return.
#define MODUBFT_ENSURES(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::modubft::detail::contract_failed("postcondition", #cond, __FILE__, \
                                         __LINE__);                        \
  } while (false)

/// Internal invariant check.
#define MODUBFT_ASSERT(cond)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::modubft::detail::contract_failed("invariant", #cond, __FILE__,     \
                                         __LINE__);                        \
  } while (false)
