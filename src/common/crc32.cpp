#include "common/crc32.hpp"

#include <array>

namespace modubft {

namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78),
// generated once at first use.
const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      out[i] = c;
    }
    return out;
  }();
  return t;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = table();
  while (len-- > 0) {
    state = t[(state ^ *p++) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace modubft
