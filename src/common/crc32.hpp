// CRC-32C (Castagnoli) over byte ranges.
//
// Used by the TCP transport to detect wire corruption at the frame level:
// a flipped bit on a socket must be caught *below* the protocols, so the
// reliable-channel contract can be re-established by retransmission
// instead of surfacing as a mysterious signature failure.  Not
// cryptographic — adversarial corruption is the signature module's job;
// this guards against the (injected) fallible link.
#pragma once

#include <cstddef>
#include <cstdint>

namespace modubft {

/// Incremental CRC-32C: feed `crc32c_init()`, update over ranges, finish
/// with `crc32c_final()`.  One-shot helper below.
std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t len);

inline std::uint32_t crc32c_init() { return 0xFFFFFFFFu; }
inline std::uint32_t crc32c_final(std::uint32_t state) { return ~state; }

/// CRC-32C of a single contiguous range.
inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c_final(crc32c_update(crc32c_init(), data, len));
}

}  // namespace modubft
