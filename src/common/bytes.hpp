// Byte-buffer alias and hex helpers used across all wire formats.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace modubft {

/// The universal octet buffer type for wire payloads, digests and keys.
using Bytes = std::vector<std::uint8_t>;

/// Encodes `data` as lowercase hexadecimal (two characters per octet).
std::string to_hex(const Bytes& data);

/// Decodes a hex string produced by to_hex (case-insensitive).
/// Throws std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Builds a Bytes buffer from a string's octets (no encoding applied).
Bytes bytes_of(std::string_view s);

/// Interprets a Bytes buffer as a std::string (no encoding applied).
std::string string_of(const Bytes& b);

}  // namespace modubft
