#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace modubft {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MODUBFT_EXPECTS(bound > 0);
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MODUBFT_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits scaled into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  MODUBFT_EXPECTS(mean > 0);
  double u = next_double();
  // Guard against log(0); next_double() < 1 so 1-u > 0.
  return -mean * std::log1p(-u);
}

bool Rng::next_bool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

Rng Rng::split(std::uint64_t label) {
  // Mix the label into fresh state derived from this generator so children
  // with different labels are independent of each other and of the parent.
  std::uint64_t seed = next_u64() ^ (label * 0x9e3779b97f4a7c15ULL + 1);
  return Rng(seed);
}

}  // namespace modubft
