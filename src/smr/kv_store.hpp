// The deterministic state machine replicated by the SMR layer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "smr/command.hpp"

namespace modubft::smr {

/// A deterministic key-value store: same command sequence ⇒ same state.
class KvStore {
 public:
  /// Applies one committed command.
  void apply(const Command& cmd);

  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return data_.size(); }
  std::uint64_t applied_count() const { return applied_; }

  /// Order-insensitive fingerprint check helper: the full contents.
  const std::map<std::string, std::string>& contents() const { return data_; }

  /// Replaces the whole state from a verified snapshot (recovery install).
  void install(std::map<std::string, std::string> data,
               std::uint64_t applied) {
    data_ = std::move(data);
    applied_ = applied;
  }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
};

}  // namespace modubft::smr
