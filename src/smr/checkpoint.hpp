// Checkpoint and state-transfer wire formats for the replicated log.
//
// The replica's envelope is `u64 slot ‖ inner frame`, and every replica
// (including pre-recovery builds) silently drops slots beyond its
// configured log — so the all-ones slot value is a free control channel:
// frames tagged kControlSlot never collide with consensus traffic and are
// invisible to replicas that do not speak recovery.  Enabling checkpoints
// therefore changes *no byte* of the existing consensus wire format; it
// only adds frames on the reserved tag.
//
//   control frame = u64 kControlSlot ‖ u8 kind ‖ body
//     kind 1  CHECKPOINT  — signed vote for (slot, state digest)
//     kind 2  STATE_REQ   — "send me your certified state from `slot`"
//     kind 3  STATE_RESP  — certificate + snapshot bytes + slot suffix
//
// The client/service layer (docs/CLIENT.md) rides the same reserved tag:
//     kind 4  REQUEST     — client → replica: seq ‖ op ‖ key ‖ value ‖ sig
//     kind 5  REPLY       — replica → client: committed command echo
//     kind 6  BUSY        — replica → client: admission queue full, back off
//     kind 7  CMD_RELAY   — replica ↔ replica: admitted command body + sig
//     kind 8  CMD_FETCH   — replica ↔ replica: "send me these bodies"
//     kind 9  CLIENT_DONE — client → Π: whole script certified, drain
//     kind 10 SEQ_BOUND   — client → Π: "I will never send seq > bound"
//
// REQUEST and CMD_RELAY carry the client's signature over the command
// preimage (client_request_signing_bytes): replicas in authenticated mode
// verify it before admitting a body, so a Byzantine replica can neither
// forge a body for a real client's seq nor feed divergent bodies to
// different peers — the body is bound to the decided id by the client's
// key, not by whoever relayed it.  SEQ_BOUND is the matching liveness
// tool: a signed, statically-true refutation ("my script has `bound`
// operations") that lets replicas skip a decided id whose body can never
// exist instead of fetching it forever.  CLIENT_DONE doubles as a bound.
//
// Snapshots use the canonical Writer encoding (fixed-width, sorted map
// order), so every correct replica at the same commit frontier produces
// byte-identical snapshots and therefore identical SHA-256 digests — the
// property that lets 2f+1 independent votes certify a single digest.
//
// Every decoder here is fully defensive (`StateLimits` caps each
// sequence): STATE_RESP bodies come from untrusted peers and are also the
// target of the decode fuzzer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bft/checkpoint_cert.hpp"
#include "common/bytes.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"
#include "smr/command.hpp"

namespace modubft::smr {

/// Reserved envelope slot tag carrying recovery control frames.
inline constexpr std::uint64_t kControlSlot = ~std::uint64_t{0};

enum class ControlKind : std::uint8_t {
  kCheckpointVote = 1,
  kStateReq = 2,
  kStateResp = 3,
  kRequest = 4,
  kReply = 5,
  kBusy = 6,
  kCmdRelay = 7,
  kCmdFetch = 8,
  kClientDone = 9,
  kSeqBound = 10,
};

/// Command identity for the client/service layer: the client's process id
/// in the high 32 bits, its per-client monotone sequence number (≥ 1) in
/// the low 32.  Client ids are ≥ n ≥ 2, so client command ids never
/// collide with harness workload ids (small integers) and are never 0.
constexpr std::uint64_t make_client_cmd_id(std::uint32_t client,
                                           std::uint64_t seq) {
  return (static_cast<std::uint64_t>(client) << 32) | seq;
}
constexpr std::uint32_t client_of_cmd(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr std::uint64_t seq_of_cmd(std::uint64_t id) {
  return id & 0xffffffffULL;
}

/// A replica's full service state at a slot boundary: everything needed to
/// resume committing from `slot` (the KV map, the applied-command counter,
/// and the set of already-committed command ids that defines "pending").
/// When the client/service layer is active the snapshot also carries the
/// per-client reply cache (client id → seq → encoded REPLY control frame),
/// so a restarted replica can keep suppressing duplicates and replaying
/// cached replies for requests it committed before the crash.  The section
/// is appended only when non-empty, which keeps pre-client snapshot
/// encodings byte-identical.
struct Snapshot {
  std::uint64_t slot = 0;
  std::uint64_t applied = 0;
  std::map<std::string, std::string> data;
  std::set<std::uint64_t> committed_ids;
  std::map<std::uint32_t, std::map<std::uint64_t, Bytes>> clients;
};

/// Decode caps for hostile input.  Defaults are far above anything the
/// test scenarios produce but small enough to bound a malicious
/// allocation.
struct StateLimits {
  std::uint32_t max_store_entries = 1u << 20;
  std::uint32_t max_committed_ids = 1u << 20;
  std::uint32_t max_cert_sigs = 256;
  std::uint32_t max_suffix_slots = 1u << 16;
  std::uint32_t max_batch = 1u << 12;
  std::uint32_t max_snapshot_bytes = 64u << 20;
  std::uint32_t max_clients = 1u << 12;
  std::uint32_t max_cached_replies = 1u << 10;  // per client
};

Bytes encode_snapshot(const Snapshot& snap);
Snapshot decode_snapshot(const Bytes& buf, const StateLimits& limits);

/// Digest certified by checkpoint votes: SHA-256 of the canonical
/// snapshot encoding.
crypto::Digest snapshot_digest(const Bytes& encoded);

/// The canonical empty state at slot 0.  Its digest is recomputable by
/// anyone, which is what lets a replica serve (and a recoverer accept) a
/// certificate-free genesis response before the first checkpoint forms.
Bytes genesis_snapshot();

/// One replica's signed endorsement of (slot, digest).  The signer is the
/// envelope sender; the signature covers
/// bft::checkpoint_signing_bytes(slot, digest).
struct CheckpointVote {
  std::uint64_t slot = 0;
  crypto::Digest digest{};
  Bytes sig;
};

/// One committed slot of the replay suffix: the command ids the slot
/// committed, in commit order (empty = no-op slot).
struct SuffixEntry {
  std::uint64_t slot = 0;
  std::vector<std::uint64_t> ids;
};

/// STATE_RESP body: the responder's latest certified checkpoint plus the
/// committed-slot suffix from that checkpoint to its commit frontier.
struct StateResp {
  std::uint64_t ckpt_slot = 0;
  Bytes snapshot;  // encoded Snapshot; digest-bound to the certificate
  std::vector<std::pair<std::uint32_t, Bytes>> cert_sigs;
  std::vector<SuffixEntry> suffix;
};

// ----------------------------------------------------------------- client
// Request/reply frames for the client/service layer (docs/CLIENT.md).
// The client's identity is its authenticated channel (the envelope
// sender), never a frame field, so a client cannot impersonate another.

/// Client → contact replica.  The command id is derived, never carried:
/// make_client_cmd_id(sender, seq).  `sig` is the client's signature over
/// client_request_signing_bytes(sender, seq, op, key, value); empty in
/// unauthenticated (crash-model) runs, where forgery is out of the model.
struct ClientRequest {
  std::uint64_t seq = 0;  // per-client monotone, starts at 1
  Command::Op op = Command::Op::kPut;
  std::string key;
  std::string value;
  Bytes sig;
};

/// Replica → client, sent by EVERY replica that commits the command.
/// Each field is a deterministic function of the committed log, so the
/// replies of correct replicas are byte-identical — the property that
/// makes f+1 matching replies a proof of commitment.
struct ClientReply {
  std::uint64_t seq = 0;
  std::uint64_t cmd_id = 0;
  std::uint64_t slot = 0;  // slot that committed the command
  Command::Op op = Command::Op::kPut;
  std::string key;
  std::string value;
};

/// Replica → client: the admission queue is full; retry after backoff.
struct BusyFrame {
  std::uint64_t seq = 0;
  std::uint32_t queue_depth = 0;
};

/// Replica ↔ replica: the body of an admitted client command, broadcast
/// on admission so every replica can propose/commit it.  Carries the
/// owning client's request signature, so the receiver can authenticate
/// the body independently of the (possibly Byzantine) relaying replica.
struct CmdRelay {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  Command::Op op = Command::Op::kPut;
  std::string key;
  std::string value;
  Bytes sig;
};

/// Client → Π: the whole script certified.  Signed so replicas may also
/// accept it relayed/served by a peer; final_seq doubles as a seq bound
/// (the client will never send seq > final_seq).
struct ClientDone {
  std::uint32_t client = 0;
  std::uint64_t final_seq = 0;
  Bytes sig;
};

/// Client → Π: a standing refutation — this client will never send any
/// seq > bound (statically true: bound = script length).  Lets replicas
/// deterministically skip fabricated decided ids beyond the bound instead
/// of parking the frontier on a body that can never exist.
struct SeqBound {
  std::uint32_t client = 0;
  std::uint64_t bound = 0;
  Bytes sig;
};

/// Domain-tagged signing preimages for the client frames.  The tags keep
/// the three signature kinds mutually unforgeable from each other.
Bytes client_request_signing_bytes(std::uint32_t client, std::uint64_t seq,
                                   Command::Op op, const std::string& key,
                                   const std::string& value);
Bytes client_done_signing_bytes(std::uint32_t client, std::uint64_t final_seq);
Bytes seq_bound_signing_bytes(std::uint32_t client, std::uint64_t bound);

/// Complete control frames, ready for Context::send / broadcast.
Bytes encode_control_vote(const CheckpointVote& vote);
Bytes encode_control_state_req(std::uint64_t from_slot);
Bytes encode_control_state_resp(const StateResp& resp);
Bytes encode_control_request(const ClientRequest& req);
Bytes encode_control_reply(const ClientReply& reply);
Bytes encode_control_busy(const BusyFrame& busy);
Bytes encode_control_relay(const CmdRelay& relay);
Bytes encode_control_fetch(const std::vector<std::uint64_t>& ids);
Bytes encode_control_client_done(const ClientDone& done);
Bytes encode_control_seq_bound(const SeqBound& bound);

/// Body decoders (input = the bytes after the kind octet).  All throw
/// SerialError on malformed input.
CheckpointVote decode_checkpoint_vote(Reader& r);
std::uint64_t decode_state_req(Reader& r);
StateResp decode_state_resp(Reader& r, const StateLimits& limits);
ClientRequest decode_client_request(Reader& r);
ClientReply decode_client_reply(Reader& r);
BusyFrame decode_busy(Reader& r);
CmdRelay decode_cmd_relay(Reader& r);
std::vector<std::uint64_t> decode_cmd_fetch(Reader& r,
                                            const StateLimits& limits);
ClientDone decode_client_done(Reader& r);
SeqBound decode_seq_bound(Reader& r);

/// Non-throwing STATE_RESP decode for the fuzz harness and the recovery
/// path: malformed input yields nullopt, never UB and never an exception
/// escaping to the actor loop.
std::optional<StateResp> try_decode_state_resp(const Bytes& body,
                                               const StateLimits& limits);

}  // namespace modubft::smr
