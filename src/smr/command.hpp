// Client commands for the replicated state machine.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace modubft::smr {

/// A mutating command against the key-value state machine.
struct Command {
  enum class Op : std::uint8_t { kPut = 1, kDel = 2 };

  std::uint64_t id = 0;  // globally unique; doubles as the consensus value
  Op op = Op::kPut;
  std::string key;
  std::string value;  // empty for kDel

  friend bool operator==(const Command& a, const Command& b) {
    return a.id == b.id && a.op == b.op && a.key == b.key &&
           a.value == b.value;
  }
  friend bool operator!=(const Command& a, const Command& b) {
    return !(a == b);
  }
};

Bytes encode_command(const Command& cmd);
Command decode_command(const Bytes& buf);  // throws SerialError

}  // namespace modubft::smr
