#include "smr/checkpoint.hpp"

#include <algorithm>

namespace modubft::smr {

namespace {

void write_frame_header(Writer& w, ControlKind kind) {
  w.u64(kControlSlot);
  w.u8(static_cast<std::uint8_t>(kind));
}

crypto::Digest read_digest(Reader& r) {
  const Bytes raw = r.bytes();
  if (raw.size() != crypto::Digest{}.size()) {
    throw SerialError("digest field has wrong length");
  }
  crypto::Digest d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

Command::Op read_op(Reader& r) {
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 2) throw SerialError("unknown command op");
  return static_cast<Command::Op>(op);
}

}  // namespace

Bytes encode_snapshot(const Snapshot& snap) {
  Writer w;
  w.u64(snap.slot);
  w.u64(snap.applied);
  w.u32(static_cast<std::uint32_t>(snap.data.size()));
  for (const auto& [key, value] : snap.data) {
    w.str(key);
    w.str(value);
  }
  w.u32(static_cast<std::uint32_t>(snap.committed_ids.size()));
  for (std::uint64_t id : snap.committed_ids) w.u64(id);
  // Client-table section, appended only when non-empty: a pre-client
  // snapshot (or a run without clients) encodes byte-identically to the
  // PR 6 format, so old digests — and the wire-format pin tests — hold.
  if (!snap.clients.empty()) {
    w.u32(static_cast<std::uint32_t>(snap.clients.size()));
    for (const auto& [client, replies] : snap.clients) {
      w.u32(client);
      w.u32(static_cast<std::uint32_t>(replies.size()));
      for (const auto& [seq, frame] : replies) {
        w.u64(seq);
        w.bytes(frame);
      }
    }
  }
  return std::move(w).take();
}

Snapshot decode_snapshot(const Bytes& buf, const StateLimits& limits) {
  if (buf.size() > limits.max_snapshot_bytes) {
    throw SerialError("snapshot exceeds size cap");
  }
  Reader r(buf);
  Snapshot snap;
  snap.slot = r.u64();
  snap.applied = r.u64();
  const std::uint32_t entries = r.seq_len(limits.max_store_entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    // Canonical form: strictly ascending keys, no duplicates.
    if (!snap.data.empty() && key <= snap.data.rbegin()->first) {
      throw SerialError("snapshot store keys not strictly ascending");
    }
    snap.data.emplace_hint(snap.data.end(), std::move(key), std::move(value));
  }
  const std::uint32_t ids = r.seq_len(limits.max_committed_ids);
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < ids; ++i) {
    const std::uint64_t id = r.u64();
    if (id == 0 || (i > 0 && id <= prev)) {
      throw SerialError("snapshot committed ids not strictly ascending");
    }
    snap.committed_ids.insert(snap.committed_ids.end(), id);
    prev = id;
  }
  // Optional trailing client-table section (absent in pre-client
  // encodings; its presence is detected by remaining bytes, and the
  // canonical form bans an empty section — encode never emits one).
  if (!r.at_end()) {
    const std::uint32_t clients = r.seq_len(limits.max_clients);
    if (clients == 0) throw SerialError("empty snapshot client section");
    std::uint64_t prev_client = 0;
    for (std::uint32_t i = 0; i < clients; ++i) {
      const std::uint32_t client = r.u32();
      if (i > 0 && client <= prev_client) {
        throw SerialError("snapshot clients not strictly ascending");
      }
      prev_client = client;
      const std::uint32_t replies = r.seq_len(limits.max_cached_replies);
      auto& table = snap.clients[client];
      std::uint64_t prev_seq = 0;
      for (std::uint32_t j = 0; j < replies; ++j) {
        const std::uint64_t seq = r.u64();
        if (seq == 0 || (j > 0 && seq <= prev_seq)) {
          throw SerialError("snapshot reply seqs not strictly ascending");
        }
        prev_seq = seq;
        table.emplace_hint(table.end(), seq, r.bytes());
      }
    }
  }
  r.expect_end();
  return snap;
}

crypto::Digest snapshot_digest(const Bytes& encoded) {
  return crypto::sha256(encoded);
}

Bytes genesis_snapshot() { return encode_snapshot(Snapshot{}); }

Bytes encode_control_vote(const CheckpointVote& vote) {
  Writer w;
  write_frame_header(w, ControlKind::kCheckpointVote);
  w.u64(vote.slot);
  w.bytes(crypto::digest_bytes(vote.digest));
  w.bytes(vote.sig);
  return std::move(w).take();
}

Bytes encode_control_state_req(std::uint64_t from_slot) {
  Writer w;
  write_frame_header(w, ControlKind::kStateReq);
  w.u64(from_slot);
  return std::move(w).take();
}

Bytes encode_control_state_resp(const StateResp& resp) {
  Writer w;
  write_frame_header(w, ControlKind::kStateResp);
  w.u64(resp.ckpt_slot);
  w.bytes(resp.snapshot);
  bft::write_cert_sigs(w, resp.cert_sigs);
  w.u32(static_cast<std::uint32_t>(resp.suffix.size()));
  for (const SuffixEntry& entry : resp.suffix) {
    w.u64(entry.slot);
    w.u32(static_cast<std::uint32_t>(entry.ids.size()));
    for (std::uint64_t id : entry.ids) w.u64(id);
  }
  return std::move(w).take();
}

Bytes encode_control_request(const ClientRequest& req) {
  Writer w;
  write_frame_header(w, ControlKind::kRequest);
  w.u64(req.seq);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.str(req.key);
  w.str(req.value);
  w.bytes(req.sig);
  return std::move(w).take();
}

Bytes encode_control_reply(const ClientReply& reply) {
  Writer w;
  write_frame_header(w, ControlKind::kReply);
  w.u64(reply.seq);
  w.u64(reply.cmd_id);
  w.u64(reply.slot);
  w.u8(static_cast<std::uint8_t>(reply.op));
  w.str(reply.key);
  w.str(reply.value);
  return std::move(w).take();
}

Bytes encode_control_busy(const BusyFrame& busy) {
  Writer w;
  write_frame_header(w, ControlKind::kBusy);
  w.u64(busy.seq);
  w.u32(busy.queue_depth);
  return std::move(w).take();
}

Bytes encode_control_relay(const CmdRelay& relay) {
  Writer w;
  write_frame_header(w, ControlKind::kCmdRelay);
  w.u32(relay.client);
  w.u64(relay.seq);
  w.u8(static_cast<std::uint8_t>(relay.op));
  w.str(relay.key);
  w.str(relay.value);
  w.bytes(relay.sig);
  return std::move(w).take();
}

Bytes encode_control_fetch(const std::vector<std::uint64_t>& ids) {
  Writer w;
  write_frame_header(w, ControlKind::kCmdFetch);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (std::uint64_t id : ids) w.u64(id);
  return std::move(w).take();
}

Bytes encode_control_client_done(const ClientDone& done) {
  Writer w;
  write_frame_header(w, ControlKind::kClientDone);
  w.u32(done.client);
  w.u64(done.final_seq);
  w.bytes(done.sig);
  return std::move(w).take();
}

Bytes encode_control_seq_bound(const SeqBound& bound) {
  Writer w;
  write_frame_header(w, ControlKind::kSeqBound);
  w.u32(bound.client);
  w.u64(bound.bound);
  w.bytes(bound.sig);
  return std::move(w).take();
}

Bytes client_request_signing_bytes(std::uint32_t client, std::uint64_t seq,
                                   Command::Op op, const std::string& key,
                                   const std::string& value) {
  Writer w;
  w.str("smr-client-request");
  w.u32(client);
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  w.str(value);
  return std::move(w).take();
}

Bytes client_done_signing_bytes(std::uint32_t client,
                                std::uint64_t final_seq) {
  Writer w;
  w.str("smr-client-done");
  w.u32(client);
  w.u64(final_seq);
  return std::move(w).take();
}

Bytes seq_bound_signing_bytes(std::uint32_t client, std::uint64_t bound) {
  Writer w;
  w.str("smr-seq-bound");
  w.u32(client);
  w.u64(bound);
  return std::move(w).take();
}

CheckpointVote decode_checkpoint_vote(Reader& r) {
  CheckpointVote vote;
  vote.slot = r.u64();
  vote.digest = read_digest(r);
  vote.sig = r.bytes();
  r.expect_end();
  return vote;
}

std::uint64_t decode_state_req(Reader& r) {
  const std::uint64_t from_slot = r.u64();
  r.expect_end();
  return from_slot;
}

StateResp decode_state_resp(Reader& r, const StateLimits& limits) {
  StateResp resp;
  resp.ckpt_slot = r.u64();
  resp.snapshot = r.bytes();
  if (resp.snapshot.size() > limits.max_snapshot_bytes) {
    throw SerialError("snapshot exceeds size cap");
  }
  resp.cert_sigs = bft::read_cert_sigs(r, limits.max_cert_sigs);
  const std::uint32_t slots = r.seq_len(limits.max_suffix_slots);
  resp.suffix.reserve(slots);
  std::uint64_t prev_slot = 0;
  for (std::uint32_t i = 0; i < slots; ++i) {
    SuffixEntry entry;
    entry.slot = r.u64();
    if (entry.slot < resp.ckpt_slot || (i > 0 && entry.slot <= prev_slot)) {
      throw SerialError("suffix slots not strictly ascending from checkpoint");
    }
    prev_slot = entry.slot;
    const std::uint32_t ids = r.seq_len(limits.max_batch);
    entry.ids.reserve(ids);
    std::uint64_t prev_id = 0;
    for (std::uint32_t j = 0; j < ids; ++j) {
      const std::uint64_t id = r.u64();
      if (id == 0 || (j > 0 && id <= prev_id)) {
        throw SerialError("suffix command ids not strictly ascending");
      }
      entry.ids.push_back(id);
      prev_id = id;
    }
    resp.suffix.push_back(std::move(entry));
  }
  r.expect_end();
  return resp;
}

ClientRequest decode_client_request(Reader& r) {
  ClientRequest req;
  req.seq = r.u64();
  req.op = read_op(r);
  req.key = r.str();
  req.value = r.str();
  req.sig = r.bytes();
  r.expect_end();
  return req;
}

ClientReply decode_client_reply(Reader& r) {
  ClientReply reply;
  reply.seq = r.u64();
  reply.cmd_id = r.u64();
  reply.slot = r.u64();
  reply.op = read_op(r);
  reply.key = r.str();
  reply.value = r.str();
  r.expect_end();
  return reply;
}

BusyFrame decode_busy(Reader& r) {
  BusyFrame busy;
  busy.seq = r.u64();
  busy.queue_depth = r.u32();
  r.expect_end();
  return busy;
}

CmdRelay decode_cmd_relay(Reader& r) {
  CmdRelay relay;
  relay.client = r.u32();
  relay.seq = r.u64();
  relay.op = read_op(r);
  relay.key = r.str();
  relay.value = r.str();
  relay.sig = r.bytes();
  r.expect_end();
  return relay;
}

std::vector<std::uint64_t> decode_cmd_fetch(Reader& r,
                                            const StateLimits& limits) {
  const std::uint32_t count = r.seq_len(limits.max_batch);
  std::vector<std::uint64_t> ids;
  ids.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t id = r.u64();
    if (id == 0 || (i > 0 && id <= prev)) {
      throw SerialError("fetch ids not strictly ascending");
    }
    ids.push_back(id);
    prev = id;
  }
  r.expect_end();
  return ids;
}

ClientDone decode_client_done(Reader& r) {
  ClientDone done;
  done.client = r.u32();
  done.final_seq = r.u64();
  done.sig = r.bytes();
  r.expect_end();
  return done;
}

SeqBound decode_seq_bound(Reader& r) {
  SeqBound bound;
  bound.client = r.u32();
  bound.bound = r.u64();
  bound.sig = r.bytes();
  r.expect_end();
  return bound;
}

std::optional<StateResp> try_decode_state_resp(const Bytes& body,
                                               const StateLimits& limits) {
  try {
    Reader r(body);
    return decode_state_resp(r, limits);
  } catch (const SerialError&) {
    return std::nullopt;
  }
}

}  // namespace modubft::smr
