// RecoveryModule: the untrusting client side of state transfer.
//
// A restarted replica broadcasts STATE_REQ and feeds every STATE_RESP it
// receives through this module.  Nothing in a response is taken on faith:
//
//   * the snapshot bytes must hash to a digest covered by a checkpoint
//     certificate carrying `cert_quorum` distinct valid signatures (or be
//     byte-identical to the locally recomputable genesis snapshot);
//   * the decoded snapshot's slot field must match the certified slot —
//     the slot is inside the hashed bytes, so a valid certificate pins it;
//   * replay-suffix batches are not certificate-covered (they trail the
//     latest checkpoint), so each slot's batch is only released once
//     `suffix_quorum` distinct responders agree on the exact ids — f+1
//     matching responses must include one correct replica.
//
// Corrupt or unverifiable responses are counted and dropped; the caller's
// retry timer (with backoff) handles silent responders.  The module is
// substrate-agnostic and purely functional over bytes — it never touches
// the replica's store, it only tells the replica what is safe to install.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/signature.hpp"
#include "smr/checkpoint.hpp"

namespace modubft::smr {

struct RecoveryConfig {
  std::uint32_t n = 0;
  /// Signatures a checkpoint certificate must carry (2f+1 for the
  /// Byzantine backend, a majority for crash).
  std::uint32_t cert_quorum = 0;
  /// Distinct responders that must agree on a suffix slot's batch before
  /// it is released for replay (f+1 Byzantine, 1 crash).
  std::uint32_t suffix_quorum = 1;
  const crypto::Verifier* verifier = nullptr;
  StateLimits limits;
  /// Negative-control switch used ONLY by the adversary harness: accept
  /// the first response without any verification, so the campaign can
  /// demonstrate what the checks prevent.
  bool trust_unverified = false;
};

struct RecoveryStats {
  std::uint64_t resps_accepted = 0;
  std::uint64_t resps_rejected = 0;
};

class RecoveryModule {
 public:
  explicit RecoveryModule(RecoveryConfig config);

  /// Ingests one STATE_RESP body (bytes after the kind octet).  Returns
  /// true iff the response decoded and verified; its snapshot and suffix
  /// votes are then available through the accessors below.
  bool ingest(ProcessId from, const Bytes& body);

  /// Best verified snapshot strictly beyond `frontier`, if any.  Returns
  /// the decoded snapshot together with its raw bytes and certificate so
  /// the installer can re-serve them to later recoverers.
  struct Installable {
    Snapshot snapshot;
    Bytes encoded;
    bft::CheckpointCert cert;
  };
  std::optional<Installable> best_snapshot(std::uint64_t frontier) const;

  /// Batch for `slot` once `suffix_quorum` responders agree on it.
  std::optional<std::vector<std::uint64_t>> batch_for(std::uint64_t slot) const;

  /// Drops suffix votes below the new commit frontier.
  void prune_below(std::uint64_t frontier);

  const RecoveryStats& stats() const { return stats_; }

 private:
  bool verify_resp(ProcessId from, const StateResp& resp,
                   crypto::Digest* digest_out) const;
  void record_suffix(ProcessId from, const StateResp& resp);

  RecoveryConfig config_;
  RecoveryStats stats_;

  /// Highest verified checkpoint seen so far.
  std::optional<Installable> best_;

  /// Per-slot suffix votes: candidate batch -> responders endorsing it.
  std::map<std::uint64_t, std::map<std::vector<std::uint64_t>,
                                   std::set<std::uint32_t>>>
      suffix_votes_;
};

}  // namespace modubft::smr
