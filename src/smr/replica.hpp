// State-machine replication on top of repeated consensus instances.
//
// The paper motivates consensus as "a fundamental paradigm for
// fault-tolerant distributed systems"; this layer is the canonical
// downstream use.  Each replica runs a sequence of consensus instances
// (slots), multiplexed over the replica's single channel with an
// instance-tag envelope; each instance is a fresh protocol actor behind a
// sub-context that re-routes sends, timers, and the actor's stop() (which
// must end the instance, not the replica).
//
// Pipelining.  Up to `window` slots run concurrently: the replica keeps a
// sliding window of live instances [commit frontier, frontier + W).
// Instances may decide in any order; decisions park in a reorder buffer
// and are applied to the KvStore strictly in slot order when the frontier
// reaches them, so the store never observes out-of-order commits.
// Envelopes for slots beyond the window are buffered (bounded per slot
// and bounded in horizon) and replayed when the slot starts; envelopes
// for committed slots are stale and dropped.
//
// Batching.  A slot commits up to `batch` commands.  Proposals remain a
// single command id (the consensus value type is untouched), acting as an
// anchor: at commit time — and only then, when every correct replica has
// the identical committed set — a real (non-zero, known) anchor releases
// the `batch` smallest still-pending command ids, applied in increasing
// id order.  The batch-assembly rule is a deterministic function of
// (decided value, committed set), so all correct replicas commit
// identical batches; and since batches always drain the smallest pending
// ids in order, the store's application order is the same increasing id
// order for *any* (window, batch) configuration — pipelined and
// sequential runs produce bit-identical stores.
//
// Two protocol back-ends are supported: the crash-model Hurfin–Raynal
// actor, and the transformed Byzantine protocol (the anchor is extracted
// from the decided vector by a deterministic rule — the minimum known id
// among the vector's entries).  The Byzantine back-end shares one
// verified-signature cache across all of the replica's slots (and a
// crypto::VerifyPool across replicas, when configured), so the PR 2 fast
// path compounds across the pipeline.
#pragma once

#include <functional>
#include <set>
#include <map>
#include <memory>
#include <vector>

#include "bft/bft_consensus.hpp"
#include "common/buffer_pool.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/signature.hpp"
#include "crypto/verify_cache.hpp"
#include "fd/failure_detector.hpp"
#include "sim/actor.hpp"
#include "smr/checkpoint.hpp"
#include "smr/client_table.hpp"
#include "smr/kv_store.hpp"
#include "smr/recovery.hpp"

namespace modubft::smr {

enum class Backend { kCrashHurfinRaynal, kByzantine };

/// Checkpointing + recovery knobs.  interval == 0 disables the whole
/// subsystem: no control frames are sent or accepted, and the wire
/// traffic is byte-identical to a pre-recovery build.
struct CheckpointConfig {
  /// Take a checkpoint every `interval` committed slots (and always at
  /// the end of the log).  0 = off.
  std::uint64_t interval = 0;

  /// Signatures a checkpoint certificate needs.  0 = derive from the
  /// backend: 2f+1 (Byzantine) or a simple majority (crash).
  std::uint32_t cert_quorum = 0;

  /// Matching responders per replayed suffix slot.  0 = derive: f+1
  /// (Byzantine) or 1 (crash).
  std::uint32_t suffix_quorum = 0;

  /// Start in recovery: the replica owns no state, broadcasts STATE_REQ,
  /// and only joins the window after installing a verified response.
  bool recover = false;

  /// Base delay of the recovery retry/catch-up timer (doubles per silent
  /// retry, capped at 16x).
  SimTime retry_delay = 20'000;

  /// Decode caps applied to inbound control frames.
  StateLimits limits;

  /// Negative-control switch (adversary harness only): install the first
  /// response without verification.
  bool trust_unverified = false;
};

struct ReplicaConfig {
  std::uint32_t n = 0;
  Backend backend = Backend::kCrashHurfinRaynal;
  std::uint64_t slots = 4;  // how many consensus instances to run

  /// Pipeline window: maximum number of concurrently live instances.
  /// 1 reproduces the strictly sequential pre-pipelining behaviour.
  std::uint32_t window = 1;

  /// Maximum commands committed per slot (see the batching rule above).
  std::uint32_t batch = 1;

  /// Buffering horizon for early envelopes: slots at distance
  /// ≥ window + max_future_slots from the commit frontier are dropped
  /// (counted in PipelineStats::future_dropped).  Bounds Byzantine
  /// flooding of far-future slots.
  std::uint32_t max_future_slots = 32;

  /// Per-slot cap on buffered envelopes (same flooding bound).
  std::uint32_t max_future_msgs_per_slot = 256;

  // Crash back-end.
  std::shared_ptr<fd::CrashDetector> detector;

  // Byzantine back-end.
  bft::BftConfig bft;
  const crypto::Signer* signer = nullptr;
  std::shared_ptr<const crypto::Verifier> verifier;

  /// Checkpoints, log compaction and state transfer.  When
  /// checkpoint.interval > 0, signer and verifier are required for BOTH
  /// backends (checkpoint votes are signed even under the crash model —
  /// the certificate must be verifiable by a recovering replica that
  /// trusts nobody).
  CheckpointConfig checkpoint;

  /// Staged ingest (Byzantine back-end only; the tentpole of
  /// docs/INGEST.md).  When true AND the back-end has both a verify pool
  /// and the shared verified-signature cache, Replica::on_batch splits a
  /// multi-frame delivery batch into two stages: a parallel PROLOGUE that
  /// decodes every frame into a private copy and pre-verifies its
  /// signatures (top-level and certificate members) through the shared
  /// CachingVerifier on the pool's workers, then the sequential protocol
  /// stage, which replays the batch in arrival order (the ordering
  /// tickets) and hits the warm cache instead of running signature
  /// arithmetic serially.  Outgoing messages produced during the batch
  /// are staged and flushed in one signing+encode pass over pooled
  /// buffers at the end of the dispatch.  Observationally equivalent to
  /// the sequential path — the equivalence tests assert bit-identical
  /// stores either way.  Off by default (the deterministic simulator
  /// configuration); the scenario runner enables it on the wall-clock
  /// substrates.
  bool staged_ingest = false;

  /// Replicas whose end-of-log checkpoint votes this replica must hear
  /// before stopping (itself excluded implicitly).  Keeps finished
  /// replicas alive to serve state transfer to late recoverers; empty =
  /// stop as soon as the log commits (the pre-recovery behaviour).  Only
  /// honoured when checkpointing is on.
  std::set<std::uint32_t> await_done;

  /// Client/service layer (docs/CLIENT.md).  num_clients > 0 switches the
  /// replica into client mode: REQUEST/REPLY/BUSY/CMD_RELAY/CMD_FETCH/
  /// CLIENT_DONE control frames are spoken, the commit rule becomes the
  /// decided-vector rule (every non-committed decided entry, smallest id
  /// first — a pure function of the decision and the committed set, sound
  /// under dynamic command arrival, where the static "B smallest pending"
  /// rule is not), proposal claims narrow to one id per slot so window-W
  /// slots carry disjoint proposals, and slots only start when there is
  /// something to propose (or a peer already started them, or every
  /// client announced DONE — the drain phase that no-ops the rest of the
  /// log so the PR 6 end-of-log machinery applies unchanged).
  ClientServiceConfig client;
};

/// Pipeline observability, surfaced through runtime::RunStats::to_json.
struct PipelineStats {
  std::uint64_t slots_committed = 0;
  std::uint64_t commands_committed = 0;
  std::uint64_t noop_slots = 0;     // slots that released no command
  std::uint64_t max_batch = 0;      // largest committed batch
  std::uint64_t window_peak = 0;    // most slots live at once
  /// Occupancy integral: live-slot count sampled at every slot start.
  std::uint64_t window_occupancy_sum = 0;
  std::uint64_t window_samples = 0;
  std::uint64_t future_buffered = 0;  // early envelopes parked
  std::uint64_t future_dropped = 0;   // beyond horizon or per-slot cap
  std::uint64_t stale_dropped = 0;    // post-commit stragglers

  // Checkpoint / recovery counters (all zero when checkpointing is off).
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_certs = 0;  // quorum certificates formed
  std::uint64_t log_truncated = 0;     // slots compacted out of the log
  std::uint64_t log_peak = 0;          // most committed-log slots retained
  std::uint64_t state_reqs = 0;        // STATE_REQs broadcast (recoverer)
  std::uint64_t state_resps = 0;       // STATE_RESPs served (responder)
  std::uint64_t recovery_installs = 0;  // verified snapshots installed
  std::uint64_t recovery_rejects = 0;   // corrupt/unverifiable control msgs
  SimTime recovery_start_us = 0;  // restart instant (ctx.now at on_start)
  SimTime recovery_join_us = 0;   // first verified state accepted

  double avg_window() const {
    return window_samples == 0
               ? 0.0
               : static_cast<double>(window_occupancy_sum) /
                     static_cast<double>(window_samples);
  }
};

/// Staged-ingest observability (surfaced through runtime::RunStats::to_json
/// as the ingest_* keys).  All zero when staged ingest is off or the
/// substrate never delivered a multi-frame batch.
struct IngestStats {
  std::uint64_t batches = 0;          ///< staged on_batch dispatches
  std::uint64_t batch_messages = 0;   ///< frames delivered through them
  std::uint64_t max_batch = 0;        ///< largest single dispatch
  std::uint64_t prologue_frames = 0;  ///< frames the prologue recognized
  std::uint64_t prologue_jobs = 0;    ///< decode+warm jobs run on the pool
  std::uint64_t staged_sends = 0;     ///< egress messages deferred to flush
  std::uint64_t staged_bytes = 0;     ///< frame bytes produced by flushes
  std::uint64_t sign_flushes = 0;     ///< batched signing passes
  std::uint64_t encode_reuses = 0;    ///< pooled encode buffers reused
};

/// Invoked on every commit: (slot, command applied — nullptr for a no-op
/// slot, state after application).  A slot committing a batch of k
/// commands invokes the callback k times with the same slot, in
/// application (increasing id) order.
using CommitFn =
    std::function<void(InstanceId, const Command*, const KvStore&)>;

class Replica final : public sim::Actor {
 public:
  /// `workload` is the command table known to this replica (the harness
  /// plays the role of the clients' reliable multicast).
  Replica(ReplicaConfig config, std::vector<Command> workload,
          CommitFn on_commit);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  /// Staged two-phase dispatch of a delivery batch (see
  /// ReplicaConfig::staged_ingest): parallel decode+verify prologue, then
  /// the sequential protocol stage in arrival order, then one batched
  /// sign+encode flush of the staged egress.  Falls back to the base
  /// class's sequential loop — message for message, same order — whenever
  /// staging is disabled or inapplicable.
  void on_batch(sim::Context& ctx,
                std::vector<sim::Incoming>& batch) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  const KvStore& store() const { return store_; }
  std::uint64_t committed_slots() const { return next_commit_; }
  bool done() const { return next_commit_ >= config_.slots; }

  const PipelineStats& pipeline_stats() const { return pstats_; }

  /// Staged-ingest counters (all zero when staged ingest never engaged).
  const IngestStats& ingest_stats() const { return istats_; }

  /// The verified-signature cache shared across this replica's slots
  /// (Byzantine back-end with verify_cache on), else nullptr.
  const crypto::CachingVerifier* verify_cache() const {
    return vcache_.get();
  }

  /// True while a recovering replica has not yet accepted a verified
  /// STATE_RESP (it drops consensus traffic in that window).
  bool recovering() const { return recovering_; }

  /// Committed-slot log entries currently retained (compaction bound).
  std::uint64_t committed_log_size() const { return slot_log_.size(); }

  /// Latest certified checkpoint, if one has formed.
  const std::optional<bft::CheckpointCert>& latest_cert() const {
    return latest_cert_;
  }

  /// True iff the client/service layer is active (see ClientServiceConfig).
  bool client_mode() const { return config_.client.num_clients > 0; }

  /// Client-service counters (all zero outside client mode).
  const ClientServiceStats& client_service_stats() const { return cstats_; }

 private:
  class SlotContext;

  /// One in-flight (or decided-but-uncommitted) consensus instance.
  struct Slot {
    std::unique_ptr<sim::Actor> actor;  // released once decided
    bool decided = false;
    std::uint64_t crash_value = 0;   // crash back-end decision
    bft::VectorDecision vector;      // Byzantine back-end decision
  };

  /// Drives the pipeline to a fixpoint: commits the decided prefix in
  /// slot order, releases decided actors, refills the window (replaying
  /// buffered envelopes), and stops the replica when all slots committed.
  /// Called after every dispatch into an instance.
  void pump(sim::Context& ctx);
  bool fill_window(sim::Context& ctx);
  /// Returns false when the frontier slot is parked awaiting command
  /// bodies (client mode only); pump stops and CMD_FETCH drives retry.
  bool commit_slot(sim::Context& ctx, Slot& st);
  std::uint64_t pick_proposal(std::uint64_t slot);
  std::unique_ptr<sim::Actor> make_instance_actor(std::uint64_t slot);
  std::uint64_t buffer_horizon() const {
    return next_commit_ + config_.window + config_.max_future_slots;
  }

  // --- staged ingest (inert unless ReplicaConfig::staged_ingest) ---
  /// True iff on_batch may run the two-stage pipeline right now.
  bool staging_ready() const;
  /// Parallel prologue: decode private copies of the batch's consensus
  /// frames and warm the shared verify cache through the pool.
  void ingest_prologue(const std::vector<sim::Incoming>& batch);
  /// Batched signing: one pass over the staged egress — sign, encode into
  /// a pooled buffer, broadcast — in staging order.
  void flush_staged(sim::Context& ctx);

  // --- checkpointing / recovery (all no-ops when interval == 0) ---
  bool checkpointing() const { return config_.checkpoint.interval > 0; }
  std::uint32_t cert_quorum() const;
  std::uint32_t suffix_quorum() const;
  bool verify_vote(ProcessId from, const CheckpointVote& vote) const;
  /// Applies one committed batch (shared by consensus commit and suffix
  /// replay) and advances the frontier by one slot.
  void apply_committed_batch(sim::Context& ctx,
                             const std::vector<std::uint64_t>& ids);
  /// Takes + broadcasts a checkpoint vote if the frontier is on an
  /// interval boundary (or the end of the log).
  void maybe_checkpoint(sim::Context& ctx);
  void handle_control(sim::Context& ctx, ProcessId from, const Bytes& inner);
  void handle_vote(sim::Context& ctx, ProcessId from, Reader& r);
  void handle_state_req(sim::Context& ctx, ProcessId from, Reader& r);
  void try_certify(std::uint64_t slot);
  void request_state(sim::Context& ctx);
  /// Installs verified recovered state (snapshot and/or quorumed suffix
  /// batches) and leaves recovery mode on first success.
  void advance_recovery(sim::Context& ctx);
  /// Stops the replica when done AND every awaited peer announced done
  /// (their end-of-log checkpoint vote doubles as the announcement).
  void maybe_stop(sim::Context& ctx);

  // --- client service (all no-ops when client.num_clients == 0) ---
  bool is_client(std::uint32_t pid) const {
    return pid >= config_.n && pid < config_.n + config_.client.num_clients;
  }
  /// Deterministic id-space filter for decided entries: a plausible
  /// client command id names a configured client and a non-zero 32-bit
  /// seq.  Entries outside both this space and the preloaded command
  /// table are skipped identically by every correct replica (a forged id
  /// cannot stall the frontier).
  bool plausible_client_id(std::uint64_t id) const {
    const std::uint64_t seq = seq_of_cmd(id);
    return is_client(client_of_cmd(id)) && seq >= 1;
  }
  /// Commit-eligibility of a plausible client id, INDEPENDENT of local
  /// body knowledge (a body-dependent rule would diverge across replicas):
  /// the seq must sit within seq_window of the client's committed-seq
  /// count and must not be refuted by a verified seq bound.  Both inputs
  /// are either replicated state (the committed set) or stable verified
  /// facts that CMD_FETCH equalises across replicas, so every correct
  /// replica converges on the same verdict for every decided entry.
  bool client_eligible(std::uint64_t id) const;
  /// Verifies a client signature (through the shared verify cache when
  /// present).  True unconditionally when authentication is off.
  bool verify_client_sig(std::uint32_t client, const Bytes& preimage,
                         const Bytes& sig) const;
  /// Records a verified "never beyond `bound`" fact for a client and
  /// re-pumps: a frontier parked on a now-refuted id becomes committable.
  void record_seq_bound(sim::Context& ctx, std::uint32_t client,
                        std::uint64_t bound, const Bytes& frame);
  bool has_proposable() const;
  void handle_request(sim::Context& ctx, ProcessId from, Reader& r);
  void handle_relay(sim::Context& ctx, ProcessId from, Reader& r);
  void handle_fetch(sim::Context& ctx, ProcessId from, Reader& r);
  void handle_client_done(sim::Context& ctx, ProcessId from, Reader& r);
  void handle_seq_bound(sim::Context& ctx, ProcessId from, Reader& r);
  /// Ingests one relayed command body (CMD_RELAY broadcast or a CMD_FETCH
  /// answer — same frame) from replica `origin` and resumes any parked
  /// commit or suffix replay.  Authenticates the body and enforces the
  /// per-origin admission bound before storing anything.
  void ingest_relay(sim::Context& ctx, std::uint32_t origin,
                    const CmdRelay& relay);
  /// True iff `id` is needed to advance the frontier right now (listed in
  /// the in-flight fetch) — such ids are exempt from capacity drops and
  /// admission sheds, because progress depends on them and their number
  /// is bounded by the batch size.
  bool fetch_needs(std::uint64_t id) const;
  /// Broadcasts CMD_FETCH for missing frontier bodies (deduplicated
  /// against the in-flight fetch) and arms the retry timer.
  void request_bodies(sim::Context& ctx,
                      const std::vector<std::uint64_t>& missing);

  ReplicaConfig config_;
  std::map<std::uint64_t, Command> commands_;  // id → command
  CommitFn on_commit_;

  KvStore store_;
  std::uint64_t next_commit_ = 0;  // commit frontier (first uncommitted)
  std::uint64_t next_start_ = 0;   // first not-yet-started slot
  std::map<std::uint64_t, Slot> slots_;  // window + reorder buffer
  std::set<std::uint64_t> committed_ids_;
  /// Local proposal claims: ids already anchored by an in-flight slot, so
  /// concurrent slots propose disjoint anchors.  A heuristic only —
  /// correctness never depends on claims (the commit rule ignores them).
  std::set<std::uint64_t> claimed_ids_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> claims_;  // slot → ids
  std::map<std::uint64_t, std::uint64_t> timer_slot_;  // timer id → slot
  // Buffered envelopes for not-yet-started slots (bounded; see config).
  std::map<std::uint64_t, std::vector<std::pair<ProcessId, Bytes>>> future_;
  // Byzantine back-end: one verification cache for every slot instance.
  std::shared_ptr<crypto::CachingVerifier> vcache_;
  PipelineStats pstats_;
  bool stopped_ = false;

  // --- staged ingest state ---
  /// One egress message deferred by the per-instance staging hook: the
  /// flush signs it, encodes it behind its slot envelope and broadcasts.
  struct StagedSend {
    std::uint64_t slot = 0;
    bft::MessageCore core;
    bft::Certificate cert;
  };
  /// True only inside the sequential stage of a staged on_batch dispatch;
  /// the egress hooks consult it, so sends from on_timer / single-message
  /// dispatches stay on the immediate inline path.
  bool staging_active_ = false;
  std::vector<StagedSend> staged_;
  /// Encode-buffer arena for the flush (and anything else on this
  /// replica's thread that wants buffer reuse).
  BufferPool encode_pool_;
  IngestStats istats_;

  // --- checkpointing / recovery state (inert when interval == 0) ---
  /// Committed-slot log: slot → committed ids (empty = no-op slot).
  /// Spans [latest certified checkpoint, frontier); compacted whenever a
  /// new certificate forms.
  std::map<std::uint64_t, std::vector<std::uint64_t>> slot_log_;
  /// Own snapshots awaiting certification: slot → (encoded, digest).
  std::map<std::uint64_t, std::pair<Bytes, crypto::Digest>> pending_ckpts_;
  /// Checkpoint votes: slot → digest → signer → signature.  Digest
  /// variants per slot are capped (a Byzantine voter can invent digests).
  std::map<std::uint64_t,
           std::map<crypto::Digest, std::map<std::uint32_t, Bytes>>>
      votes_;
  std::optional<bft::CheckpointCert> latest_cert_;
  Bytes latest_snapshot_;  // encoded bytes the certificate covers
  std::uint64_t last_ckpt_slot_ = 0;

  // End-of-log coordination: who has announced completion.
  std::set<std::uint32_t> heard_end_;
  Bytes end_vote_frame_;  // our own end-of-log vote, for unicast replies

  // Recovery client state.
  bool recovering_ = false;
  std::unique_ptr<RecoveryModule> recovery_;
  std::uint64_t recovery_timer_ = 0;
  SimTime retry_delay_ = 0;
  std::uint64_t last_seen_frontier_ = 0;

  // --- client service state (inert when client.num_clients == 0) ---
  /// Per-client reply cache: client id → seq → encoded REPLY frame.
  /// Deterministic (a function of the committed log and the cache bound),
  /// so it lives inside the certified snapshot.
  std::map<std::uint32_t, std::map<std::uint64_t, Bytes>> client_table_;
  /// Admitted client commands not yet committed (the admission queue the
  /// shed bound applies to).
  std::set<std::uint64_t> pending_client_;
  /// Clients that broadcast CLIENT_DONE; all of them ⇒ drain mode.
  std::set<std::uint32_t> clients_done_;
  bool drain_ = false;
  /// Missing-body fetch in flight (frontier or suffix replay stall).
  std::vector<std::uint64_t> last_fetch_;
  std::uint64_t fetch_timer_ = 0;
  /// Client signatures of admitted command bodies (id → sig): what lets
  /// this replica serve authenticated CMD_RELAY answers to fetchers.
  std::map<std::uint64_t, Bytes> cmd_sigs_;
  /// Committed seqs per client — |{committed ids of c}|, the deterministic
  /// anchor of the commit-eligibility window.  Derived from committed_ids_
  /// (maintained incrementally; rebuilt on snapshot install).
  std::map<std::uint32_t, std::uint64_t> committed_seq_count_;
  /// Verified seq bounds (client → bound) and the signed frames proving
  /// them, re-served to fetchers parked on refuted ids.
  std::map<std::uint32_t, std::uint64_t> seq_bound_;
  std::map<std::uint32_t, Bytes> bound_frames_;
  /// Per-origin relay accounting: pending id → relaying replica, and the
  /// live count per origin.  One Byzantine relayer is capped at
  /// max_pending admissions instead of the whole n × max_pending budget.
  std::map<std::uint64_t, std::uint32_t> relay_origin_;
  std::map<std::uint32_t, std::uint64_t> origin_pending_;
  ClientServiceStats cstats_;
};

}  // namespace modubft::smr
