// State-machine replication on top of repeated consensus instances.
//
// The paper motivates consensus as "a fundamental paradigm for
// fault-tolerant distributed systems"; this layer is the canonical
// downstream use.  Each replica runs a sequence of consensus instances
// (slots).  For slot s it proposes the smallest not-yet-committed command
// id it knows; the decided id's command is applied to the deterministic
// KvStore.  Instances are multiplexed over the replica's single channel
// with an instance-tag envelope; each instance is a fresh protocol actor
// behind a sub-context that re-routes sends, timers, and the actor's
// stop() (which must end the instance, not the replica).
//
// Two protocol back-ends are supported: the crash-model Hurfin–Raynal
// actor, and the transformed Byzantine protocol (where the decided value
// is extracted from the vector by a deterministic rule — the minimum
// pending id among the vector's entries — so all correct replicas commit
// identically).
#pragma once

#include <functional>
#include <set>
#include <map>
#include <memory>
#include <vector>

#include "bft/bft_consensus.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/signature.hpp"
#include "fd/failure_detector.hpp"
#include "sim/actor.hpp"
#include "smr/kv_store.hpp"

namespace modubft::smr {

enum class Backend { kCrashHurfinRaynal, kByzantine };

struct ReplicaConfig {
  std::uint32_t n = 0;
  Backend backend = Backend::kCrashHurfinRaynal;
  std::uint64_t slots = 4;  // how many commands to commit

  // Crash back-end.
  std::shared_ptr<fd::CrashDetector> detector;

  // Byzantine back-end.
  bft::BftConfig bft;
  const crypto::Signer* signer = nullptr;
  std::shared_ptr<const crypto::Verifier> verifier;
};

/// Invoked on every commit: (slot, command applied — nullptr for a no-op
/// slot, state after application).
using CommitFn =
    std::function<void(InstanceId, const Command*, const KvStore&)>;

class Replica final : public sim::Actor {
 public:
  /// `workload` is the command table known to this replica (the harness
  /// plays the role of the clients' reliable multicast).
  Replica(ReplicaConfig config, std::vector<Command> workload,
          CommitFn on_commit);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  const KvStore& store() const { return store_; }
  std::uint64_t committed_slots() const { return next_slot_; }
  bool done() const { return next_slot_ >= config_.slots; }

 private:
  class SlotContext;

  void start_slot(sim::Context& ctx);
  void finish_slot(sim::Context& ctx, std::uint64_t decided_id);
  std::uint64_t pick_proposal() const;
  std::unique_ptr<sim::Actor> make_instance_actor(std::uint64_t slot);

  ReplicaConfig config_;
  std::map<std::uint64_t, Command> commands_;  // id → command
  CommitFn on_commit_;

  KvStore store_;
  std::uint64_t next_slot_ = 0;
  std::unique_ptr<sim::Actor> instance_;      // the active slot's actor
  bool instance_decided_ = false;
  std::uint64_t pending_decided_id_ = 0;
  std::set<std::uint64_t> committed_ids_;
  std::map<std::uint64_t, std::uint64_t> timer_slot_;  // timer id → slot
  // Buffered envelopes for future slots (a peer may be a slot ahead).
  std::map<std::uint64_t, std::vector<std::pair<ProcessId, Bytes>>> future_;
};

}  // namespace modubft::smr
