#include "smr/recovery.hpp"

#include "common/check.hpp"

namespace modubft::smr {

RecoveryModule::RecoveryModule(RecoveryConfig config)
    : config_(std::move(config)) {
  MODUBFT_EXPECTS(config_.n > 0);
  MODUBFT_EXPECTS(config_.suffix_quorum >= 1);
  MODUBFT_EXPECTS(config_.trust_unverified || config_.verifier != nullptr ||
                  config_.cert_quorum == 0);
}

bool RecoveryModule::verify_resp(ProcessId from, const StateResp& resp,
                                 crypto::Digest* digest_out) const {
  (void)from;
  const crypto::Digest digest = snapshot_digest(resp.snapshot);
  if (resp.ckpt_slot == 0) {
    // Genesis needs no certificate, but the bytes must be exactly the
    // canonical empty state — anything else is a fabrication.
    if (resp.snapshot != genesis_snapshot()) return false;
  } else {
    bft::CheckpointCert cert;
    cert.slot = resp.ckpt_slot;
    cert.digest = digest;
    cert.sigs = resp.cert_sigs;
    if (config_.verifier == nullptr ||
        !bft::verify_checkpoint_cert(cert, *config_.verifier, config_.n,
                                     config_.cert_quorum)) {
      return false;
    }
  }
  *digest_out = digest;
  return true;
}

bool RecoveryModule::ingest(ProcessId from, const Bytes& body) {
  std::optional<StateResp> resp = try_decode_state_resp(body, config_.limits);
  if (!resp.has_value()) {
    ++stats_.resps_rejected;
    return false;
  }

  if (!config_.trust_unverified) {
    crypto::Digest digest{};
    if (!verify_resp(from, *resp, &digest)) {
      ++stats_.resps_rejected;
      return false;
    }
  }

  // The snapshot decodes under the same limits the wire decoder applied;
  // its internal slot field must match the certified slot (it is part of
  // the hashed bytes, so a quorum vouched for it).
  Snapshot snap;
  try {
    snap = decode_snapshot(resp->snapshot, config_.limits);
  } catch (const SerialError&) {
    ++stats_.resps_rejected;
    return false;
  }
  if (snap.slot != resp->ckpt_slot) {
    ++stats_.resps_rejected;
    return false;
  }

  if (!best_.has_value() || resp->ckpt_slot > best_->snapshot.slot) {
    Installable inst;
    inst.snapshot = std::move(snap);
    inst.encoded = resp->snapshot;
    inst.cert.slot = resp->ckpt_slot;
    inst.cert.digest = snapshot_digest(resp->snapshot);
    inst.cert.sigs = resp->cert_sigs;
    best_ = std::move(inst);
  }

  record_suffix(from, *resp);
  ++stats_.resps_accepted;
  return true;
}

void RecoveryModule::record_suffix(ProcessId from, const StateResp& resp) {
  for (const SuffixEntry& entry : resp.suffix) {
    suffix_votes_[entry.slot][entry.ids].insert(from.value);
  }
}

std::optional<RecoveryModule::Installable> RecoveryModule::best_snapshot(
    std::uint64_t frontier) const {
  if (best_.has_value() && best_->snapshot.slot > frontier) return best_;
  return std::nullopt;
}

std::optional<std::vector<std::uint64_t>> RecoveryModule::batch_for(
    std::uint64_t slot) const {
  auto it = suffix_votes_.find(slot);
  if (it == suffix_votes_.end()) return std::nullopt;
  for (const auto& [ids, voters] : it->second) {
    if (voters.size() >= config_.suffix_quorum) return ids;
  }
  return std::nullopt;
}

void RecoveryModule::prune_below(std::uint64_t frontier) {
  suffix_votes_.erase(suffix_votes_.begin(),
                      suffix_votes_.lower_bound(frontier));
}

}  // namespace modubft::smr
