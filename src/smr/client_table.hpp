// Replica-side client service: admission, duplicate suppression, replies.
//
// The client/service layer (docs/CLIENT.md) turns the SMR harness's
// preloaded workload into a live request path.  Clients are ordinary
// substrate processes with ids in [n, n + num_clients); a replica in
// client mode accepts REQUEST control frames from them, admits commands
// into its pending set under a hard bound (shedding with BUSY beyond it),
// relays admitted bodies to its peers (CMD_RELAY) so every replica can
// propose and commit them, and answers every commit with a REPLY to the
// owning client.  Exactly-once is enforced by the committed-id set — a
// retried request whose command already committed is answered from the
// per-client reply cache instead of being re-admitted — and the cache
// itself is part of the certified snapshot, so the contract survives a
// crash/restart (PR 6 recovery).
//
// Every structure here is a deterministic function of (committed log,
// bounded cache policy), which is what lets the reply cache live inside
// the checkpoint digest: correct replicas at the same frontier carry
// byte-identical client tables.
#pragma once

#include <cstdint>

#include "sim/actor.hpp"

namespace modubft::smr {

/// Knobs for the replica-side client service.  num_clients == 0 disables
/// the whole layer: no client control frames are sent or accepted, and
/// the wire traffic is byte-identical to a pre-client build.
struct ClientServiceConfig {
  /// Clients occupy process ids [n, n + num_clients).  0 = off.
  std::uint32_t num_clients = 0;

  /// Direct-admission bound: REQUESTs beyond this many pending (admitted,
  /// not yet committed) client commands are shed with a BUSY frame.  The
  /// deterministic load-shedding that keeps a flooded replica's memory
  /// bounded instead of OOMing.
  std::uint32_t max_pending = 64;

  /// Cached replies retained per client (oldest seq evicted first).  A
  /// client's outstanding window must stay at or below this bound for
  /// duplicate replay to be complete.
  std::uint32_t reply_cache = 64;

  /// Base delay of the missing-body fetch retry timer: a frontier slot
  /// whose decided command bodies have not arrived yet re-broadcasts
  /// CMD_FETCH at this cadence until the bodies land.
  SimTime fetch_retry_delay = 20'000;

  /// Authenticated mode (Byzantine backend): REQUEST and CMD_RELAY bodies
  /// must carry a valid client signature over the command preimage, and
  /// CLIENT_DONE / SEQ_BOUND frames are accepted from any sender when
  /// their signature verifies.  Off under the crash model, where forgery
  /// is outside the fault model and clients carry no keys.
  bool authenticate = false;

  /// Commit-eligibility window: a decided client id (c, s) joins a batch
  /// only when s ≤ committed-seq-count(c) + seq_window, evaluated against
  /// the pre-slot committed state — a deterministic bound on how far
  /// beyond a client's committed history a decided seq may run.  Must be
  /// at least the client's outstanding window (or genuine commands get
  /// deferred, which is safe but slow); it caps how many fabricated
  /// future seqs per client a Byzantine proposer can park the frontier on.
  std::uint32_t seq_window = 16;
};

/// Client-service observability, surfaced through
/// runtime::RunStats::to_json as the client_* keys.
struct ClientServiceStats {
  std::uint64_t requests = 0;    ///< REQUEST frames accepted for handling
  std::uint64_t duplicates = 0;  ///< suppressed (committed or in flight)
  std::uint64_t replays = 0;     ///< cached replies re-sent to retriers
  std::uint64_t admitted = 0;    ///< commands admitted into pending
  std::uint64_t sheds = 0;       ///< REQUESTs rejected with BUSY
  std::uint64_t busy_sent = 0;   ///< BUSY frames sent
  std::uint64_t relays_sent = 0;       ///< CMD_RELAY broadcasts (admitter)
  std::uint64_t relays_received = 0;   ///< CMD_RELAY bodies ingested
  std::uint64_t relays_dropped = 0;    ///< relayed bodies over capacity
  std::uint64_t fetches_sent = 0;      ///< CMD_FETCH broadcasts
  std::uint64_t fetches_served = 0;    ///< bodies answered to fetchers
  std::uint64_t replies_sent = 0;      ///< REPLY frames sent on commit
  std::uint64_t parked_commits = 0;    ///< frontier stalls awaiting bodies
  std::uint64_t rejects = 0;           ///< malformed/out-of-range frames
  std::uint64_t queue_peak = 0;        ///< max pending observed
  std::uint64_t auth_rejects = 0;      ///< bodies/frames with bad client sig
  std::uint64_t ineligible_skips = 0;  ///< decided ids outside window/bound
  std::uint64_t origin_drops = 0;      ///< relays over the per-origin cap
  std::uint64_t bounds_recorded = 0;   ///< verified seq bounds accepted
};

}  // namespace modubft::smr
