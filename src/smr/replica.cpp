#include "smr/replica.hpp"

#include <algorithm>
#include <iterator>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/verify_pool.hpp"

namespace modubft::smr {

namespace {

/// Warms the shared verified-signature cache with every member signature a
/// subsequent §5.1 well-formedness walk of this certificate could check.
/// Verdicts are discarded here and re-derived — from the now-hot cache —
/// by the sequential stage, so a Byzantine member merely warms a negative
/// entry and is rejected exactly as without the prologue.
void warm_certificate(const crypto::CachingVerifier& cache,
                      const bft::Certificate& cert, std::uint32_t depth) {
  if (cert.pruned || depth > bft::DecodeLimits{}.max_depth) return;
  for (std::size_t i = 0; i < cert.size(); ++i) {
    const bft::SignedMessage& m = cert.member(i);
    cache.verify_digest(m.core.sender, cert.member_signing_digest(i), m.sig,
                        [&m] { return bft::signing_bytes(m.core, m.cert); });
    warm_certificate(cache, m.cert, depth + 1);
  }
}

}  // namespace

Bytes encode_command(const Command& cmd) {
  Writer w;
  w.u64(cmd.id);
  w.u8(static_cast<std::uint8_t>(cmd.op));
  w.str(cmd.key);
  w.str(cmd.value);
  return std::move(w).take();
}

Command decode_command(const Bytes& buf) {
  Reader r(buf);
  Command cmd;
  cmd.id = r.u64();
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 2) throw SerialError("unknown command op");
  cmd.op = static_cast<Command::Op>(op);
  cmd.key = r.str();
  cmd.value = r.str();
  r.expect_end();
  return cmd;
}

void KvStore::apply(const Command& cmd) {
  switch (cmd.op) {
    case Command::Op::kPut:
      data_[cmd.key] = cmd.value;
      break;
    case Command::Op::kDel:
      data_.erase(cmd.key);
      break;
  }
  ++applied_;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

/// Wraps the slot's consensus actor: tags outgoing traffic with the slot
/// number, tracks its timers, and turns the actor's stop() into an
/// instance-local flag (the replica itself keeps running).
class Replica::SlotContext final : public sim::ForwardingContext {
 public:
  SlotContext(sim::Context& base, Replica& owner, std::uint64_t slot)
      : ForwardingContext(base), owner_(owner), slot_(slot) {}

  void send(ProcessId to, Bytes payload) override {
    base_.send(to, frame(payload));
  }

  void broadcast(const Bytes& payload) override {
    base_.broadcast(frame(payload));
  }

  std::uint64_t set_timer(SimTime delay) override {
    std::uint64_t id = base_.set_timer(delay);
    owner_.timer_slot_[id] = slot_;
    return id;
  }

  void stop() override {
    // The instance finished; the decide callback already recorded the
    // outcome.  The replica lives on.
  }

 private:
  Bytes frame(const Bytes& payload) const {
    Writer w;
    w.u64(slot_);
    w.raw(payload);
    return std::move(w).take();
  }

  Replica& owner_;
  std::uint64_t slot_;
};

Replica::Replica(ReplicaConfig config, std::vector<Command> workload,
                 CommitFn on_commit)
    : config_(std::move(config)), on_commit_(std::move(on_commit)) {
  MODUBFT_EXPECTS(config_.n >= 2);
  MODUBFT_EXPECTS(config_.window >= 1);
  MODUBFT_EXPECTS(config_.batch >= 1);
  if (config_.backend == Backend::kCrashHurfinRaynal) {
    MODUBFT_EXPECTS(config_.detector != nullptr);
  } else {
    MODUBFT_EXPECTS(config_.signer != nullptr);
    MODUBFT_EXPECTS(config_.verifier != nullptr);
    // One cache for all the replica's slots: a fresh instance starts with
    // a warm cache, and the hit/miss statistics survive instance
    // teardown (the scenario runners read them after the run).
    if (config_.bft.verify_cache && !config_.bft.shared_verify_cache) {
      vcache_ = std::make_shared<crypto::CachingVerifier>(
          config_.verifier, config_.bft.verify_cache_capacity);
      config_.bft.shared_verify_cache = vcache_;
    } else {
      vcache_ = config_.bft.shared_verify_cache;
    }
  }
  for (Command& cmd : workload) {
    MODUBFT_EXPECTS(cmd.id != 0);  // 0 is the no-op marker
    commands_.emplace(cmd.id, std::move(cmd));
  }

  if (client_mode()) {
    MODUBFT_EXPECTS(config_.client.reply_cache >= 1);
    MODUBFT_EXPECTS(config_.client.fetch_retry_delay > 0);
    MODUBFT_EXPECTS(config_.client.seq_window >= 1);
    // Authenticated mode needs client public keys: the shared verifier
    // must cover process ids [n, n + num_clients).
    MODUBFT_EXPECTS(!config_.client.authenticate ||
                    config_.verifier != nullptr);
  }

  if (checkpointing()) {
    // Checkpoint votes are signed under BOTH backends: the certificate
    // must convince a recovering replica that trusts nobody, even when
    // the consensus protocol itself assumed only crash faults.
    MODUBFT_EXPECTS(config_.signer != nullptr);
    MODUBFT_EXPECTS(config_.verifier != nullptr ||
                    config_.checkpoint.trust_unverified);
    if (config_.checkpoint.recover) {
      RecoveryConfig rc;
      rc.n = config_.n;
      rc.cert_quorum = cert_quorum();
      rc.suffix_quorum = suffix_quorum();
      rc.verifier = config_.verifier.get();
      rc.limits = config_.checkpoint.limits;
      rc.trust_unverified = config_.checkpoint.trust_unverified;
      recovery_ = std::make_unique<RecoveryModule>(rc);
      recovering_ = true;
      retry_delay_ = config_.checkpoint.retry_delay;
      // A restarted replica adopting the verify cache of its previous
      // life must not inherit stale negative verdicts: positives stay
      // sound, negatives keyed to pre-restart traffic are flushed.
      if (vcache_) vcache_->flush_negative();
    }
  }
}

std::uint32_t Replica::cert_quorum() const {
  if (config_.checkpoint.cert_quorum > 0) return config_.checkpoint.cert_quorum;
  if (config_.backend == Backend::kByzantine) return 2 * config_.bft.f + 1;
  return config_.n / 2 + 1;
}

std::uint32_t Replica::suffix_quorum() const {
  if (config_.checkpoint.suffix_quorum > 0) {
    return config_.checkpoint.suffix_quorum;
  }
  if (config_.backend == Backend::kByzantine) return config_.bft.f + 1;
  return 1;
}

std::uint64_t Replica::pick_proposal(std::uint64_t slot) {
  // Anchor the `batch` smallest unclaimed pending ids to this slot and
  // propose the first of them, so concurrent slots carry disjoint
  // proposals.  Purely a local heuristic: the commit rule re-derives the
  // batch from the committed set, never from these claims.  In client
  // mode the claim narrows to one id — the decided-vector commit rule
  // releases every decided entry, so wide claims would only idle ids
  // behind a single slot.
  const std::uint32_t width = client_mode() ? 1u : config_.batch;
  std::vector<std::uint64_t> claim;
  for (const auto& [id, cmd] : commands_) {
    if (claim.size() >= width) break;
    if (committed_ids_.count(id) > 0 || claimed_ids_.count(id) > 0) continue;
    claim.push_back(id);
  }
  if (claim.empty()) return 0;  // nothing pending: no-op proposal
  const std::uint64_t proposal = claim.front();
  for (std::uint64_t id : claim) claimed_ids_.insert(id);
  claims_.emplace(slot, std::move(claim));
  return proposal;
}

std::unique_ptr<sim::Actor> Replica::make_instance_actor(std::uint64_t slot) {
  const consensus::Value proposal = pick_proposal(slot);

  // Decide callbacks only park the raw decision in the reorder buffer.
  // Extraction and batch assembly happen at commit time, when the slot is
  // the frontier: under pipelining, replicas reach a mid-window decision
  // with *different* committed sets, and only the frontier state is
  // guaranteed identical across correct replicas.
  if (config_.backend == Backend::kCrashHurfinRaynal) {
    return std::make_unique<consensus::HurfinRaynalActor>(
        config_.n, proposal, config_.detector,
        [this, slot](ProcessId, const consensus::Decision& d) {
          auto it = slots_.find(slot);
          if (it == slots_.end() || it->second.decided) return;
          it->second.decided = true;
          it->second.crash_value = d.value;
        });
  }

  // Per-instance config copy: the egress-staging hook must know which
  // slot's envelope to wrap the flushed frame in, so each instance gets
  // its own closure.  The hook declines (returns false) outside the
  // sequential stage of a staged dispatch, which keeps on_timer / on_start
  // sends on the immediate inline path.
  bft::BftConfig bcfg = config_.bft;
  if (config_.staged_ingest) {
    bcfg.egress_stage = [this, slot](bft::MessageCore&& core,
                                     bft::Certificate&& cert) {
      if (!staging_active_) return false;
      ++istats_.staged_sends;
      staged_.push_back(StagedSend{slot, std::move(core), std::move(cert)});
      return true;
    };
  }
  return std::make_unique<bft::BftProcess>(
      std::move(bcfg), proposal, config_.signer, config_.verifier,
      [this, slot](ProcessId, const bft::VectorDecision& d) {
        auto it = slots_.find(slot);
        if (it == slots_.end() || it->second.decided) return;
        it->second.decided = true;
        it->second.vector = d;
      });
}

void Replica::on_start(sim::Context& ctx) {
  if (recovering_) {
    // Restarted with no state: fetch a certified checkpoint before
    // touching the window.  The retry timer re-broadcasts with backoff
    // until peers answer, and keeps driving catch-up after the join.
    pstats_.recovery_start_us = ctx.now();
    last_seen_frontier_ = next_commit_;
    request_state(ctx);
    recovery_timer_ = ctx.set_timer(retry_delay_);
    return;
  }
  pump(ctx);
}

bool Replica::fill_window(sim::Context& ctx) {
  bool started = false;
  while (next_start_ < config_.slots &&
         next_start_ < next_commit_ + config_.window) {
    // Client mode idles instead of burning the log on no-op slots: a slot
    // starts only with something to propose, or when a peer already
    // started it (its envelopes buffered in future_), or in the drain
    // phase after every client announced DONE.
    if (client_mode() && !drain_ && !has_proposable() &&
        future_.count(next_start_) == 0) {
      break;
    }
    const std::uint64_t slot = next_start_++;
    started = true;
    Slot& st = slots_[slot];
    st.actor = make_instance_actor(slot);
    pstats_.window_peak =
        std::max<std::uint64_t>(pstats_.window_peak, slots_.size());
    pstats_.window_occupancy_sum += slots_.size();
    pstats_.window_samples += 1;

    SlotContext sub(ctx, *this, slot);
    st.actor->on_start(sub);

    // Replay envelopes that arrived before the slot existed.
    auto it = future_.find(slot);
    if (it != future_.end()) {
      auto pending = std::move(it->second);
      future_.erase(it);
      for (auto& [from, payload] : pending) {
        if (st.decided) break;
        st.actor->on_message(sub, from, payload);
      }
    }
  }
  return started;
}

bool Replica::commit_slot(sim::Context& ctx, Slot& st) {
  std::vector<std::uint64_t> batch;
  if (client_mode()) {
    // Client-mode commit rule: the batch is every decided entry that is
    // not yet committed and names either a known preloaded command or an
    // ELIGIBLE client id, in increasing id order.  A pure function of
    // (decision, committed set, verified seq bounds) — sound under
    // dynamic arrival, where the static smallest-pending rule below would
    // diverge across replicas that admitted different requests.
    std::set<std::uint64_t> ids;
    auto consider = [&](std::uint64_t id) {
      if (id == 0 || committed_ids_.count(id) > 0) return;
      if (plausible_client_id(id)) {
        // Eligibility is deliberately independent of local body
        // knowledge: an ineligible id is skipped even when a body is
        // present (an "apply if I happen to hold it" rule would fork the
        // stores between replicas with different relay histories).
        if (!client_eligible(id)) {
          ++cstats_.ineligible_skips;
          return;
        }
        ids.insert(id);
        return;
      }
      if (commands_.count(id) > 0) ids.insert(id);  // preloaded workload
    };
    if (config_.backend == Backend::kCrashHurfinRaynal) {
      consider(st.crash_value);
    } else {
      for (const auto& entry : st.vector.entries) {
        if (entry.has_value()) consider(*entry);
      }
    }
    std::vector<std::uint64_t> missing;
    for (std::uint64_t id : ids) {
      if (commands_.count(id) == 0) missing.push_back(id);
    }
    if (!missing.empty()) {
      // Decided but not locally held: park the frontier and fetch.  Every
      // eligible id is resolvable — the admitting replica and the owning
      // client can both serve the signed body (the client can serve ANY
      // seq of its deterministic script), and a fabricated seq beyond the
      // script is answered with a signed SEQ_BOUND that turns it
      // ineligible, unparking the frontier without a body.
      ++cstats_.parked_commits;
      request_bodies(ctx, missing);
      return false;
    }
    batch.assign(ids.begin(), ids.end());
  } else {
    // Deterministic anchor extraction from the raw decision.  A real
    // anchor (a non-zero id present in the command table) releases a
    // batch; an all-null / unknown decision is a no-op slot.  Note the
    // rule reads only (decision, commands_) — both identical across
    // correct replicas.
    std::uint64_t anchor = 0;
    if (config_.backend == Backend::kCrashHurfinRaynal) {
      if (st.crash_value != 0 && commands_.count(st.crash_value) > 0) {
        anchor = st.crash_value;
      }
    } else {
      for (const auto& entry : st.vector.entries) {
        if (!entry.has_value() || *entry == 0) continue;
        if (commands_.count(*entry) == 0) continue;
        if (anchor == 0 || *entry < anchor) anchor = *entry;
      }
    }

    // Canonical batch: the `batch` smallest still-pending ids, applied in
    // increasing id order.  Identical across correct replicas because the
    // committed set is (inductively) identical at the frontier; and since
    // every batch drains the smallest pending ids, the overall application
    // order is increasing id order regardless of (window, batch).
    if (anchor != 0) {
      for (const auto& [id, cmd] : commands_) {
        if (batch.size() >= config_.batch) break;
        if (committed_ids_.count(id) > 0) continue;
        batch.push_back(id);
      }
    }
  }
  apply_committed_batch(ctx, batch);
  return true;
}

void Replica::apply_committed_batch(sim::Context& ctx,
                                    const std::vector<std::uint64_t>& ids) {
  const InstanceId slot{next_commit_};
  std::vector<std::uint64_t> applied;
  for (std::uint64_t id : ids) {
    auto c = commands_.find(id);
    // Defensive for the suffix-replay caller: an id a hostile responder
    // slipped past the quorum cannot corrupt the store, only be skipped.
    if (c == commands_.end() || committed_ids_.count(id) > 0) continue;
    store_.apply(c->second);
    committed_ids_.insert(id);
    applied.push_back(id);
    ++pstats_.commands_committed;
    log_debug("SMR ", ctx.id(), " commits slot ", slot.value, " cmd ", id);
    if (on_commit_) on_commit_(slot, &c->second, store_);

    if (client_mode() && is_client(client_of_cmd(id))) {
      // Every committing replica answers the owning client; the client
      // certifies at f+1 (Byzantine) / majority (crash) matching replies.
      // The cached frame also serves duplicate replay, so it must exist
      // before the send (the bytes are identical either way).
      pending_client_.erase(id);
      ++committed_seq_count_[client_of_cmd(id)];
      // Release the per-origin relay budget this admission held.
      auto ro = relay_origin_.find(id);
      if (ro != relay_origin_.end()) {
        auto op = origin_pending_.find(ro->second);
        if (op != origin_pending_.end() && op->second > 0) --op->second;
        relay_origin_.erase(ro);
      }
      const std::uint32_t client = client_of_cmd(id);
      const std::uint64_t seq = seq_of_cmd(id);
      ClientReply reply;
      reply.seq = seq;
      reply.cmd_id = id;
      reply.slot = slot.value;
      reply.op = c->second.op;
      reply.key = c->second.key;
      reply.value = c->second.value;
      auto& cache = client_table_[client];
      auto ins = cache.emplace(seq, encode_control_reply(reply)).first;
      ctx.send(ProcessId{client}, ins->second);
      ++cstats_.replies_sent;
      while (cache.size() > config_.client.reply_cache) {
        cache.erase(cache.begin());  // oldest seq first
      }
    }
  }
  if (applied.empty()) {
    ++pstats_.noop_slots;
    log_debug("SMR ", ctx.id(), " commits slot ", slot.value, " (no-op)");
    if (on_commit_) on_commit_(slot, nullptr, store_);
  }
  pstats_.max_batch = std::max<std::uint64_t>(pstats_.max_batch,
                                              applied.size());
  ++pstats_.slots_committed;

  if (checkpointing()) {
    slot_log_.emplace(slot.value, std::move(applied));
    pstats_.log_peak =
        std::max<std::uint64_t>(pstats_.log_peak, slot_log_.size());
  }

  // Release this slot's proposal claims.
  auto c = claims_.find(slot.value);
  if (c != claims_.end()) {
    for (std::uint64_t id : c->second) claimed_ids_.erase(id);
    claims_.erase(c);
  }

  next_commit_ += 1;
  // Drop timer routes of committed slots.
  for (auto t = timer_slot_.begin(); t != timer_slot_.end();) {
    t = t->second < next_commit_ ? timer_slot_.erase(t) : std::next(t);
  }
  // Frontier progress retires any in-flight fetch; the armed retry timer
  // finds last_fetch_ empty and disarms itself.
  if (client_mode()) last_fetch_.clear();

  maybe_checkpoint(ctx);
}

void Replica::pump(sim::Context& ctx) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Commit the decided prefix, strictly in slot order.
    while (next_commit_ < config_.slots) {
      auto it = slots_.find(next_commit_);
      if (it == slots_.end() || !it->second.decided) break;
      if (!commit_slot(ctx, it->second)) break;  // parked awaiting bodies
      slots_.erase(it);
      progress = true;
    }
    // Decided mid-window slots wait in the reorder buffer with nothing
    // left to do (stop_on_decide); release their actors early.  Safe
    // here: pump runs only after any dispatch into an instance returned.
    for (auto& [s, st] : slots_) {
      if (st.decided && st.actor) st.actor.reset();
    }
    if (next_commit_ >= config_.slots) break;
    if (fill_window(ctx)) progress = true;
  }
  maybe_stop(ctx);
}

void Replica::maybe_stop(sim::Context& ctx) {
  if (!done() || stopped_) return;
  if (checkpointing()) {
    // Stay alive to serve state transfer until every awaited peer has
    // announced completion (its end-of-log checkpoint vote).  Without
    // this, a replica recovering late would find nobody left to ask.
    for (std::uint32_t id : config_.await_done) {
      if (id == ctx.id().value) continue;
      if (heard_end_.count(id) == 0) return;
    }
  }
  stopped_ = true;
  ctx.stop();
}

void Replica::maybe_checkpoint(sim::Context& ctx) {
  if (!checkpointing() || next_commit_ == 0) return;
  const bool boundary = next_commit_ % config_.checkpoint.interval == 0 ||
                        next_commit_ == config_.slots;
  if (!boundary || next_commit_ <= last_ckpt_slot_) return;
  last_ckpt_slot_ = next_commit_;

  Snapshot snap;
  snap.slot = next_commit_;
  snap.applied = store_.applied_count();
  snap.data = store_.contents();
  snap.committed_ids = committed_ids_;
  if (client_mode()) snap.clients = client_table_;
  Bytes encoded = encode_snapshot(snap);
  const crypto::Digest digest = snapshot_digest(encoded);
  pending_ckpts_[next_commit_] = {std::move(encoded), digest};
  ++pstats_.checkpoints_taken;

  CheckpointVote vote;
  vote.slot = next_commit_;
  vote.digest = digest;
  vote.sig = config_.signer->sign(
      bft::checkpoint_signing_bytes(vote.slot, vote.digest));
  Bytes frame = encode_control_vote(vote);
  if (vote.slot == config_.slots) end_vote_frame_ = frame;
  log_debug("SMR ", ctx.id(), " checkpoint at slot ", vote.slot);
  ctx.broadcast(frame);  // includes self: our own vote is recorded on RX
}

bool Replica::verify_vote(ProcessId from, const CheckpointVote& vote) const {
  if (config_.checkpoint.trust_unverified) return true;
  const Bytes preimage =
      bft::checkpoint_signing_bytes(vote.slot, vote.digest);
  if (vcache_) return vcache_->verify(from, preimage, vote.sig);
  return config_.verifier->verify(from, preimage, vote.sig);
}

void Replica::handle_vote(sim::Context& ctx, ProcessId from, Reader& r) {
  const CheckpointVote vote = decode_checkpoint_vote(r);
  const bool boundary =
      vote.slot % config_.checkpoint.interval == 0 ||
      vote.slot == config_.slots;
  if (vote.slot == 0 || vote.slot > config_.slots || !boundary ||
      !verify_vote(from, vote)) {
    ++pstats_.recovery_rejects;
    return;
  }

  if (vote.slot == config_.slots) {
    // End-of-log vote doubles as a DONE announcement.  Replying with our
    // own end vote (once, on first contact) closes the race where the
    // sender was down when we broadcast ours.
    const bool fresh = heard_end_.insert(from.value).second;
    if (fresh && done() && !end_vote_frame_.empty() &&
        from.value != ctx.id().value) {
      ctx.send(from, end_vote_frame_);
    }
  }

  if (!latest_cert_.has_value() || vote.slot > latest_cert_->slot) {
    auto& digests = votes_[vote.slot];
    auto d = digests.find(vote.digest);
    if (d == digests.end()) {
      // Cap digest variants per slot: at most one per possible faulty
      // voter plus the correct one.
      if (digests.size() < config_.n) {
        d = digests.emplace(vote.digest,
                            std::map<std::uint32_t, Bytes>{}).first;
      }
    }
    if (d != digests.end()) {
      d->second[from.value] = vote.sig;
      try_certify(vote.slot);
    }
  }
  maybe_stop(ctx);
}

void Replica::try_certify(std::uint64_t slot) {
  // A certificate needs our own snapshot at that slot: the digest we can
  // vouch for is the one we computed ourselves.
  auto p = pending_ckpts_.find(slot);
  if (p == pending_ckpts_.end()) return;
  auto v = votes_.find(slot);
  if (v == votes_.end()) return;
  auto d = v->second.find(p->second.second);
  if (d == v->second.end() || d->second.size() < cert_quorum()) return;

  bft::CheckpointCert cert;
  cert.slot = slot;
  cert.digest = p->second.second;
  cert.sigs.assign(d->second.begin(), d->second.end());
  latest_cert_ = std::move(cert);
  latest_snapshot_ = std::move(p->second.first);
  ++pstats_.checkpoint_certs;

  // Log compaction: everything below the certified slot is recoverable
  // from the certificate, so the committed-slot log drops it.
  const auto cut = slot_log_.lower_bound(slot);
  pstats_.log_truncated +=
      static_cast<std::uint64_t>(std::distance(slot_log_.begin(), cut));
  slot_log_.erase(slot_log_.begin(), cut);
  votes_.erase(votes_.begin(), votes_.upper_bound(slot));
  pending_ckpts_.erase(pending_ckpts_.begin(),
                       pending_ckpts_.upper_bound(slot));
}

void Replica::request_state(sim::Context& ctx) {
  ctx.broadcast(encode_control_state_req(next_commit_));
  ++pstats_.state_reqs;
}

void Replica::handle_state_req(sim::Context& ctx, ProcessId from, Reader& r) {
  (void)decode_state_req(r);  // validated; we always serve from our best
  if (from.value == ctx.id().value) return;  // own broadcast echo
  if (recovering_) return;  // nothing trustworthy to serve yet

  StateResp resp;
  if (latest_cert_.has_value()) {
    resp.ckpt_slot = latest_cert_->slot;
    resp.snapshot = latest_snapshot_;
    resp.cert_sigs = latest_cert_->sigs;
  } else {
    resp.snapshot = genesis_snapshot();
  }
  for (const auto& [s, ids] : slot_log_) {
    if (s >= resp.ckpt_slot) resp.suffix.push_back(SuffixEntry{s, ids});
  }
  ctx.send(from, encode_control_state_resp(resp));
  ++pstats_.state_resps;
  // A done responder reminds the requester of its end vote: the requester
  // was down when the broadcast went out.
  if (done() && !end_vote_frame_.empty()) ctx.send(from, end_vote_frame_);
}

void Replica::advance_recovery(sim::Context& ctx) {
  if (auto inst = recovery_->best_snapshot(next_commit_)) {
    // Drop live instances the snapshot supersedes.
    for (auto it = slots_.begin();
         it != slots_.end() && it->first < inst->snapshot.slot;) {
      auto c = claims_.find(it->first);
      if (c != claims_.end()) {
        for (std::uint64_t id : c->second) claimed_ids_.erase(id);
        claims_.erase(c);
      }
      it = slots_.erase(it);
    }
    store_.install(inst->snapshot.data, inst->snapshot.applied);
    committed_ids_ = inst->snapshot.committed_ids;
    if (client_mode()) {
      // Resume the duplicate-suppression contract where the snapshot left
      // it, and re-derive the admission queue: every known client command
      // the snapshot does not record as committed is pending again.
      client_table_ = inst->snapshot.clients;
      pending_client_.clear();
      for (const auto& [id, cmd] : commands_) {
        if (is_client(client_of_cmd(id)) && committed_ids_.count(id) == 0) {
          pending_client_.insert(id);
        }
      }
      // The eligibility anchor is derived state: rebuild it from the
      // installed committed set.  Relay-origin budgets reset with the
      // queue (the origins of pre-crash admissions are gone with it).
      committed_seq_count_.clear();
      for (std::uint64_t id : committed_ids_) {
        if (is_client(client_of_cmd(id))) {
          ++committed_seq_count_[client_of_cmd(id)];
        }
      }
      relay_origin_.clear();
      origin_pending_.clear();
    }
    next_commit_ = inst->snapshot.slot;
    next_start_ = std::max(next_start_, next_commit_);
    latest_cert_ = inst->cert;
    latest_snapshot_ = inst->encoded;
    slot_log_.erase(slot_log_.begin(), slot_log_.lower_bound(next_commit_));
    future_.erase(future_.begin(), future_.lower_bound(next_commit_));
    votes_.erase(votes_.begin(), votes_.lower_bound(next_commit_));
    for (auto t = timer_slot_.begin(); t != timer_slot_.end();) {
      t = t->second < next_commit_ ? timer_slot_.erase(t) : std::next(t);
    }
    ++pstats_.recovery_installs;
    log_debug("SMR ", ctx.id(), " installed checkpoint at slot ",
              next_commit_);
    // The install landing on a boundary (or the end) takes our own
    // checkpoint, which at the end of the log broadcasts our DONE vote.
    maybe_checkpoint(ctx);
  }

  // Replay quorum-agreed suffix slots, strictly in order.
  while (next_commit_ < config_.slots) {
    auto ids = recovery_->batch_for(next_commit_);
    if (!ids.has_value()) break;
    if (client_mode()) {
      std::vector<std::uint64_t> missing;
      for (std::uint64_t id : *ids) {
        if (commands_.count(id) == 0 && plausible_client_id(id)) {
          // A verified seq bound refutes the body's existence: no honest
          // suffix carries such an id (commit requires the body, the body
          // requires the client's signature), so fetching it would stall
          // the replay forever; apply_committed_batch skips it instead.
          const auto b = seq_bound_.find(client_of_cmd(id));
          if (b != seq_bound_.end() && seq_of_cmd(id) > b->second) continue;
          missing.push_back(id);
        }
      }
      if (!missing.empty()) {
        // The quorum says these committed here, but the bodies were
        // relayed while we were down: fetch them and resume the replay
        // when they land (ingest_relay re-enters advance_recovery).
        ++cstats_.parked_commits;
        request_bodies(ctx, missing);
        break;
      }
    }
    auto it = slots_.find(next_commit_);
    if (it != slots_.end()) {
      auto c = claims_.find(next_commit_);
      if (c != claims_.end()) {
        for (std::uint64_t id : c->second) claimed_ids_.erase(id);
        claims_.erase(c);
      }
      slots_.erase(it);
    }
    apply_committed_batch(ctx, *ids);
  }
  // Replayed slots need no instances of our own; without this, pump would
  // start consensus for slots every peer already committed (pure stale
  // traffic that can never decide).
  next_start_ = std::max(next_start_, next_commit_);
  recovery_->prune_below(next_commit_);

  if (recovering_) {
    // First verified response = the rejoin point, even if it carried
    // nothing newer than genesis: the replica now provably holds the best
    // certified state and can participate from its frontier.
    recovering_ = false;
    pstats_.recovery_join_us = ctx.now();
    log_debug("SMR ", ctx.id(), " rejoined at slot ", next_commit_);
  }
  pump(ctx);
}

void Replica::handle_control(sim::Context& ctx, ProcessId from,
                             const Bytes& inner) {
  if (inner.empty()) {
    ++pstats_.recovery_rejects;
    return;
  }
  const auto kind = static_cast<ControlKind>(inner[0]);
  const Bytes body(inner.begin() + 1, inner.end());
  try {
    switch (kind) {
      // Checkpoint/recovery kinds stay gated on checkpointing(): in a
      // client-mode run without checkpoints they are rejected exactly as a
      // pre-recovery replica would drop them (handle_vote divides by the
      // checkpoint interval, so the gate is load-bearing, not cosmetic).
      case ControlKind::kCheckpointVote: {
        if (!checkpointing()) break;
        Reader r(body);
        handle_vote(ctx, from, r);
        return;
      }
      case ControlKind::kStateReq: {
        if (!checkpointing()) break;
        Reader r(body);
        handle_state_req(ctx, from, r);
        return;
      }
      case ControlKind::kStateResp: {
        if (!checkpointing()) break;
        if (!recovery_) return;  // we never asked
        if (!recovery_->ingest(from, body)) {
          ++pstats_.recovery_rejects;
          return;
        }
        advance_recovery(ctx);
        return;
      }
      case ControlKind::kRequest: {
        if (!client_mode()) break;
        Reader r(body);
        handle_request(ctx, from, r);
        return;
      }
      case ControlKind::kCmdRelay: {
        if (!client_mode()) break;
        Reader r(body);
        handle_relay(ctx, from, r);
        return;
      }
      case ControlKind::kCmdFetch: {
        if (!client_mode()) break;
        Reader r(body);
        handle_fetch(ctx, from, r);
        return;
      }
      case ControlKind::kClientDone: {
        if (!client_mode()) break;
        Reader r(body);
        handle_client_done(ctx, from, r);
        return;
      }
      case ControlKind::kSeqBound: {
        if (!client_mode()) break;
        Reader r(body);
        handle_seq_bound(ctx, from, r);
        return;
      }
      case ControlKind::kReply:
      case ControlKind::kBusy:
        return;  // client-bound kinds; a replica receiving one ignores it
    }
  } catch (const SerialError&) {
  }
  ++pstats_.recovery_rejects;
}

void Replica::handle_request(sim::Context& ctx, ProcessId from, Reader& r) {
  if (!is_client(from.value)) {
    ++cstats_.rejects;
    return;
  }
  const ClientRequest req = decode_client_request(r);
  if (req.seq == 0 || req.seq > 0xffffffffULL) {
    ++cstats_.rejects;
    return;
  }
  if (!verify_client_sig(from.value,
                         client_request_signing_bytes(from.value, req.seq,
                                                      req.op, req.key,
                                                      req.value),
                         req.sig)) {
    ++cstats_.auth_rejects;
    return;
  }
  ++cstats_.requests;
  const std::uint64_t id = make_client_cmd_id(from.value, req.seq);
  if (committed_ids_.count(id) > 0) {
    // Exactly-once: already applied.  Replay the cached reply — the retry
    // means the client has not certified yet.  A reply evicted from the
    // bounded cache is simply not replayed; the client's outstanding
    // window is required to stay within the cache bound (docs/CLIENT.md).
    ++cstats_.duplicates;
    auto t = client_table_.find(from.value);
    if (t != client_table_.end()) {
      auto rep = t->second.find(req.seq);
      if (rep != t->second.end()) {
        ctx.send(from, rep->second);
        ++cstats_.replays;
      }
    }
    return;
  }
  if (commands_.count(id) > 0) {
    // In flight: the commit-time reply will answer this retry too.
    ++cstats_.duplicates;
    return;
  }
  if (pending_client_.size() >= config_.client.max_pending &&
      !fetch_needs(id)) {
    // Deterministic load-shedding: the admission queue is full, tell the
    // client to back off instead of queueing unboundedly.  A body the
    // parked frontier is fetching is exempt: the park stops the queue
    // from draining, so shedding it would starve the exact command
    // progress depends on.
    ++cstats_.sheds;
    ctx.send(from, encode_control_busy(BusyFrame{
                       req.seq,
                       static_cast<std::uint32_t>(pending_client_.size())}));
    ++cstats_.busy_sent;
    return;
  }
  Command cmd;
  cmd.id = id;
  cmd.op = req.op;
  cmd.key = req.key;
  cmd.value = req.value;
  commands_.emplace(id, std::move(cmd));
  if (!req.sig.empty()) cmd_sigs_[id] = req.sig;
  pending_client_.insert(id);
  cstats_.queue_peak = std::max<std::uint64_t>(cstats_.queue_peak,
                                               pending_client_.size());
  ++cstats_.admitted;
  CmdRelay relay;
  relay.client = from.value;
  relay.seq = req.seq;
  relay.op = req.op;
  relay.key = req.key;
  relay.value = req.value;
  relay.sig = req.sig;
  ctx.broadcast(encode_control_relay(relay));
  ++cstats_.relays_sent;
  if (!recovering_) pump(ctx);
}

void Replica::handle_relay(sim::Context& ctx, ProcessId from, Reader& r) {
  if (from.value >= config_.n) {
    ++cstats_.rejects;  // only replicas relay bodies
    return;
  }
  const CmdRelay relay = decode_cmd_relay(r);
  if (!is_client(relay.client) || relay.seq == 0 ||
      relay.seq > 0xffffffffULL) {
    ++cstats_.rejects;
    return;
  }
  // The body is authenticated by the OWNING CLIENT's signature, never by
  // the relaying replica: a Byzantine relayer can neither fabricate a
  // body for a real client's seq nor feed divergent bodies to different
  // peers, because no second validly-signed body exists for one id.
  if (!verify_client_sig(relay.client,
                         client_request_signing_bytes(relay.client, relay.seq,
                                                      relay.op, relay.key,
                                                      relay.value),
                         relay.sig)) {
    ++cstats_.auth_rejects;
    return;
  }
  ingest_relay(ctx, from.value, relay);
}

bool Replica::fetch_needs(std::uint64_t id) const {
  return std::find(last_fetch_.begin(), last_fetch_.end(), id) !=
         last_fetch_.end();
}

void Replica::ingest_relay(sim::Context& ctx, std::uint32_t origin,
                           const CmdRelay& relay) {
  const std::uint64_t id = make_client_cmd_id(relay.client, relay.seq);
  ++cstats_.relays_received;
  if (commands_.count(id) == 0) {
    const bool committed = committed_ids_.count(id) > 0;
    // Bodies the parked frontier is fetching bypass both capacity drops:
    // progress depends on them, the fetch list is bounded by the batch
    // size, and frontier progress releases them immediately.
    const bool needed = fetch_needs(id);
    if (!committed && !needed) {
      if (pending_client_.size() >=
          static_cast<std::size_t>(config_.client.max_pending) * config_.n) {
        // Peers collectively admit at most n × max_pending; beyond that
        // the relay is a flood and is dropped.
        ++cstats_.relays_dropped;
        return;
      }
      // Per-origin bound: ONE misbehaving relayer is capped at its own
      // max_pending admissions instead of filling the whole collective
      // budget and starving direct client admissions into BUSY.
      const auto op = origin_pending_.find(origin);
      if (op != origin_pending_.end() &&
          op->second >= config_.client.max_pending) {
        ++cstats_.origin_drops;
        return;
      }
    }
    Command cmd;
    cmd.id = id;
    cmd.op = relay.op;
    cmd.key = relay.key;
    cmd.value = relay.value;
    commands_.emplace(id, std::move(cmd));
    if (!relay.sig.empty()) cmd_sigs_[id] = relay.sig;
    if (!committed) {
      pending_client_.insert(id);
      relay_origin_[id] = origin;
      ++origin_pending_[origin];
      cstats_.queue_peak = std::max<std::uint64_t>(cstats_.queue_peak,
                                                   pending_client_.size());
    }
  }
  // A parked frontier or a stalled suffix replay may now advance.  Never
  // touch advance_recovery while still recovering_ — it would mark the
  // replica rejoined without any installed state.
  if (recovery_ != nullptr && !recovering_) {
    advance_recovery(ctx);
  } else if (!recovering_) {
    pump(ctx);
  }
}

void Replica::handle_fetch(sim::Context& ctx, ProcessId from, Reader& r) {
  if (from.value == ctx.id().value) return;  // own broadcast echo
  if (from.value >= config_.n) {
    ++cstats_.rejects;  // only replicas fetch bodies
    return;
  }
  const std::vector<std::uint64_t> ids =
      decode_cmd_fetch(r, config_.checkpoint.limits);
  for (std::uint64_t id : ids) {
    if (!is_client(client_of_cmd(id))) continue;
    auto it = commands_.find(id);
    auto sig = cmd_sigs_.find(id);
    // Authenticated mode only serves bodies it can prove: a sig-less body
    // (e.g. planted directly into a faulty replica's table) would be
    // rejected by every honest receiver anyway.
    if (it != commands_.end() &&
        (!config_.client.authenticate || sig != cmd_sigs_.end())) {
      CmdRelay relay;
      relay.client = client_of_cmd(id);
      relay.seq = seq_of_cmd(id);
      relay.op = it->second.op;
      relay.key = it->second.key;
      relay.value = it->second.value;
      if (sig != cmd_sigs_.end()) relay.sig = sig->second;
      ctx.send(from, encode_control_relay(relay));
      ++cstats_.fetches_served;
      continue;
    }
    // No servable body — but a recorded seq bound refuting the id unparks
    // the fetcher just as well: relay the signed bound frame.
    const std::uint32_t client = client_of_cmd(id);
    auto b = seq_bound_.find(client);
    if (b != seq_bound_.end() && seq_of_cmd(id) > b->second) {
      auto frame = bound_frames_.find(client);
      if (frame != bound_frames_.end()) {
        ctx.send(from, frame->second);
        ++cstats_.fetches_served;
      }
    }
  }
}

void Replica::handle_client_done(sim::Context& ctx, ProcessId from,
                                 Reader& r) {
  const ClientDone done = decode_client_done(r);
  if (!is_client(done.client)) {
    ++cstats_.rejects;
    return;
  }
  if (config_.client.authenticate) {
    // Signed: acceptable from any sender (peers re-serve it to fetchers
    // after the client stops).
    if (!verify_client_sig(done.client,
                           client_done_signing_bytes(done.client,
                                                     done.final_seq),
                           done.sig)) {
      ++cstats_.auth_rejects;
      return;
    }
  } else if (from.value != done.client && from.value >= config_.n) {
    ++cstats_.rejects;  // unauthenticated mode trusts channels, not frames
    return;
  }
  // DONE doubles as a seq bound: the client will never send beyond its
  // final seq, so decided ids past it are fabrications to skip, not fetch.
  record_seq_bound(ctx, done.client, done.final_seq,
                   encode_control_client_done(done));
  clients_done_.insert(done.client);
  if (!drain_ && clients_done_.size() >= config_.client.num_clients) {
    // Every client certified its whole script: run the rest of the log as
    // no-op slots so the PR 6 end-of-log machinery (final checkpoint,
    // await_done) applies unchanged.
    drain_ = true;
    if (!recovering_) pump(ctx);
  }
}

void Replica::handle_seq_bound(sim::Context& ctx, ProcessId from, Reader& r) {
  const SeqBound sb = decode_seq_bound(r);
  if (!is_client(sb.client)) {
    ++cstats_.rejects;
    return;
  }
  if (config_.client.authenticate) {
    if (!verify_client_sig(sb.client,
                           seq_bound_signing_bytes(sb.client, sb.bound),
                           sb.sig)) {
      ++cstats_.auth_rejects;
      return;
    }
  } else if (from.value != sb.client && from.value >= config_.n) {
    ++cstats_.rejects;
    return;
  }
  record_seq_bound(ctx, sb.client, sb.bound, encode_control_seq_bound(sb));
}

bool Replica::client_eligible(std::uint64_t id) const {
  const std::uint32_t client = client_of_cmd(id);
  const std::uint64_t seq = seq_of_cmd(id);
  const auto b = seq_bound_.find(client);
  if (b != seq_bound_.end() && seq > b->second) return false;  // refuted
  const auto c = committed_seq_count_.find(client);
  const std::uint64_t committed =
      c == committed_seq_count_.end() ? 0 : c->second;
  // Count-anchored (not max-anchored) window: under committed-seq gaps a
  // max anchor could run ahead of what the client provably submitted,
  // while the count never exceeds it.
  return seq <= committed + config_.client.seq_window;
}

bool Replica::verify_client_sig(std::uint32_t client, const Bytes& preimage,
                                const Bytes& sig) const {
  if (!config_.client.authenticate) return true;
  if (vcache_) return vcache_->verify(ProcessId{client}, preimage, sig);
  return config_.verifier->verify(ProcessId{client}, preimage, sig);
}

void Replica::record_seq_bound(sim::Context& ctx, std::uint32_t client,
                               std::uint64_t bound, const Bytes& frame) {
  const auto it = seq_bound_.find(client);
  if (it != seq_bound_.end() && it->second <= bound) return;  // no tighter
  seq_bound_[client] = bound;
  bound_frames_[client] = frame;
  ++cstats_.bounds_recorded;
  // Decided ids beyond the bound just became ineligible: a frontier (or a
  // suffix replay) parked on one of them can commit without it now.
  if (recovery_ != nullptr && !recovering_) {
    advance_recovery(ctx);
  } else if (!recovering_) {
    pump(ctx);
  }
}

void Replica::request_bodies(sim::Context& ctx,
                             const std::vector<std::uint64_t>& missing) {
  if (missing != last_fetch_) {
    last_fetch_ = missing;
    ctx.broadcast(encode_control_fetch(missing));
    ++cstats_.fetches_sent;
  }
  if (fetch_timer_ == 0) {
    fetch_timer_ = ctx.set_timer(config_.client.fetch_retry_delay);
  }
}

bool Replica::has_proposable() const {
  for (const auto& [id, cmd] : commands_) {
    if (committed_ids_.count(id) == 0 && claimed_ids_.count(id) == 0) {
      return true;
    }
  }
  return false;
}

void Replica::on_message(sim::Context& ctx, ProcessId from,
                         const Bytes& payload) {
  std::uint64_t slot = 0;
  Bytes inner;
  try {
    Reader r(payload);
    slot = r.u64();
    inner.assign(payload.begin() + 8, payload.end());
  } catch (const SerialError&) {
    return;  // not an SMR frame
  }
  if (slot == kControlSlot) {
    // Reserved tag: recovery and client/service control traffic.  With
    // both subsystems off the frame is dropped exactly like any other
    // out-of-range slot — the silent drop a pre-recovery replica already
    // performs.
    if (checkpointing() || client_mode()) handle_control(ctx, from, inner);
    return;
  }
  if (slot >= config_.slots) return;  // no such instance

  if (recovering_) {
    // No trusted state yet: consensus traffic is meaningless to us (our
    // instances would start from a blank store).  State transfer will
    // bring the committed outcome instead.
    ++pstats_.stale_dropped;
    return;
  }

  if (slot < next_commit_) {  // committed slot (covers done()): stale
    ++pstats_.stale_dropped;
    return;
  }

  auto it = slots_.find(slot);
  if (it != slots_.end()) {
    Slot& st = it->second;
    if (st.decided || st.actor == nullptr) {
      ++pstats_.stale_dropped;  // instance finished, commit still pending
      return;
    }
    SlotContext sub(ctx, *this, slot);
    st.actor->on_message(sub, from, inner);
    pump(ctx);
    return;
  }

  // Not started yet: buffer within the bounded horizon, drop beyond it.
  if (slot >= buffer_horizon()) {
    ++pstats_.future_dropped;
    return;
  }
  auto f = future_.find(slot);
  if (f == future_.end()) {
    f = future_.emplace(slot, std::vector<std::pair<ProcessId, Bytes>>{})
            .first;
  }
  if (f->second.size() >= config_.max_future_msgs_per_slot) {
    ++pstats_.future_dropped;
    return;
  }
  f->second.emplace_back(from, std::move(inner));
  ++pstats_.future_buffered;
  // Client mode gates slot starts on peer activity (future_): a peer
  // starting next_start_ before we have anything to propose is only
  // visible here, so the buffered envelope must open the window.
  if (client_mode()) pump(ctx);
}

bool Replica::staging_ready() const {
  // Staged ingest needs the Byzantine back-end (the crash protocol has no
  // signatures to pre-verify), the pool (the parallelism) and the shared
  // cache (the channel through which prologue work reaches the sequential
  // stage).  A recovering replica drops consensus traffic anyway, so
  // warming for it would be pure waste.
  return config_.staged_ingest && config_.backend == Backend::kByzantine &&
         config_.bft.verify_pool != nullptr && vcache_ != nullptr &&
         !recovering_;
}

void Replica::on_batch(sim::Context& ctx,
                       std::vector<sim::Incoming>& batch) {
  if (!staging_ready() || batch.size() < 2) {
    // The base-class contract: sequential dispatch in arrival order.  A
    // single-frame batch gains nothing from a prologue or a staged flush.
    sim::Actor::on_batch(ctx, batch);
    return;
  }
  ++istats_.batches;
  istats_.batch_messages += batch.size();
  istats_.max_batch =
      std::max<std::uint64_t>(istats_.max_batch, batch.size());

  // Stage 1 — parallel prologue: warm the shared cache across the whole
  // batch.  verify_all blocks, so everything the workers wrote is visible
  // (happens-before) when the sequential stage starts.  A synchronous
  // pool (0 workers) has no parallelism to exploit — every job would run
  // inline on this thread and duplicate work the sequential stage does
  // anyway — so the prologue only runs when workers exist; the batched
  // signing and pooled-encode stages are amortizations, not parallelism,
  // and stay on either way.
  if (config_.bft.verify_pool->workers() > 0) ingest_prologue(batch);

  // Stage 2 — sequential protocol stage, in arrival order: index i IS the
  // ordering ticket, so observable behaviour is bit-identical to the
  // one-message-at-a-time dispatch (docs/INGEST.md states the argument).
  staging_active_ = true;
  for (sim::Incoming& m : batch) on_message(ctx, m.from, m.payload);
  staging_active_ = false;

  // Stage 3 — batched signing: flush the egress staged during stage 2.
  flush_staged(ctx);
}

void Replica::ingest_prologue(const std::vector<sim::Incoming>& batch) {
  std::vector<crypto::VerifyPool::Job> jobs;
  jobs.reserve(batch.size());
  for (const sim::Incoming& m : batch) {
    // Recognize consensus frames without touching protocol state; control
    // traffic, stale or out-of-range slots and runts are left entirely to
    // the sequential stage.
    std::uint64_t slot = 0;
    try {
      Reader r(m.payload);
      slot = r.u64();
    } catch (const SerialError&) {
      continue;
    }
    if (slot == kControlSlot || slot >= config_.slots ||
        slot < next_commit_) {
      continue;
    }
    ++istats_.prologue_frames;
    jobs.push_back([this, from = m.from, payload = &m.payload] {
      // The job borrows the frame bytes (verify_all blocks until every
      // job returns, so `batch` outlives the borrow) and peels its own
      // sub-frame copy on the worker — off the sequential thread.  The
      // decoded message, including the digest memos the warm walk
      // populates, is this job's own object, so the unsynchronized
      // Certificate caches are never shared across threads.  The
      // sequential stage re-decodes the raw bytes and finds the verify
      // cache hot.
      bft::DecodeOutcome out = bft::try_decode_message(
          Bytes(payload->begin() + 8, payload->end()));
      if (!out.ok) return true;       // the signature module rejects it
      if (out.msg.core.sender != from) return true;  // identity mismatch
      vcache_->verify(out.msg.core.sender,
                      bft::signing_bytes(out.msg.core, out.msg.cert),
                      out.msg.sig);
      warm_certificate(*vcache_, out.msg.cert, 0);
      return true;
    });
  }
  if (jobs.empty()) return;
  istats_.prologue_jobs += jobs.size();
  config_.bft.verify_pool->verify_all(std::move(jobs));
}

void Replica::flush_staged(sim::Context& ctx) {
  if (staged_.empty()) return;
  ++istats_.sign_flushes;
  std::vector<StagedSend> pending = std::move(staged_);
  staged_.clear();
  for (StagedSend& s : pending) {
    // One signing pass over the whole dispatch's egress, in staging order
    // — the order the sequential path would have broadcast in, so every
    // receiver sees the same per-sender FIFO.
    bft::SignedMessage msg;
    msg.core = std::move(s.core);
    msg.cert = std::move(s.cert);
    msg.sig = config_.signer->sign(bft::signing_bytes(msg.core, msg.cert));

    // Zero-copy encode: slot envelope + message straight into a pooled
    // buffer (byte-identical to SlotContext::frame around encode_message).
    Writer w(encode_pool_.acquire());
    w.u64(s.slot);
    bft::encode_message(msg, w);
    Bytes frame = std::move(w).take();
    istats_.staged_bytes += frame.size();
    ctx.broadcast(frame);
    encode_pool_.release(std::move(frame));
  }
  istats_.encode_reuses = encode_pool_.stats().reuses;
}

void Replica::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (done()) return;
  if (client_mode() && fetch_timer_ != 0 && timer_id == fetch_timer_) {
    fetch_timer_ = 0;
    if (!last_fetch_.empty()) {
      // Frontier (or suffix replay) still parked: re-ask everyone.
      ctx.broadcast(encode_control_fetch(last_fetch_));
      ++cstats_.fetches_sent;
      fetch_timer_ = ctx.set_timer(config_.client.fetch_retry_delay);
    }
    return;
  }
  if (recovery_ != nullptr && timer_id == recovery_timer_) {
    // Catch-up tick: a stalled frontier means peers are ahead (or our
    // first request was lost) — re-ask with exponential backoff; progress
    // resets the backoff.
    if (next_commit_ == last_seen_frontier_) {
      request_state(ctx);
      retry_delay_ = std::min<SimTime>(
          retry_delay_ * 2, config_.checkpoint.retry_delay * 16);
    } else {
      retry_delay_ = config_.checkpoint.retry_delay;
    }
    last_seen_frontier_ = next_commit_;
    recovery_timer_ = ctx.set_timer(retry_delay_);
    return;
  }
  auto it = timer_slot_.find(timer_id);
  if (it == timer_slot_.end()) return;
  const std::uint64_t slot = it->second;
  timer_slot_.erase(it);

  auto s = slots_.find(slot);
  if (s == slots_.end() || s->second.decided || s->second.actor == nullptr)
    return;
  SlotContext sub(ctx, *this, slot);
  s->second.actor->on_timer(sub, timer_id);
  pump(ctx);
}

}  // namespace modubft::smr
