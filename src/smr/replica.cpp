#include "smr/replica.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"

namespace modubft::smr {

Bytes encode_command(const Command& cmd) {
  Writer w;
  w.u64(cmd.id);
  w.u8(static_cast<std::uint8_t>(cmd.op));
  w.str(cmd.key);
  w.str(cmd.value);
  return std::move(w).take();
}

Command decode_command(const Bytes& buf) {
  Reader r(buf);
  Command cmd;
  cmd.id = r.u64();
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 2) throw SerialError("unknown command op");
  cmd.op = static_cast<Command::Op>(op);
  cmd.key = r.str();
  cmd.value = r.str();
  r.expect_end();
  return cmd;
}

void KvStore::apply(const Command& cmd) {
  switch (cmd.op) {
    case Command::Op::kPut:
      data_[cmd.key] = cmd.value;
      break;
    case Command::Op::kDel:
      data_.erase(cmd.key);
      break;
  }
  ++applied_;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

/// Wraps the slot's consensus actor: tags outgoing traffic with the slot
/// number, tracks its timers, and turns the actor's stop() into an
/// instance-local flag (the replica itself keeps running).
class Replica::SlotContext final : public sim::ForwardingContext {
 public:
  SlotContext(sim::Context& base, Replica& owner, std::uint64_t slot)
      : ForwardingContext(base), owner_(owner), slot_(slot) {}

  void send(ProcessId to, Bytes payload) override {
    base_.send(to, frame(payload));
  }

  void broadcast(const Bytes& payload) override {
    base_.broadcast(frame(payload));
  }

  std::uint64_t set_timer(SimTime delay) override {
    std::uint64_t id = base_.set_timer(delay);
    owner_.timer_slot_[id] = slot_;
    return id;
  }

  void stop() override {
    // The instance finished; the decide callback already recorded the
    // outcome.  The replica lives on.
  }

 private:
  Bytes frame(const Bytes& payload) const {
    Writer w;
    w.u64(slot_);
    w.raw(payload);
    return std::move(w).take();
  }

  Replica& owner_;
  std::uint64_t slot_;
};

Replica::Replica(ReplicaConfig config, std::vector<Command> workload,
                 CommitFn on_commit)
    : config_(config), on_commit_(std::move(on_commit)) {
  MODUBFT_EXPECTS(config_.n >= 2);
  if (config_.backend == Backend::kCrashHurfinRaynal) {
    MODUBFT_EXPECTS(config_.detector != nullptr);
  } else {
    MODUBFT_EXPECTS(config_.signer != nullptr);
    MODUBFT_EXPECTS(config_.verifier != nullptr);
  }
  for (Command& cmd : workload) {
    MODUBFT_EXPECTS(cmd.id != 0);  // 0 is the no-op marker
    commands_.emplace(cmd.id, std::move(cmd));
  }
}

std::uint64_t Replica::pick_proposal() const {
  for (const auto& [id, cmd] : commands_) {
    if (committed_ids_.count(id) == 0) return id;
  }
  return 0;  // nothing pending: no-op proposal
}

std::unique_ptr<sim::Actor> Replica::make_instance_actor(std::uint64_t slot) {
  const consensus::Value proposal = pick_proposal();

  if (config_.backend == Backend::kCrashHurfinRaynal) {
    return std::make_unique<consensus::HurfinRaynalActor>(
        config_.n, proposal, config_.detector,
        [this, slot](ProcessId, const consensus::Decision& d) {
          if (slot != next_slot_) return;
          instance_decided_ = true;
          pending_decided_id_ = d.value;
        });
  }

  return std::make_unique<bft::BftProcess>(
      config_.bft, proposal, config_.signer, config_.verifier,
      [this, slot](ProcessId, const bft::VectorDecision& d) {
        if (slot != next_slot_) return;
        // Deterministic extraction: the smallest committable id carried by
        // the vector.  All correct replicas see the same vector, so they
        // commit the same command.
        std::uint64_t best = 0;
        for (const auto& entry : d.entries) {
          if (!entry.has_value() || *entry == 0) continue;
          if (commands_.count(*entry) == 0) continue;
          if (committed_ids_.count(*entry) > 0) continue;
          if (best == 0 || *entry < best) best = *entry;
        }
        instance_decided_ = true;
        pending_decided_id_ = best;
      });
}

void Replica::on_start(sim::Context& ctx) {
  start_slot(ctx);
}

void Replica::start_slot(sim::Context& ctx) {
  while (true) {
    if (done()) {
      ctx.stop();
      return;
    }
    const std::uint64_t slot = next_slot_;
    instance_decided_ = false;
    instance_ = make_instance_actor(slot);
    SlotContext sub(ctx, *this, slot);
    instance_->on_start(sub);

    // Replay envelopes that arrived while we were on earlier slots.
    auto it = future_.find(slot);
    if (it != future_.end()) {
      auto pending = std::move(it->second);
      future_.erase(it);
      for (auto& [from, payload] : pending) {
        if (instance_decided_) break;
        instance_->on_message(sub, from, payload);
      }
    }
    if (!instance_decided_) return;
    finish_slot(ctx, pending_decided_id_);
    // finish_slot advanced next_slot_; loop to start the next instance.
  }
}

void Replica::finish_slot(sim::Context& ctx, std::uint64_t decided_id) {
  const InstanceId slot{next_slot_};
  const Command* applied = nullptr;
  auto it = commands_.find(decided_id);
  if (decided_id != 0 && it != commands_.end() &&
      committed_ids_.count(decided_id) == 0) {
    store_.apply(it->second);
    committed_ids_.insert(decided_id);
    applied = &it->second;
  }
  log_debug("SMR ", ctx.id(), " commits slot ", slot.value, " cmd ",
            decided_id);
  if (on_commit_) on_commit_(slot, applied, store_);
  next_slot_ += 1;
  instance_ = nullptr;
  // Drop stale timer routes.
  for (auto t = timer_slot_.begin(); t != timer_slot_.end();) {
    t = t->second < next_slot_ ? timer_slot_.erase(t) : std::next(t);
  }
}

void Replica::on_message(sim::Context& ctx, ProcessId from,
                         const Bytes& payload) {
  if (done()) return;
  std::uint64_t slot = 0;
  Bytes inner;
  try {
    Reader r(payload);
    slot = r.u64();
    inner.assign(payload.begin() + 8, payload.end());
  } catch (const SerialError&) {
    return;  // not an SMR frame
  }

  if (slot < next_slot_) return;  // finished slot: stale traffic
  if (slot > next_slot_) {
    future_[slot].emplace_back(from, std::move(inner));
    return;
  }
  if (instance_ == nullptr) return;

  SlotContext sub(ctx, *this, slot);
  instance_->on_message(sub, from, inner);
  if (instance_decided_) {
    finish_slot(ctx, pending_decided_id_);
    start_slot(ctx);
  }
}

void Replica::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (done()) return;
  auto it = timer_slot_.find(timer_id);
  if (it == timer_slot_.end()) return;
  const std::uint64_t slot = it->second;
  timer_slot_.erase(it);
  if (slot != next_slot_ || instance_ == nullptr) return;

  SlotContext sub(ctx, *this, slot);
  instance_->on_timer(sub, timer_id);
  if (instance_decided_) {
    finish_slot(ctx, pending_decided_id_);
    start_slot(ctx);
  }
}

}  // namespace modubft::smr
