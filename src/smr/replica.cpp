#include "smr/replica.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"

namespace modubft::smr {

Bytes encode_command(const Command& cmd) {
  Writer w;
  w.u64(cmd.id);
  w.u8(static_cast<std::uint8_t>(cmd.op));
  w.str(cmd.key);
  w.str(cmd.value);
  return std::move(w).take();
}

Command decode_command(const Bytes& buf) {
  Reader r(buf);
  Command cmd;
  cmd.id = r.u64();
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 2) throw SerialError("unknown command op");
  cmd.op = static_cast<Command::Op>(op);
  cmd.key = r.str();
  cmd.value = r.str();
  r.expect_end();
  return cmd;
}

void KvStore::apply(const Command& cmd) {
  switch (cmd.op) {
    case Command::Op::kPut:
      data_[cmd.key] = cmd.value;
      break;
    case Command::Op::kDel:
      data_.erase(cmd.key);
      break;
  }
  ++applied_;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

/// Wraps the slot's consensus actor: tags outgoing traffic with the slot
/// number, tracks its timers, and turns the actor's stop() into an
/// instance-local flag (the replica itself keeps running).
class Replica::SlotContext final : public sim::ForwardingContext {
 public:
  SlotContext(sim::Context& base, Replica& owner, std::uint64_t slot)
      : ForwardingContext(base), owner_(owner), slot_(slot) {}

  void send(ProcessId to, Bytes payload) override {
    base_.send(to, frame(payload));
  }

  void broadcast(const Bytes& payload) override {
    base_.broadcast(frame(payload));
  }

  std::uint64_t set_timer(SimTime delay) override {
    std::uint64_t id = base_.set_timer(delay);
    owner_.timer_slot_[id] = slot_;
    return id;
  }

  void stop() override {
    // The instance finished; the decide callback already recorded the
    // outcome.  The replica lives on.
  }

 private:
  Bytes frame(const Bytes& payload) const {
    Writer w;
    w.u64(slot_);
    w.raw(payload);
    return std::move(w).take();
  }

  Replica& owner_;
  std::uint64_t slot_;
};

Replica::Replica(ReplicaConfig config, std::vector<Command> workload,
                 CommitFn on_commit)
    : config_(std::move(config)), on_commit_(std::move(on_commit)) {
  MODUBFT_EXPECTS(config_.n >= 2);
  MODUBFT_EXPECTS(config_.window >= 1);
  MODUBFT_EXPECTS(config_.batch >= 1);
  if (config_.backend == Backend::kCrashHurfinRaynal) {
    MODUBFT_EXPECTS(config_.detector != nullptr);
  } else {
    MODUBFT_EXPECTS(config_.signer != nullptr);
    MODUBFT_EXPECTS(config_.verifier != nullptr);
    // One cache for all the replica's slots: a fresh instance starts with
    // a warm cache, and the hit/miss statistics survive instance
    // teardown (the scenario runners read them after the run).
    if (config_.bft.verify_cache && !config_.bft.shared_verify_cache) {
      vcache_ = std::make_shared<crypto::CachingVerifier>(
          config_.verifier, config_.bft.verify_cache_capacity);
      config_.bft.shared_verify_cache = vcache_;
    } else {
      vcache_ = config_.bft.shared_verify_cache;
    }
  }
  for (Command& cmd : workload) {
    MODUBFT_EXPECTS(cmd.id != 0);  // 0 is the no-op marker
    commands_.emplace(cmd.id, std::move(cmd));
  }
}

std::uint64_t Replica::pick_proposal(std::uint64_t slot) {
  // Anchor the `batch` smallest unclaimed pending ids to this slot and
  // propose the first of them, so concurrent slots carry disjoint
  // proposals.  Purely a local heuristic: the commit rule re-derives the
  // batch from the committed set, never from these claims.
  std::vector<std::uint64_t> claim;
  for (const auto& [id, cmd] : commands_) {
    if (claim.size() >= config_.batch) break;
    if (committed_ids_.count(id) > 0 || claimed_ids_.count(id) > 0) continue;
    claim.push_back(id);
  }
  if (claim.empty()) return 0;  // nothing pending: no-op proposal
  const std::uint64_t proposal = claim.front();
  for (std::uint64_t id : claim) claimed_ids_.insert(id);
  claims_.emplace(slot, std::move(claim));
  return proposal;
}

std::unique_ptr<sim::Actor> Replica::make_instance_actor(std::uint64_t slot) {
  const consensus::Value proposal = pick_proposal(slot);

  // Decide callbacks only park the raw decision in the reorder buffer.
  // Extraction and batch assembly happen at commit time, when the slot is
  // the frontier: under pipelining, replicas reach a mid-window decision
  // with *different* committed sets, and only the frontier state is
  // guaranteed identical across correct replicas.
  if (config_.backend == Backend::kCrashHurfinRaynal) {
    return std::make_unique<consensus::HurfinRaynalActor>(
        config_.n, proposal, config_.detector,
        [this, slot](ProcessId, const consensus::Decision& d) {
          auto it = slots_.find(slot);
          if (it == slots_.end() || it->second.decided) return;
          it->second.decided = true;
          it->second.crash_value = d.value;
        });
  }

  return std::make_unique<bft::BftProcess>(
      config_.bft, proposal, config_.signer, config_.verifier,
      [this, slot](ProcessId, const bft::VectorDecision& d) {
        auto it = slots_.find(slot);
        if (it == slots_.end() || it->second.decided) return;
        it->second.decided = true;
        it->second.vector = d;
      });
}

void Replica::on_start(sim::Context& ctx) {
  pump(ctx);
}

bool Replica::fill_window(sim::Context& ctx) {
  bool started = false;
  while (next_start_ < config_.slots &&
         next_start_ < next_commit_ + config_.window) {
    const std::uint64_t slot = next_start_++;
    started = true;
    Slot& st = slots_[slot];
    st.actor = make_instance_actor(slot);
    pstats_.window_peak =
        std::max<std::uint64_t>(pstats_.window_peak, slots_.size());
    pstats_.window_occupancy_sum += slots_.size();
    pstats_.window_samples += 1;

    SlotContext sub(ctx, *this, slot);
    st.actor->on_start(sub);

    // Replay envelopes that arrived before the slot existed.
    auto it = future_.find(slot);
    if (it != future_.end()) {
      auto pending = std::move(it->second);
      future_.erase(it);
      for (auto& [from, payload] : pending) {
        if (st.decided) break;
        st.actor->on_message(sub, from, payload);
      }
    }
  }
  return started;
}

void Replica::commit_slot(sim::Context& ctx, Slot& st) {
  const InstanceId slot{next_commit_};

  // Deterministic anchor extraction from the raw decision.  A real anchor
  // (a non-zero id present in the command table) releases a batch; an
  // all-null / unknown decision is a no-op slot.  Note the rule reads
  // only (decision, commands_) — both identical across correct replicas.
  std::uint64_t anchor = 0;
  if (config_.backend == Backend::kCrashHurfinRaynal) {
    if (st.crash_value != 0 && commands_.count(st.crash_value) > 0) {
      anchor = st.crash_value;
    }
  } else {
    for (const auto& entry : st.vector.entries) {
      if (!entry.has_value() || *entry == 0) continue;
      if (commands_.count(*entry) == 0) continue;
      if (anchor == 0 || *entry < anchor) anchor = *entry;
    }
  }

  // Canonical batch: the `batch` smallest still-pending ids, applied in
  // increasing id order.  Identical across correct replicas because the
  // committed set is (inductively) identical at the frontier; and since
  // every batch drains the smallest pending ids, the overall application
  // order is increasing id order regardless of (window, batch).
  std::uint64_t applied = 0;
  if (anchor != 0) {
    for (const auto& [id, cmd] : commands_) {
      if (applied >= config_.batch) break;
      if (committed_ids_.count(id) > 0) continue;
      store_.apply(cmd);
      committed_ids_.insert(id);
      ++applied;
      ++pstats_.commands_committed;
      log_debug("SMR ", ctx.id(), " commits slot ", slot.value, " cmd ", id);
      if (on_commit_) on_commit_(slot, &cmd, store_);
    }
  }
  if (applied == 0) {
    ++pstats_.noop_slots;
    log_debug("SMR ", ctx.id(), " commits slot ", slot.value, " (no-op)");
    if (on_commit_) on_commit_(slot, nullptr, store_);
  }
  pstats_.max_batch = std::max(pstats_.max_batch, applied);
  ++pstats_.slots_committed;

  // Release this slot's proposal claims.
  auto c = claims_.find(slot.value);
  if (c != claims_.end()) {
    for (std::uint64_t id : c->second) claimed_ids_.erase(id);
    claims_.erase(c);
  }

  next_commit_ += 1;
  // Drop timer routes of committed slots.
  for (auto t = timer_slot_.begin(); t != timer_slot_.end();) {
    t = t->second < next_commit_ ? timer_slot_.erase(t) : std::next(t);
  }
}

void Replica::pump(sim::Context& ctx) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Commit the decided prefix, strictly in slot order.
    while (next_commit_ < config_.slots) {
      auto it = slots_.find(next_commit_);
      if (it == slots_.end() || !it->second.decided) break;
      commit_slot(ctx, it->second);
      slots_.erase(it);
      progress = true;
    }
    // Decided mid-window slots wait in the reorder buffer with nothing
    // left to do (stop_on_decide); release their actors early.  Safe
    // here: pump runs only after any dispatch into an instance returned.
    for (auto& [s, st] : slots_) {
      if (st.decided && st.actor) st.actor.reset();
    }
    if (next_commit_ >= config_.slots) break;
    if (fill_window(ctx)) progress = true;
  }
  if (done() && !stopped_) {
    stopped_ = true;
    ctx.stop();
  }
}

void Replica::on_message(sim::Context& ctx, ProcessId from,
                         const Bytes& payload) {
  std::uint64_t slot = 0;
  Bytes inner;
  try {
    Reader r(payload);
    slot = r.u64();
    inner.assign(payload.begin() + 8, payload.end());
  } catch (const SerialError&) {
    return;  // not an SMR frame
  }
  if (slot >= config_.slots) return;  // no such instance

  if (slot < next_commit_) {  // committed slot (covers done()): stale
    ++pstats_.stale_dropped;
    return;
  }

  auto it = slots_.find(slot);
  if (it != slots_.end()) {
    Slot& st = it->second;
    if (st.decided || st.actor == nullptr) {
      ++pstats_.stale_dropped;  // instance finished, commit still pending
      return;
    }
    SlotContext sub(ctx, *this, slot);
    st.actor->on_message(sub, from, inner);
    pump(ctx);
    return;
  }

  // Not started yet: buffer within the bounded horizon, drop beyond it.
  if (slot >= buffer_horizon()) {
    ++pstats_.future_dropped;
    return;
  }
  auto f = future_.find(slot);
  if (f == future_.end()) {
    f = future_.emplace(slot, std::vector<std::pair<ProcessId, Bytes>>{})
            .first;
  }
  if (f->second.size() >= config_.max_future_msgs_per_slot) {
    ++pstats_.future_dropped;
    return;
  }
  f->second.emplace_back(from, std::move(inner));
  ++pstats_.future_buffered;
}

void Replica::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (done()) return;
  auto it = timer_slot_.find(timer_id);
  if (it == timer_slot_.end()) return;
  const std::uint64_t slot = it->second;
  timer_slot_.erase(it);

  auto s = slots_.find(slot);
  if (s == slots_.end() || s->second.decided || s->second.actor == nullptr)
    return;
  SlotContext sub(ctx, *this, slot);
  s->second.actor->on_timer(sub, timer_id);
  pump(ctx);
}

}  // namespace modubft::smr
