// Fault-tolerant SMR client (docs/CLIENT.md).
//
// A Client is an ordinary substrate actor with a process id in
// [n, n + num_clients).  It walks a deterministic script of operations,
// one monotone sequence number each, and for every operation:
//
//   submit   — send REQUEST to the current contact replica;
//   certify  — collect REPLY frames until f+1 (Byzantine) or a majority
//              (crash) of *distinct replicas* return byte-identical
//              replies whose content matches what was submitted;
//   retry    — on timeout, resend with capped exponential backoff plus
//              jitter; after `failover_after` consecutive unproductive
//              rounds (timeouts or BUSY sheds) rotate the contact replica.
//              The streak resets only when an operation actually
//              certifies — a contact that keeps answering BUSY (or a
//              Byzantine one feeding useless frames) still gets rotated
//              away from, it cannot pin the client by staying "alive";
//   back off — a BUSY frame (replica shedding load) doubles the current
//              backoff instead of hammering the loaded replica.
//
// Replies never carry authority on their own: a Byzantine contact can
// drop, delay, or forge them, and the certification rule is what turns
// "a replica said so" into "the command committed".  The negative-control
// switch trust_first_reply disables exactly that rule, and the client
// chaos campaign proves the forged-reply attack lands when it is on.
//
// When every scripted operation has certified, the client broadcasts
// CLIENT_DONE (the replicas' signal to drain the rest of the log) and
// stops.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "crypto/signature.hpp"
#include "sim/actor.hpp"
#include "smr/checkpoint.hpp"
#include "smr/command.hpp"
#include "smr/replica.hpp"

namespace modubft::client {

/// One scripted operation.
struct ClientOp {
  smr::Command::Op op = smr::Command::Op::kPut;
  std::string key;
  std::string value;
};

struct ClientConfig {
  /// Replica count; replicas occupy process ids [0, n).
  std::uint32_t n = 0;
  /// Fault bound (certification quorum: f+1 Byzantine, n/2+1 crash).
  std::uint32_t f = 0;
  smr::Backend backend = smr::Backend::kByzantine;

  /// The script, executed with seq = index + 1.
  std::vector<ClientOp> ops;

  /// false: closed loop — one outstanding operation, submit the next on
  /// certification.  true: open loop — submit a fresh operation every
  /// `interval` µs, up to `max_outstanding` in flight.
  bool open_loop = false;
  SimTime interval = 1'000;
  std::uint32_t max_outstanding = 16;

  /// Retry backoff: delay starts at retry_base and doubles per attempt,
  /// capped at retry_cap (0 = 16 × retry_base), plus jitter of up to a
  /// quarter of the delay.
  SimTime retry_base = 40'000;
  SimTime retry_cap = 0;

  /// Consecutive request timeouts before rotating the contact replica.
  std::uint32_t failover_after = 2;

  /// Initial contact replica (id in [0, n)).
  std::uint32_t contact = 0;

  /// Negative-control switch (adversary harness only): accept the first
  /// decodable reply for a pending seq without certification or content
  /// checks.  The forged-reply attack must land when this is on.
  bool trust_first_reply = false;

  /// Authenticated mode: sign every REQUEST preimage, the final
  /// CLIENT_DONE, and SEQ_BOUND refutations with this key (the client's
  /// own slot in the scenario keyring).  nullptr = unauthenticated
  /// (crash-model) runs; all sig fields stay empty.
  const crypto::Signer* signer = nullptr;
};

/// One certified (or, under trust_first_reply, merely accepted) reply.
struct AcceptedReply {
  std::uint64_t seq = 0;
  std::uint64_t cmd_id = 0;
  std::uint64_t slot = 0;
  smr::Command::Op op = smr::Command::Op::kPut;
  std::string key;
  std::string value;
  SimTime latency_us = 0;  // first submission → certification
};

/// Client-side observability, aggregated into runtime::RunStats.
struct ClientStats {
  std::uint64_t submitted = 0;   ///< first submissions (= ops started)
  std::uint64_t retries = 0;     ///< timeout resends
  std::uint64_t failovers = 0;   ///< contact rotations
  std::uint64_t busy = 0;        ///< BUSY frames received (backed off)
  std::uint64_t replies = 0;     ///< REPLY frames decoded
  std::uint64_t duplicate_replies = 0;   ///< replies for settled seqs
  std::uint64_t mismatched_replies = 0;  ///< content contradicts submission
  std::uint64_t accepted = 0;    ///< operations certified
  std::uint64_t fetches_answered = 0;  ///< CMD_FETCH ids answered with a body
  std::uint64_t bounds_sent = 0;       ///< SEQ_BOUND refutations sent
  std::vector<SimTime> latencies_us;  ///< per-accepted-op latency
};

class Client final : public sim::Actor {
 public:
  explicit Client(ClientConfig config);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  const ClientStats& stats() const { return stats_; }
  const std::vector<AcceptedReply>& accepted() const { return accepted_; }
  /// True once every scripted operation certified (CLIENT_DONE sent).
  bool finished() const { return finished_; }

 private:
  /// An operation in flight: submitted, not yet certified.
  struct Pending {
    std::size_t op_index = 0;
    SimTime sent_at = 0;       // first submission (latency anchor)
    std::uint64_t timer = 0;   // armed retry timer
    SimTime delay = 0;         // current backoff
    std::uint32_t attempts = 0;
    /// Certification tally: exact reply frame bytes → replicas that sent
    /// them.  Byte-equality is the matching rule — correct replicas
    /// produce identical frames, so f+1 distinct senders on one key is a
    /// commitment proof.
    std::map<Bytes, std::set<std::uint32_t>> tally;
  };

  std::uint32_t quorum() const;
  void submit_next(sim::Context& ctx);
  /// Builds the (signed, when a signer is configured) REQUEST frame for
  /// `seq`.  Deterministic: usable both for submission and for answering
  /// a replica's CMD_FETCH for a seq we have not submitted yet.
  smr::ClientRequest build_request(std::uint32_t self,
                                   std::uint64_t seq) const;
  void send_request(sim::Context& ctx, std::uint64_t seq, Pending& p);
  void arm_retry(sim::Context& ctx, std::uint64_t seq, Pending& p);
  void handle_reply(sim::Context& ctx, ProcessId from, Reader& r,
                    const Bytes& payload);
  void handle_busy(sim::Context& ctx, ProcessId from, Reader& r);
  void answer_fetch(sim::Context& ctx, ProcessId from, Reader& r);
  /// One unproductive round with the contact (timeout or BUSY): bump the
  /// failover streak and rotate when it hits the threshold.
  void note_unresponsive(sim::Context& ctx);
  void accept(sim::Context& ctx, std::uint64_t seq,
              const smr::ClientReply& reply);
  void maybe_finish(sim::Context& ctx);

  ClientConfig config_;
  SimTime retry_cap_ = 0;
  std::uint32_t contact_ = 0;
  std::uint32_t consecutive_timeouts_ = 0;
  std::size_t next_op_ = 0;  // first not-yet-submitted script index
  std::map<std::uint64_t, Pending> pending_;      // seq → in flight
  std::map<std::uint64_t, std::uint64_t> timers_;  // timer id → seq
  std::uint64_t interval_timer_ = 0;
  bool finished_ = false;
  ClientStats stats_;
  std::vector<AcceptedReply> accepted_;
};

}  // namespace modubft::client
