#include "client/client.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"

namespace modubft::client {

using smr::ControlKind;
using smr::kControlSlot;

Client::Client(ClientConfig config) : config_(std::move(config)) {
  MODUBFT_EXPECTS(config_.n >= 2);
  MODUBFT_EXPECTS(!config_.ops.empty());
  MODUBFT_EXPECTS(config_.ops.size() < 0xffffffffULL);
  MODUBFT_EXPECTS(config_.contact < config_.n);
  MODUBFT_EXPECTS(config_.retry_base > 0);
  MODUBFT_EXPECTS(config_.max_outstanding >= 1);
  MODUBFT_EXPECTS(config_.failover_after >= 1);
  retry_cap_ = config_.retry_cap > 0 ? config_.retry_cap
                                     : config_.retry_base * 16;
  contact_ = config_.contact;
}

std::uint32_t Client::quorum() const {
  if (config_.backend == smr::Backend::kByzantine) return config_.f + 1;
  return config_.n / 2 + 1;
}

void Client::on_start(sim::Context& ctx) {
  submit_next(ctx);
  if (config_.open_loop) {
    interval_timer_ = ctx.set_timer(config_.interval);
  }
}

void Client::submit_next(sim::Context& ctx) {
  // Closed loop keeps one operation in flight; open loop fills up to the
  // outstanding cap (also the reply-cache safety bound — see
  // docs/CLIENT.md on duplicate replay completeness).
  const std::size_t cap = config_.open_loop ? config_.max_outstanding : 1;
  while (next_op_ < config_.ops.size() && pending_.size() < cap) {
    const std::uint64_t seq = next_op_ + 1;
    Pending p;
    p.op_index = next_op_++;
    p.sent_at = ctx.now();
    p.delay = config_.retry_base;
    ++stats_.submitted;
    auto it = pending_.emplace(seq, std::move(p)).first;
    send_request(ctx, seq, it->second);
    arm_retry(ctx, seq, it->second);
    if (!config_.open_loop) break;
  }
}

smr::ClientRequest Client::build_request(std::uint32_t self,
                                         std::uint64_t seq) const {
  const ClientOp& op = config_.ops[seq - 1];
  smr::ClientRequest req;
  req.seq = seq;
  req.op = op.op;
  req.key = op.key;
  req.value = op.value;
  if (config_.signer != nullptr) {
    req.sig = config_.signer->sign(smr::client_request_signing_bytes(
        self, seq, req.op, req.key, req.value));
  }
  return req;
}

void Client::send_request(sim::Context& ctx, std::uint64_t seq, Pending& p) {
  (void)p;
  ctx.send(ProcessId{contact_},
           smr::encode_control_request(build_request(ctx.id().value, seq)));
}

void Client::arm_retry(sim::Context& ctx, std::uint64_t seq, Pending& p) {
  const SimTime jitter = ctx.rng().next_below(p.delay / 4 + 1);
  p.timer = ctx.set_timer(p.delay + jitter);
  timers_[p.timer] = seq;
}

void Client::on_message(sim::Context& ctx, ProcessId from,
                        const Bytes& payload) {
  if (finished_) return;
  if (from.value >= config_.n) return;  // only replicas speak to clients
  try {
    Reader r(payload);
    if (r.u64() != kControlSlot) return;  // consensus traffic: not for us
    const auto kind = static_cast<ControlKind>(r.u8());
    switch (kind) {
      case ControlKind::kReply:
        handle_reply(ctx, from, r, payload);
        return;
      case ControlKind::kBusy:
        handle_busy(ctx, from, r);
        return;
      case ControlKind::kCmdFetch:
        answer_fetch(ctx, from, r);
        return;
      default:
        return;  // relays, votes: replica-to-replica traffic
    }
  } catch (const SerialError&) {
    // Malformed frame from a faulty replica: drop.
  }
}

void Client::handle_reply(sim::Context& ctx, ProcessId from, Reader& r,
                          const Bytes& payload) {
  const smr::ClientReply reply = smr::decode_client_reply(r);
  ++stats_.replies;
  auto it = pending_.find(reply.seq);
  if (it == pending_.end()) {
    ++stats_.duplicate_replies;  // already certified (or never submitted)
    return;
  }
  // Note: a mere reply frame does NOT reset the failover streak — only a
  // certification (accept) does.  A Byzantine contact replaying stale
  // frames must not be able to pin the client to itself.

  if (config_.trust_first_reply) {
    // Negative control: no certification, no content checks.  The chaos
    // campaign proves the forged-reply attack lands through this path.
    accept(ctx, reply.seq, reply);
    return;
  }

  // Content validation: a reply that contradicts what we submitted can
  // never certify, no matter how many replicas echo it — a forged frame
  // costs the attacker a counter, not our correctness.
  const ClientOp& op = config_.ops[it->second.op_index];
  const std::uint64_t want_id =
      smr::make_client_cmd_id(ctx.id().value, reply.seq);
  if (reply.cmd_id != want_id || reply.op != op.op || reply.key != op.key ||
      reply.value != op.value) {
    ++stats_.mismatched_replies;
    return;
  }

  auto& senders = it->second.tally[payload];
  senders.insert(from.value);
  if (senders.size() >= quorum()) accept(ctx, reply.seq, reply);
}

void Client::handle_busy(sim::Context& ctx, ProcessId from, Reader& r) {
  (void)from;
  const smr::BusyFrame busy = smr::decode_busy(r);
  auto it = pending_.find(busy.seq);
  if (it == pending_.end()) return;
  ++stats_.busy;
  // The replica shed us: back off twice as hard instead of re-sending on
  // the old schedule (which is what overloaded it).  A shed is also an
  // unproductive round — a contact whose queue a Byzantine peer keeps
  // full (or that answers everything with BUSY) must count toward
  // failover, or it pins the client forever while other replicas have
  // capacity.
  note_unresponsive(ctx);
  Pending& p = it->second;
  p.delay = std::min<SimTime>(retry_cap_, p.delay * 2);
  ctx.cancel_timer(p.timer);
  timers_.erase(p.timer);
  arm_retry(ctx, busy.seq, p);
}

void Client::answer_fetch(sim::Context& ctx, ProcessId from, Reader& r) {
  // A replica parked on a decided command id is asking Π for the body.
  // For our own ids we are the authority: any seq within the script has a
  // statically-known body (the script is deterministic), so answer with
  // the signed REQUEST even if we have not submitted that seq yet — an
  // early commit is harmless, the reply cache replays it when we get
  // there.  A seq beyond the script can never have a body: answer with a
  // signed SEQ_BOUND so the fetcher can deterministically skip the id
  // instead of re-fetching forever.
  const std::vector<std::uint64_t> ids =
      smr::decode_cmd_fetch(r, smr::StateLimits{});
  const std::uint32_t self = ctx.id().value;
  for (std::uint64_t id : ids) {
    if (smr::client_of_cmd(id) != self) continue;
    const std::uint64_t seq = smr::seq_of_cmd(id);
    if (seq >= 1 && seq <= config_.ops.size()) {
      ctx.send(from, smr::encode_control_request(build_request(self, seq)));
      ++stats_.fetches_answered;
    } else {
      smr::SeqBound sb;
      sb.client = self;
      sb.bound = config_.ops.size();
      if (config_.signer != nullptr) {
        sb.sig = config_.signer->sign(
            smr::seq_bound_signing_bytes(sb.client, sb.bound));
      }
      ctx.send(from, smr::encode_control_seq_bound(sb));
      ++stats_.bounds_sent;
    }
  }
}

void Client::note_unresponsive(sim::Context& ctx) {
  ++consecutive_timeouts_;
  if (consecutive_timeouts_ >= config_.failover_after) {
    contact_ = (contact_ + 1) % config_.n;
    consecutive_timeouts_ = 0;
    ++stats_.failovers;
    log_debug("client ", ctx.id(), " fails over to replica ", contact_);
  }
}

void Client::accept(sim::Context& ctx, std::uint64_t seq,
                    const smr::ClientReply& reply) {
  auto it = pending_.find(seq);
  AcceptedReply acc;
  acc.seq = seq;
  acc.cmd_id = reply.cmd_id;
  acc.slot = reply.slot;
  acc.op = reply.op;
  acc.key = reply.key;
  acc.value = reply.value;
  acc.latency_us = ctx.now() - it->second.sent_at;
  stats_.latencies_us.push_back(acc.latency_us);
  accepted_.push_back(std::move(acc));
  ++stats_.accepted;
  consecutive_timeouts_ = 0;  // real progress: the only streak reset
  ctx.cancel_timer(it->second.timer);
  timers_.erase(it->second.timer);
  pending_.erase(it);
  log_debug("client ", ctx.id(), " certified seq ", seq);
  submit_next(ctx);
  maybe_finish(ctx);
}

void Client::maybe_finish(sim::Context& ctx) {
  if (finished_ || next_op_ < config_.ops.size() || !pending_.empty()) {
    return;
  }
  finished_ = true;
  if (interval_timer_ != 0) ctx.cancel_timer(interval_timer_);
  // Tell Π the whole script certified; replicas drain the rest of the log.
  // Signed so replicas may re-serve it to each other after we stop — it
  // doubles as the standing seq bound for this client.
  smr::ClientDone done;
  done.client = ctx.id().value;
  done.final_seq = config_.ops.size();
  if (config_.signer != nullptr) {
    done.sig = config_.signer->sign(
        smr::client_done_signing_bytes(done.client, done.final_seq));
  }
  ctx.broadcast(smr::encode_control_client_done(done));
  ctx.stop();
}

void Client::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (finished_) return;
  if (timer_id == interval_timer_ && interval_timer_ != 0) {
    submit_next(ctx);
    if (next_op_ < config_.ops.size() || !pending_.empty()) {
      interval_timer_ = ctx.set_timer(config_.interval);
    } else {
      interval_timer_ = 0;
    }
    return;
  }
  auto t = timers_.find(timer_id);
  if (t == timers_.end()) return;
  const std::uint64_t seq = t->second;
  timers_.erase(t);
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Pending& p = it->second;

  // Timeout: the contact is dead, partitioned, or Byzantine-silent.
  ++stats_.retries;
  ++p.attempts;
  note_unresponsive(ctx);
  p.delay = std::min<SimTime>(retry_cap_, p.delay * 2);
  send_request(ctx, seq, p);
  arm_retry(ctx, seq, p);
}

}  // namespace modubft::client
