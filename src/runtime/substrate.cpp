#include "runtime/substrate.hpp"

#include <chrono>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "transport/cluster.hpp"
#include "transport/link_faults.hpp"

namespace modubft::runtime {

namespace {
using WallClock = std::chrono::steady_clock;

std::uint64_t wall_us_since(WallClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(WallClock::now() -
                                                            start)
          .count());
}

// ---------------------------------------------------------------- kSim

class SimSubstrate final : public Substrate {
 public:
  explicit SimSubstrate(SubstrateConfig config) : config_(std::move(config)) {
    sim::SimConfig sim_cfg;
    sim_cfg.n = config_.n;
    sim_cfg.seed = config_.seed;
    sim_cfg.latency = config_.latency;
    sim_cfg.max_time = config_.max_time;
    sim_cfg.max_events = config_.max_events;
    world_ = std::make_unique<sim::Simulation>(sim_cfg);
  }

  Backend backend() const override { return Backend::kSim; }
  std::uint32_t n() const override { return config_.n; }

  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) override {
    world_->set_actor(id, std::move(actor));
  }

  void crash(const faults::CrashSpec& spec) override {
    world_->crash_at(spec.who, spec.at);
    crash_scheduled_.insert(spec.who.value);
  }

  void restart(const faults::CrashSpec& spec,
               std::function<std::unique_ptr<sim::Actor>()> factory) override {
    MODUBFT_EXPECTS(spec.restart_at.has_value());
    world_->restart_at(spec.who, *spec.restart_at, std::move(factory));
    // A restarted process must stop like any correct one — keep it in the
    // unstopped audit so a hung recovery is a named failure.
    crash_scheduled_.erase(spec.who.value);
  }

  void set_delivery_tap(
      std::function<void(const sim::Delivery&)> tap) override {
    world_->set_delivery_tap(std::move(tap));
  }

  RunResult run() override {
    const WallClock::time_point start = WallClock::now();
    const sim::RunOutcome out = world_->run();

    RunResult result;
    switch (out) {
      case sim::RunOutcome::kQuiescent:
        result.outcome = RunOutcome::kQuiescent;
        break;
      case sim::RunOutcome::kAllStopped:
        result.outcome = RunOutcome::kAllStopped;
        break;
      case sim::RunOutcome::kTimeLimit:
        result.outcome = RunOutcome::kTimeLimit;
        break;
      case sim::RunOutcome::kEventLimit:
        result.outcome = RunOutcome::kEventLimit;
        break;
    }
    result.clean = out == sim::RunOutcome::kQuiescent ||
                   out == sim::RunOutcome::kAllStopped;
    if (!result.clean) {
      for (std::uint32_t i = 0; i < config_.n; ++i) {
        if (!world_->halted(ProcessId{i}) && crash_scheduled_.count(i) == 0) {
          result.unstopped.push_back(ProcessId{i});
        }
      }
    }
    result.stats.net = world_->stats();
    result.stats.virtual_time = world_->now();
    result.stats.wall_us = wall_us_since(start);
    return result;
  }

 private:
  SubstrateConfig config_;
  std::unique_ptr<sim::Simulation> world_;
  std::set<std::uint32_t> crash_scheduled_;
};

// ------------------------------------------------------------- kThreads

class ThreadSubstrate final : public Substrate {
 public:
  explicit ThreadSubstrate(SubstrateConfig config)
      : config_(std::move(config)) {
    transport::ClusterConfig cluster_cfg;
    cluster_cfg.n = config_.n;
    cluster_cfg.seed = config_.seed;
    cluster_cfg.budget = config_.budget;
    cluster_ = std::make_unique<transport::Cluster>(cluster_cfg);
  }

  Backend backend() const override { return Backend::kThreads; }
  std::uint32_t n() const override { return config_.n; }

  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) override {
    cluster_->set_actor(id, std::move(actor));
  }

  void crash(const faults::CrashSpec& spec) override {
    cluster_->crash_after(spec.who, std::chrono::microseconds(spec.at));
  }

  void restart(const faults::CrashSpec& spec,
               std::function<std::unique_ptr<sim::Actor>()> factory) override {
    MODUBFT_EXPECTS(spec.restart_at.has_value());
    cluster_->set_restart(spec.who, std::chrono::microseconds(*spec.restart_at),
                          std::move(factory));
  }

  void set_delivery_tap(
      std::function<void(const sim::Delivery&)> tap) override {
    cluster_->set_delivery_tap(std::move(tap));
  }

  RunResult run() override {
    const bool all_stopped = cluster_->run();

    RunResult result;
    result.outcome =
        all_stopped ? RunOutcome::kAllStopped : RunOutcome::kBudgetExpired;
    result.clean = all_stopped;
    result.unstopped = cluster_->unstopped();
    result.stats.net = cluster_->stats();
    result.stats.wall_us =
        static_cast<std::uint64_t>(cluster_->elapsed().count());
    return result;
  }

 private:
  SubstrateConfig config_;
  std::unique_ptr<transport::Cluster> cluster_;
};

// ----------------------------------------------------------------- kTcp

class TcpSubstrate final : public Substrate {
 public:
  explicit TcpSubstrate(SubstrateConfig config) : config_(std::move(config)) {
    transport::TcpClusterConfig cluster_cfg;
    cluster_cfg.n = config_.n;
    cluster_cfg.seed = config_.seed;
    cluster_cfg.budget = config_.budget;
    cluster_cfg.retry = config_.retry;
    if (!config_.link_faults.empty()) {
      cluster_cfg.faults =
          transport::LinkFaultPlan(config_.link_faults, config_.seed);
    }
    cluster_ = std::make_unique<transport::TcpCluster>(cluster_cfg);
  }

  Backend backend() const override { return Backend::kTcp; }
  std::uint32_t n() const override { return config_.n; }

  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) override {
    cluster_->set_actor(id, std::move(actor));
  }

  void crash(const faults::CrashSpec& spec) override {
    cluster_->crash_after(spec.who, std::chrono::microseconds(spec.at));
  }

  void restart(const faults::CrashSpec& spec,
               std::function<std::unique_ptr<sim::Actor>()> factory) override {
    MODUBFT_EXPECTS(spec.restart_at.has_value());
    cluster_->set_restart(spec.who, std::chrono::microseconds(*spec.restart_at),
                          std::move(factory));
  }

  void set_delivery_tap(
      std::function<void(const sim::Delivery&)> tap) override {
    cluster_->set_delivery_tap(std::move(tap));
  }

  RunResult run() override {
    const WallClock::time_point start = WallClock::now();
    const bool all_stopped = cluster_->run();

    RunResult result;
    result.outcome =
        all_stopped ? RunOutcome::kAllStopped : RunOutcome::kBudgetExpired;
    result.clean = all_stopped;
    result.unstopped = cluster_->unstopped();
    result.stats.net = cluster_->stats();
    result.stats.wall_us = wall_us_since(start);
    result.stats.wire_frames = cluster_->frames_sent();
    result.stats.wire_bytes = cluster_->bytes_sent();
    result.stats.link = cluster_->link_stats();
    return result;
  }

 private:
  SubstrateConfig config_;
  std::unique_ptr<transport::TcpCluster> cluster_;
};

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kThreads: return "threads";
    case Backend::kTcp: return "tcp";
  }
  return "?";
}

std::optional<Backend> parse_backend(const std::string& name) {
  if (name == "sim") return Backend::kSim;
  if (name == "threads") return Backend::kThreads;
  if (name == "tcp") return Backend::kTcp;
  return std::nullopt;
}

const char* run_outcome_name(RunOutcome o) {
  switch (o) {
    case RunOutcome::kQuiescent: return "quiescent";
    case RunOutcome::kAllStopped: return "all-stopped";
    case RunOutcome::kTimeLimit: return "time-limit";
    case RunOutcome::kEventLimit: return "event-limit";
    case RunOutcome::kBudgetExpired: return "budget-expired";
  }
  return "?";
}

std::string to_json(Backend backend, const RunStats& stats) {
  std::ostringstream os;
  os << "{\"backend\":\"" << backend_name(backend) << '"'
     << ",\"messages_sent\":" << stats.net.messages_sent
     << ",\"messages_delivered\":" << stats.net.messages_delivered
     << ",\"bytes_sent\":" << stats.net.bytes_sent
     << ",\"events_executed\":" << stats.net.events_executed
     << ",\"virtual_time_us\":" << stats.virtual_time
     << ",\"wall_us\":" << stats.wall_us
     << ",\"wire_frames\":" << stats.wire_frames
     << ",\"wire_bytes\":" << stats.wire_bytes
     << ",\"reconnects\":" << stats.link.reconnects
     << ",\"retransmits\":" << stats.link.retransmits
     << ",\"frames_dropped\":" << stats.link.frames_dropped
     << ",\"kills_injected\":" << stats.link.kills_injected
     << ",\"checksum_failures\":" << stats.link.checksum_failures
     << ",\"dup_suppressed\":" << stats.link.dup_suppressed
     << ",\"cache_hits\":" << stats.verify.cache_hits
     << ",\"cache_misses\":" << stats.verify.cache_misses
     << ",\"cache_evictions\":" << stats.verify.cache_evictions
     << ",\"cache_hit_rate\":" << stats.verify.cache_hit_rate()
     << ",\"pool_workers\":" << stats.verify.pool_workers
     << ",\"pool_jobs\":" << stats.verify.pool_jobs
     << ",\"pool_dispatched\":" << stats.verify.pool_dispatched
     << ",\"pool_batches\":" << stats.verify.pool_batches
     << ",\"pool_peak_queue\":" << stats.verify.pool_peak_queue
     << ",\"window\":" << stats.pipeline.window
     << ",\"batch\":" << stats.pipeline.batch
     << ",\"slots_committed\":" << stats.pipeline.slots_committed
     << ",\"commands_committed\":" << stats.pipeline.commands_committed
     << ",\"noop_slots\":" << stats.pipeline.noop_slots
     << ",\"max_batch\":" << stats.pipeline.max_batch
     << ",\"window_peak\":" << stats.pipeline.window_peak
     << ",\"avg_window\":" << stats.pipeline.avg_window
     << ",\"future_buffered\":" << stats.pipeline.future_buffered
     << ",\"future_dropped\":" << stats.pipeline.future_dropped
     << ",\"stale_dropped\":" << stats.pipeline.stale_dropped
     << ",\"checkpoints_taken\":" << stats.pipeline.checkpoints_taken
     << ",\"checkpoint_certs\":" << stats.pipeline.checkpoint_certs
     << ",\"log_truncated\":" << stats.pipeline.log_truncated
     << ",\"log_peak\":" << stats.pipeline.log_peak
     << ",\"state_reqs\":" << stats.pipeline.state_reqs
     << ",\"state_resps\":" << stats.pipeline.state_resps
     << ",\"recovery_installs\":" << stats.pipeline.recovery_installs
     << ",\"recovery_rejects\":" << stats.pipeline.recovery_rejects
     << ",\"recovery_us\":" << stats.pipeline.recovery_us
     << ",\"ingest_staged\":" << stats.ingest.staged
     << ",\"ingest_batches\":" << stats.ingest.batches
     << ",\"ingest_batch_messages\":" << stats.ingest.batch_messages
     << ",\"ingest_max_batch\":" << stats.ingest.max_batch
     << ",\"ingest_avg_batch\":" << stats.ingest.avg_batch()
     << ",\"ingest_prologue_frames\":" << stats.ingest.prologue_frames
     << ",\"ingest_prologue_jobs\":" << stats.ingest.prologue_jobs
     << ",\"ingest_staged_sends\":" << stats.ingest.staged_sends
     << ",\"ingest_staged_bytes\":" << stats.ingest.staged_bytes
     << ",\"ingest_sign_flushes\":" << stats.ingest.sign_flushes
     << ",\"ingest_encode_reuses\":" << stats.ingest.encode_reuses
     << ",\"client_clients\":" << stats.client.clients
     << ",\"client_submitted\":" << stats.client.submitted
     << ",\"client_retries\":" << stats.client.retries
     << ",\"client_failovers\":" << stats.client.failovers
     << ",\"client_busy\":" << stats.client.busy
     << ",\"client_replies\":" << stats.client.replies
     << ",\"client_duplicate_replies\":" << stats.client.duplicate_replies
     << ",\"client_mismatched_replies\":" << stats.client.mismatched_replies
     << ",\"client_accepted\":" << stats.client.accepted
     << ",\"client_p50_us\":" << stats.client.p50_us
     << ",\"client_p99_us\":" << stats.client.p99_us
     << ",\"client_p999_us\":" << stats.client.p999_us
     << ",\"client_requests\":" << stats.client.requests
     << ",\"client_duplicates\":" << stats.client.duplicates
     << ",\"client_replays\":" << stats.client.replays
     << ",\"client_admitted\":" << stats.client.admitted
     << ",\"client_sheds\":" << stats.client.sheds
     << ",\"client_relays_sent\":" << stats.client.relays_sent
     << ",\"client_relays_received\":" << stats.client.relays_received
     << ",\"client_relays_dropped\":" << stats.client.relays_dropped
     << ",\"client_fetches_sent\":" << stats.client.fetches_sent
     << ",\"client_fetches_served\":" << stats.client.fetches_served
     << ",\"client_replies_sent\":" << stats.client.replies_sent
     << ",\"client_parked_commits\":" << stats.client.parked_commits
     << ",\"client_rejects\":" << stats.client.rejects
     << ",\"client_queue_peak\":" << stats.client.queue_peak
     << ",\"client_auth_rejects\":" << stats.client.auth_rejects
     << ",\"client_ineligible_skips\":" << stats.client.ineligible_skips
     << ",\"client_origin_drops\":" << stats.client.origin_drops
     << ",\"client_bounds_recorded\":" << stats.client.bounds_recorded
     << ",\"client_fetches_answered\":" << stats.client.fetches_answered
     << ",\"client_bounds_sent\":" << stats.client.bounds_sent << '}';
  return os.str();
}

std::unique_ptr<Substrate> make_substrate(SubstrateConfig config) {
  MODUBFT_EXPECTS(config.n > 0);
  switch (config.backend) {
    case Backend::kSim:
      return std::make_unique<SimSubstrate>(std::move(config));
    case Backend::kThreads:
      return std::make_unique<ThreadSubstrate>(std::move(config));
    case Backend::kTcp:
      return std::make_unique<TcpSubstrate>(std::move(config));
  }
  MODUBFT_EXPECTS(false);
  return nullptr;
}

}  // namespace modubft::runtime
