// Substrate-generic scenario runners (declared in faults/scenario.hpp).
//
// Lives in the runtime library rather than faults/ because the threaded
// and TCP backends (transport/) link *above* faults/ — the runners need
// all three runtimes, so they sit at the top of the dependency chain.
#include "faults/scenario.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

#include "bft/config.hpp"
#include "bft/lockstep.hpp"
#include "common/check.hpp"
#include "consensus/chandra_toueg.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/rsa64.hpp"
#include "crypto/verify_pool.hpp"
#include "faults/byzantine.hpp"
#include "faults/split_brain.hpp"

namespace modubft::faults {

namespace {

crypto::SignatureSystem make_keys(Scheme scheme, std::uint32_t n,
                                  std::uint64_t seed) {
  if (scheme == Scheme::kRsa64) {
    return crypto::Rsa64Scheme{}.make_system(n, seed);
  }
  return crypto::HmacScheme{}.make_system(n, seed);
}

std::vector<consensus::Value> default_proposals(
    std::uint32_t n, const std::vector<consensus::Value>& given) {
  if (!given.empty()) {
    MODUBFT_EXPECTS(given.size() == n);
    return given;
  }
  std::vector<consensus::Value> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = 1000 + i;
  return out;
}

/// The ◇M timeouts and the suspicion poll are simulator-scale by default
/// (40 ms / 10 ms of *virtual* time).  On the wall-clock substrates the
/// same numbers race the OS scheduler, so when the caller left them at
/// the defaults the runner widens them to values the threaded tests have
/// validated; explicit overrides are honoured everywhere.
fd::MutenessConfig tune_muteness(fd::MutenessConfig muteness,
                                 runtime::Backend backend) {
  if (backend == runtime::Backend::kSim) return muteness;
  const fd::MutenessConfig defaults{};
  if (muteness.initial_timeout == defaults.initial_timeout) {
    muteness.initial_timeout =
        backend == runtime::Backend::kThreads ? 500'000 : 2'000'000;
  }
  return muteness;
}

SimTime tune_poll_period(runtime::Backend backend,
                         const std::optional<SimTime>& override_us) {
  if (override_us.has_value()) return *override_us;
  switch (backend) {
    case runtime::Backend::kSim: return bft::BftConfig{}.suspicion_poll_period;
    case runtime::Backend::kThreads: return 50'000;
    case runtime::Backend::kTcp: return 100'000;
  }
  return bft::BftConfig{}.suspicion_poll_period;
}

}  // namespace

std::vector<smr::Command> sample_workload() {
  return {
      {1, smr::Command::Op::kPut, "alpha", "1"},
      {2, smr::Command::Op::kPut, "beta", "2"},
      {3, smr::Command::Op::kPut, "alpha", "3"},  // overwrite
      {4, smr::Command::Op::kDel, "beta", ""},
      {5, smr::Command::Op::kPut, "gamma", "5"},
  };
}

BftScenarioResult run_bft_scenario(const BftScenarioConfig& config) {
  bft::BftConfig proto;
  proto.n = config.n;
  proto.f = config.f;
  proto.prune_nested_next = config.prune;
  proto.verify_cache = config.verify_cache;
  proto.certification_bound = config.certification_bound;
  proto.stop_on_decide = config.stop_on_decide;
  proto.muteness = tune_muteness(config.muteness, config.substrate);
  proto.suspicion_poll_period =
      tune_poll_period(config.substrate, config.suspicion_poll_period);
  proto.validate();

  // One verification pool shared by every process (opt-in).
  std::shared_ptr<crypto::VerifyPool> pool;
  if (config.verify_workers.has_value()) {
    pool = std::make_shared<crypto::VerifyPool>(*config.verify_workers);
    proto.verify_pool = pool;
  }

  const std::vector<consensus::Value> proposals =
      default_proposals(config.n, config.proposals);

  crypto::SignatureSystem keys = make_keys(config.scheme, config.n, config.seed);

  runtime::SubstrateConfig world_cfg;
  world_cfg.backend = config.substrate;
  world_cfg.n = config.n;
  world_cfg.seed = config.seed;
  world_cfg.latency = config.latency;
  world_cfg.max_time = config.max_time;
  world_cfg.budget = config.budget;
  world_cfg.link_faults = config.link_faults;
  std::unique_ptr<runtime::Substrate> world =
      runtime::make_substrate(world_cfg);
  if (config.delivery_tap) world->set_delivery_tap(config.delivery_tap);

  BftScenarioResult result;
  // On the threaded substrates the decide callbacks arrive concurrently.
  std::mutex decide_mu;

  // Fault assignment lookup.
  std::vector<FaultSpec> spec_of(config.n);
  for (std::uint32_t i = 0; i < config.n; ++i) {
    spec_of[i].who = ProcessId{i};
    spec_of[i].behavior = Behavior::kNone;
  }
  for (const FaultSpec& s : config.faults) {
    MODUBFT_EXPECTS(s.who.value < config.n);
    spec_of[s.who.value] = s;
  }

  std::vector<const bft::BftProcess*> views(config.n, nullptr);

  // Every actor funnels through here so config.wrap_actor (the adversary
  // layer's wire-mutation hook) decorates faulty and correct processes
  // alike before they reach the substrate.
  auto install = [&](ProcessId id, std::unique_ptr<sim::Actor> actor) {
    if (config.wrap_actor) actor = config.wrap_actor(id, std::move(actor));
    world->set_actor(id, std::move(actor));
  };

  for (std::uint32_t i = 0; i < config.n; ++i) {
    const ProcessId id{i};
    const FaultSpec& spec = spec_of[i];

    if (spec.behavior == Behavior::kSplitBrain) {
      // The dual-quorum equivocation attack impersonates the round-1
      // coordinator; it is its own actor, not a wrapped BftProcess.
      MODUBFT_EXPECTS(i == 0);
      install(id, std::make_unique<SplitBrainCoordinator>(
                      config.n, keys.signers[i].get(), config.n - config.f,
                      config.n / 2));
      continue;
    }

    auto inner = std::make_unique<bft::BftProcess>(
        proto, proposals[i], keys.signers[i].get(), keys.verifier,
        [&result, &decide_mu, i](ProcessId, const bft::VectorDecision& d) {
          std::lock_guard<std::mutex> lock(decide_mu);
          result.decisions.emplace(i, d);
        });
    views[i] = inner.get();

    if (spec.behavior == Behavior::kNone) {
      if (config.assume_faulty.count(i) == 0) result.correct.insert(i);
      install(id, std::move(inner));
    } else if (spec.behavior == Behavior::kCrash) {
      install(id, std::move(inner));
      world->crash(CrashSpec{id, spec.at, std::nullopt});
    } else {
      install(id, std::make_unique<ByzantineActor>(
                      std::move(inner), keys.signers[i].get(), spec,
                      config.n));
    }
  }

  const runtime::RunResult run = world->run();
  result.outcome = run.outcome;
  result.clean = run.clean;
  result.unstopped = run.unstopped;
  result.run_stats = run.stats;
  result.net = run.stats.net;

  // ---- evaluate the paper's properties over the correct processes ----
  result.termination = true;
  for (std::uint32_t i : result.correct) {
    if (result.decisions.count(i) == 0) result.termination = false;
  }

  result.agreement = true;
  const bft::VectorValue* first = nullptr;
  for (std::uint32_t i : result.correct) {
    auto it = result.decisions.find(i);
    if (it == result.decisions.end()) continue;
    if (first == nullptr) {
      first = &it->second.entries;
    } else if (*first != it->second.entries) {
      result.agreement = false;
    }
    result.max_decision_round =
        std::max(result.max_decision_round, it->second.round);
    result.last_decision_time =
        std::max(result.last_decision_time, it->second.time);
  }

  // Vector Validity (paper §5.1): for correct p_i, vect[i] is v_i or null,
  // and at least n − 2F entries are initial values of correct processes.
  result.vector_validity = true;
  result.min_correct_entries = config.n;
  const std::uint32_t floor_entries = config.n >= 2 * config.f
                                          ? config.n - 2 * config.f
                                          : 0;
  for (std::uint32_t i : result.correct) {
    auto it = result.decisions.find(i);
    if (it == result.decisions.end()) continue;
    const bft::VectorValue& vect = it->second.entries;
    if (vect.size() != config.n) {
      result.vector_validity = false;
      continue;
    }
    std::uint32_t correct_entries = 0;
    for (std::uint32_t j = 0; j < config.n; ++j) {
      const bool j_correct = result.correct.count(j) > 0;
      if (!vect[j].has_value()) continue;
      if (j_correct) {
        if (*vect[j] == proposals[j]) {
          ++correct_entries;
        } else {
          result.vector_validity = false;  // falsified correct entry
        }
      }
    }
    result.min_correct_entries =
        std::min(result.min_correct_entries, correct_entries);
    if (correct_entries < floor_entries) result.vector_validity = false;
  }
  if (result.decisions.empty()) result.vector_validity = false;

  // Detector reliability: correct processes never accuse correct ones.
  result.detectors_reliable = true;
  for (std::uint32_t i : result.correct) {
    for (const bft::FaultRecord& rec : views[i]->nonmuteness().records()) {
      result.records.push_back(rec);
      result.declared_faulty.insert(rec.culprit.value);
      if (result.correct.count(rec.culprit.value) > 0) {
        result.detectors_reliable = false;
      }
    }
    result.max_message_bytes = std::max(
        result.max_message_bytes, views[i]->send_stats().max_message_bytes);
    result.protocol_bytes += views[i]->send_stats().bytes;
    if (const crypto::CachingVerifier* cache = views[i]->verify_cache()) {
      const crypto::VerifyCacheStats s = cache->stats();
      result.verify_cache_stats.hits += s.hits;
      result.verify_cache_stats.misses += s.misses;
      result.verify_cache_stats.evictions += s.evictions;
    }
  }

  result.run_stats.verify.cache_hits = result.verify_cache_stats.hits;
  result.run_stats.verify.cache_misses = result.verify_cache_stats.misses;
  result.run_stats.verify.cache_evictions =
      result.verify_cache_stats.evictions;
  if (pool) {
    const crypto::VerifyPoolStats ps = pool->stats();
    result.run_stats.verify.pool_workers = pool->workers();
    result.run_stats.verify.pool_jobs = ps.jobs;
    result.run_stats.verify.pool_dispatched = ps.dispatched_jobs;
    result.run_stats.verify.pool_batches = ps.batches;
    result.run_stats.verify.pool_peak_queue = ps.peak_queue_depth;
  }

  return result;
}

CrashScenarioResult run_crash_scenario(const CrashScenarioConfig& config) {
  MODUBFT_EXPECTS(config.crash_times.empty() ||
                  config.crash_times.size() == config.n);

  const std::vector<consensus::Value> proposals =
      default_proposals(config.n, config.proposals);

  std::vector<std::optional<SimTime>> crash_times = config.crash_times;
  crash_times.resize(config.n);

  runtime::SubstrateConfig world_cfg;
  world_cfg.backend = config.substrate;
  world_cfg.n = config.n;
  world_cfg.seed = config.seed;
  world_cfg.latency = config.latency;
  world_cfg.max_time = config.max_time;
  world_cfg.budget = config.budget;
  std::unique_ptr<runtime::Substrate> world =
      runtime::make_substrate(world_cfg);

  CrashScenarioResult result;
  std::mutex decide_mu;

  for (std::uint32_t i = 0; i < config.n; ++i) {
    const ProcessId id{i};
    if (!crash_times[i].has_value()) result.correct.insert(i);

    fd::OracleConfig oracle = config.oracle;
    oracle.seed = config.oracle.seed ^ (0x1000 + i);  // independent mistakes
    auto detector =
        std::make_shared<fd::OracleDetector>(crash_times, oracle);

    auto on_decide = [&result, &decide_mu, i](ProcessId,
                                              const consensus::Decision& d) {
      std::lock_guard<std::mutex> lock(decide_mu);
      result.decisions.emplace(i, d);
    };

    std::unique_ptr<sim::Actor> actor;
    if (config.protocol == CrashProtocol::kHurfinRaynal) {
      actor = std::make_unique<consensus::HurfinRaynalActor>(
          config.n, proposals[i], detector, on_decide);
    } else {
      actor = std::make_unique<consensus::ChandraTouegActor>(
          config.n, proposals[i], detector, on_decide);
    }
    world->set_actor(id, std::move(actor));
    if (crash_times[i].has_value()) {
      world->crash(CrashSpec{id, *crash_times[i], std::nullopt});
    }
  }

  const runtime::RunResult run = world->run();
  result.outcome = run.outcome;
  result.clean = run.clean;
  result.unstopped = run.unstopped;
  result.run_stats = run.stats;
  result.net = run.stats.net;

  result.termination = true;
  for (std::uint32_t i : result.correct) {
    if (result.decisions.count(i) == 0) result.termination = false;
  }

  result.agreement = true;
  result.validity = true;
  std::optional<consensus::Value> decided;
  for (auto& [i, d] : result.decisions) {
    if (result.correct.count(i) == 0) continue;
    if (!decided.has_value()) decided = d.value;
    if (*decided != d.value) result.agreement = false;
    bool proposed = false;
    for (consensus::Value v : proposals) proposed = proposed || v == d.value;
    if (!proposed) result.validity = false;
    result.max_decision_round = std::max(result.max_decision_round, d.round);
    result.last_decision_time = std::max(result.last_decision_time, d.time);
  }

  return result;
}

LockstepScenarioResult run_lockstep_scenario(
    const LockstepScenarioConfig& config) {
  bft::LockstepConfig lcfg;
  lcfg.n = config.n;
  lcfg.f = config.f;
  lcfg.rounds = config.rounds;
  lcfg.muteness = tune_muteness(fd::MutenessConfig{}, config.substrate);

  crypto::SignatureSystem keys =
      make_keys(Scheme::kHmac, config.n, config.seed);

  runtime::SubstrateConfig world_cfg;
  world_cfg.backend = config.substrate;
  world_cfg.n = config.n;
  world_cfg.seed = config.seed;
  world_cfg.latency = config.latency;
  world_cfg.max_time = config.max_time;
  world_cfg.budget = config.budget;
  std::unique_ptr<runtime::Substrate> world =
      runtime::make_substrate(world_cfg);

  LockstepScenarioResult result;
  std::mutex done_mu;

  std::set<std::uint32_t> crashed;
  for (const CrashSpec& c : config.crashes) {
    MODUBFT_EXPECTS(c.who.value < config.n);
    crashed.insert(c.who.value);
  }

  std::vector<const bft::TransformedActor*> views(config.n, nullptr);
  for (std::uint32_t i = 0; i < config.n; ++i) {
    const ProcessId id{i};
    if (crashed.count(i) == 0) result.correct.insert(i);
    auto actor = bft::make_lockstep_actor(
        lcfg, keys.signers[i].get(), keys.verifier,
        [&result, &done_mu, i](ProcessId, Round r, SimTime) {
          std::lock_guard<std::mutex> lock(done_mu);
          result.finished.emplace(i, r);
        },
        &views[i]);
    world->set_actor(id, std::move(actor));
  }
  for (const CrashSpec& c : config.crashes) world->crash(c);

  const runtime::RunResult run = world->run();
  result.outcome = run.outcome;
  result.clean = run.clean;
  result.unstopped = run.unstopped;
  result.run_stats = run.stats;

  result.all_correct_finished = true;
  for (std::uint32_t i : result.correct) {
    auto it = result.finished.find(i);
    if (it == result.finished.end() || it->second.value < config.rounds) {
      result.all_correct_finished = false;
    }
  }

  for (std::uint32_t i : result.correct) {
    for (const bft::FaultRecord& rec : views[i]->records()) {
      result.records.push_back(rec);
      if (result.correct.count(rec.culprit.value) > 0) {
        result.no_false_accusations = false;
      }
    }
  }

  return result;
}

SmrScenarioResult run_smr_scenario(const SmrScenarioConfig& config) {
  const bool client_mode = config.clients.has_value();
  // With live clients the workload defaults to empty — the clients ARE
  // the workload, submitting over the request path.
  const std::vector<smr::Command> workload =
      config.workload.empty() && !client_mode ? sample_workload()
                                              : config.workload;
  const bool checkpointing = config.checkpoint_interval > 0;
  const std::uint32_t num_clients =
      client_mode ? config.clients->count : 0u;
  // Authenticated client mode defaults to the fault model: on when the
  // backend admits forgery (Byzantine), off under crash faults.  The
  // explicit-false override is the body-forgery negative control.
  const bool client_auth =
      client_mode && config.clients->authenticate.value_or(
                         config.backend == smr::Backend::kByzantine);

  // Clients hold the keyring slots after the replicas.  Key derivation is
  // prefix-stable, so a pre-client run's replica keys are unchanged.
  crypto::SignatureSystem keys =
      make_keys(config.scheme, config.n + num_clients, config.seed);

  std::vector<std::optional<SimTime>> crash_times(config.n);
  std::vector<CrashSpec> crash_specs(config.n);
  for (const CrashSpec& c : config.crashes) {
    MODUBFT_EXPECTS(c.who.value < config.n);
    MODUBFT_EXPECTS(!c.restart_at.has_value() ||
                    (checkpointing && *c.restart_at > c.at));
    crash_times[c.who.value] = c.at;
    crash_specs[c.who.value] = c;
  }

  runtime::SubstrateConfig world_cfg;
  world_cfg.backend = config.substrate;
  // Clients are ordinary substrate processes on ids [n, n + count).
  world_cfg.n = config.n + num_clients;
  world_cfg.seed = config.seed;
  world_cfg.latency = config.latency;
  world_cfg.max_time = config.max_time;
  world_cfg.budget = config.budget;
  world_cfg.link_faults = config.link_faults;
  std::unique_ptr<runtime::Substrate> world =
      runtime::make_substrate(world_cfg);

  SmrScenarioResult result;

  // Byzantine backend: one verification pool shared by every replica.
  // The sim default of 0 workers is the synchronous pool — identical
  // execution order to no pool at all, but with accounting.  Wall-clock
  // substrates size the pool to the machine: up to 3 workers, but never
  // more than the spare cores — on a box with no spare cores the pool
  // degrades to synchronous, where prologue jobs run inline on the
  // dispatching thread (same semantics, no cross-thread handoff to lose
  // time on).  An explicit verify_workers overrides both.
  std::shared_ptr<crypto::VerifyPool> pool;
  if (config.backend == smr::Backend::kByzantine) {
    const std::uint32_t hw =
        std::max(1u, std::thread::hardware_concurrency());
    const std::uint32_t workers = config.verify_workers.value_or(
        config.substrate == runtime::Backend::kSim ? 0u
                                                   : std::min(3u, hw - 1));
    pool = std::make_shared<crypto::VerifyPool>(workers);
  }

  // Correct = never crashed, or crashed WITH a restart (expected to
  // recover and match the quorum) — minus the adversary's assumed-faulty.
  for (std::uint32_t i = 0; i < config.n; ++i) {
    const bool comes_back = crash_specs[i].restart_at.has_value();
    if ((!crash_times[i].has_value() || comes_back) &&
        config.assume_faulty.count(i) == 0) {
      result.correct.insert(i);
    }
  }
  // Finished replicas stay alive until every correct peer announced done,
  // so late recoverers always find someone to serve their STATE_REQ.
  const std::set<std::uint32_t> await_done =
      checkpointing ? result.correct : std::set<std::uint32_t>{};

  const SimTime retry_delay = config.recovery_retry_delay.value_or(
      config.substrate == runtime::Backend::kSim
          ? 20'000
          : (config.substrate == runtime::Backend::kThreads ? 50'000
                                                            : 100'000));

  // Restarted lives of a Byzantine replica share the first life's verify
  // cache (the cross-restart boundedness satellite exercises this).
  std::vector<std::shared_ptr<crypto::CachingVerifier>> caches(config.n);

  // views[i] always points at the CURRENT life of replica i; a restart
  // factory rewrites the slot on the node's own thread, and run() joins
  // every node before the views are read back.
  std::vector<const smr::Replica*> views(config.n, nullptr);

  // Staged ingest default mirrors the verify-pool default: off on the
  // deterministic simulator (whose event loop never forms a batch), on
  // for the wall-clock substrates.
  const bool staged_ingest = config.staged_ingest.value_or(
      config.substrate != runtime::Backend::kSim);

  auto make_rcfg = [&](std::uint32_t i, bool recover) {
    smr::ReplicaConfig rcfg;
    rcfg.n = config.n;
    rcfg.backend = config.backend;
    rcfg.slots = config.slots;
    rcfg.window = config.window;
    rcfg.batch = config.batch;
    rcfg.staged_ingest = staged_ingest;
    if (config.backend == smr::Backend::kCrashHurfinRaynal) {
      fd::OracleConfig oracle = config.oracle;
      oracle.seed = config.oracle.seed ^ (0x1000 + i);
      rcfg.detector =
          std::make_shared<fd::OracleDetector>(crash_times, oracle);
    } else {
      rcfg.bft.n = config.n;
      rcfg.bft.f = config.f;
      rcfg.bft.muteness = tune_muteness(fd::MutenessConfig{}, config.substrate);
      rcfg.bft.suspicion_poll_period =
          tune_poll_period(config.substrate, std::nullopt);
      rcfg.bft.verify_pool = pool;
      rcfg.bft.shared_verify_cache = caches[i];
      rcfg.bft.validate();
      rcfg.signer = keys.signers[i].get();
      rcfg.verifier = keys.verifier;
    }
    if (checkpointing) {
      rcfg.signer = keys.signers[i].get();
      rcfg.verifier = keys.verifier;
      rcfg.checkpoint.interval = config.checkpoint_interval;
      rcfg.checkpoint.retry_delay = retry_delay;
      rcfg.checkpoint.recover = recover;
      rcfg.checkpoint.trust_unverified =
          recover && config.recovery_trust_unverified;
      rcfg.await_done = await_done;
    }
    if (client_mode) {
      rcfg.client.num_clients = num_clients;
      rcfg.client.max_pending = config.clients->max_pending;
      // Missing-body fetch retries pace like the recovery retries: both
      // re-ask peers for state that is known to exist somewhere.
      rcfg.client.fetch_retry_delay = retry_delay;
      rcfg.client.authenticate = client_auth;
      // The eligibility window must cover the client's outstanding span
      // (or genuine decisions get deferred): the open-loop cap, or 1 for
      // the strictly-in-order closed loop.
      rcfg.client.seq_window = config.clients->seq_window.value_or(
          config.clients->open_loop ? config.clients->max_outstanding : 1u);
      if (client_auth && rcfg.verifier == nullptr) {
        rcfg.verifier = keys.verifier;
      }
    }
    return rcfg;
  };

  // Commit log (client mode): every command the reference replica — the
  // lowest-id never-crashed one — applies, with its slot.  The auditor
  // checks client-accepted replies against this map, and a re-applied id
  // (commit_log_duplicates) is an exactly-once violation.  The callback
  // runs on the reference replica's node thread; the results are read
  // after run() joins it, but the mutex also covers a restart factory
  // racing a reader on another thread.
  std::uint32_t commit_ref = 0;
  while (commit_ref < config.n && crash_times[commit_ref].has_value()) {
    ++commit_ref;
  }
  std::mutex commit_mu;
  smr::CommitFn log_commit;
  if (client_mode && commit_ref < config.n) {
    log_commit = [&result, &commit_mu](InstanceId slot,
                                       const smr::Command* cmd,
                                       const smr::KvStore&) {
      if (cmd == nullptr) return;
      std::lock_guard<std::mutex> lock(commit_mu);
      const bool fresh =
          result.commit_log
              .emplace(cmd->id, std::make_pair(slot.value, *cmd))
              .second;
      if (!fresh) ++result.commit_log_duplicates;
    };
  }

  auto install = [&](ProcessId id, std::unique_ptr<sim::Actor> actor) {
    if (config.wrap_actor) actor = config.wrap_actor(id, std::move(actor));
    world->set_actor(id, std::move(actor));
  };

  // Per-replica workload: the adversary harness may preload SELECTED
  // replicas with extra command bodies (fabricated client ids the rest of
  // Π never saw) to model a Byzantine proposer deciding phantoms.
  auto workload_for = [&](std::uint32_t i) {
    auto ew = config.extra_workload.find(i);
    if (ew == config.extra_workload.end()) return workload;
    std::vector<smr::Command> w = workload;
    w.insert(w.end(), ew->second.begin(), ew->second.end());
    return w;
  };

  for (std::uint32_t i = 0; i < config.n; ++i) {
    const ProcessId id{i};
    if (config.backend == smr::Backend::kByzantine &&
        crash_specs[i].restart_at.has_value()) {
      caches[i] = std::make_shared<crypto::CachingVerifier>(
          keys.verifier, bft::BftConfig{}.verify_cache_capacity);
    }

    auto replica = std::make_unique<smr::Replica>(
        make_rcfg(i, false), workload_for(i),
        i == commit_ref ? log_commit : smr::CommitFn{});
    views[i] = replica.get();
    install(id, std::move(replica));
    if (crash_times[i].has_value()) {
      world->crash(crash_specs[i]);
      if (crash_specs[i].restart_at.has_value()) {
        world->restart(crash_specs[i], [&, i, w = workload_for(i)] {
          auto fresh = std::make_unique<smr::Replica>(
              make_rcfg(i, /*recover=*/true), w, smr::CommitFn{});
          views[i] = fresh.get();
          std::unique_ptr<sim::Actor> actor = std::move(fresh);
          if (config.wrap_actor) {
            actor = config.wrap_actor(ProcessId{i}, std::move(actor));
          }
          return actor;
        });
      }
    }
  }

  // Client actors (never wrapped: wrap_actor targets replicas, and the
  // adversary model here is a faulty SERVICE, not a faulty client).
  std::vector<const client::Client*> client_views(num_clients, nullptr);
  if (client_mode) {
    const ClientLoadConfig& cl = *config.clients;
    const SimTime retry_base = cl.retry_base.value_or(
        config.substrate == runtime::Backend::kSim
            ? 40'000
            : (config.substrate == runtime::Backend::kThreads ? 200'000
                                                              : 400'000));
    for (std::uint32_t k = 0; k < num_clients; ++k) {
      client::ClientConfig ccfg;
      ccfg.n = config.n;
      ccfg.f = config.f;
      ccfg.backend = config.backend;
      ccfg.open_loop = cl.open_loop;
      ccfg.interval = cl.interval;
      ccfg.max_outstanding = cl.max_outstanding;
      ccfg.retry_base = retry_base;
      ccfg.failover_after = cl.failover_after;
      ccfg.contact = k % config.n;
      ccfg.trust_first_reply = cl.trust_first_reply;
      if (client_auth) ccfg.signer = keys.signers[config.n + k].get();
      for (std::uint32_t o = 0; o < cl.ops_per_client; ++o) {
        client::ClientOp op;
        const std::uint32_t key = (k * 7 + o * 3) % cl.keyspace;
        op.key = "k" + std::to_string(key);
        if (o % 5 == 4) {
          op.op = smr::Command::Op::kDel;
        } else {
          op.op = smr::Command::Op::kPut;
          op.value = "v" + std::to_string(k) + "_" + std::to_string(o);
        }
        ccfg.ops.push_back(std::move(op));
      }
      auto actor = std::make_unique<client::Client>(std::move(ccfg));
      client_views[k] = actor.get();
      world->set_actor(ProcessId{config.n + k}, std::move(actor));
    }
  }

  const runtime::RunResult run = world->run();
  result.outcome = run.outcome;
  result.clean = run.clean;
  result.unstopped = run.unstopped;
  result.run_stats = run.stats;

  result.all_committed = true;
  result.stores_agree = true;
  const smr::Replica* reference = nullptr;
  for (std::uint32_t i : result.correct) {
    result.committed.emplace(i, views[i]->committed_slots());
    if (views[i]->committed_slots() < config.slots) {
      result.all_committed = false;
    }
    result.stores.emplace(i, views[i]->store().contents());
    if (reference == nullptr) {
      reference = views[i];
      result.store = views[i]->store().contents();
    } else if (views[i]->store().contents() != reference->store().contents()) {
      result.stores_agree = false;
    }
    if (crash_specs[i].restart_at.has_value() && !views[i]->recovering() &&
        views[i]->pipeline_stats().recovery_join_us > 0) {
      result.recovered.insert(i);
    }
  }
  if (result.correct.empty()) {
    result.all_committed = false;
    result.stores_agree = false;
  }

  // Pipeline + verification summaries (see PipelineSummary's aggregation
  // contract: reference-replica tallies, summed drop counters, max peak).
  runtime::PipelineSummary& pipe = result.run_stats.pipeline;
  pipe.window = config.window;
  pipe.batch = config.batch;
  double avg_sum = 0.0;
  std::uint64_t avg_count = 0;
  for (std::uint32_t i : result.correct) {
    const smr::PipelineStats& ps = views[i]->pipeline_stats();
    if (views[i] == reference) {
      pipe.slots_committed = ps.slots_committed;
      pipe.commands_committed = ps.commands_committed;
      pipe.noop_slots = ps.noop_slots;
      pipe.max_batch = ps.max_batch;
      pipe.checkpoints_taken = ps.checkpoints_taken;
      pipe.checkpoint_certs = ps.checkpoint_certs;
    }
    pipe.window_peak = std::max(pipe.window_peak, ps.window_peak);
    pipe.future_buffered += ps.future_buffered;
    pipe.future_dropped += ps.future_dropped;
    pipe.stale_dropped += ps.stale_dropped;
    pipe.log_truncated += ps.log_truncated;
    pipe.log_peak = std::max(pipe.log_peak, ps.log_peak);
    pipe.state_reqs += ps.state_reqs;
    pipe.state_resps += ps.state_resps;
    pipe.recovery_installs += ps.recovery_installs;
    pipe.recovery_rejects += ps.recovery_rejects;
    if (ps.recovery_join_us > 0 &&
        ps.recovery_join_us >= ps.recovery_start_us) {
      pipe.recovery_us = std::max(
          pipe.recovery_us, static_cast<std::uint64_t>(
                                ps.recovery_join_us - ps.recovery_start_us));
    }
    avg_sum += ps.avg_window();
    avg_count += 1;
    const smr::IngestStats& is = views[i]->ingest_stats();
    runtime::IngestSummary& ing = result.run_stats.ingest;
    ing.batches += is.batches;
    ing.batch_messages += is.batch_messages;
    ing.max_batch = std::max(ing.max_batch, is.max_batch);
    ing.prologue_frames += is.prologue_frames;
    ing.prologue_jobs += is.prologue_jobs;
    ing.staged_sends += is.staged_sends;
    ing.staged_bytes += is.staged_bytes;
    ing.sign_flushes += is.sign_flushes;
    ing.encode_reuses += is.encode_reuses;
    if (const crypto::CachingVerifier* cache = views[i]->verify_cache()) {
      const crypto::VerifyCacheStats cs = cache->stats();
      result.run_stats.verify.cache_hits += cs.hits;
      result.run_stats.verify.cache_misses += cs.misses;
      result.run_stats.verify.cache_evictions += cs.evictions;
    }
  }
  if (avg_count > 0) pipe.avg_window = avg_sum / static_cast<double>(avg_count);
  result.run_stats.ingest.staged = staged_ingest ? 1 : 0;
  if (pool) {
    const crypto::VerifyPoolStats ps = pool->stats();
    result.run_stats.verify.pool_workers = pool->workers();
    result.run_stats.verify.pool_jobs = ps.jobs;
    result.run_stats.verify.pool_dispatched = ps.dispatched_jobs;
    result.run_stats.verify.pool_batches = ps.batches;
    result.run_stats.verify.pool_peak_queue = ps.peak_queue_depth;
  }

  if (client_mode) {
    runtime::ClientSummary& cs = result.run_stats.client;
    cs.clients = num_clients;
    std::vector<SimTime> latencies;
    for (std::uint32_t k = 0; k < num_clients; ++k) {
      const std::uint32_t pid = config.n + k;
      const client::ClientStats& st = client_views[k]->stats();
      result.client_stats.emplace(pid, st);
      result.client_accepted.emplace(pid, client_views[k]->accepted());
      if (client_views[k]->finished()) result.clients_done.insert(pid);
      cs.submitted += st.submitted;
      cs.retries += st.retries;
      cs.failovers += st.failovers;
      cs.busy += st.busy;
      cs.replies += st.replies;
      cs.duplicate_replies += st.duplicate_replies;
      cs.mismatched_replies += st.mismatched_replies;
      cs.accepted += st.accepted;
      cs.fetches_answered += st.fetches_answered;
      cs.bounds_sent += st.bounds_sent;
      latencies.insert(latencies.end(), st.latencies_us.begin(),
                       st.latencies_us.end());
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      auto pct = [&](std::uint64_t permille) {
        const std::size_t idx = std::min(
            latencies.size() - 1,
            static_cast<std::size_t>(permille * latencies.size() / 1000));
        return latencies[idx];
      };
      cs.p50_us = pct(500);
      cs.p99_us = pct(990);
      cs.p999_us = pct(999);
    }
    for (std::uint32_t i : result.correct) {
      const smr::ClientServiceStats& rs = views[i]->client_service_stats();
      cs.requests += rs.requests;
      cs.duplicates += rs.duplicates;
      cs.replays += rs.replays;
      cs.admitted += rs.admitted;
      cs.sheds += rs.sheds;
      cs.relays_sent += rs.relays_sent;
      cs.relays_received += rs.relays_received;
      cs.relays_dropped += rs.relays_dropped;
      cs.fetches_sent += rs.fetches_sent;
      cs.fetches_served += rs.fetches_served;
      cs.replies_sent += rs.replies_sent;
      cs.parked_commits += rs.parked_commits;
      cs.rejects += rs.rejects;
      cs.queue_peak = std::max(cs.queue_peak, rs.queue_peak);
      cs.auth_rejects += rs.auth_rejects;
      cs.ineligible_skips += rs.ineligible_skips;
      cs.origin_drops += rs.origin_drops;
      cs.bounds_recorded += rs.bounds_recorded;
    }
  }

  return result;
}

}  // namespace modubft::faults
