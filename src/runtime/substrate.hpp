// Substrate abstraction: one runtime contract over the three executors.
//
// The protocols are written once against sim::Actor / sim::Context; this
// layer makes the *harness* substrate-generic too.  A `Substrate` owns one
// of the three runtimes —
//   * kSim     — sim::Simulation: deterministic event queue, virtual time;
//   * kThreads — transport::Cluster: one OS thread per process, in-memory
//                MPSC mailboxes, wall clock;
//   * kTcp     — transport::TcpCluster: loopback sockets, resilient
//                framed channels, optional link-fault injection —
// behind one interface: install actors, schedule crashes (CrashSpec),
// observe deliveries, run to completion, and read back a unified
// RunResult.  Scenario runners (faults/scenario.hpp) target this interface
// and therefore execute unmodified on all three backends; docs/RUNTIME.md
// spells out the contract each implementation upholds.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "faults/fault_spec.hpp"
#include "faults/link_fault.hpp"
#include "sim/actor.hpp"
#include "sim/simulation.hpp"
#include "transport/resilient_channel.hpp"
#include "transport/tcp_cluster.hpp"

namespace modubft::runtime {

enum class Backend : std::uint8_t {
  kSim = 0,
  kThreads,
  kTcp,
};

const char* backend_name(Backend b);

/// Parses "sim" / "threads" / "tcp" (the scenario_cli vocabulary).
std::optional<Backend> parse_backend(const std::string& name);

/// Why Substrate::run returned.  Superset of sim::RunOutcome: the
/// wall-clock backends report kAllStopped on a clean run and
/// kBudgetExpired when the budget ran out with live nodes.
enum class RunOutcome : std::uint8_t {
  kQuiescent,      // sim only: no pending events remained
  kAllStopped,     // every live actor called stop()
  kTimeLimit,      // sim only: simulated-time budget exhausted
  kEventLimit,     // sim only: event-count budget exhausted
  kBudgetExpired,  // threads/tcp: wall-clock budget exhausted
};

const char* run_outcome_name(RunOutcome o);

/// Verification-cost counters: the CachingVerifier LRU (summed over the
/// run's correct processes) and the crypto::VerifyPool (one per run).
/// All zero when the scenario attaches neither.
struct VerifySummary {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t pool_workers = 0;
  std::uint64_t pool_jobs = 0;
  std::uint64_t pool_dispatched = 0;  // jobs run on a pool worker
  std::uint64_t pool_batches = 0;
  std::uint64_t pool_peak_queue = 0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// SMR pipeline counters (smr::PipelineStats projected per run): slot /
/// command / batch tallies from one reference correct replica (they agree
/// by construction), buffering-and-drop counters summed over correct
/// replicas, window peak as the max.  All zero outside SMR scenarios.
struct PipelineSummary {
  std::uint64_t window = 0;  // configured W
  std::uint64_t batch = 0;   // configured B
  std::uint64_t slots_committed = 0;
  std::uint64_t commands_committed = 0;
  std::uint64_t noop_slots = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t window_peak = 0;
  double avg_window = 0.0;
  std::uint64_t future_buffered = 0;
  std::uint64_t future_dropped = 0;
  std::uint64_t stale_dropped = 0;
  // --- recovery subsystem (zero when checkpointing is off) ---
  std::uint64_t checkpoints_taken = 0;   // reference replica
  std::uint64_t checkpoint_certs = 0;    // reference replica
  std::uint64_t log_truncated = 0;       // summed over correct replicas
  std::uint64_t log_peak = 0;            // max over correct replicas
  std::uint64_t state_reqs = 0;          // summed
  std::uint64_t state_resps = 0;         // summed
  std::uint64_t recovery_installs = 0;   // summed
  std::uint64_t recovery_rejects = 0;    // summed
  /// Worst request-to-rejoin latency among recovered replicas (µs, 0 if
  /// none recovered).
  std::uint64_t recovery_us = 0;
};

/// Staged-ingest counters (smr::IngestStats summed over a run's correct
/// replicas, plus the staged/sequential knob actually in force).  All
/// zero when staged ingest is off or the substrate never delivered a
/// multi-frame batch — the deterministic simulator in particular
/// dispatches one message per event, so its batches never form.
struct IngestSummary {
  std::uint64_t staged = 0;  // 1 iff the staged pipeline was enabled
  std::uint64_t batches = 0;
  std::uint64_t batch_messages = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t prologue_frames = 0;
  std::uint64_t prologue_jobs = 0;
  std::uint64_t staged_sends = 0;
  std::uint64_t staged_bytes = 0;
  std::uint64_t sign_flushes = 0;
  std::uint64_t encode_reuses = 0;

  double avg_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batch_messages) /
                              static_cast<double>(batches);
  }
};

/// Client/service-layer counters (run_smr_scenario with clients attached;
/// all zero otherwise).  Client-side tallies are summed over all clients
/// — with reply latencies merged into one distribution before the
/// percentiles are cut — and replica-side tallies are summed over the
/// correct replicas (queue_peak as the max: the shed bound is per
/// replica, so the peak is the number the admission cap must dominate).
struct ClientSummary {
  std::uint64_t clients = 0;  // configured client count
  // client side
  std::uint64_t submitted = 0;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t busy = 0;
  std::uint64_t replies = 0;
  std::uint64_t duplicate_replies = 0;
  std::uint64_t mismatched_replies = 0;
  std::uint64_t accepted = 0;
  std::uint64_t fetches_answered = 0;  // CMD_FETCH ids answered with a body
  std::uint64_t bounds_sent = 0;       // SEQ_BOUND refutations sent
  std::uint64_t p50_us = 0;   // merged reply-latency percentiles
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  // replica side (smr::ClientServiceStats)
  std::uint64_t requests = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t replays = 0;
  std::uint64_t admitted = 0;
  std::uint64_t sheds = 0;
  std::uint64_t relays_sent = 0;
  std::uint64_t relays_received = 0;
  std::uint64_t relays_dropped = 0;
  std::uint64_t fetches_sent = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t parked_commits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t queue_peak = 0;  // max over correct replicas
  std::uint64_t auth_rejects = 0;      // bad client signatures rejected
  std::uint64_t ineligible_skips = 0;  // decided ids outside window/bound
  std::uint64_t origin_drops = 0;      // relays over the per-origin cap
  std::uint64_t bounds_recorded = 0;   // verified seq bounds accepted
};

/// Unified counters, comparable across backends.  The core message
/// counters are protocol-level on every substrate (counted at the
/// Context::send boundary and at actor dispatch), so a scenario's message
/// complexity can be diffed sim-vs-threads-vs-tcp field by field.
struct RunStats {
  sim::Stats net;
  /// Virtual end time (sim) — 0 on the wall-clock backends.
  SimTime virtual_time = 0;
  /// Wall-clock run duration in µs (measured on every backend).
  std::uint64_t wall_us = 0;
  /// kTcp only: frames/bytes actually written to sockets (retransmits
  /// included) — the wire-amplification companions to net.bytes_sent.
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  /// kTcp only: fault/recovery counters aggregated over all links.
  transport::TcpLinkStats link;
  /// Verification-cost counters (scenario runners fill these in; the
  /// substrates themselves have no crypto visibility).
  VerifySummary verify;
  /// SMR pipeline counters (run_smr_scenario only).
  PipelineSummary pipeline;
  /// Staged-ingest counters (run_smr_scenario only).
  IngestSummary ingest;
  /// Client/service-layer counters (run_smr_scenario with clients only).
  ClientSummary client;
};

/// One-line JSON object for benchmark emission (keys stable across
/// backends; TCP-only fields are 0 elsewhere).
std::string to_json(Backend backend, const RunStats& stats);

struct RunResult {
  RunOutcome outcome = RunOutcome::kQuiescent;
  /// True iff the run ended without hitting a time/event/budget limit.
  bool clean = false;
  /// Processes still live when a limit hit (named culprits; empty after a
  /// clean run).  Scheduled-crash victims are excluded.
  std::vector<ProcessId> unstopped;
  RunStats stats;
};

struct SubstrateConfig {
  Backend backend = Backend::kSim;
  std::uint32_t n = 0;
  std::uint64_t seed = 1;

  // --- kSim ---
  sim::LatencyModel latency = sim::calm_network();
  SimTime max_time = 120'000'000;
  std::uint64_t max_events = 50'000'000;

  // --- kThreads / kTcp ---
  /// Wall-clock budget; nodes still running afterwards are reported via
  /// RunResult::unstopped.
  std::chrono::milliseconds budget{20'000};

  // --- kTcp ---
  /// Link faults injected below the framing layer (empty = healthy).
  std::vector<faults::LinkFaultSpec> link_faults;
  /// Reconnect / retransmit / timeout policy applied to every link.
  transport::RetryPolicy retry;
};

/// One runtime behind the uniform harness interface.  Usage mirrors the
/// underlying runtimes: set_actor for every id, optional crash/tap
/// scheduling, then exactly one run().
class Substrate {
 public:
  virtual ~Substrate() = default;

  virtual Backend backend() const = 0;
  virtual std::uint32_t n() const = 0;

  /// Installs the actor for `id`.  Call for every id before run().
  virtual void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) = 0;

  /// Schedules a silent halt of `spec.who` at `spec.at` µs after the run
  /// starts — simulated time on kSim, wall clock on kThreads/kTcp.
  /// Messages already handed to the channels may still reach peers.
  virtual void crash(const faults::CrashSpec& spec) = 0;

  /// Schedules the restart half of a kill/restart schedule: `spec` must
  /// have been passed to crash() already and carry `restart_at`; at that
  /// instant `factory()` builds a FRESH actor that takes over the process
  /// (same id, same rng stream, empty timers; outage-era deliveries are
  /// discarded).  One-shot on every backend: a restart that would fire
  /// after the substrate began stopping is abandoned, never a hang.  A
  /// restarted process is expected to stop like any correct one, so it is
  /// NOT excluded from the unstopped audit.
  virtual void restart(const faults::CrashSpec& spec,
                       std::function<std::unique_ptr<sim::Actor>()> factory)
      = 0;

  /// Optional observer invoked on every delivery, before the receiving
  /// actor's on_message.  On the threaded backends calls are serialized by
  /// the runtime; `Delivery::payload` is valid only for the call.
  virtual void set_delivery_tap(
      std::function<void(const sim::Delivery&)> tap) = 0;

  /// Runs to completion (or a limit) and reports the unified outcome.
  virtual RunResult run() = 0;
};

std::unique_ptr<Substrate> make_substrate(SubstrateConfig config);

}  // namespace modubft::runtime
