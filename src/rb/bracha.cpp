#include "rb/bracha.hpp"

#include "common/check.hpp"
#include "common/serial.hpp"

namespace modubft::rb {

namespace {
constexpr std::uint8_t kInitial = 1;
constexpr std::uint8_t kEcho = 2;
constexpr std::uint8_t kReady = 3;

Bytes frame(std::uint8_t phase, ProcessId instance, const Bytes& body) {
  Writer w;
  w.u8(phase);
  w.u32(instance.value);
  w.bytes(body);
  return std::move(w).take();
}
}  // namespace

BrachaActor::BrachaActor(BrachaConfig config, std::optional<Bytes> my_message,
                         DeliverFn on_deliver)
    : config_(config),
      my_message_(std::move(my_message)),
      on_deliver_(std::move(on_deliver)) {
  MODUBFT_EXPECTS(config_.n > 3 * config_.f);
  instances_.resize(config_.n);
}

void BrachaActor::send_phase(sim::Context& ctx, std::uint8_t phase,
                             ProcessId instance, const Bytes& body) {
  ctx.broadcast(frame(phase, instance, body));
}

void BrachaActor::on_start(sim::Context& ctx) {
  if (my_message_.has_value()) {
    send_phase(ctx, kInitial, ctx.id(), *my_message_);
  }
}

void BrachaActor::on_message(sim::Context& ctx, ProcessId from,
                             const Bytes& payload) {
  std::uint8_t phase = 0;
  ProcessId instance;
  Bytes body;
  try {
    Reader r(payload);
    phase = r.u8();
    instance = ProcessId{r.u32()};
    body = r.bytes();
    r.expect_end();
  } catch (const SerialError&) {
    return;  // malformed frames are dropped — nothing is ever detected
  }
  if (phase < kInitial || phase > kReady) return;
  if (instance.value >= config_.n) return;
  handle(ctx, from, phase, instance, body);
}

void BrachaActor::handle(sim::Context& ctx, ProcessId from, std::uint8_t phase,
                         ProcessId instance, const Bytes& body) {
  Instance& inst = instances_[instance.value];
  if (inst.delivered.has_value()) return;

  switch (phase) {
    case kInitial:
      // Only the instance's sender may initiate it.
      if (from != instance) return;
      if (!inst.echoed) {
        inst.echoed = true;
        send_phase(ctx, kEcho, instance, body);
      }
      return;

    case kEcho: {
      std::set<ProcessId>& voters = inst.echoes[body];
      voters.insert(from);
      if (!inst.readied && voters.size() >= config_.echo_quorum()) {
        inst.readied = true;
        send_phase(ctx, kReady, instance, body);
      }
      return;
    }

    case kReady: {
      std::set<ProcessId>& voters = inst.readies[body];
      voters.insert(from);
      if (!inst.readied && voters.size() >= config_.ready_amplify()) {
        inst.readied = true;
        send_phase(ctx, kReady, instance, body);
      }
      if (voters.size() >= config_.deliver_quorum()) {
        inst.delivered = body;
        if (on_deliver_) on_deliver_(instance, body);
      }
      return;
    }

    default:
      return;
  }
}

bool BrachaActor::delivered(ProcessId instance) const {
  MODUBFT_EXPECTS(instance.value < config_.n);
  return instances_[instance.value].delivered.has_value();
}

const Bytes& BrachaActor::delivered_message(ProcessId instance) const {
  MODUBFT_EXPECTS(delivered(instance));
  return *instances_[instance.value].delivered;
}

}  // namespace modubft::rb
