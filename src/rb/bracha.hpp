// Bracha reliable broadcast — the footnote-1 alternative.
//
// Paper footnote 1: "In the asynchronous case, [previous approaches]
// provide only a masking of arbitrary faulty messages by identical faulty
// messages and thus, do not address all types of arbitrary failures."
// Bracha's echo broadcast (1987) is the canonical such approach: without
// signatures, with n > 3f, it guarantees for every broadcast instance
//
//   * validity     — a correct sender's message is delivered by all
//                    correct processes;
//   * consistency  — correct processes never deliver different messages
//                    for the same instance (an equivocating sender is
//                    *masked*: everyone delivers the same one of its
//                    messages, or nobody delivers);
//   * totality     — if any correct process delivers, all do.
//
// What it deliberately does NOT give — and what the DSN paper's
// methodology adds — is *detection*: a Byzantine sender is never
// identified, no faulty set exists, and non-equivocation failures
// (semantic garbage consistently sent to everyone) pass through
// untouched.  Experiment E13 puts the two side by side.
//
// Protocol (per instance, tagged by the sender id):
//   sender:            broadcast INITIAL(m);
//   on INITIAL(m):     broadcast ECHO(m)                       (once);
//   on n−f ECHO(m) or f+1 READY(m):  broadcast READY(m)        (once);
//   on 2f+1 READY(m):  deliver m                                (once).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "sim/actor.hpp"

namespace modubft::rb {

struct BrachaConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;  // requires n > 3f

  std::uint32_t echo_quorum() const { return n - f; }
  std::uint32_t ready_amplify() const { return f + 1; }
  std::uint32_t deliver_quorum() const { return 2 * f + 1; }
};

/// Called on delivery: (instance sender, delivered payload).
using DeliverFn = std::function<void(ProcessId, const Bytes&)>;

/// One process participating in n concurrent broadcast instances (one per
/// potential sender).  If `my_message` is set, this process broadcasts it.
class BrachaActor final : public sim::Actor {
 public:
  BrachaActor(BrachaConfig config, std::optional<Bytes> my_message,
              DeliverFn on_deliver);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;

  bool delivered(ProcessId instance) const;
  const Bytes& delivered_message(ProcessId instance) const;

 private:
  struct Instance {
    bool echoed = false;
    bool readied = false;
    std::optional<Bytes> delivered;
    // votes: message → voters (distinctness enforced per phase)
    std::map<Bytes, std::set<ProcessId>> echoes;
    std::map<Bytes, std::set<ProcessId>> readies;
  };

  void handle(sim::Context& ctx, ProcessId from, std::uint8_t phase,
              ProcessId instance, const Bytes& body);
  void send_phase(sim::Context& ctx, std::uint8_t phase, ProcessId instance,
                  const Bytes& body);

  BrachaConfig config_;
  std::optional<Bytes> my_message_;
  DeliverFn on_deliver_;
  std::vector<Instance> instances_;
};

}  // namespace modubft::rb
