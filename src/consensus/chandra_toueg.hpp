// Chandra–Toueg ◇S consensus (JACM 1996) — the classical baseline.
//
// Implemented as the comparison point for experiment E7: the Hurfin–Raynal
// protocol [8] was published as a *simpler and faster* alternative to this
// algorithm, and the paper builds on HR, so reproducing that relationship
// requires both.
//
// Round r (coordinator c = p_{((r-1) mod n)+1}) has four phases:
//   P1  every process sends ESTIMATE(r, est, ts) to c;
//   P2  c collects a majority of estimates and proposes the one with the
//       highest timestamp ts;
//   P3  every process waits for c's PROPOSE or suspects c: it replies
//       ACK(r) (adopting est := proposal, ts := r) or NACK(r), then moves
//       to round r+1;
//   P4  c collects a majority of replies; if all are ACKs it broadcasts
//       DECIDE (reliable broadcast approximated by relay-once, as in the
//       HR implementation).
// Assumes a majority of correct processes and a ◇S detector.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/messages.hpp"
#include "consensus/value.hpp"
#include "fd/failure_detector.hpp"
#include "sim/actor.hpp"

namespace modubft::consensus {

struct ChandraTouegConfig {
  SimTime suspicion_poll_period = 10'000;
  bool stop_on_decide = true;
};

class ChandraTouegActor final : public sim::Actor {
 public:
  ChandraTouegActor(std::uint32_t n, Value proposal,
                    std::shared_ptr<fd::CrashDetector> detector,
                    DecideFn on_decide, ChandraTouegConfig config = {});

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  static ProcessId coordinator_of(Round r, std::uint32_t n);

  bool decided() const { return decided_; }
  Round current_round() const { return round_; }

 private:
  void begin_round(sim::Context& ctx);
  void handle_now_or_buffer(sim::Context& ctx, const Vote& v);
  void handle_current_round(sim::Context& ctx, const Vote& v);
  void check_suspicion(sim::Context& ctx);
  void coordinator_check_estimates(sim::Context& ctx);
  void coordinator_check_replies(sim::Context& ctx);
  void maybe_finish_round(sim::Context& ctx);
  void decide(sim::Context& ctx, Value value);
  std::size_t majority_size() const { return n_ / 2 + 1; }

  std::uint32_t n_;
  Value est_;
  Round ts_;  // round in which est_ was last adopted (0 = initial)
  std::shared_ptr<fd::CrashDetector> detector_;
  DecideFn on_decide_;
  ChandraTouegConfig config_;

  Round round_;
  bool decided_ = false;

  // Participant side of the current round.
  bool awaiting_propose_ = false;

  // Coordinator side of the current round.
  bool i_am_coordinator_ = false;
  bool proposed_ = false;
  std::map<ProcessId, Vote> estimates_;
  std::size_t acks_ = 0;
  std::size_t nacks_ = 0;
  bool coordinator_done_ = false;

  std::map<std::uint32_t, std::vector<Vote>> future_;
};

}  // namespace modubft::consensus
