#include "consensus/chandra_toueg.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"

namespace modubft::consensus {

ChandraTouegActor::ChandraTouegActor(std::uint32_t n, Value proposal,
                                     std::shared_ptr<fd::CrashDetector> detector,
                                     DecideFn on_decide,
                                     ChandraTouegConfig config)
    : n_(n),
      est_(proposal),
      detector_(std::move(detector)),
      on_decide_(std::move(on_decide)),
      config_(config) {
  MODUBFT_EXPECTS(n_ >= 2);
  MODUBFT_EXPECTS(detector_ != nullptr);
}

ProcessId ChandraTouegActor::coordinator_of(Round r, std::uint32_t n) {
  MODUBFT_EXPECTS(r.value >= 1);
  return ProcessId{(r.value - 1) % n};
}

void ChandraTouegActor::on_start(sim::Context& ctx) {
  round_ = Round{0};
  begin_round(ctx);
  ctx.set_timer(config_.suspicion_poll_period);
}

void ChandraTouegActor::begin_round(sim::Context& ctx) {
  round_ = round_.next();
  i_am_coordinator_ = coordinator_of(round_, n_) == ctx.id();
  awaiting_propose_ = true;
  proposed_ = false;
  estimates_.clear();
  acks_ = 0;
  nacks_ = 0;
  coordinator_done_ = !i_am_coordinator_;

  // P1: everyone sends its estimate to the round coordinator.
  Vote est;
  est.kind = VoteKind::kEstimate;
  est.sender = ctx.id();
  est.round = round_;
  est.value = est_;
  est.value_ts = ts_;
  ctx.send(coordinator_of(round_, n_), encode_vote(est));

  check_suspicion(ctx);

  auto it = future_.find(round_.value);
  if (it != future_.end()) {
    std::vector<Vote> pending = std::move(it->second);
    future_.erase(it);
    for (const Vote& v : pending) {
      if (decided_ || v.round != round_) break;
      handle_current_round(ctx, v);
    }
  }
}

void ChandraTouegActor::on_message(sim::Context& ctx, ProcessId from,
                                   const Bytes& payload) {
  (void)from;
  if (decided_) return;

  Vote v;
  try {
    v = decode_vote(payload);
  } catch (const SerialError& e) {
    log_debug("CT ", ctx.id(), ": dropping malformed vote: ", e.what());
    return;
  }

  if (v.kind == VoteKind::kDecide) {
    Vote relay = v;
    relay.sender = ctx.id();
    ctx.broadcast(encode_vote(relay));
    decide(ctx, v.value);
    return;
  }

  handle_now_or_buffer(ctx, v);
}

void ChandraTouegActor::handle_now_or_buffer(sim::Context& ctx, const Vote& v) {
  if (v.round.value < round_.value) return;  // stale
  if (v.round.value > round_.value) {
    future_[v.round.value].push_back(v);
    return;
  }
  handle_current_round(ctx, v);
}

void ChandraTouegActor::handle_current_round(sim::Context& ctx, const Vote& v) {
  switch (v.kind) {
    case VoteKind::kEstimate:
      if (!i_am_coordinator_ || proposed_) return;
      estimates_.emplace(v.sender, v);
      coordinator_check_estimates(ctx);
      break;

    case VoteKind::kPropose: {
      if (v.sender != coordinator_of(round_, n_)) return;
      if (!awaiting_propose_) return;  // already nacked this round
      // P3 (accept branch): adopt the proposal and acknowledge.
      est_ = v.value;
      ts_ = round_;
      awaiting_propose_ = false;
      Vote ack;
      ack.kind = VoteKind::kAck;
      ack.sender = ctx.id();
      ack.round = round_;
      ctx.send(coordinator_of(round_, n_), encode_vote(ack));
      maybe_finish_round(ctx);
      break;
    }

    case VoteKind::kAck:
      if (!i_am_coordinator_ || coordinator_done_) return;
      acks_ += 1;
      coordinator_check_replies(ctx);
      break;

    case VoteKind::kNack:
      if (!i_am_coordinator_ || coordinator_done_) return;
      nacks_ += 1;
      coordinator_check_replies(ctx);
      break;

    default:
      break;  // CURRENT/NEXT belong to the HR protocol
  }
}

void ChandraTouegActor::coordinator_check_estimates(sim::Context& ctx) {
  // P2: propose the estimate with the highest adoption timestamp.
  if (proposed_ || estimates_.size() < majority_size()) return;
  const Vote* best = nullptr;
  for (const auto& [sender, vote] : estimates_) {
    if (best == nullptr || vote.value_ts.value > best->value_ts.value) {
      best = &vote;
    }
  }
  MODUBFT_ASSERT(best != nullptr);
  est_ = best->value;
  proposed_ = true;

  Vote propose;
  propose.kind = VoteKind::kPropose;
  propose.sender = ctx.id();
  propose.round = round_;
  propose.value = est_;
  ctx.broadcast(encode_vote(propose));
}

void ChandraTouegActor::coordinator_check_replies(sim::Context& ctx) {
  // P4: with a majority of replies, decide if they are unanimous ACKs.
  if (coordinator_done_ || acks_ + nacks_ < majority_size()) return;
  coordinator_done_ = true;
  if (nacks_ == 0) {
    Vote dec;
    dec.kind = VoteKind::kDecide;
    dec.sender = ctx.id();
    dec.round = round_;
    dec.value = est_;
    ctx.broadcast(encode_vote(dec));
    decide(ctx, est_);
    return;
  }
  maybe_finish_round(ctx);
}

void ChandraTouegActor::check_suspicion(sim::Context& ctx) {
  // P3 (suspicion branch): give up on this round's coordinator.
  if (decided_ || !awaiting_propose_) return;
  const ProcessId coord = coordinator_of(round_, n_);
  if (coord == ctx.id()) return;
  if (!detector_->suspects(coord, ctx.now())) return;
  awaiting_propose_ = false;
  Vote nack;
  nack.kind = VoteKind::kNack;
  nack.sender = ctx.id();
  nack.round = round_;
  ctx.send(coord, encode_vote(nack));
  maybe_finish_round(ctx);
}

void ChandraTouegActor::maybe_finish_round(sim::Context& ctx) {
  // A participant leaves the round once it replied; a coordinator also
  // needs its P4 to have completed.
  if (decided_) return;
  if (awaiting_propose_) return;
  if (!coordinator_done_) return;
  begin_round(ctx);
}

void ChandraTouegActor::on_timer(sim::Context& ctx, std::uint64_t) {
  if (decided_) return;
  check_suspicion(ctx);
  ctx.set_timer(config_.suspicion_poll_period);
}

void ChandraTouegActor::decide(sim::Context& ctx, Value value) {
  if (decided_) return;
  decided_ = true;
  log_debug("CT ", ctx.id(), " decides ", value, " in ", round_);
  if (on_decide_) {
    on_decide_(ctx.id(), Decision{value, round_, ctx.now()});
  }
  if (config_.stop_on_decide) ctx.stop();
}

}  // namespace modubft::consensus
