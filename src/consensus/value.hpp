// Consensus problem types shared by the crash-model and BFT protocols.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/ids.hpp"

namespace modubft::consensus {

/// A proposable value.  Protocols treat it as opaque; 64 bits is enough to
/// carry a command id / digest in the replicated-state-machine layer.
using Value = std::uint64_t;

/// Outcome of a consensus instance at one process.
struct Decision {
  Value value = 0;
  Round round;     // the round in which this process decided
  SimTime time = 0;  // when it decided
};

/// Invoked exactly once per deciding process.
using DecideFn = std::function<void(ProcessId, const Decision&)>;

/// Vector-consensus decision (paper §5.1, Vector Validity).  entries[j] is
/// the value proposed by p_{j+1}, or nullopt ("null" in the paper) if that
/// process's proposal was not seen.
struct VectorDecision {
  std::vector<std::optional<Value>> entries;
  Round round;
  SimTime time = 0;
};

using VectorDecideFn = std::function<void(ProcessId, const VectorDecision&)>;

}  // namespace modubft::consensus
