// Hurfin–Raynal ◇S consensus protocol (paper Figure 2, FIFO-adapted).
//
// The crash-model protocol the paper transforms.  Round r is coordinated by
// p_{((r-1) mod n)+1}; processes vote CURRENT (adopt the coordinator's
// estimate) or NEXT (move on).  A majority of CURRENT votes decides; a
// majority of NEXT votes starts round r+1; a process in state q1 that saw a
// majority of votes but neither majority "changes its mind" and votes NEXT
// to unblock the round.
//
// Assumptions (paper §4): majority of correct processes (at most
// ⌊(n-1)/2⌋ crashes) and a failure detector of class ◇S.
//
// This implementation is event-driven: Figure 2's `while` loop body becomes
// the message handler, and its `upon p_c ∈ suspected` guard is evaluated on
// every event plus a periodic poll timer (suspicion is time-driven).  Per
// footnote 5, votes for future rounds are buffered and votes for past
// rounds discarded — the FIFO-channel adaptation.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/messages.hpp"
#include "consensus/value.hpp"
#include "fd/failure_detector.hpp"
#include "sim/actor.hpp"

namespace modubft::consensus {

struct HurfinRaynalConfig {
  /// Period of the failure-detector poll timer.
  SimTime suspicion_poll_period = 10'000;

  /// If true (default), the actor calls Context::stop() after deciding,
  /// mirroring the paper's `return(est)`.
  bool stop_on_decide = true;
};

class HurfinRaynalActor final : public sim::Actor {
 public:
  /// `detector` is the ◇S module (read-only for the protocol, per the
  /// paper); `on_decide` fires exactly once, when this process decides.
  HurfinRaynalActor(std::uint32_t n, Value proposal,
                    std::shared_ptr<fd::CrashDetector> detector,
                    DecideFn on_decide, HurfinRaynalConfig config = {});

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  /// Round coordinator per the paper's rotating-coordinator rule.
  static ProcessId coordinator_of(Round r, std::uint32_t n);

  bool decided() const { return decided_; }
  Round current_round() const { return round_; }

 private:
  enum class AutomatonState { kQ0, kQ1, kQ2 };

  void begin_round(sim::Context& ctx, Round r);
  void handle_vote(sim::Context& ctx, const Vote& v);
  void check_suspicion(sim::Context& ctx);
  void check_change_mind(sim::Context& ctx);
  void check_round_exit(sim::Context& ctx);
  void decide(sim::Context& ctx, Value value);
  void broadcast_vote(sim::Context& ctx, VoteKind kind);
  bool majority(std::size_t count) const { return 2 * count > n_; }

  std::uint32_t n_;
  Value est_;
  std::shared_ptr<fd::CrashDetector> detector_;
  DecideFn on_decide_;
  HurfinRaynalConfig config_;

  Round round_;  // r_i; 0 before the first round
  AutomatonState state_ = AutomatonState::kQ0;
  std::size_t nb_current_ = 0;
  std::size_t nb_next_ = 0;
  std::set<ProcessId> rec_from_;
  bool decided_ = false;
  bool sent_next_this_round_ = false;
  std::map<std::uint32_t, std::vector<Vote>> future_votes_;
};

}  // namespace modubft::consensus
