#include "consensus/hurfin_raynal.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"

namespace modubft::consensus {

HurfinRaynalActor::HurfinRaynalActor(std::uint32_t n, Value proposal,
                                     std::shared_ptr<fd::CrashDetector> detector,
                                     DecideFn on_decide,
                                     HurfinRaynalConfig config)
    : n_(n),
      est_(proposal),
      detector_(std::move(detector)),
      on_decide_(std::move(on_decide)),
      config_(config) {
  MODUBFT_EXPECTS(n_ >= 2);
  MODUBFT_EXPECTS(detector_ != nullptr);
}

ProcessId HurfinRaynalActor::coordinator_of(Round r, std::uint32_t n) {
  MODUBFT_EXPECTS(r.value >= 1);
  // Paper line 4: c = (r_i mod n) + 1 evaluated before r_i is incremented,
  // i.e. round 1 is coordinated by p_1.
  return ProcessId{(r.value - 1) % n};
}

void HurfinRaynalActor::on_start(sim::Context& ctx) {
  begin_round(ctx, Round{1});
  ctx.set_timer(config_.suspicion_poll_period);
}

void HurfinRaynalActor::begin_round(sim::Context& ctx, Round r) {
  round_ = r;
  state_ = AutomatonState::kQ0;
  nb_current_ = 0;
  nb_next_ = 0;
  rec_from_.clear();
  sent_next_this_round_ = false;

  if (coordinator_of(round_, n_) == ctx.id()) {
    broadcast_vote(ctx, VoteKind::kCurrent);  // line 5
  }
  check_suspicion(ctx);

  // Replay votes that arrived early for this round (footnote 5).
  auto it = future_votes_.find(round_.value);
  if (it != future_votes_.end()) {
    std::vector<Vote> pending = std::move(it->second);
    future_votes_.erase(it);
    for (const Vote& v : pending) {
      if (decided_ || round_ != v.round) break;  // a replay may advance us
      handle_vote(ctx, v);
    }
  }
}

void HurfinRaynalActor::broadcast_vote(sim::Context& ctx, VoteKind kind) {
  Vote v;
  v.kind = kind;
  v.sender = ctx.id();
  v.round = round_;
  v.value = est_;
  ctx.broadcast(encode_vote(v));
}

void HurfinRaynalActor::on_message(sim::Context& ctx, ProcessId from,
                                   const Bytes& payload) {
  (void)from;
  if (decided_) return;

  Vote v;
  try {
    v = decode_vote(payload);
  } catch (const SerialError& e) {
    // Crash model assumes honest encodings; a malformed frame can only come
    // from fault-injection tests.  Ignore it.
    log_debug("HR ", ctx.id(), ": dropping malformed vote: ", e.what());
    return;
  }

  // DECIDE is processed in any round: relay, then decide (line 2).
  if (v.kind == VoteKind::kDecide) {
    Vote relay = v;
    relay.sender = ctx.id();
    ctx.broadcast(encode_vote(relay));
    decide(ctx, v.value);
    return;
  }

  if (v.kind != VoteKind::kCurrent && v.kind != VoteKind::kNext) {
    return;  // not a Hurfin–Raynal vote
  }

  if (v.round.value < round_.value) return;  // stale vote: discard
  if (v.round.value > round_.value) {
    future_votes_[v.round.value].push_back(v);  // early vote: buffer
    return;
  }
  handle_vote(ctx, v);
}

void HurfinRaynalActor::handle_vote(sim::Context& ctx, const Vote& v) {
  const ProcessId coord = coordinator_of(round_, n_);

  if (v.kind == VoteKind::kCurrent) {
    // Lines 7-12.
    nb_current_ += 1;
    rec_from_.insert(v.sender);
    if (nb_current_ == 1) est_ = v.value;  // line 9
    if (state_ == AutomatonState::kQ0) {   // line 10: q0 -> q1
      state_ = AutomatonState::kQ1;
      if (ctx.id() != coord) broadcast_vote(ctx, VoteKind::kCurrent);
    }
    if (majority(nb_current_)) {  // line 12
      broadcast_vote(ctx, VoteKind::kDecide);
      decide(ctx, est_);
      return;
    }
  } else {  // kNext, line 14
    nb_next_ += 1;
    rec_from_.insert(v.sender);
  }

  check_suspicion(ctx);
  check_change_mind(ctx);
  check_round_exit(ctx);
}

void HurfinRaynalActor::check_suspicion(sim::Context& ctx) {
  // Line 13: upon p_c ∈ suspected, while still in q0, vote NEXT.
  if (decided_ || state_ != AutomatonState::kQ0) return;
  const ProcessId coord = coordinator_of(round_, n_);
  if (coord == ctx.id()) return;  // a process does not suspect itself
  if (detector_->suspects(coord, ctx.now())) {
    state_ = AutomatonState::kQ2;
    sent_next_this_round_ = true;
    broadcast_vote(ctx, VoteKind::kNext);
  }
}

void HurfinRaynalActor::check_change_mind(sim::Context& ctx) {
  // Line 15: a q1 process that has seen a majority of votes but neither a
  // deciding majority of CURRENT nor a round-ending majority of NEXT votes
  // NEXT to unblock the round.
  if (decided_ || state_ != AutomatonState::kQ1) return;
  if (!majority(rec_from_.size())) return;
  if (majority(nb_current_) || majority(nb_next_)) return;
  state_ = AutomatonState::kQ2;
  sent_next_this_round_ = true;
  broadcast_vote(ctx, VoteKind::kNext);
}

void HurfinRaynalActor::check_round_exit(sim::Context& ctx) {
  // Line 6 / 16-17: the round ends when a majority voted NEXT.
  if (decided_ || !majority(nb_next_)) return;
  if (state_ != AutomatonState::kQ2) {  // line 17
    state_ = AutomatonState::kQ2;
    sent_next_this_round_ = true;
    broadcast_vote(ctx, VoteKind::kNext);
  } else if (!sent_next_this_round_) {
    // In q2 without having voted NEXT cannot happen: q2 is only entered by
    // voting NEXT.
    MODUBFT_ASSERT(false);
  }
  begin_round(ctx, round_.next());
}

void HurfinRaynalActor::on_timer(sim::Context& ctx, std::uint64_t) {
  if (decided_) return;
  check_suspicion(ctx);
  ctx.set_timer(config_.suspicion_poll_period);
}

void HurfinRaynalActor::decide(sim::Context& ctx, Value value) {
  if (decided_) return;
  decided_ = true;
  log_debug("HR ", ctx.id(), " decides ", value, " in ", round_);
  if (on_decide_) {
    on_decide_(ctx.id(), Decision{value, round_, ctx.now()});
  }
  if (config_.stop_on_decide) ctx.stop();
}

}  // namespace modubft::consensus
