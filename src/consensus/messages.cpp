#include "consensus/messages.hpp"

#include "common/serial.hpp"

namespace modubft::consensus {

Bytes encode_vote(const Vote& v) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(v.kind));
  w.u32(v.sender.value);
  w.u32(v.round.value);
  w.u64(v.value);
  w.u32(v.value_ts.value);
  return std::move(w).take();
}

Vote decode_vote(const Bytes& buf) {
  Reader r(buf);
  Vote v;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 7) throw SerialError("unknown vote kind");
  v.kind = static_cast<VoteKind>(kind);
  v.sender = ProcessId{r.u32()};
  v.round = Round{r.u32()};
  v.value = r.u64();
  v.value_ts = Round{r.u32()};
  r.expect_end();
  return v;
}

}  // namespace modubft::consensus
