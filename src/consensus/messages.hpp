// Wire format of the crash-model consensus protocols.
//
// One codec covers both Hurfin–Raynal (CURRENT/NEXT/DECIDE) and the
// Chandra–Toueg baseline (ESTIMATE/PROPOSE/ACK/NACK + DECIDE); each actor
// simply ignores kinds it never sends.  Decoding is defensive (SerialError
// on malformed buffers) even though the crash model assumes honest senders:
// the same codec is reused by fault-injection tests that deliberately break
// frames.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "consensus/value.hpp"

namespace modubft::consensus {

enum class VoteKind : std::uint8_t {
  kCurrent = 1,  // HR: vote to decide on the coordinator's estimate
  kNext = 2,     // HR: vote to move to the next round
  kDecide = 3,   // both: decision announcement
  kEstimate = 4, // CT phase 1: estimate sent to the coordinator
  kPropose = 5,  // CT phase 2: coordinator's proposal
  kAck = 6,      // CT phase 3: proposal accepted
  kNack = 7,     // CT phase 3: coordinator suspected
};

/// A crash-model protocol message.
struct Vote {
  VoteKind kind = VoteKind::kCurrent;
  ProcessId sender;
  Round round;
  /// Value payload; meaningful for kCurrent/kDecide/kEstimate/kPropose.
  Value value = 0;
  /// CT only: round in which `value` was last adopted (timestamp).
  Round value_ts;
};

/// Canonical encoding of a Vote.
Bytes encode_vote(const Vote& v);

/// Decodes a Vote; throws SerialError on malformed input.
Vote decode_vote(const Bytes& buf);

}  // namespace modubft::consensus
