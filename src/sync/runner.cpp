#include "sync/runner.hpp"

#include "common/check.hpp"

namespace modubft::sync {

SyncStats run_lockstep_rounds(
    std::vector<std::unique_ptr<SyncProcess>>& processes,
    std::uint32_t rounds) {
  const std::size_t n = processes.size();
  MODUBFT_EXPECTS(n >= 1);
  MODUBFT_EXPECTS(rounds >= 1);

  SyncStats stats;
  std::vector<std::vector<Incoming>> inboxes(n);

  for (std::uint32_t round = 1; round <= rounds; ++round) {
    std::vector<std::vector<Incoming>> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (processes[i] == nullptr) continue;  // crashed
      std::vector<Outgoing> sends = processes[i]->on_round(round, inboxes[i]);
      for (Outgoing& out : sends) {
        MODUBFT_EXPECTS(out.to.value < n);
        stats.messages += 1;
        stats.bytes += out.payload.size();
        stats.max_message_bytes =
            std::max<std::uint64_t>(stats.max_message_bytes,
                                    out.payload.size());
        next[out.to.value].push_back(
            Incoming{ProcessId{static_cast<std::uint32_t>(i)},
                     std::move(out.payload)});
      }
    }
    inboxes = std::move(next);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (processes[i] != nullptr) processes[i]->on_finish(inboxes[i]);
  }
  return stats;
}

}  // namespace modubft::sync
