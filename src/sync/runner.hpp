// Lockstep synchronous-round substrate.
//
// The classical Interactive Consistency algorithms (Pease–Shostak–Lamport
// [11], the origin of the paper's Vector Validity notion per footnote 6)
// assume a synchronous system: computation proceeds in global rounds, and
// every message sent in round r is delivered before round r+1 begins.
// This runner provides exactly that model — the strongest-possible
// contrast to the asynchronous substrate the transformed protocol runs on,
// which is what makes the E11 comparison meaningful.
//
// Byzantine behaviour is expressed the same way as in the async substrate:
// a faulty process is just a different SyncProcess implementation — it may
// send arbitrary payloads, equivocate between destinations, or omit
// messages.  The *network* stays correct (synchronous, reliable,
// authenticated by construction: receivers are told the true sender).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace modubft::sync {

/// One message emitted during a round.
struct Outgoing {
  ProcessId to;
  Bytes payload;
};

/// One message delivered at a round boundary.
struct Incoming {
  ProcessId from;
  Bytes payload;
};

/// A lockstep participant.
class SyncProcess {
 public:
  virtual ~SyncProcess() = default;

  /// Runs round `round` (1-based).  `inbox` holds everything delivered
  /// from round−1 (empty in round 1).  Returns this round's sends.
  virtual std::vector<Outgoing> on_round(
      std::uint32_t round, const std::vector<Incoming>& inbox) = 0;

  /// Called once after the final round, with the last inbox.
  virtual void on_finish(const std::vector<Incoming>& final_inbox) = 0;
};

/// Statistics of one synchronous execution.
struct SyncStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_message_bytes = 0;
};

/// Executes `rounds` lockstep rounds over `processes` (index = id).
/// Crashed processes are modelled by null entries: they never send, and
/// deliveries to them are discarded.
SyncStats run_lockstep_rounds(
    std::vector<std::unique_ptr<SyncProcess>>& processes,
    std::uint32_t rounds);

}  // namespace modubft::sync
