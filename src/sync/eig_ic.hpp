// Interactive Consistency via Exponential Information Gathering (EIG).
//
// Pease, Shostak, Lamport — "Reaching Agreement in the Presence of Faults"
// (JACM 1980), reference [11] of the paper and, per footnote 6, the origin
// of the Vector Consensus idea the transformed protocol solves
// asynchronously.  The oral-messages EIG algorithm tolerates f Byzantine
// processes out of n > 3f in a *synchronous* system:
//
//   round 1      every process broadcasts its value;
//   round k ≤ f+1  every process relays each path σ of length k−1 it
//                learned (σ not containing itself) together with σ's value;
//   resolution   the EIG tree is folded bottom-up: leaves keep their
//                stored value (a default if missing), inner nodes take the
//                strict majority of their children.
//
// Every correct process then holds the same vector, whose entry j equals
// v_j for every correct p_j — exactly the guarantee the paper's protocol
// provides with certificates and ◇M in an asynchronous system, at the cost
// of O(n^{f+1}) information here versus certificates there (experiment
// E11 quantifies the comparison).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "consensus/value.hpp"
#include "sync/runner.hpp"

namespace modubft::sync {

using consensus::Value;

/// Value used for absent/illegal EIG entries (the algorithm's "default").
constexpr Value kEigDefault = 0;

/// Delivered once after the final round: the interactive-consistency
/// vector (entry j = agreed value of p_{j+1}).
using EigDoneFn = std::function<void(ProcessId, const std::vector<Value>&)>;

/// A correct EIG participant.
class EigProcess final : public SyncProcess {
 public:
  EigProcess(std::uint32_t n, std::uint32_t f, ProcessId self, Value value,
             EigDoneFn on_done);

  std::vector<Outgoing> on_round(std::uint32_t round,
                                 const std::vector<Incoming>& inbox) override;
  void on_finish(const std::vector<Incoming>& final_inbox) override;

  /// Rounds the algorithm needs (f + 1).
  static std::uint32_t rounds_for(std::uint32_t f) { return f + 1; }

 private:
  using Path = std::vector<std::uint32_t>;

  void absorb(const std::vector<Incoming>& inbox, std::uint32_t depth);
  Value resolve(const Path& path) const;

  std::uint32_t n_;
  std::uint32_t f_;
  ProcessId self_;
  Value value_;
  EigDoneFn on_done_;
  std::map<Path, Value> tree_;
};

/// A Byzantine EIG participant: equivocates its own value per destination
/// in round 1 and corrupts every relayed value afterwards.
class EigLiar final : public SyncProcess {
 public:
  EigLiar(std::uint32_t n, std::uint32_t f, ProcessId self);

  std::vector<Outgoing> on_round(std::uint32_t round,
                                 const std::vector<Incoming>& inbox) override;
  void on_finish(const std::vector<Incoming>&) override {}

 private:
  std::uint32_t n_;
  std::uint32_t f_;
  ProcessId self_;
  std::map<std::vector<std::uint32_t>, Value> tree_;
};

/// Wire helpers (exposed for tests).
Bytes encode_eig_pairs(
    const std::vector<std::pair<std::vector<std::uint32_t>, Value>>& pairs);
std::vector<std::pair<std::vector<std::uint32_t>, Value>> decode_eig_pairs(
    const Bytes& buf, std::uint32_t max_pairs = 1u << 20);

}  // namespace modubft::sync
