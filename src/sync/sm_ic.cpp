#include "sync/sm_ic.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/serial.hpp"

namespace modubft::sync {

Bytes encode_chained(const std::vector<ChainedValue>& items) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const ChainedValue& cv : items) {
    w.u64(cv.value);
    w.u8(static_cast<std::uint8_t>(cv.chain.size()));
    for (const auto& [id, sig] : cv.chain) {
      w.u32(id);
      w.bytes(sig);
    }
  }
  return std::move(w).take();
}

std::vector<ChainedValue> decode_chained(const Bytes& buf,
                                         std::uint32_t max_items) {
  Reader r(buf);
  const std::uint32_t count = r.seq_len(max_items);
  std::vector<ChainedValue> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ChainedValue cv;
    cv.value = r.u64();
    const std::uint8_t len = r.u8();
    for (std::uint8_t j = 0; j < len; ++j) {
      const std::uint32_t id = r.u32();
      cv.chain.emplace_back(id, r.bytes());
    }
    out.push_back(std::move(cv));
  }
  r.expect_end();
  return out;
}

Bytes chain_preimage(Value value, const std::vector<std::uint32_t>& signers) {
  Writer w;
  w.str("sm-ic-chain");
  w.u64(value);
  w.u32(static_cast<std::uint32_t>(signers.size()));
  for (std::uint32_t id : signers) w.u32(id);
  return std::move(w).take();
}

SmProcess::SmProcess(std::uint32_t n, std::uint32_t f, ProcessId self,
                     Value value, const crypto::Signer* signer,
                     std::shared_ptr<const crypto::Verifier> verifier,
                     EigDoneFn on_done)
    : n_(n),
      f_(f),
      self_(self),
      value_(value),
      signer_(signer),
      verifier_(std::move(verifier)),
      on_done_(std::move(on_done)) {
  MODUBFT_EXPECTS(n_ >= f_ + 2);  // the SM bound
  MODUBFT_EXPECTS(signer_ != nullptr);
  MODUBFT_EXPECTS(verifier_ != nullptr);
  accepted_.resize(n_);
}

bool SmProcess::chain_valid(const ChainedValue& cv,
                            std::uint32_t expect_len) const {
  if (cv.chain.size() != expect_len) return false;
  std::vector<std::uint32_t> ids;
  for (const auto& [id, sig] : cv.chain) {
    if (id >= n_) return false;
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) return false;
    // Each signer endorses (value, chain-so-far-including-itself).
    ids.push_back(id);
    if (!verifier_->verify(ProcessId{id}, chain_preimage(cv.value, ids),
                           sig)) {
      return false;
    }
  }
  return true;
}

void SmProcess::absorb(const std::vector<Incoming>& inbox,
                       std::uint32_t chain_len) {
  for (const Incoming& in : inbox) {
    std::vector<ChainedValue> items;
    try {
      items = decode_chained(in.payload);
    } catch (const SerialError&) {
      continue;
    }
    for (ChainedValue& cv : items) {
      if (!chain_valid(cv, chain_len)) continue;
      const std::uint32_t origin = cv.chain.front().first;
      std::set<Value>& vals = accepted_[origin];
      if (vals.count(cv.value)) continue;  // already known
      // Two distinct certified values already convict the origin; further
      // ones change nothing, so cap the relay work at two per origin.
      if (vals.size() >= 2) continue;
      vals.insert(cv.value);
      relay_buffer_.push_back(std::move(cv));
    }
  }
}

std::vector<Outgoing> SmProcess::on_round(std::uint32_t round,
                                          const std::vector<Incoming>& inbox) {
  if (round > 1) absorb(inbox, round - 1);

  std::vector<ChainedValue> to_send;
  if (round == 1) {
    ChainedValue own;
    own.value = value_;
    own.chain.emplace_back(
        self_.value, signer_->sign(chain_preimage(value_, {self_.value})));
    to_send.push_back(std::move(own));
    accepted_[self_.value].insert(value_);
  } else {
    // Extend and relay everything newly accepted last round (chains cannot
    // contain us yet: we only accept chains we are not part of — our own
    // signature would make the chain length mismatch on re-receipt).
    for (ChainedValue cv : relay_buffer_) {
      bool has_self = false;
      std::vector<std::uint32_t> ids;
      for (const auto& [id, sig] : cv.chain) {
        has_self |= id == self_.value;
        ids.push_back(id);
      }
      if (has_self) continue;
      ids.push_back(self_.value);
      cv.chain.emplace_back(self_.value,
                            signer_->sign(chain_preimage(cv.value, ids)));
      to_send.push_back(std::move(cv));
    }
  }
  relay_buffer_.clear();

  std::vector<Outgoing> out;
  if (!to_send.empty()) {
    Bytes payload = encode_chained(to_send);
    for (std::uint32_t j = 0; j < n_; ++j) {
      if (j == self_.value) continue;
      out.push_back(Outgoing{ProcessId{j}, payload});
    }
  }
  return out;
}

void SmProcess::on_finish(const std::vector<Incoming>& final_inbox) {
  absorb(final_inbox, rounds_for(f_));

  std::vector<Value> vector(n_, kEigDefault);
  for (std::uint32_t j = 0; j < n_; ++j) {
    // The unique certified value, or the default on silence/equivocation.
    if (accepted_[j].size() == 1) vector[j] = *accepted_[j].begin();
  }
  if (on_done_) on_done_(self_, vector);
}

SmEquivocator::SmEquivocator(std::uint32_t n, ProcessId self,
                             const crypto::Signer* signer)
    : n_(n), self_(self), signer_(signer) {}

std::vector<Outgoing> SmEquivocator::on_round(std::uint32_t round,
                                              const std::vector<Incoming>&) {
  std::vector<Outgoing> out;
  if (round != 1) return out;  // stays silent afterwards
  for (std::uint32_t j = 0; j < n_; ++j) {
    if (j == self_.value) continue;
    const Value v = j < n_ / 2 ? 4444 : 5555;
    ChainedValue cv;
    cv.value = v;
    cv.chain.emplace_back(self_.value,
                          signer_->sign(chain_preimage(v, {self_.value})));
    out.push_back(Outgoing{ProcessId{j}, encode_chained({cv})});
  }
  return out;
}

}  // namespace modubft::sync
