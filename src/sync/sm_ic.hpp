// Interactive Consistency with signed messages — algorithm SM(f) of
// Lamport, Shostak, Pease ("The Byzantine Generals Problem", adapted to
// the IC formulation of [11]).
//
// The oral-messages EIG algorithm needs n > 3f; with unforgeable
// signatures the bound collapses to any f < n − 1 and the information
// gathered per entry shrinks from a full EIG tree to a set of
// signature-chained values:
//
//   round 1      each process signs its value and broadcasts ⟨v : p⟩;
//   round k ≤ f+1  on accepting a value for origin j with a chain of k−1
//                distinct signatures starting at j, append a signature and
//                relay (values per origin are only relayed the first two
//                times a *distinct* value appears — two distinct certified
//                values already prove the origin equivocated);
//   resolution   entry j = the unique accepted value for j, or the default
//                if none or several exist.
//
// The signature chains are this algorithm's "certificates": unforgeable
// evidence of who said what — precisely the mechanism the DSN paper
// generalizes into its certification module.  Comparing EIG (no crypto,
// n > 3f) with SM (signatures, n > f+1) on the same substrate shows what
// the signature assumption buys, which is the paper's starting point.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "crypto/signature.hpp"
#include "sync/eig_ic.hpp"
#include "sync/runner.hpp"

namespace modubft::sync {

/// A value with its signature chain.  chain[0] is the origin.
struct ChainedValue {
  Value value = 0;
  std::vector<std::pair<std::uint32_t, crypto::Signature>> chain;
};

Bytes encode_chained(const std::vector<ChainedValue>& items);
std::vector<ChainedValue> decode_chained(const Bytes& buf,
                                         std::uint32_t max_items = 1u << 16);

/// The byte string the k-th signer of a chain signs: value ‖ the signer
/// prefix (ids only — each signature endorses the chain of custody).
Bytes chain_preimage(Value value, const std::vector<std::uint32_t>& signers);

/// A correct SM(f) participant.
class SmProcess final : public SyncProcess {
 public:
  SmProcess(std::uint32_t n, std::uint32_t f, ProcessId self, Value value,
            const crypto::Signer* signer,
            std::shared_ptr<const crypto::Verifier> verifier,
            EigDoneFn on_done);

  std::vector<Outgoing> on_round(std::uint32_t round,
                                 const std::vector<Incoming>& inbox) override;
  void on_finish(const std::vector<Incoming>& final_inbox) override;

  static std::uint32_t rounds_for(std::uint32_t f) { return f + 1; }

 private:
  void absorb(const std::vector<Incoming>& inbox, std::uint32_t chain_len);
  bool chain_valid(const ChainedValue& cv, std::uint32_t expect_len) const;

  std::uint32_t n_;
  std::uint32_t f_;
  ProcessId self_;
  Value value_;
  const crypto::Signer* signer_;
  std::shared_ptr<const crypto::Verifier> verifier_;
  EigDoneFn on_done_;

  std::vector<std::set<Value>> accepted_;   // per origin
  std::vector<ChainedValue> relay_buffer_;  // accepted last round, to extend
};

/// A Byzantine origin: signs different values towards different halves of
/// the group (the attack signatures exist to expose).
class SmEquivocator final : public SyncProcess {
 public:
  SmEquivocator(std::uint32_t n, ProcessId self, const crypto::Signer* signer);

  std::vector<Outgoing> on_round(std::uint32_t round,
                                 const std::vector<Incoming>& inbox) override;
  void on_finish(const std::vector<Incoming>&) override {}

 private:
  std::uint32_t n_;
  ProcessId self_;
  const crypto::Signer* signer_;
};

}  // namespace modubft::sync
