#include "sync/eig_ic.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/serial.hpp"

namespace modubft::sync {

namespace {

using Path = std::vector<std::uint32_t>;

bool contains(const Path& path, std::uint32_t id) {
  return std::find(path.begin(), path.end(), id) != path.end();
}

/// The relay set for round k: every stored path of length k−1 that does
/// not contain the relayer itself.
std::vector<std::pair<Path, Value>> relay_set(
    const std::map<Path, Value>& tree, std::uint32_t round,
    std::uint32_t self) {
  std::vector<std::pair<Path, Value>> out;
  for (const auto& [path, value] : tree) {
    if (path.size() != round - 1) continue;
    if (contains(path, self)) continue;
    out.emplace_back(path, value);
  }
  return out;
}

/// Stores (σ·from ← v) for each received pair, first write wins; rejects
/// structurally illegal paths (wrong depth, repeated ids, sender in σ).
void absorb_into(std::map<Path, Value>& tree,
                 const std::vector<Incoming>& inbox, std::uint32_t depth,
                 std::uint32_t n) {
  for (const Incoming& in : inbox) {
    std::vector<std::pair<Path, Value>> pairs;
    try {
      pairs = decode_eig_pairs(in.payload);
    } catch (const SerialError&) {
      continue;  // malformed relays are simply ignored (defaults cover it)
    }
    for (auto& [path, value] : pairs) {
      if (path.size() != depth - 1) continue;
      if (contains(path, in.from.value)) continue;
      bool legal = true;
      for (std::uint32_t id : path) legal = legal && id < n;
      if (!legal) continue;
      Path extended = path;
      extended.push_back(in.from.value);
      // Distinctness of `extended` follows from the two checks above
      // applied at every level (paths grow one hop per round).
      tree.emplace(std::move(extended), value);
    }
  }
}

}  // namespace

Bytes encode_eig_pairs(const std::vector<std::pair<Path, Value>>& pairs) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [path, value] : pairs) {
    w.u8(static_cast<std::uint8_t>(path.size()));
    for (std::uint32_t id : path) w.u32(id);
    w.u64(value);
  }
  return std::move(w).take();
}

std::vector<std::pair<Path, Value>> decode_eig_pairs(const Bytes& buf,
                                                     std::uint32_t max_pairs) {
  Reader r(buf);
  const std::uint32_t count = r.seq_len(max_pairs);
  std::vector<std::pair<Path, Value>> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t len = r.u8();
    Path path;
    path.reserve(len);
    for (std::uint8_t j = 0; j < len; ++j) path.push_back(r.u32());
    const Value value = r.u64();
    out.emplace_back(std::move(path), value);
  }
  r.expect_end();
  return out;
}

EigProcess::EigProcess(std::uint32_t n, std::uint32_t f, ProcessId self,
                       Value value, EigDoneFn on_done)
    : n_(n), f_(f), self_(self), value_(value), on_done_(std::move(on_done)) {
  MODUBFT_EXPECTS(n_ > 3 * f_);
  MODUBFT_EXPECTS(self_.value < n_);
}

void EigProcess::absorb(const std::vector<Incoming>& inbox,
                        std::uint32_t depth) {
  absorb_into(tree_, inbox, depth, n_);
}

std::vector<Outgoing> EigProcess::on_round(std::uint32_t round,
                                           const std::vector<Incoming>& inbox) {
  // inbox carries round−1's sends, which extend paths to length round−1.
  if (round > 1) absorb(inbox, round - 1);

  std::vector<std::pair<Path, Value>> pairs;
  if (round == 1) {
    pairs.emplace_back(Path{}, value_);
  } else {
    pairs = relay_set(tree_, round, self_.value);
  }
  Bytes payload = encode_eig_pairs(pairs);

  std::vector<Outgoing> out;
  out.reserve(n_);
  for (std::uint32_t j = 0; j < n_; ++j) {
    out.push_back(Outgoing{ProcessId{j}, payload});
  }
  return out;
}

void EigProcess::on_finish(const std::vector<Incoming>& final_inbox) {
  absorb(final_inbox, rounds_for(f_));

  std::vector<Value> vector(n_, kEigDefault);
  for (std::uint32_t j = 0; j < n_; ++j) {
    vector[j] = resolve(Path{j});
  }
  if (on_done_) on_done_(self_, vector);
}

Value EigProcess::resolve(const Path& path) const {
  if (path.size() == rounds_for(f_)) {
    auto it = tree_.find(path);
    return it == tree_.end() ? kEigDefault : it->second;
  }
  // Strict majority over the children; default when none exists.
  std::map<Value, std::uint32_t> votes;
  std::uint32_t children = 0;
  for (std::uint32_t j = 0; j < n_; ++j) {
    if (contains(path, j)) continue;
    Path child = path;
    child.push_back(j);
    votes[resolve(child)] += 1;
    children += 1;
  }
  for (const auto& [value, count] : votes) {
    if (2 * count > children) return value;
  }
  return kEigDefault;
}

EigLiar::EigLiar(std::uint32_t n, std::uint32_t f, ProcessId self)
    : n_(n), f_(f), self_(self) {}

std::vector<Outgoing> EigLiar::on_round(std::uint32_t round,
                                        const std::vector<Incoming>& inbox) {
  if (round > 1) absorb_into(tree_, inbox, round - 1, n_);

  std::vector<Outgoing> out;
  for (std::uint32_t j = 0; j < n_; ++j) {
    std::vector<std::pair<std::vector<std::uint32_t>, Value>> pairs;
    if (round == 1) {
      // Equivocation: a different "initial value" per destination.
      pairs.emplace_back(std::vector<std::uint32_t>{}, 9000 + j);
    } else {
      pairs = relay_set(tree_, round, self_.value);
      for (auto& [path, value] : pairs) value += j + 1;  // corrupt relays
    }
    out.push_back(Outgoing{ProcessId{j}, encode_eig_pairs(pairs)});
  }
  return out;
}

}  // namespace modubft::sync
