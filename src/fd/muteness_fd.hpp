// ◇M muteness failure detector (Doudou, Garbinato, Guerraoui, Schiper [6]).
//
// A process q is *mute to p with respect to algorithm A* if there is a time
// after which p no longer receives the A-messages q should be sending.
// Muteness subsumes crashes but is protocol-dependent: the detector must be
// told which arrivals count as A-messages and when the monitored protocol
// starts a new communication phase (a round), because expectations reset
// there.  Properties implemented, per [6]:
//   * mute completeness — a process mute to p is eventually suspected
//     forever (the silence deadline keeps receding only on real arrivals);
//   * eventual accuracy — under partial synchrony the per-peer timeout,
//     doubled at every false suspicion, eventually exceeds the true
//     inter-message bound, so correct processes stop being suspected.
#pragma once

#include <set>
#include <vector>

#include "fd/failure_detector.hpp"

namespace modubft::fd {

struct MutenessConfig {
  /// Initial per-peer silence timeout.
  SimTime initial_timeout = 40'000;

  /// Multiplier applied on a false suspicion (a suspected peer spoke).
  double backoff_factor = 2.0;
};

/// Per-process ◇M module.  Fed by the muteness-failure-detection module of
/// the five-module pipeline; read (never written) by the protocol module.
class MutenessDetector final : public CrashDetector {
 public:
  MutenessDetector(std::uint32_t n, ProcessId self, MutenessConfig config);

  /// Records receipt of a protocol (A-)message from `from`.
  void on_protocol_message(ProcessId from, SimTime now);

  /// Informs the detector that the monitored protocol entered a new round;
  /// silence deadlines restart so peers aren't blamed for the querier's own
  /// progress.
  void on_new_round(SimTime now);

  /// True iff `q` is currently suspected mute.
  bool suspects(ProcessId q, SimTime now) override;

  SimTime timeout_of(ProcessId q) const;

 private:
  struct Peer {
    SimTime last_activity = 0;
    SimTime timeout = 0;
    bool suspected_now = false;
  };

  ProcessId self_;
  std::vector<Peer> peers_;
  MutenessConfig config_;
};

}  // namespace modubft::fd
