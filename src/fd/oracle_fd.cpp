#include "fd/oracle_fd.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace modubft::fd {

OracleDetector::OracleDetector(std::vector<std::optional<SimTime>> crash_times,
                               OracleConfig config)
    : crash_times_(std::move(crash_times)), config_(config) {
  MODUBFT_EXPECTS(config_.mistake_window > 0);
}

bool OracleDetector::suspects(ProcessId q, SimTime now) {
  if (q.value >= crash_times_.size()) return false;

  const std::optional<SimTime>& crash = crash_times_[q.value];
  if (crash.has_value() && now >= *crash + config_.detection_lag) {
    return true;  // completeness
  }

  // Pre-stabilization mistakes: a deterministic pseudo-random function of
  // (seed, process, window index) so repeated queries in one window agree.
  if (now < config_.stabilization_time && config_.false_suspicion_prob > 0) {
    const std::uint64_t window = now / config_.mistake_window;
    Rng r(config_.seed ^ (static_cast<std::uint64_t>(q.value) << 32) ^
          (window * 0x9e3779b97f4a7c15ULL));
    return r.next_bool(config_.false_suspicion_prob);
  }
  return false;
}

}  // namespace modubft::fd
