#include "fd/heartbeat_fd.hpp"

#include "common/check.hpp"

namespace modubft::fd {

namespace {
constexpr std::uint8_t kTagHeartbeat = 0;
constexpr std::uint8_t kTagInner = 1;

Bytes wrap(std::uint8_t tag, const Bytes& payload) {
  Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(tag);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}
}  // namespace

HeartbeatDetector::HeartbeatDetector(std::uint32_t n, ProcessId self,
                                     HeartbeatConfig config)
    : self_(self) {
  MODUBFT_EXPECTS(self.value < n);
  peers_.resize(n);
  for (Peer& p : peers_) p.timeout = config.initial_timeout;
}

void HeartbeatDetector::record_alive(ProcessId from, SimTime now) {
  MODUBFT_EXPECTS(from.value < peers_.size());
  Peer& p = peers_[from.value];
  if (p.suspected_now) {
    // A false suspicion: adapt by giving this peer more slack, the standard
    // mechanism for achieving eventual accuracy after GST.
    p.timeout += p.timeout;  // exponential backoff
    p.suspected_now = false;
  }
  p.last_seen = now;
}

bool HeartbeatDetector::suspects(ProcessId q, SimTime now) {
  MODUBFT_EXPECTS(q.value < peers_.size());
  if (q == self_) return false;
  Peer& p = peers_[q.value];
  const bool late = now > p.last_seen + p.timeout;
  p.suspected_now = late;
  return late;
}

SimTime HeartbeatDetector::timeout_of(ProcessId q) const {
  MODUBFT_EXPECTS(q.value < peers_.size());
  return peers_[q.value].timeout;
}

/// Sends from the inner actor get the inner tag prepended.
class HeartbeatWrapper::MuxContext final : public sim::ForwardingContext {
 public:
  using ForwardingContext::ForwardingContext;

  void send(ProcessId to, Bytes payload) override {
    base_.send(to, wrap(kTagInner, payload));
  }

  void broadcast(const Bytes& payload) override {
    base_.broadcast(wrap(kTagInner, payload));
  }
};

HeartbeatWrapper::HeartbeatWrapper(std::unique_ptr<sim::Actor> inner,
                                   std::shared_ptr<HeartbeatDetector> detector,
                                   HeartbeatConfig config)
    : inner_(std::move(inner)),
      detector_(std::move(detector)),
      config_(config) {
  MODUBFT_EXPECTS(inner_ != nullptr);
  MODUBFT_EXPECTS(detector_ != nullptr);
}

void HeartbeatWrapper::arm_heartbeat(sim::Context& ctx) {
  my_timers_.insert(ctx.set_timer(config_.period));
}

void HeartbeatWrapper::on_start(sim::Context& ctx) {
  ctx.broadcast(wrap(kTagHeartbeat, {}));
  arm_heartbeat(ctx);
  MuxContext mux(ctx);
  inner_->on_start(mux);
}

void HeartbeatWrapper::on_message(sim::Context& ctx, ProcessId from,
                                  const Bytes& payload) {
  if (payload.empty()) return;  // not ours, not the inner actor's
  detector_->record_alive(from, ctx.now());
  const std::uint8_t tag = payload[0];
  if (tag == kTagHeartbeat) return;
  if (tag != kTagInner) return;  // unknown envelope: drop
  Bytes inner_payload(payload.begin() + 1, payload.end());
  MuxContext mux(ctx);
  inner_->on_message(mux, from, inner_payload);
}

void HeartbeatWrapper::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (my_timers_.erase(timer_id) > 0) {
    ctx.broadcast(wrap(kTagHeartbeat, {}));
    arm_heartbeat(ctx);
    return;
  }
  MuxContext mux(ctx);
  inner_->on_timer(mux, timer_id);
}

}  // namespace modubft::fd
