// Heartbeat-based ◇S crash detector and its actor wrapper.
//
// Implementation strategy is the classical adaptive-timeout one: every
// process periodically broadcasts a heartbeat; a peer silent for longer
// than its current timeout is suspected; when a suspected peer speaks
// again, the suspicion is withdrawn and that peer's timeout is increased.
// Under the partially-synchronous latency model (sim/latency.hpp) timeouts
// eventually exceed the post-GST delay bound, so suspicions of correct
// processes eventually cease — yielding ◇P ⊂ ◇S.
//
// The HeartbeatWrapper runs the heartbeat plane alongside any inner Actor
// on the same channel, using a one-byte envelope tag, so protocols stay
// unaware of the detector's plumbing.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "fd/failure_detector.hpp"
#include "sim/actor.hpp"

namespace modubft::fd {

struct HeartbeatConfig {
  /// Broadcast period of heartbeats.
  SimTime period = 5'000;

  /// Initial per-peer silence timeout.
  SimTime initial_timeout = 25'000;

  /// Added to a peer's timeout each time it is falsely suspected.
  SimTime timeout_increment = 25'000;
};

/// The detector component.  Shared between the wrapper (which feeds it) and
/// the protocol actor (which queries it).
class HeartbeatDetector final : public CrashDetector {
 public:
  HeartbeatDetector(std::uint32_t n, ProcessId self, HeartbeatConfig config);

  /// Records that a message (heartbeat or protocol) arrived from `from`.
  void record_alive(ProcessId from, SimTime now);

  bool suspects(ProcessId q, SimTime now) override;

  /// Current adaptive timeout for `q` (exposed for the E8-style QoS bench).
  SimTime timeout_of(ProcessId q) const;

 private:
  struct Peer {
    SimTime last_seen = 0;
    SimTime timeout = 0;
    bool suspected_now = false;
  };

  ProcessId self_;
  std::vector<Peer> peers_;
};

/// Actor decorator that multiplexes heartbeats with the inner protocol.
/// Envelope: first byte 0 = heartbeat, 1 = inner payload.
class HeartbeatWrapper final : public sim::Actor {
 public:
  HeartbeatWrapper(std::unique_ptr<sim::Actor> inner,
                   std::shared_ptr<HeartbeatDetector> detector,
                   HeartbeatConfig config);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

 private:
  class MuxContext;

  void arm_heartbeat(sim::Context& ctx);

  std::unique_ptr<sim::Actor> inner_;
  std::shared_ptr<HeartbeatDetector> detector_;
  HeartbeatConfig config_;
  std::unordered_set<std::uint64_t> my_timers_;
};

}  // namespace modubft::fd
