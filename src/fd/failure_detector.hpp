// Unreliable failure-detector interfaces (Chandra–Toueg style).
//
// A crash detector answers "do I currently suspect q to have crashed?".
// Implementations are allowed to make mistakes in both directions as long
// as they satisfy their class's completeness/accuracy properties:
//   * ◇S  — strong completeness (every crashed process is eventually
//            suspected by every correct process) + eventual weak accuracy
//            (eventually some correct process is never suspected).
// The protocol modules only ever *read* suspicions (paper: "p_i can only
// read this set"), so the interface is a pure query.
#pragma once

#include <set>

#include "common/ids.hpp"

namespace modubft::fd {

/// Query interface for crash suspicion (◇S-style detectors).
class CrashDetector {
 public:
  virtual ~CrashDetector() = default;

  /// True iff this module currently suspects `q` at time `now`.
  virtual bool suspects(ProcessId q, SimTime now) = 0;

  /// The full suspected set at `now` (default: query each process).
  virtual std::set<ProcessId> suspected_set(std::uint32_t n, SimTime now) {
    std::set<ProcessId> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (suspects(ProcessId{i}, now)) out.insert(ProcessId{i});
    }
    return out;
  }
};

}  // namespace modubft::fd
