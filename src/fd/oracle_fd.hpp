// Oracle failure detector for controlled experiments.
//
// The oracle knows the crash schedule (tests and benchmarks inject it) and
// synthesizes a ◇S-compliant suspicion pattern:
//   * completeness — a crashed process is suspected `detection_lag` after
//     its crash, by every querier, forever;
//   * accuracy     — before `stabilization_time` the oracle may falsely
//     suspect correct processes (deterministic pseudo-random per process ×
//     time window, so runs replay); from `stabilization_time` on, no
//     correct process is ever suspected (eventually-perfect ⊂ ◇S).
// This makes failure-detector *quality* an experiment parameter, which is
// exactly what E1's mistake-rate sweep needs.
#pragma once

#include <optional>
#include <vector>

#include "fd/failure_detector.hpp"

namespace modubft::fd {

struct OracleConfig {
  /// Delay between a crash and its first suspicion.
  SimTime detection_lag = 30'000;

  /// Before this instant the oracle may wrongly suspect correct processes.
  SimTime stabilization_time = 0;

  /// Probability a given (correct process, window) pair is wrongly
  /// suspected before stabilization.
  double false_suspicion_prob = 0.0;

  /// Width of the mistake windows.
  SimTime mistake_window = 20'000;

  /// Seed of the deterministic mistake pattern.
  std::uint64_t seed = 1;
};

class OracleDetector final : public CrashDetector {
 public:
  /// `crash_times[i]` is the crash instant of p_{i+1}, or nullopt if the
  /// process never crashes.
  OracleDetector(std::vector<std::optional<SimTime>> crash_times,
                 OracleConfig config);

  bool suspects(ProcessId q, SimTime now) override;

 private:
  std::vector<std::optional<SimTime>> crash_times_;
  OracleConfig config_;
};

}  // namespace modubft::fd
