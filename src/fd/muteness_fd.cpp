#include "fd/muteness_fd.hpp"

#include <cmath>

#include "common/check.hpp"

namespace modubft::fd {

MutenessDetector::MutenessDetector(std::uint32_t n, ProcessId self,
                                   MutenessConfig config)
    : self_(self), config_(config) {
  MODUBFT_EXPECTS(self.value < n);
  MODUBFT_EXPECTS(config.initial_timeout > 0);
  MODUBFT_EXPECTS(config.backoff_factor >= 1.0);
  peers_.resize(n);
  for (Peer& p : peers_) p.timeout = config.initial_timeout;
}

void MutenessDetector::on_protocol_message(ProcessId from, SimTime now) {
  MODUBFT_EXPECTS(from.value < peers_.size());
  Peer& p = peers_[from.value];
  if (p.suspected_now) {
    // The peer was wrongly suspected: widen its allowance.
    p.timeout = static_cast<SimTime>(
        std::llround(static_cast<double>(p.timeout) * config_.backoff_factor));
    p.suspected_now = false;
  }
  p.last_activity = now;
}

void MutenessDetector::on_new_round(SimTime now) {
  for (Peer& p : peers_) {
    // A new round resets expectations but keeps each peer's learned timeout.
    if (p.last_activity < now) p.last_activity = now;
    p.suspected_now = false;
  }
}

bool MutenessDetector::suspects(ProcessId q, SimTime now) {
  MODUBFT_EXPECTS(q.value < peers_.size());
  if (q == self_) return false;
  Peer& p = peers_[q.value];
  const bool mute = now > p.last_activity + p.timeout;
  p.suspected_now = mute;
  return mute;
}

SimTime MutenessDetector::timeout_of(ProcessId q) const {
  MODUBFT_EXPECTS(q.value < peers_.size());
  return peers_[q.value].timeout;
}

}  // namespace modubft::fd
