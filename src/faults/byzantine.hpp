// Byzantine wrapper: turns a correct BftProcess into a faulty one.
//
// Arbitrary failures originate *inside* processes (the network stays
// reliable and FIFO, per the model), so fault injection wraps the actor:
// outgoing frames are intercepted, decoded, mutated according to the
// FaultSpec, re-signed with the process's own key — a Byzantine process can
// sign anything as itself, but cannot forge others' signatures — and then
// released.  This reproduces each §2 failure class from the genuine
// protocol state, which is what makes the detection experiments meaningful:
// the faulty messages are exactly one mutation away from valid ones.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "bft/bft_consensus.hpp"
#include "faults/fault_spec.hpp"

namespace modubft::faults {

class ByzantineActor final : public sim::Actor {
 public:
  ByzantineActor(std::unique_ptr<bft::BftProcess> inner,
                 const crypto::Signer* signer, FaultSpec spec,
                 std::uint32_t n);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  const bft::BftProcess& inner() const { return *inner_; }

 private:
  class EvilContext;

  std::unique_ptr<bft::BftProcess> inner_;
  const crypto::Signer* signer_;
  FaultSpec spec_;
  std::uint32_t n_;
  // Once-per-trigger bookkeeping for behaviours that inject extra traffic.
  std::uint32_t last_injected_round_ = 0;
  // kStaleReplay: the first recorded outgoing vote, replayed verbatim later.
  std::optional<bft::SignedMessage> stale_frame_;
  // kReplayCert: the first recorded certificate and the round it witnessed.
  std::optional<std::pair<Round, bft::Certificate>> stale_cert_;
};

}  // namespace modubft::faults
