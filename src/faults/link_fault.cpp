#include "faults/link_fault.hpp"

namespace modubft::faults {

const char* link_fault_kind_name(LinkFaultKind kind) {
  switch (kind) {
    case LinkFaultKind::kNone:
      return "none";
    case LinkFaultKind::kKill:
      return "kill";
    case LinkFaultKind::kTruncate:
      return "truncate";
    case LinkFaultKind::kFlip:
      return "flip";
    case LinkFaultKind::kDelay:
      return "delay";
    case LinkFaultKind::kThrottle:
      return "throttle";
  }
  return "unknown";
}

}  // namespace modubft::faults
