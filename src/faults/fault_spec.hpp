// Fault-injection vocabulary: every failure class of paper §2's taxonomy.
//
// Muteness failures: kCrash (halt), kMute (stop sending from a round on).
// Non-muteness failures: value corruption, statement duplication, spurious
// statements, misevaluated expressions, substituted messages, forged
// signatures, malformed certificates, equivocation, irrelevant initial
// values.  Experiment E4 injects each class in isolation and asserts it is
// caught by the module the methodology assigns to it.
#pragma once

#include <cstdint>
#include <optional>

#include "common/ids.hpp"

namespace modubft::faults {

enum class Behavior : std::uint8_t {
  kNone = 0,

  // --- muteness failures ---
  /// Process crash at `at` (simulated by the network substrate).
  kCrash,
  /// Stops sending all protocol messages once its round reaches
  /// `from_round` (mute w.r.t. the algorithm, but alive).
  kMute,

  // --- non-muteness failures ---
  /// Corrupts the estimate vector inside outgoing CURRENT messages
  /// (corruption of a local variable's value).
  kCorruptVector,
  /// Re-labels outgoing round-r messages as round r+1 (misevaluation /
  /// corruption of the round variable).
  kWrongRound,
  /// Sends every CURRENT twice (duplication of a statement).
  kDuplicateCurrent,
  /// Sends every NEXT twice (duplication of a statement).
  kDuplicateNext,
  /// Flips a signature bit on outgoing messages (forged identity /
  /// corrupted signature).
  kBadSignature,
  /// Strips the certificate from outgoing CURRENT/NEXT/DECIDE messages
  /// (corrupted certificate).
  kStripCertificate,
  /// Sends NEXT where the program says CURRENT (substituted message —
  /// misevaluated condition statement).
  kSubstituteNext,
  /// Broadcasts a DECIDE without a deciding quorum (misevaluation of the
  /// decision condition).
  kPrematureDecide,
  /// Coordinator equivocation: different halves of the group receive
  /// different vectors in its CURRENT.
  kEquivocate,
  /// Proposes an irrelevant initial value.  Undetectable by design (paper
  /// §1) — used to demonstrate the Vector Validity bound, not detection.
  kLieInit,
  /// Sends an unsolicited CURRENT although not the coordinator, certified
  /// with whatever it holds (execution of a spurious statement).
  kSpuriousCurrent,
  /// Relabels outgoing round-r CURRENT/NEXT as round r+5 and re-signs
  /// (future-round injection: floods receivers' footnote-5 buffers with
  /// votes for rounds nobody reached).
  kFutureRound,
  /// Replays its first recorded CURRENT/NEXT verbatim — stale round,
  /// original signature — alongside every later-round send (stale-round
  /// injection: the frame is authentic, only its timing is wrong).
  kStaleReplay,
  /// Certificate replay: keeps the certificate of its first CURRENT/NEXT
  /// and attaches that stale certificate to every later CURRENT/NEXT,
  /// re-signed (the witness set no longer matches the claimed round).
  kReplayCert,
  /// Certificate truncation: drops half the members from outgoing
  /// CURRENT/DECIDE certificates, re-signed (witness set below quorum).
  kTruncateCert,
  /// Certificate forgery: tampers one member's core inside the outgoing
  /// certificate without being able to re-sign it (a Byzantine process
  /// cannot forge others' signatures), then re-signs the envelope.
  kForgeCert,
  /// Selective muteness: from `from_round` on, drops every message
  /// addressed to the lower half of the group while staying talkative
  /// towards the rest (mute w.r.t. some, not all).
  kSelectiveMute,
  /// Dual-quorum equivocation (split_brain.hpp): the round-1 coordinator
  /// waits for ALL n INITs and certifies two different vectors, one per
  /// half of the group.  Only valid for process 0 (the round-1
  /// coordinator); instantiated by the scenario runner as a
  /// SplitBrainCoordinator instead of a wrapped BftProcess.
  kSplitBrain,
};

const char* behavior_name(Behavior b);

/// True for the behaviours whose detection happens via ◇M suspicion rather
/// than the non-muteness faulty set.
inline bool is_muteness(Behavior b) {
  return b == Behavior::kCrash || b == Behavior::kMute;
}

struct FaultSpec {
  ProcessId who;
  Behavior behavior = Behavior::kNone;
  /// kCrash: crash instant.
  SimTime at = 0;
  /// kMute / round-scoped behaviours: first affected round.
  Round from_round{1};
};

/// Substrate-independent crash schedule entry: at `at` µs after the run
/// starts, `who` halts silently.  Each runtime adapter translates the
/// instant into its own clock domain — simulated time on sim::Simulation,
/// wall-clock-after-epoch on the threaded and TCP clusters — so one spec
/// drives sim::Simulation::crash_at, Cluster::crash_after and
/// TcpCluster::crash_after alike.
struct CrashSpec {
  ProcessId who;
  /// Microseconds from run start (substrate clock domain).
  SimTime at = 0;
  /// Kill/restart schedule: if set, the process comes back at `restart_at`
  /// (same clock domain, must be > `at`) as a FRESH actor with no memory
  /// of its former life — the recovery subsystem's job is to re-learn the
  /// state.  Restart events are one-shot: a restart that would fire after
  /// the substrate began stopping is a no-op, never a hang.
  std::optional<SimTime> restart_at;
};

}  // namespace modubft::faults
