// The dual-quorum equivocation attack (strongest certificate-respecting
// adversary).
//
// A Byzantine round-1 coordinator waits for ALL n INIT messages — an
// honest process stops at n−F — and assembles two different INIT quorums,
// each certifying a different estimate vector.  Both resulting CURRENTs
// are individually well-formed, so no single-message check can reject
// them; the group is split between vector A (low ids) and vector B (high
// ids).  Within the paper's bound F ≤ ⌊(n−1)/3⌋ the split cannot reach a
// decision quorum on either side and the cross-relays expose the
// equivocation; beyond it (certification bound overridden) the attack
// breaks Agreement — the tightness result of tests/bft_bound_test.cpp and
// bench_e9_bound_tightness.
#pragma once

#include <map>

#include "bft/message.hpp"
#include "crypto/signature.hpp"
#include "sim/actor.hpp"

namespace modubft::faults {

class SplitBrainCoordinator final : public sim::Actor {
 public:
  /// `quorum` — INITs per variant (use the protocol's n−F);
  /// `split_at` — peers with id ≤ split_at receive variant A, the rest B.
  SplitBrainCoordinator(std::uint32_t n, const crypto::Signer* signer,
                        std::uint32_t quorum, std::uint32_t split_at);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;

 private:
  bft::SignedMessage sign(bft::MessageCore core, bft::Certificate cert) const;
  bft::SignedMessage make_current(sim::Context& ctx,
                                  const std::vector<std::uint32_t>& quorum) const;

  std::uint32_t n_;
  const crypto::Signer* signer_;
  std::uint32_t quorum_;
  std::uint32_t split_at_;
  std::map<ProcessId, bft::SignedMessage> inits_;
  bool fired_ = false;
};

}  // namespace modubft::faults
