#include "faults/split_brain.hpp"

#include "common/check.hpp"
#include "common/serial.hpp"

namespace modubft::faults {

using bft::BftKind;
using bft::Certificate;
using bft::MessageCore;
using bft::SignedMessage;
using bft::VectorValue;

SplitBrainCoordinator::SplitBrainCoordinator(std::uint32_t n,
                                             const crypto::Signer* signer,
                                             std::uint32_t quorum,
                                             std::uint32_t split_at)
    : n_(n), signer_(signer), quorum_(quorum), split_at_(split_at) {
  MODUBFT_EXPECTS(signer_ != nullptr);
  MODUBFT_EXPECTS(quorum_ >= 1 && quorum_ <= n_);
}

SignedMessage SplitBrainCoordinator::sign(MessageCore core,
                                          Certificate cert) const {
  SignedMessage msg;
  msg.core = std::move(core);
  msg.cert = std::move(cert);
  msg.sig = signer_->sign(bft::signing_bytes(msg.core, msg.cert));
  return msg;
}

SignedMessage SplitBrainCoordinator::make_current(
    sim::Context& ctx, const std::vector<std::uint32_t>& quorum) const {
  Certificate cert;
  VectorValue vect(n_, std::nullopt);
  for (std::uint32_t j : quorum) {
    const SignedMessage& init = inits_.at(ProcessId{j});
    cert.add(init);
    vect[j] = init.core.init_value;
  }
  MessageCore core;
  core.kind = BftKind::kCurrent;
  core.sender = ctx.id();
  core.round = Round{1};
  core.est = std::move(vect);
  return sign(std::move(core), std::move(cert));
}

void SplitBrainCoordinator::on_start(sim::Context& ctx) {
  MessageCore init;
  init.kind = BftKind::kInit;
  init.sender = ctx.id();
  init.round = Round{0};
  init.init_value = 666;
  ctx.broadcast(bft::encode_message(sign(std::move(init), Certificate{})));
}

void SplitBrainCoordinator::on_message(sim::Context& ctx, ProcessId,
                                       const Bytes& payload) {
  if (fired_) return;
  SignedMessage msg;
  try {
    msg = bft::decode_message(payload);
  } catch (const SerialError&) {
    return;
  }
  if (msg.core.kind != BftKind::kInit) return;
  inits_.emplace(msg.core.sender, msg);
  if (inits_.size() < n_) return;  // the attacker waits for everyone
  fired_ = true;

  // Variant A witnessed by the low ids, variant B by the high ids; both
  // include the attacker's own INIT.
  std::vector<std::uint32_t> a{0}, b{0};
  for (std::uint32_t j = 1; a.size() < quorum_; ++j) a.push_back(j);
  for (std::uint32_t j = n_ - 1; b.size() < quorum_; --j) b.push_back(j);

  SignedMessage cur_a = make_current(ctx, a);
  SignedMessage cur_b = make_current(ctx, b);
  for (std::uint32_t i = 1; i < n_; ++i) {
    ctx.send(ProcessId{i},
             bft::encode_message(i <= split_at_ ? cur_a : cur_b));
  }
  // The attack is one-shot: once both CURRENT variants are out, the
  // attacker falls mute (which the protocol tolerates anyway).  Stopping
  // here lets wall-clock substrates terminate without burning the budget.
  ctx.stop();
}

}  // namespace modubft::faults
