#include "faults/byzantine.hpp"

#include "common/check.hpp"

namespace modubft::faults {

using bft::BftKind;
using bft::Certificate;
using bft::MessageCore;
using bft::SignedMessage;

const char* behavior_name(Behavior b) {
  switch (b) {
    case Behavior::kNone: return "none";
    case Behavior::kCrash: return "crash";
    case Behavior::kMute: return "mute";
    case Behavior::kCorruptVector: return "corrupt-vector";
    case Behavior::kWrongRound: return "wrong-round";
    case Behavior::kDuplicateCurrent: return "duplicate-current";
    case Behavior::kDuplicateNext: return "duplicate-next";
    case Behavior::kBadSignature: return "bad-signature";
    case Behavior::kStripCertificate: return "strip-certificate";
    case Behavior::kSubstituteNext: return "substitute-next";
    case Behavior::kPrematureDecide: return "premature-decide";
    case Behavior::kEquivocate: return "equivocate";
    case Behavior::kLieInit: return "lie-init";
    case Behavior::kSpuriousCurrent: return "spurious-current";
    case Behavior::kFutureRound: return "future-round";
    case Behavior::kStaleReplay: return "stale-replay";
    case Behavior::kReplayCert: return "replay-cert";
    case Behavior::kTruncateCert: return "truncate-cert";
    case Behavior::kForgeCert: return "forge-cert";
    case Behavior::kSelectiveMute: return "selective-mute";
    case Behavior::kSplitBrain: return "split-brain";
  }
  return "?";
}

/// Intercepts the wrapped process's sends and applies the fault.
class ByzantineActor::EvilContext final : public sim::ForwardingContext {
 public:
  EvilContext(sim::Context& base, ByzantineActor& owner)
      : ForwardingContext(base), owner_(owner) {}

  void send(ProcessId to, Bytes payload) override {
    emit({to}, std::move(payload));
  }

  void broadcast(const Bytes& payload) override {
    std::vector<ProcessId> all;
    for (std::uint32_t i = 0; i < base_.n(); ++i) all.push_back(ProcessId{i});
    emit(all, payload);
  }

 private:
  SignedMessage resign(SignedMessage msg) const {
    msg.sig = owner_.signer_->sign(bft::signing_bytes(msg.core, msg.cert));
    return msg;
  }

  void deliver(const std::vector<ProcessId>& dests, const SignedMessage& msg) {
    Bytes frame = bft::encode_message(msg);
    for (ProcessId d : dests) base_.send(d, frame);
  }

  void emit(const std::vector<ProcessId>& dests, Bytes payload) {
    SignedMessage msg = bft::decode_message(payload);
    const FaultSpec& spec = owner_.spec_;
    const Round r = msg.core.round;

    switch (spec.behavior) {
      case Behavior::kNone:
      case Behavior::kCrash:       // handled by the substrate's crash schedule
      case Behavior::kSplitBrain:  // instantiated as its own actor, not a wrap
        break;

      case Behavior::kMute:
        // Mute w.r.t. the algorithm: from `from_round` on, nothing leaves
        // the process although it keeps executing.
        if (r.value >= spec.from_round.value ||
            msg.core.kind == BftKind::kDecide) {
          return;  // swallow
        }
        break;

      case Behavior::kCorruptVector:
        if (msg.core.kind == BftKind::kCurrent &&
            r.value >= spec.from_round.value) {
          // Corrupt one vector entry; the certificate no longer witnesses
          // the vector.
          msg.core.est[0] =
              msg.core.est[0].has_value() ? *msg.core.est[0] + 1 : 7;
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kWrongRound:
        if ((msg.core.kind == BftKind::kCurrent ||
             msg.core.kind == BftKind::kNext) &&
            r.value >= spec.from_round.value) {
          // Re-label as the previous round: receivers have already watched
          // this process leave it, so the receipt event is not enabled.
          msg.core.round = r.prev();
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kDuplicateCurrent:
        if (msg.core.kind == BftKind::kCurrent &&
            r.value >= spec.from_round.value) {
          deliver(dests, msg);
          deliver(dests, msg);  // duplicated statement
          return;
        }
        break;

      case Behavior::kDuplicateNext:
        if (msg.core.kind == BftKind::kNext &&
            r.value >= spec.from_round.value) {
          deliver(dests, msg);
          deliver(dests, msg);
          return;
        }
        break;

      case Behavior::kBadSignature:
        if (r.value >= spec.from_round.value) {
          if (!msg.sig.empty()) msg.sig.back() ^= 0x01;
          deliver(dests, msg);
          return;
        }
        break;

      case Behavior::kStripCertificate:
        if ((msg.core.kind == BftKind::kCurrent ||
             msg.core.kind == BftKind::kDecide) &&
            r.value >= spec.from_round.value) {
          msg.cert = Certificate{};
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kSubstituteNext:
        if (msg.core.kind == BftKind::kCurrent &&
            r.value >= spec.from_round.value) {
          // Misevaluated condition: votes NEXT where the text says CURRENT,
          // keeping the certificate it actually holds.
          msg.core.kind = BftKind::kNext;
          msg.core.est.clear();
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kPrematureDecide:
        if (r.value >= spec.from_round.value &&
            owner_.last_injected_round_ < r.value) {
          owner_.last_injected_round_ = r.value;
          deliver(dests, msg);  // the genuine message still goes out
          SignedMessage fake;
          fake.core.kind = BftKind::kDecide;
          fake.core.sender = msg.core.sender;
          fake.core.round = r.value >= 1 ? r : Round{1};
          fake.core.est.assign(owner_.n_, std::nullopt);
          fake.cert = msg.cert;  // whatever it holds — not a quorum
          deliver(dests, resign(fake));
          return;
        }
        break;

      case Behavior::kEquivocate:
        if (msg.core.kind == BftKind::kCurrent &&
            r.value >= spec.from_round.value) {
          SignedMessage variant = msg;
          variant.core.est[msg.core.sender.value] =
              variant.core.est[msg.core.sender.value].value_or(0) + 1;
          variant = resign(variant);
          std::vector<ProcessId> lo, hi;
          for (ProcessId d : dests) {
            (d.value < base_.n() / 2 ? lo : hi).push_back(d);
          }
          deliver(lo, msg);
          deliver(hi, variant);
          return;
        }
        break;

      case Behavior::kLieInit:
        if (msg.core.kind == BftKind::kInit) {
          // An irrelevant initial value — undetectable by design.
          msg.core.init_value = 0xdeadbeef;
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kSpuriousCurrent:
        if (msg.core.kind == BftKind::kNext &&
            r.value >= spec.from_round.value &&
            owner_.last_injected_round_ < r.value) {
          owner_.last_injected_round_ = r.value;
          deliver(dests, msg);
          SignedMessage fake;
          fake.core.kind = BftKind::kCurrent;
          fake.core.sender = msg.core.sender;
          fake.core.round = r;
          fake.core.est.assign(owner_.n_, std::nullopt);
          fake.cert = msg.cert;
          deliver(dests, resign(fake));
          return;
        }
        break;

      case Behavior::kFutureRound:
        if ((msg.core.kind == BftKind::kCurrent ||
             msg.core.kind == BftKind::kNext) &&
            r.value >= spec.from_round.value) {
          // A vote for a round nobody reached: receivers buffer it
          // (footnote 5) and reject it once the round arrives.
          msg.core.round = Round{r.value + 5};
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kStaleReplay:
        if (msg.core.kind == BftKind::kCurrent ||
            msg.core.kind == BftKind::kNext) {
          if (!owner_.stale_frame_.has_value() &&
              r.value >= spec.from_round.value) {
            owner_.stale_frame_ = msg;  // remember the authentic original
          } else if (owner_.stale_frame_.has_value() &&
                     r.value > owner_.stale_frame_->core.round.value &&
                     owner_.last_injected_round_ < r.value) {
            owner_.last_injected_round_ = r.value;
            deliver(dests, msg);
            // The replay is byte-identical to a frame the receivers
            // already accepted: signature valid, timing wrong.
            deliver(dests, *owner_.stale_frame_);
            return;
          }
        }
        break;

      case Behavior::kReplayCert:
        if (msg.core.kind == BftKind::kCurrent ||
            msg.core.kind == BftKind::kNext) {
          if (!owner_.stale_cert_.has_value() &&
              r.value >= spec.from_round.value && !msg.cert.empty()) {
            owner_.stale_cert_.emplace(r, msg.cert);
          } else if (owner_.stale_cert_.has_value() &&
                     r.value > owner_.stale_cert_->first.value) {
            msg.cert = owner_.stale_cert_->second;  // stale witness set
            deliver(dests, resign(msg));
            return;
          }
        }
        break;

      case Behavior::kTruncateCert:
        if ((msg.core.kind == BftKind::kCurrent ||
             msg.core.kind == BftKind::kDecide) &&
            r.value >= spec.from_round.value && !msg.cert.pruned &&
            msg.cert.size() > 1) {
          Certificate cut;
          for (std::size_t i = 0; i < msg.cert.size() / 2; ++i) {
            cut.add(msg.cert.member_ptr(i));
          }
          msg.cert = std::move(cut);  // below quorum: no longer witnesses
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kForgeCert:
        if ((msg.core.kind == BftKind::kCurrent ||
             msg.core.kind == BftKind::kNext) &&
            r.value >= spec.from_round.value && !msg.cert.pruned &&
            msg.cert.size() > 0) {
          // Falsify a member it did not sign: the envelope re-signs fine,
          // the member's own signature no longer matches its core.
          msg.cert.mutate_member(0, [](SignedMessage& member) {
            member.core.init_value += 1;
            if (!member.core.est.empty()) {
              member.core.est[0] = member.core.est[0].value_or(0) + 1;
            }
          });
          deliver(dests, resign(msg));
          return;
        }
        break;

      case Behavior::kSelectiveMute:
        if (r.value >= spec.from_round.value ||
            msg.core.kind == BftKind::kDecide) {
          std::vector<ProcessId> kept;
          for (ProcessId d : dests) {
            if (d.value >= base_.n() / 2 || d == base_.id()) kept.push_back(d);
          }
          if (kept.empty()) return;
          deliver(kept, msg);
          return;
        }
        break;
    }
    deliver(dests, msg);
  }

  ByzantineActor& owner_;
};

ByzantineActor::ByzantineActor(std::unique_ptr<bft::BftProcess> inner,
                               const crypto::Signer* signer, FaultSpec spec,
                               std::uint32_t n)
    : inner_(std::move(inner)), signer_(signer), spec_(spec), n_(n) {
  MODUBFT_EXPECTS(inner_ != nullptr);
  MODUBFT_EXPECTS(signer_ != nullptr);
}

void ByzantineActor::on_start(sim::Context& ctx) {
  EvilContext evil(ctx, *this);
  inner_->on_start(evil);
}

void ByzantineActor::on_message(sim::Context& ctx, ProcessId from,
                                const Bytes& payload) {
  EvilContext evil(ctx, *this);
  inner_->on_message(evil, from, payload);
}

void ByzantineActor::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  EvilContext evil(ctx, *this);
  inner_->on_timer(evil, timer_id);
}

}  // namespace modubft::faults
