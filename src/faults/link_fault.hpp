// Link-fault vocabulary: failures of the *channels*, not the processes.
//
// The paper's transformation assumes reliable-FIFO channels and puts every
// process failure class into `fault_spec.hpp`.  This header is the
// complementary taxonomy one layer below: faults of a directed link
// p_i → p_j as a TCP connection would experience them — connection death
// mid-stream, truncated frames, delayed or throttled writes, and flipped
// payload bytes.  The transport (`transport/link_faults.hpp`) turns a set
// of these specs plus a seed into a deterministic per-link schedule; the
// resilient channel layer must absorb all of it and re-establish the
// reliable-FIFO contract the protocols assume.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"

namespace modubft::faults {

/// One directed-link failure class (what a single injected event does).
enum class LinkFaultKind : std::uint8_t {
  kNone = 0,
  /// Connection closed before the frame is written (mid-stream link death;
  /// the sender must reconnect and resume).
  kKill,
  /// Only a prefix of the frame reaches the wire, then the connection dies
  /// (partial write / crashed router).
  kTruncate,
  /// One byte of the wire image is flipped (corruption; the frame checksum
  /// must catch it and force a retransmit).
  kFlip,
  /// The frame is held back for a while before being written (congestion).
  kDelay,
  /// The frame is written in small chunks (throttled link; exercises
  /// partial reads on the receiver).
  kThrottle,
};

const char* link_fault_kind_name(LinkFaultKind kind);

/// Fault assignment for directed links.  `from`/`to` select one link;
/// leaving either unset (nullopt) makes the spec apply to every link it
/// matches (a wildcard), so a single spec can perturb the whole mesh.
///
/// Probabilities are per transmission *attempt* (retransmits are attempts
/// too), drawn from a per-link generator derived from the plan seed, so a
/// given seed always yields the same schedule for the same attempt
/// sequence.  `kill_at_attempts` adds guaranteed, deterministic kills at
/// the given attempt indices (0-based) — the chaos tests use it to ensure
/// every link dies at least once regardless of traffic volume.
struct LinkFaultSpec {
  std::optional<ProcessId> from;  // nullopt = any sender
  std::optional<ProcessId> to;    // nullopt = any receiver

  double kill_prob = 0.0;
  double truncate_prob = 0.0;
  double flip_prob = 0.0;
  double delay_prob = 0.0;
  /// Mean of the exponential delay applied when a kDelay fires (µs).
  std::uint32_t delay_mean_us = 500;
  /// 0 = no throttling; otherwise every write is chopped into chunks of at
  /// most this many bytes.
  std::uint32_t throttle_chunk_bytes = 0;

  /// Deterministic kill points: the connection is killed immediately
  /// before these transmission attempts (0-based attempt index per link).
  std::vector<std::uint64_t> kill_at_attempts;

  /// Cap on randomly drawn disruptive faults (kills + truncations + flips)
  /// per link, so an unlucky seed cannot starve a link forever.
  /// Deterministic `kill_at_attempts` kills do not count against the cap.
  std::uint64_t max_random_faults = 64;

  bool matches(ProcessId f, ProcessId t) const {
    return (!from || *from == f) && (!to || *to == t);
  }
};

}  // namespace modubft::faults
