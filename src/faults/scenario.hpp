// One-call scenario runners shared by tests, benchmarks and examples.
//
// A scenario = group size + fault assignment + network model + seed + an
// execution substrate.  The runner wires up the whole stack (keys,
// runtime, actors, detectors), runs to completion, and evaluates the
// paper's correctness properties over the outcome so that callers assert
// on booleans instead of re-deriving the checks.
//
// Every runner is substrate-generic (runtime::Backend): the same scenario
// executes on the deterministic simulator, the threaded in-memory cluster,
// or the TCP loopback cluster — see docs/RUNTIME.md for the contract.  The
// implementations live in src/runtime/scenario.cpp (the threaded backends
// sit above faults/ in the link order).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bft/bft_consensus.hpp"
#include "client/client.hpp"
#include "consensus/value.hpp"
#include "crypto/verify_cache.hpp"
#include "faults/fault_spec.hpp"
#include "fd/oracle_fd.hpp"
#include "runtime/substrate.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace modubft::faults {

enum class Scheme { kHmac, kRsa64 };

// --------------------------------------------------------------------- BFT

struct BftScenarioConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;  // declared resilience (quorum = n − f)
  std::uint64_t seed = 1;
  /// Execution backend: deterministic simulator (default), threaded
  /// in-memory cluster, or TCP loopback cluster.
  runtime::Backend substrate = runtime::Backend::kSim;
  sim::LatencyModel latency = sim::calm_network();
  std::vector<FaultSpec> faults;
  Scheme scheme = Scheme::kHmac;
  bool prune = true;
  /// Certificate fast path: toggle the shared verified-signature cache
  /// (bft::BftConfig::verify_cache).  Behaviour must be identical either
  /// way; the equivalence tests assert it.
  bool verify_cache = true;
  /// Optional certification-bound override (see bft::BftConfig).
  std::optional<std::uint32_t> certification_bound;
  /// Attach a crypto::VerifyPool with this many workers, shared by every
  /// process (0 = synchronous pool: accounting without threads — the
  /// deterministic configuration).  Unset = no pool, serial verification
  /// exactly as before.
  std::optional<std::uint32_t> verify_workers;
  /// false = audit mode: processes keep their detection modules running
  /// after deciding, guaranteeing that every delivered misbehaviour ends up
  /// in the fault records.
  bool stop_on_decide = true;
  /// ◇M timeouts.  When left at the defaults on a wall-clock substrate the
  /// runner widens them (OS scheduling noise would otherwise trip the
  /// simulator-scale timeout); an explicit non-default value is honoured
  /// everywhere.
  fd::MutenessConfig muteness{};
  /// Optional override of bft::BftConfig::suspicion_poll_period (µs);
  /// unset = the runner picks a substrate-appropriate period.
  std::optional<SimTime> suspicion_poll_period;
  SimTime max_time = 120'000'000;
  /// Wall-clock budget for the threaded/TCP substrates.
  std::chrono::milliseconds budget{20'000};
  /// kTcp: link faults injected below the framing layer.
  std::vector<LinkFaultSpec> link_faults;
  /// Proposal of p_{i+1}; defaults to 1000 + i when empty.
  std::vector<consensus::Value> proposals;
  /// Optional observer for every delivery (tracing, safety auditing).
  std::function<void(const sim::Delivery&)> delivery_tap;
  /// Optional decorator applied to every installed actor after fault
  /// wrapping — the adversary layer splices wire-level mutators under
  /// selected processes this way.  A wrapper that makes a process
  /// misbehave — or replaces it outright, discarding the BftProcess whose
  /// internals the evaluation reads — must list it in `assume_faulty`.
  std::function<std::unique_ptr<sim::Actor>(ProcessId,
                                            std::unique_ptr<sim::Actor>)>
      wrap_actor;
  /// Processes the property evaluation must count as faulty although they
  /// carry no FaultSpec (e.g. wire-fuzzed senders).
  std::set<std::uint32_t> assume_faulty;
};

struct BftScenarioResult {
  runtime::RunOutcome outcome = runtime::RunOutcome::kQuiescent;
  /// True iff the run ended without hitting a time/event/budget limit.
  bool clean = false;
  /// Named stragglers when a limit hit (see runtime::RunResult).
  std::vector<ProcessId> unstopped;

  /// Decisions of correct processes, keyed by process index.
  std::map<std::uint32_t, bft::VectorDecision> decisions;

  /// Indices of processes that were given no fault.
  std::set<std::uint32_t> correct;

  // --- paper properties, evaluated over the correct processes ---
  bool termination = false;      // every correct process decided
  bool agreement = false;        // all decided vectors equal
  bool vector_validity = false;  // per-entry rule + the ρ = n−2F floor
  std::uint32_t min_correct_entries = 0;  // worst-case certified entries
  bool detectors_reliable = false;  // faulty_i ⊆ actually-faulty ∀ correct i

  /// Union of fault records accumulated by correct processes.
  std::vector<bft::FaultRecord> records;

  /// Which processes the correct ones declared faulty.
  std::set<std::uint32_t> declared_faulty;

  Round max_decision_round;
  SimTime last_decision_time = 0;
  /// Unified cross-substrate counters (run_stats.net == net).
  runtime::RunStats run_stats;
  sim::Stats net;
  std::uint64_t max_message_bytes = 0;
  std::uint64_t protocol_bytes = 0;  // sum of per-process send bytes

  /// Verified-signature cache counters summed over correct processes
  /// (all zero when verify_cache is off).
  crypto::VerifyCacheStats verify_cache_stats;
};

BftScenarioResult run_bft_scenario(const BftScenarioConfig& config);

// ------------------------------------------------------------------- crash

enum class CrashProtocol { kHurfinRaynal, kChandraToueg };

struct CrashScenarioConfig {
  std::uint32_t n = 5;
  std::uint64_t seed = 1;
  runtime::Backend substrate = runtime::Backend::kSim;
  sim::LatencyModel latency = sim::calm_network();
  CrashProtocol protocol = CrashProtocol::kHurfinRaynal;
  /// crash_times[i]: when p_{i+1} crashes (nullopt = correct).
  std::vector<std::optional<SimTime>> crash_times;
  fd::OracleConfig oracle{};
  SimTime max_time = 120'000'000;
  std::chrono::milliseconds budget{20'000};
  std::vector<consensus::Value> proposals;
};

struct CrashScenarioResult {
  runtime::RunOutcome outcome = runtime::RunOutcome::kQuiescent;
  bool clean = false;
  std::vector<ProcessId> unstopped;
  std::map<std::uint32_t, consensus::Decision> decisions;
  std::set<std::uint32_t> correct;
  bool termination = false;
  bool agreement = false;
  bool validity = false;  // decided value was proposed by someone
  Round max_decision_round;
  SimTime last_decision_time = 0;
  runtime::RunStats run_stats;
  sim::Stats net;
};

CrashScenarioResult run_crash_scenario(const CrashScenarioConfig& config);

// ---------------------------------------------------------------- lockstep

struct LockstepScenarioConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t rounds = 5;
  std::uint64_t seed = 1;
  runtime::Backend substrate = runtime::Backend::kSim;
  sim::LatencyModel latency = sim::calm_network();
  SimTime max_time = 120'000'000;
  std::chrono::milliseconds budget{20'000};
  /// Processes crashed mid-barrier (the barrier tolerates up to f).
  std::vector<CrashSpec> crashes;
};

struct LockstepScenarioResult {
  runtime::RunOutcome outcome = runtime::RunOutcome::kQuiescent;
  bool clean = false;
  std::vector<ProcessId> unstopped;

  std::set<std::uint32_t> correct;
  /// Final round reached per finished process.
  std::map<std::uint32_t, Round> finished;
  bool all_correct_finished = false;
  /// No correct process convicted another correct process.
  bool no_false_accusations = true;
  /// Union of fault records accumulated by correct processes.
  std::vector<bft::FaultRecord> records;

  runtime::RunStats run_stats;
};

LockstepScenarioResult run_lockstep_scenario(
    const LockstepScenarioConfig& config);

// --------------------------------------------------------------------- SMR

/// Live client load for an SMR scenario (ISSUE 9): `count` client actors
/// on process ids [n, n + count), each driving a deterministic script of
/// `ops_per_client` operations through the REQUEST/REPLY path instead of
/// the preloaded workload.  Scripts are a pure function of (client index,
/// op index), so every run of the same config submits the same commands.
struct ClientLoadConfig {
  std::uint32_t count = 2;
  std::uint32_t ops_per_client = 8;
  /// false: closed loop (one outstanding op per client).  true: open loop
  /// at `interval` µs per submission, up to `max_outstanding` in flight.
  bool open_loop = false;
  SimTime interval = 1'000;
  std::uint32_t max_outstanding = 16;
  /// Replica-side admission bound (smr::ClientServiceConfig::max_pending).
  std::uint32_t max_pending = 64;
  /// Client retry-backoff base (µs); unset = substrate default
  /// (sim 40 ms, threads 200 ms, tcp 400 ms).
  std::optional<SimTime> retry_base;
  /// Consecutive timeouts before a client rotates its contact replica.
  std::uint32_t failover_after = 2;
  /// Negative-control switch: clients accept the first reply without
  /// certification (adversary harness only — forged replies must land).
  bool trust_first_reply = false;
  /// Distinct keys the scripts touch.
  std::uint32_t keyspace = 8;
  /// Client authentication: sign request bodies / DONE / SEQ_BOUND and
  /// verify them replica-side.  Unset = on exactly when the backend is
  /// Byzantine (forgery in the fault model), off for crash backends.
  /// Explicit false under Byzantine is the body-forgery negative control.
  std::optional<bool> authenticate;
  /// Commit-eligibility window (smr::ClientServiceConfig::seq_window).
  /// Unset = max_outstanding for open-loop runs, 1 for closed-loop.
  std::optional<std::uint32_t> seq_window;
};

struct SmrScenarioConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;  // Byzantine backend resilience
  std::uint64_t slots = 5;
  std::uint64_t seed = 1;
  runtime::Backend substrate = runtime::Backend::kSim;
  smr::Backend backend = smr::Backend::kCrashHurfinRaynal;
  sim::LatencyModel latency = sim::calm_network();
  SimTime max_time = 120'000'000;
  std::chrono::milliseconds budget{20'000};
  /// Crash backend: replicas halted mid-run (also fed to the oracle ◇S).
  std::vector<CrashSpec> crashes;
  fd::OracleConfig oracle{};
  /// Command table; defaults to the canonical 5-command KV workload.
  std::vector<smr::Command> workload;
  /// Signature scheme (Byzantine back-end and checkpoint certificates).
  /// kRsa64 puts the run in the verification-dominated regime the staged
  /// ingest pipeline targets (bench E19); kHmac is the cheap default.
  Scheme scheme = Scheme::kHmac;
  /// Pipeline window W (concurrent consensus instances per replica).
  std::uint32_t window = 1;
  /// Batch size B (commands committed per slot).
  std::uint32_t batch = 1;
  /// Byzantine backend: verify-pool workers shared by all replicas.
  /// Unset = substrate default (sim: 0 — the synchronous deterministic
  /// pool; threads/tcp: 3 workers).
  std::optional<std::uint32_t> verify_workers;
  /// Staged ingest pipeline (smr::ReplicaConfig::staged_ingest): parallel
  /// decode+verify prologue over each delivery batch plus batched egress
  /// signing.  Unset = substrate default (sim: off — its event loop
  /// dispatches one message at a time anyway; threads/tcp: on).
  /// Observationally equivalent either way — the equivalence tests
  /// compare the stores bit for bit.
  std::optional<bool> staged_ingest;

  // --- checkpointing / recovery (ISSUE 6) ---
  /// Checkpoint every C committed slots (0 = off; wire format identical
  /// to a pre-recovery build).  When on, a CrashSpec carrying
  /// `restart_at` brings the replica back as a FRESH actor that recovers
  /// via certified state transfer; such replicas count as correct and are
  /// expected to end with the quorum's store.
  std::uint64_t checkpoint_interval = 0;
  /// Recovery retry-timer base (µs); unset = substrate default
  /// (sim 20 ms, threads 50 ms, tcp 100 ms).
  std::optional<SimTime> recovery_retry_delay;
  /// Negative-control switch: recovering replicas install the first
  /// STATE_RESP without verification (adversary harness only).
  bool recovery_trust_unverified = false;
  /// Optional decorator applied to every installed actor (including
  /// restarted lives) — the adversary layer splices wire-level mutators
  /// under selected replicas this way.  A wrapper that makes a replica
  /// misbehave must list it in `assume_faulty`.
  std::function<std::unique_ptr<sim::Actor>(ProcessId,
                                            std::unique_ptr<sim::Actor>)>
      wrap_actor;
  /// Replicas the evaluation must count as faulty although they carry no
  /// CrashSpec (e.g. forged-checkpoint senders).
  std::set<std::uint32_t> assume_faulty;

  // --- client/service layer (ISSUE 9) ---
  /// Attach live clients; replicas switch into client mode (see
  /// smr::ClientServiceConfig).  The preloaded workload defaults to empty
  /// (clients ARE the workload), size the log so the submitted commands
  /// fit: slots ≥ count × ops_per_client plus drain margin.
  std::optional<ClientLoadConfig> clients;
  /// Extra preloaded commands appended to `workload` on SELECTED replicas
  /// only (adversary harness): a replica that "knows" command bodies the
  /// rest of Π never saw models a Byzantine proposer deciding fabricated
  /// client ids.  A replica listed here must appear in `assume_faulty`
  /// unless the extra commands are harmless.
  std::map<std::uint32_t, std::vector<smr::Command>> extra_workload;
  /// kTcp: link faults injected below the framing layer.
  std::vector<LinkFaultSpec> link_faults;
};

struct SmrScenarioResult {
  runtime::RunOutcome outcome = runtime::RunOutcome::kQuiescent;
  bool clean = false;
  std::vector<ProcessId> unstopped;

  std::set<std::uint32_t> correct;
  /// Slots committed per replica.
  std::map<std::uint32_t, std::uint64_t> committed;
  bool all_committed = false;  // every correct replica committed all slots
  bool stores_agree = false;   // all correct stores byte-identical
  /// Contents of the first correct replica's store.
  std::map<std::string, std::string> store;
  /// Killed replicas that rejoined via verified state transfer — a
  /// certified snapshot install, or a quorum-verified suffix replay from
  /// genesis when no checkpoint had certified before the kill.
  std::set<std::uint32_t> recovered;
  /// Final store of every correct replica (recovery audits compare the
  /// recovered replica against the surviving quorum entry by entry).
  std::map<std::uint32_t, std::map<std::string, std::string>> stores;

  // --- client/service layer (filled only when config.clients is set) ---
  /// Committed commands as witnessed by the commit-log reference replica
  /// (the lowest-id never-crashed one): command id → (slot, command).
  /// The auditor checks every client-accepted reply against this map.
  std::map<std::uint64_t, std::pair<std::uint64_t, smr::Command>> commit_log;
  /// Commands the reference replica applied more than once (must be 0 —
  /// the exactly-once audit).
  std::uint64_t commit_log_duplicates = 0;
  /// Per-client stats and accepted replies, keyed by client process id.
  std::map<std::uint32_t, client::ClientStats> client_stats;
  std::map<std::uint32_t, std::vector<client::AcceptedReply>> client_accepted;
  /// Clients whose whole script certified (CLIENT_DONE broadcast).
  std::set<std::uint32_t> clients_done;

  runtime::RunStats run_stats;
};

SmrScenarioResult run_smr_scenario(const SmrScenarioConfig& config);

/// The canonical 5-command KV workload (put/overwrite/delete mix).
std::vector<smr::Command> sample_workload();

}  // namespace modubft::faults
