// One-call scenario runners shared by tests, benchmarks and examples.
//
// A scenario = group size + fault assignment + network model + seed.  The
// runner wires up the whole stack (keys, simulator, actors, detectors),
// runs to completion, and evaluates the paper's correctness properties over
// the outcome so that callers assert on booleans instead of re-deriving
// the checks.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bft/bft_consensus.hpp"
#include "consensus/value.hpp"
#include "crypto/verify_cache.hpp"
#include "faults/fault_spec.hpp"
#include "fd/oracle_fd.hpp"
#include "sim/simulation.hpp"

namespace modubft::faults {

enum class Scheme { kHmac, kRsa64 };

// --------------------------------------------------------------------- BFT

struct BftScenarioConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;  // declared resilience (quorum = n − f)
  std::uint64_t seed = 1;
  sim::LatencyModel latency = sim::calm_network();
  std::vector<FaultSpec> faults;
  Scheme scheme = Scheme::kHmac;
  bool prune = true;
  /// Certificate fast path: toggle the shared verified-signature cache
  /// (bft::BftConfig::verify_cache).  Behaviour must be identical either
  /// way; the equivalence tests assert it.
  bool verify_cache = true;
  /// Optional certification-bound override (see bft::BftConfig).
  std::optional<std::uint32_t> certification_bound;
  /// false = audit mode: processes keep their detection modules running
  /// after deciding, guaranteeing that every delivered misbehaviour ends up
  /// in the fault records.
  bool stop_on_decide = true;
  fd::MutenessConfig muteness{};
  SimTime max_time = 120'000'000;
  /// Proposal of p_{i+1}; defaults to 1000 + i when empty.
  std::vector<consensus::Value> proposals;
  /// Optional observer for every delivery (tracing).
  std::function<void(const sim::Delivery&)> delivery_tap;
};

struct BftScenarioResult {
  sim::RunOutcome outcome = sim::RunOutcome::kQuiescent;

  /// Decisions of correct processes, keyed by process index.
  std::map<std::uint32_t, bft::VectorDecision> decisions;

  /// Indices of processes that were given no fault.
  std::set<std::uint32_t> correct;

  // --- paper properties, evaluated over the correct processes ---
  bool termination = false;      // every correct process decided
  bool agreement = false;        // all decided vectors equal
  bool vector_validity = false;  // per-entry rule + the ρ = n−2F floor
  std::uint32_t min_correct_entries = 0;  // worst-case certified entries
  bool detectors_reliable = false;  // faulty_i ⊆ actually-faulty ∀ correct i

  /// Union of fault records accumulated by correct processes.
  std::vector<bft::FaultRecord> records;

  /// Which processes the correct ones declared faulty.
  std::set<std::uint32_t> declared_faulty;

  Round max_decision_round;
  SimTime last_decision_time = 0;
  sim::Stats net;
  std::uint64_t max_message_bytes = 0;
  std::uint64_t protocol_bytes = 0;  // sum of per-process send bytes

  /// Verified-signature cache counters summed over correct processes
  /// (all zero when verify_cache is off).
  crypto::VerifyCacheStats verify_cache_stats;
};

BftScenarioResult run_bft_scenario(const BftScenarioConfig& config);

// ------------------------------------------------------------------- crash

enum class CrashProtocol { kHurfinRaynal, kChandraToueg };

struct CrashScenarioConfig {
  std::uint32_t n = 5;
  std::uint64_t seed = 1;
  sim::LatencyModel latency = sim::calm_network();
  CrashProtocol protocol = CrashProtocol::kHurfinRaynal;
  /// crash_times[i]: when p_{i+1} crashes (nullopt = correct).
  std::vector<std::optional<SimTime>> crash_times;
  fd::OracleConfig oracle{};
  SimTime max_time = 120'000'000;
  std::vector<consensus::Value> proposals;
};

struct CrashScenarioResult {
  sim::RunOutcome outcome = sim::RunOutcome::kQuiescent;
  std::map<std::uint32_t, consensus::Decision> decisions;
  std::set<std::uint32_t> correct;
  bool termination = false;
  bool agreement = false;
  bool validity = false;  // decided value was proposed by someone
  Round max_decision_round;
  SimTime last_decision_time = 0;
  sim::Stats net;
};

CrashScenarioResult run_crash_scenario(const CrashScenarioConfig& config);

}  // namespace modubft::faults
