#include "faults/scenario.hpp"

#include "bft/config.hpp"
#include "common/check.hpp"
#include "consensus/chandra_toueg.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "crypto/hmac_signer.hpp"
#include "crypto/rsa64.hpp"
#include "faults/byzantine.hpp"

namespace modubft::faults {

namespace {

crypto::SignatureSystem make_keys(Scheme scheme, std::uint32_t n,
                                  std::uint64_t seed) {
  if (scheme == Scheme::kRsa64) {
    return crypto::Rsa64Scheme{}.make_system(n, seed);
  }
  return crypto::HmacScheme{}.make_system(n, seed);
}

std::vector<consensus::Value> default_proposals(
    std::uint32_t n, const std::vector<consensus::Value>& given) {
  if (!given.empty()) {
    MODUBFT_EXPECTS(given.size() == n);
    return given;
  }
  std::vector<consensus::Value> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = 1000 + i;
  return out;
}

}  // namespace

BftScenarioResult run_bft_scenario(const BftScenarioConfig& config) {
  bft::BftConfig proto;
  proto.n = config.n;
  proto.f = config.f;
  proto.prune_nested_next = config.prune;
  proto.verify_cache = config.verify_cache;
  proto.certification_bound = config.certification_bound;
  proto.stop_on_decide = config.stop_on_decide;
  proto.muteness = config.muteness;
  proto.validate();

  const std::vector<consensus::Value> proposals =
      default_proposals(config.n, config.proposals);

  crypto::SignatureSystem keys = make_keys(config.scheme, config.n, config.seed);

  sim::SimConfig sim_cfg;
  sim_cfg.n = config.n;
  sim_cfg.seed = config.seed;
  sim_cfg.latency = config.latency;
  sim_cfg.max_time = config.max_time;
  sim::Simulation world(sim_cfg);
  if (config.delivery_tap) world.set_delivery_tap(config.delivery_tap);

  BftScenarioResult result;

  // Fault assignment lookup.
  std::vector<FaultSpec> spec_of(config.n);
  for (std::uint32_t i = 0; i < config.n; ++i) {
    spec_of[i].who = ProcessId{i};
    spec_of[i].behavior = Behavior::kNone;
  }
  for (const FaultSpec& s : config.faults) {
    MODUBFT_EXPECTS(s.who.value < config.n);
    spec_of[s.who.value] = s;
  }

  std::vector<const bft::BftProcess*> views(config.n, nullptr);

  for (std::uint32_t i = 0; i < config.n; ++i) {
    const ProcessId id{i};
    auto inner = std::make_unique<bft::BftProcess>(
        proto, proposals[i], keys.signers[i].get(), keys.verifier,
        [&result, i](ProcessId, const bft::VectorDecision& d) {
          result.decisions.emplace(i, d);
        });
    views[i] = inner.get();

    const FaultSpec& spec = spec_of[i];
    if (spec.behavior == Behavior::kNone) {
      result.correct.insert(i);
      world.set_actor(id, std::move(inner));
    } else if (spec.behavior == Behavior::kCrash) {
      world.set_actor(id, std::move(inner));
      world.crash_at(id, spec.at);
    } else {
      world.set_actor(id, std::make_unique<ByzantineActor>(
                              std::move(inner), keys.signers[i].get(), spec,
                              config.n));
    }
  }

  result.outcome = world.run();
  result.net = world.stats();

  // ---- evaluate the paper's properties over the correct processes ----
  result.termination = true;
  for (std::uint32_t i : result.correct) {
    if (result.decisions.count(i) == 0) result.termination = false;
  }

  result.agreement = true;
  const bft::VectorValue* first = nullptr;
  for (std::uint32_t i : result.correct) {
    auto it = result.decisions.find(i);
    if (it == result.decisions.end()) continue;
    if (first == nullptr) {
      first = &it->second.entries;
    } else if (*first != it->second.entries) {
      result.agreement = false;
    }
    result.max_decision_round =
        std::max(result.max_decision_round, it->second.round);
    result.last_decision_time =
        std::max(result.last_decision_time, it->second.time);
  }

  // Vector Validity (paper §5.1): for correct p_i, vect[i] is v_i or null,
  // and at least n − 2F entries are initial values of correct processes.
  result.vector_validity = true;
  result.min_correct_entries = config.n;
  const std::uint32_t floor_entries = config.n >= 2 * config.f
                                          ? config.n - 2 * config.f
                                          : 0;
  for (std::uint32_t i : result.correct) {
    auto it = result.decisions.find(i);
    if (it == result.decisions.end()) continue;
    const bft::VectorValue& vect = it->second.entries;
    if (vect.size() != config.n) {
      result.vector_validity = false;
      continue;
    }
    std::uint32_t correct_entries = 0;
    for (std::uint32_t j = 0; j < config.n; ++j) {
      const bool j_correct = result.correct.count(j) > 0;
      if (!vect[j].has_value()) continue;
      if (j_correct) {
        if (*vect[j] == proposals[j]) {
          ++correct_entries;
        } else {
          result.vector_validity = false;  // falsified correct entry
        }
      }
    }
    result.min_correct_entries =
        std::min(result.min_correct_entries, correct_entries);
    if (correct_entries < floor_entries) result.vector_validity = false;
  }
  if (result.decisions.empty()) result.vector_validity = false;

  // Detector reliability: correct processes never accuse correct ones.
  result.detectors_reliable = true;
  for (std::uint32_t i : result.correct) {
    for (const bft::FaultRecord& rec : views[i]->nonmuteness().records()) {
      result.records.push_back(rec);
      result.declared_faulty.insert(rec.culprit.value);
      if (result.correct.count(rec.culprit.value) > 0) {
        result.detectors_reliable = false;
      }
    }
    result.max_message_bytes = std::max(
        result.max_message_bytes, views[i]->send_stats().max_message_bytes);
    result.protocol_bytes += views[i]->send_stats().bytes;
    if (const crypto::CachingVerifier* cache = views[i]->verify_cache()) {
      const crypto::VerifyCacheStats s = cache->stats();
      result.verify_cache_stats.hits += s.hits;
      result.verify_cache_stats.misses += s.misses;
      result.verify_cache_stats.evictions += s.evictions;
    }
  }

  return result;
}

CrashScenarioResult run_crash_scenario(const CrashScenarioConfig& config) {
  MODUBFT_EXPECTS(config.crash_times.empty() ||
                  config.crash_times.size() == config.n);

  const std::vector<consensus::Value> proposals =
      default_proposals(config.n, config.proposals);

  std::vector<std::optional<SimTime>> crash_times = config.crash_times;
  crash_times.resize(config.n);

  sim::SimConfig sim_cfg;
  sim_cfg.n = config.n;
  sim_cfg.seed = config.seed;
  sim_cfg.latency = config.latency;
  sim_cfg.max_time = config.max_time;
  sim::Simulation world(sim_cfg);

  CrashScenarioResult result;

  for (std::uint32_t i = 0; i < config.n; ++i) {
    const ProcessId id{i};
    if (!crash_times[i].has_value()) result.correct.insert(i);

    fd::OracleConfig oracle = config.oracle;
    oracle.seed = config.oracle.seed ^ (0x1000 + i);  // independent mistakes
    auto detector =
        std::make_shared<fd::OracleDetector>(crash_times, oracle);

    auto on_decide = [&result, i](ProcessId, const consensus::Decision& d) {
      result.decisions.emplace(i, d);
    };

    std::unique_ptr<sim::Actor> actor;
    if (config.protocol == CrashProtocol::kHurfinRaynal) {
      actor = std::make_unique<consensus::HurfinRaynalActor>(
          config.n, proposals[i], detector, on_decide);
    } else {
      actor = std::make_unique<consensus::ChandraTouegActor>(
          config.n, proposals[i], detector, on_decide);
    }
    world.set_actor(id, std::move(actor));
    if (crash_times[i].has_value()) world.crash_at(id, *crash_times[i]);
  }

  result.outcome = world.run();
  result.net = world.stats();

  result.termination = true;
  for (std::uint32_t i : result.correct) {
    if (result.decisions.count(i) == 0) result.termination = false;
  }

  result.agreement = true;
  result.validity = true;
  std::optional<consensus::Value> decided;
  for (auto& [i, d] : result.decisions) {
    if (result.correct.count(i) == 0) continue;
    if (!decided.has_value()) decided = d.value;
    if (*decided != d.value) result.agreement = false;
    bool proposed = false;
    for (consensus::Value v : proposals) proposed = proposed || v == d.value;
    if (!proposed) result.validity = false;
    result.max_decision_round = std::max(result.max_decision_round, d.round);
    result.last_decision_time = std::max(result.last_decision_time, d.time);
  }

  return result;
}

}  // namespace modubft::faults
