// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence); the sequence tiebreak
// makes runs fully deterministic for a given seed, which is what lets a
// failing protocol execution be replayed exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/ids.hpp"

namespace modubft::sim {

/// A scheduled action.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  // insertion order, breaks time ties
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  /// Schedules `action` at absolute time `time`.
  void push(SimTime time, std::function<void()> action);

  /// Removes and returns the earliest event.  Precondition: !empty().
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event.  Precondition: !empty().
  SimTime next_time() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace modubft::sim
