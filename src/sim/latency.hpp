// Message-latency models for the simulated network.
//
// The paper's system model is asynchronous: no bound on message transfer
// delays.  For *termination* experiments we use the standard
// partial-synchrony trick: before a global stabilization time (GST)
// latencies are drawn from a heavy-tailed distribution (arbitrarily
// adversarial timing), after GST they are bounded.  ◇S/◇M detectors then
// achieve their eventual properties, exactly as the literature assumes.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace modubft::sim {

/// Partially-synchronous latency model (all times in simulated µs).
struct LatencyModel {
  /// Fixed propagation floor applied to every message.
  double base_us = 100.0;

  /// Mean of the exponential jitter added on top of the floor.
  double jitter_mean_us = 200.0;

  /// Global stabilization time.  Before `gst`, each message independently
  /// suffers an extra heavy delay with probability `pre_gst_slow_prob`.
  SimTime gst = 0;

  /// Probability of a pre-GST heavy delay.
  double pre_gst_slow_prob = 0.0;

  /// Mean of the pre-GST heavy delay (exponential).
  double pre_gst_slow_mean_us = 10'000.0;

  /// Draws one latency sample for a message sent at `now`.
  SimTime sample(Rng& rng, SimTime now) const;
};

/// A convenient well-behaved network (no pre-GST chaos).
LatencyModel calm_network();

/// A network that is adversarially slow until `gst`, calm afterwards.
LatencyModel turbulent_until(SimTime gst);

}  // namespace modubft::sim
