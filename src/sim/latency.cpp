#include "sim/latency.hpp"

#include <cmath>

namespace modubft::sim {

SimTime LatencyModel::sample(Rng& rng, SimTime now) const {
  double delay = base_us + rng.next_exponential(jitter_mean_us);
  if (now < gst && rng.next_bool(pre_gst_slow_prob)) {
    delay += rng.next_exponential(pre_gst_slow_mean_us);
  }
  // Always at least 1 simulated µs so causality is strict.
  if (delay < 1.0) delay = 1.0;
  return static_cast<SimTime>(std::llround(delay));
}

LatencyModel calm_network() {
  LatencyModel m;
  m.base_us = 100.0;
  m.jitter_mean_us = 150.0;
  m.gst = 0;
  m.pre_gst_slow_prob = 0.0;
  return m;
}

LatencyModel turbulent_until(SimTime gst) {
  LatencyModel m;
  m.base_us = 100.0;
  m.jitter_mean_us = 300.0;
  m.gst = gst;
  m.pre_gst_slow_prob = 0.25;
  m.pre_gst_slow_mean_us = 20'000.0;
  return m;
}

}  // namespace modubft::sim
