#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace modubft::sim {

void EventQueue::push(SimTime time, std::function<void()> action) {
  heap_.push(Event{time, next_seq_++, std::move(action)});
}

Event EventQueue::pop() {
  MODUBFT_EXPECTS(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  return e;
}

SimTime EventQueue::next_time() const {
  MODUBFT_EXPECTS(!heap_.empty());
  return heap_.top().time;
}

}  // namespace modubft::sim
