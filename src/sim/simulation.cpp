#include "sim/simulation.hpp"

#include "common/check.hpp"

namespace modubft::sim {

/// Concrete Context binding an actor callback to the simulated world.
class Simulation::SimContext final : public Context {
 public:
  SimContext(Simulation& world, ProcessId self) : world_(world), self_(self) {}

  ProcessId id() const override { return self_; }
  std::uint32_t n() const override { return world_.n(); }
  SimTime now() const override { return world_.now(); }

  void send(ProcessId to, Bytes payload) override {
    world_.enqueue_message(self_, to, std::move(payload));
  }

  void broadcast(const Bytes& payload) override {
    for (std::uint32_t i = 0; i < world_.n(); ++i) {
      world_.enqueue_message(self_, ProcessId{i}, payload);
    }
  }

  std::uint64_t set_timer(SimTime delay) override {
    ProcessState& ps = world_.state_[self_.value];
    const std::uint64_t id = ps.next_timer_id++;
    const std::uint64_t epoch = ps.epoch;
    const ProcessId owner = self_;
    Simulation& world = world_;
    world_.queue_.push(world_.now_ + delay, [&world, owner, id, epoch] {
      world.fire_timer(owner, id, epoch);
    });
    return id;
  }

  void cancel_timer(std::uint64_t timer_id) override {
    world_.state_[self_.value].cancelled_timers.insert(timer_id);
  }

  Rng& rng() override { return *world_.state_[self_.value].rng; }

  void stop() override { world_.state_[self_.value].stopped = true; }

 private:
  Simulation& world_;
  ProcessId self_;
};

Simulation::Simulation(SimConfig config)
    : config_(config), net_rng_(Rng(config.seed).split(0xabcdef)) {
  MODUBFT_EXPECTS(config.n > 0);
  state_.resize(config_.n);
  Rng root(config_.seed);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    state_[i].rng = std::make_unique<Rng>(root.split(i + 1));
  }
  channel_clear_.assign(config_.n, std::vector<SimTime>(config_.n, 0));
  channel_delay_.assign(config_.n, std::vector<ChannelDelay>(config_.n));
}

void Simulation::delay_channel(ProcessId from, ProcessId to, SimTime extra,
                               SimTime until) {
  MODUBFT_EXPECTS(from.value < config_.n);
  MODUBFT_EXPECTS(to.value < config_.n);
  channel_delay_[from.value][to.value] = ChannelDelay{extra, until};
}

void Simulation::delay_process(ProcessId victim, SimTime extra,
                               SimTime until) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    delay_channel(victim, ProcessId{i}, extra, until);
    delay_channel(ProcessId{i}, victim, extra, until);
  }
}

Simulation::~Simulation() = default;

void Simulation::set_actor(ProcessId id, std::unique_ptr<Actor> actor) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!started_);
  state_[id.value].actor = std::move(actor);
}

void Simulation::crash_at(ProcessId id, SimTime when) {
  MODUBFT_EXPECTS(id.value < config_.n);
  state_[id.value].crash_time = when;
  queue_.push(when, [this, id] { state_[id.value].crashed = true; });
}

void Simulation::restart_at(ProcessId id, SimTime when,
                            std::function<std::unique_ptr<Actor>()> factory) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(factory != nullptr);
  queue_.push(when, [this, id, factory = std::move(factory)] {
    ProcessState& ps = state_[id.value];
    // One-shot: only a process that actually died comes back.  (If the
    // crash never fired, or the world drained first, this is a no-op —
    // run() also exits on all-stopped before reaching a pending restart.)
    if (!ps.crashed) return;
    ps.crashed = false;
    ps.stopped = false;
    ps.epoch += 1;
    ps.cancelled_timers.clear();
    ps.actor = factory();
    SimContext ctx(*this, id);
    ps.actor->on_start(ctx);
  });
}

void Simulation::set_delivery_tap(std::function<void(const Delivery&)> tap) {
  tap_ = std::move(tap);
}

void Simulation::enqueue_message(ProcessId from, ProcessId to, Bytes payload) {
  MODUBFT_EXPECTS(to.value < config_.n);
  // A crashed or stopped sender emits nothing (its last callback may still
  // be unwinding; sends issued after the halt are suppressed here).
  if (!live(from)) return;

  stats_.messages_sent += 1;
  stats_.bytes_sent += payload.size();

  const SimTime send_time = now_;
  SimTime arrival = now_ + config_.latency.sample(net_rng_, now_);
  const ChannelDelay& slow = channel_delay_[from.value][to.value];
  if (now_ < slow.until) arrival += slow.extra;
  // FIFO: never deliver before an earlier message on the same channel.
  SimTime& clear = channel_clear_[from.value][to.value];
  if (arrival <= clear) arrival = clear + 1;
  clear = arrival;

  queue_.push(arrival, [this, from, to, payload = std::move(payload),
                        send_time] { deliver(from, to, payload, send_time); });
}

void Simulation::deliver(ProcessId from, ProcessId to, const Bytes& payload,
                         SimTime send_time) {
  if (!live(to)) return;
  stats_.messages_delivered += 1;
  if (tap_) tap_(Delivery{send_time, now_, from, to, payload.size(), &payload});
  SimContext ctx(*this, to);
  state_[to.value].actor->on_message(ctx, from, payload);
}

void Simulation::fire_timer(ProcessId owner, std::uint64_t timer_id,
                            std::uint64_t epoch) {
  ProcessState& ps = state_[owner.value];
  if (ps.epoch != epoch) return;  // armed by a pre-restart life
  if (ps.cancelled_timers.erase(timer_id) > 0) return;
  if (!live(owner)) return;
  SimContext ctx(*this, owner);
  ps.actor->on_timer(ctx, timer_id);
}

void Simulation::start_if_needed() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    MODUBFT_EXPECTS(state_[i].actor != nullptr);
  }
  // Start order is part of the deterministic schedule.
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const ProcessId id{i};
    queue_.push(0, [this, id] {
      if (!live(id)) return;
      SimContext ctx(*this, id);
      state_[id.value].actor->on_start(ctx);
    });
  }
}

bool Simulation::run_until(SimTime t) {
  start_if_needed();
  while (!queue_.empty() && queue_.next_time() <= t) {
    if (stats_.events_executed >= config_.max_events) break;
    step();
  }
  return !queue_.empty();
}

RunOutcome Simulation::run() {
  start_if_needed();

  while (!queue_.empty()) {
    if (queue_.next_time() > config_.max_time) return RunOutcome::kTimeLimit;
    if (stats_.events_executed >= config_.max_events)
      return RunOutcome::kEventLimit;

    bool any_live = false;
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      if (live(ProcessId{i})) {
        any_live = true;
        break;
      }
    }
    if (!any_live) return RunOutcome::kAllStopped;

    step();
  }
  return RunOutcome::kQuiescent;
}

void Simulation::step() {
  MODUBFT_EXPECTS(pending());
  Event e = queue_.pop();
  MODUBFT_ASSERT(e.time >= now_);
  now_ = e.time;
  stats_.events_executed += 1;
  e.action();
}

}  // namespace modubft::sim
