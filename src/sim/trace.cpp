#include "sim/trace.hpp"

namespace modubft::sim {

void TraceRecorder::attach(Simulation& world) {
  world.set_delivery_tap([this](const Delivery& d) { record(d); });
}

void TraceRecorder::record(const Delivery& d) { events_.push_back(d); }

std::uint64_t TraceRecorder::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const Delivery& d : events_) {
    mix(d.send_time);
    mix(d.deliver_time);
    mix(d.from.value);
    mix(d.to.value);
    mix(d.size);
  }
  return h;
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (const Delivery& d : events_) {
    os << "{\"t_send\":" << d.send_time << ",\"t_recv\":" << d.deliver_time
       << ",\"from\":" << d.from.value + 1 << ",\"to\":" << d.to.value + 1
       << ",\"bytes\":" << d.size << "}\n";
  }
}

std::map<std::pair<std::uint32_t, std::uint32_t>, TraceRecorder::ChannelSummary>
TraceRecorder::by_channel() const {
  std::map<std::pair<std::uint32_t, std::uint32_t>, ChannelSummary> out;
  for (const Delivery& d : events_) {
    ChannelSummary& s = out[{d.from.value, d.to.value}];
    s.messages += 1;
    s.bytes += d.size;
  }
  return out;
}

}  // namespace modubft::sim
