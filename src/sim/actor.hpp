// Actor programming model shared by every runtime.
//
// Protocols are written once against (Actor, Context) and run unchanged on
// the deterministic simulator (sim::Simulation), on the threaded in-memory
// transport (transport::NodeRuntime), and under decorating wrappers
// (heartbeat multiplexers, Byzantine mutators, the five-module BFT
// pipeline).  Context is therefore an abstract interface: wrappers
// implement it to intercept sends, and each runtime provides its own
// concrete binding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace modubft::sim {

/// Handle through which a running actor interacts with its world.  Only
/// valid for the duration of the callback it is passed to.
class Context {
 public:
  virtual ~Context() = default;

  /// This process's identity.
  virtual ProcessId id() const = 0;

  /// Total number of processes n.
  virtual std::uint32_t n() const = 0;

  /// Current (simulated or wall-clock-derived) time in µs.
  virtual SimTime now() const = 0;

  /// Sends `payload` to `to` over the reliable FIFO channel.
  virtual void send(ProcessId to, Bytes payload) = 0;

  /// Sends `payload` to every process including the sender itself (the
  /// paper's "send to Π" broadcast).
  virtual void broadcast(const Bytes& payload) = 0;

  /// Arms a one-shot timer firing after `delay` µs; returns its id.
  virtual std::uint64_t set_timer(SimTime delay) = 0;

  /// Cancels a previously armed timer (no-op if it already fired).
  virtual void cancel_timer(std::uint64_t timer_id) = 0;

  /// Per-actor deterministic randomness.
  virtual Rng& rng() = 0;

  /// Marks this actor as halted: no further callbacks will be invoked.
  /// (A decided consensus participant "returns"; paper Fig 2 line 2.)
  virtual void stop() = 0;
};

/// One delivered message inside a batch dispatch (see Actor::on_batch).
struct Incoming {
  ProcessId from;
  Bytes payload;
};

/// A deterministic protocol participant.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Invoked once when the process starts.
  virtual void on_start(Context& ctx) { (void)ctx; }

  /// Invoked for each delivered message.
  virtual void on_message(Context& ctx, ProcessId from,
                          const Bytes& payload) = 0;

  /// Invoked when the runtime drained several deliveries at once (the
  /// wall-clock substrates batch their mailboxes; the deterministic
  /// simulator never calls this).  The batch is in delivery order — the
  /// index of each message is its ordering ticket, and the default
  /// implementation dispatches strictly in ticket order, which is the
  /// observable-equivalence contract every override must preserve (an
  /// override may precompute across the batch, but protocol effects must
  /// occur as if each message were delivered alone, in order).
  virtual void on_batch(Context& ctx, std::vector<Incoming>& batch) {
    for (Incoming& m : batch) on_message(ctx, m.from, m.payload);
  }

  /// Invoked when a timer armed via Context::set_timer fires.
  virtual void on_timer(Context& ctx, std::uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }
};

/// A Context decorator that forwards everything to an underlying Context.
/// Wrappers override just the operations they intercept.
class ForwardingContext : public Context {
 public:
  explicit ForwardingContext(Context& base) : base_(base) {}

  ProcessId id() const override { return base_.id(); }
  std::uint32_t n() const override { return base_.n(); }
  SimTime now() const override { return base_.now(); }
  void send(ProcessId to, Bytes payload) override {
    base_.send(to, std::move(payload));
  }
  void broadcast(const Bytes& payload) override { base_.broadcast(payload); }
  std::uint64_t set_timer(SimTime delay) override {
    return base_.set_timer(delay);
  }
  void cancel_timer(std::uint64_t timer_id) override {
    base_.cancel_timer(timer_id);
  }
  Rng& rng() override { return base_.rng(); }
  void stop() override { base_.stop(); }

 protected:
  Context& base_;
};

}  // namespace modubft::sim
