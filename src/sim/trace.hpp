// Delivery tracing: record, fingerprint, summarize, export.
//
// A TraceRecorder attaches to a Simulation's delivery tap and captures
// every (send time, deliver time, src, dst, size) tuple.  Uses:
//   * replay verification — equal seeds must produce equal fingerprints
//     (the determinism property tests assert this at the trace level,
//     which is much stronger than comparing final decisions);
//   * debugging — write_jsonl dumps the run for offline inspection;
//   * accounting — per-channel summaries for experiment writeups.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "sim/simulation.hpp"

namespace modubft::sim {

class TraceRecorder {
 public:
  /// Registers this recorder as `world`'s delivery tap.  The recorder must
  /// outlive the simulation's run.
  void attach(Simulation& world);

  /// Feeds one delivery (used directly when a tap is already in place).
  void record(const Delivery& d);

  const std::vector<Delivery>& events() const { return events_; }

  /// Order-sensitive FNV-1a fingerprint of the full delivery sequence.
  std::uint64_t fingerprint() const;

  /// One JSON object per line: {"t_send":..,"t_recv":..,"from":..,"to":..,
  /// "bytes":..}.
  void write_jsonl(std::ostream& os) const;

  struct ChannelSummary {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Totals per ordered channel (from,to).
  std::map<std::pair<std::uint32_t, std::uint32_t>, ChannelSummary> by_channel()
      const;

 private:
  std::vector<Delivery> events_;
};

}  // namespace modubft::sim
