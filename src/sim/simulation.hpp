// Deterministic simulation of an asynchronous message-passing system.
//
// Model (paper §2): n processes, every pair connected by a reliable FIFO
// channel, no bound on relative speeds or transfer delays.  The simulation
// enforces exactly these guarantees:
//   * reliable   — a message sent to a non-crashed process is delivered
//                  exactly once (unless the destination crashes first);
//   * FIFO       — deliveries on each ordered pair (src,dst) preserve send
//                  order even though latencies are random;
//   * async      — per-message latencies come from a LatencyModel, which can
//                  be arbitrarily turbulent before a chosen GST.
// Crash faults are first-class (crash_at); arbitrary faults are produced by
// wrapping Actors (see faults/), never by the network, matching the model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/actor.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"

namespace modubft::sim {

/// Why Simulation::run returned.
enum class RunOutcome {
  kQuiescent,   // no pending events remained
  kAllStopped,  // every live actor called stop()
  kTimeLimit,   // simulated-time budget exhausted
  kEventLimit,  // event-count budget exhausted
};

/// Aggregate counters for one run.
struct Stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t events_executed = 0;
};

/// A delivered-message record handed to the optional tap.
struct Delivery {
  SimTime send_time = 0;
  SimTime deliver_time = 0;
  ProcessId from;
  ProcessId to;
  std::size_t size = 0;
  /// Wire bytes of the delivered message.  Non-owning: valid only for the
  /// duration of the tap call (copy if you need to keep it).
  const Bytes* payload = nullptr;
};

struct SimConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  LatencyModel latency = calm_network();
  SimTime max_time = 60'000'000;        // 60 simulated seconds
  std::uint64_t max_events = 50'000'000;
};

/// The simulated world: actors, channels, clock, crash schedule.
class Simulation {
 public:
  explicit Simulation(SimConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Installs the actor for process `id`.  Must be called for all ids
  /// before run().
  void set_actor(ProcessId id, std::unique_ptr<Actor> actor);

  /// Schedules a crash: at `when`, the process halts silently.  Messages it
  /// sent before `when` are still delivered (they are already in the
  /// channel); nothing is delivered to or sent by it afterwards.
  void crash_at(ProcessId id, SimTime when);

  /// Schedules a restart of a previously crashed process: at `when`,
  /// `factory()` builds a FRESH actor that is started in place of the dead
  /// one (same process id, same rng stream — the schedule stays
  /// deterministic).  Timers set by the former life never fire (each life
  /// has an epoch; stale timer events are discarded).  One-shot: if the
  /// process is not crashed at `when` (never crashed, or the run already
  /// ended), the event is a no-op.
  void restart_at(ProcessId id, SimTime when,
                  std::function<std::unique_ptr<Actor>()> factory);

  /// Optional observer invoked on every delivery (tracing, statistics).
  void set_delivery_tap(std::function<void(const Delivery&)> tap);

  /// Adversarial timing control: every message sent on (from → to) while
  /// now < until suffers `extra` additional delay.  Still asynchronous-
  /// model-compliant (all delays stay finite), but lets experiments create
  /// targeted asymmetries — e.g. slowing one process until it is falsely
  /// suspected — instead of only statistical turbulence.
  void delay_channel(ProcessId from, ProcessId to, SimTime extra,
                     SimTime until);

  /// Applies delay_channel to every channel touching `victim`.
  void delay_process(ProcessId victim, SimTime extra, SimTime until);

  /// Runs until quiescence, all-stopped, or a budget limit.
  RunOutcome run();

  /// Runs every event scheduled at or before `t` (starting the actors if
  /// needed).  Returns true while events remain afterwards.  Useful for
  /// probing mid-run state (detector outputs, partial progress).
  bool run_until(SimTime t);

  /// Executes a single event.  Precondition: pending() is true.
  void step();

  bool pending() const { return !queue_.empty(); }

  SimTime now() const { return now_; }
  std::uint32_t n() const { return config_.n; }
  const Stats& stats() const { return stats_; }

  bool crashed(ProcessId id) const { return state_[id.value].crashed; }
  bool stopped(ProcessId id) const { return state_[id.value].stopped; }

  /// True once the process has crashed or voluntarily stopped.
  bool halted(ProcessId id) const {
    return state_[id.value].crashed || state_[id.value].stopped;
  }

 private:
  class SimContext;

  struct ProcessState {
    std::unique_ptr<Actor> actor;
    std::optional<SimTime> crash_time;
    bool crashed = false;
    bool stopped = false;
    std::unique_ptr<Rng> rng;
    std::uint64_t next_timer_id = 1;
    std::unordered_set<std::uint64_t> cancelled_timers;
    /// Incremented on every restart; timer events capture the epoch they
    /// were armed in and are dropped if the process has since been reborn.
    std::uint64_t epoch = 0;
  };

  void start_if_needed();
  void enqueue_message(ProcessId from, ProcessId to, Bytes payload);
  void deliver(ProcessId from, ProcessId to, const Bytes& payload,
               SimTime send_time);
  void fire_timer(ProcessId owner, std::uint64_t timer_id,
                  std::uint64_t epoch);
  bool live(ProcessId id) const {
    const ProcessState& ps = state_[id.value];
    return !ps.crashed && !ps.stopped;
  }

  SimConfig config_;
  EventQueue queue_;
  SimTime now_ = 0;
  Rng net_rng_;
  std::vector<ProcessState> state_;
  // channel_clear_[from][to]: earliest time the channel is free, used to
  // force FIFO delivery despite random latency samples.
  std::vector<std::vector<SimTime>> channel_clear_;
  struct ChannelDelay {
    SimTime extra = 0;
    SimTime until = 0;
  };
  std::vector<std::vector<ChannelDelay>> channel_delay_;
  Stats stats_;
  std::function<void(const Delivery&)> tap_;
  bool started_ = false;
};

}  // namespace modubft::sim
