#include "crypto/verify_pool.hpp"

#include <algorithm>

namespace modubft::crypto {

VerifyPool::VerifyPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

VerifyPool::~VerifyPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool VerifyPool::run_job(const Job& job) {
  // Verifiers don't throw on invalid signatures (they return false), but a
  // job is attacker-adjacent code: treat an escaped exception as a failed
  // verification rather than tearing down a worker thread.
  try {
    return job();
  } catch (...) {
    return false;
  }
}

void VerifyPool::execute(const Task& task, bool on_worker) {
  const bool ok = run_job(*task.job);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (on_worker) {
      stats_.dispatched_jobs += 1;
    } else {
      stats_.inline_jobs += 1;
    }
    if (!ok) stats_.failures += 1;
  }
  // Note the waiter may destroy the Batch as soon as it observes
  // remaining == 0, but it cannot re-acquire batch->mu before this guard
  // releases, so the notify below is safe.
  std::lock_guard<std::mutex> bl(task.batch->mu);
  if (!ok) task.batch->failures += 1;
  if (--task.batch->remaining == 0) task.batch->done_cv.notify_all();
}

void VerifyPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    Task task = queue_.front();
    queue_.pop_front();
    lk.unlock();
    execute(task, /*on_worker=*/true);
    lk.lock();
  }
}

std::size_t VerifyPool::verify_all(std::vector<Job> jobs) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.batches += 1;
    stats_.jobs += jobs.size();
  }
  if (jobs.empty()) return 0;

  // Synchronous path: no workers (deterministic substrate) or a batch too
  // small to amortize a dispatch.  Runs in submission order.
  if (threads_.empty() || jobs.size() == 1) {
    std::size_t failures = 0;
    for (const Job& job : jobs) {
      if (!run_job(job)) failures += 1;
    }
    std::lock_guard<std::mutex> lk(mu_);
    stats_.inline_jobs += jobs.size();
    stats_.failures += failures;
    return failures;
  }

  Batch batch;
  batch.remaining = jobs.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Job& job : jobs) queue_.push_back(Task{&job, &batch});
    stats_.peak_queue_depth = std::max<std::uint64_t>(
        stats_.peak_queue_depth, queue_.size());
  }
  work_cv_.notify_all();

  // The submitting thread helps drain the queue (its own batch or a
  // concurrent caller's) instead of blocking: k workers give k+1-way
  // parallelism and a saturated pool can never deadlock a caller.
  while (true) {
    Task task;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!queue_.empty()) {
        task = queue_.front();
        queue_.pop_front();
      }
    }
    if (task.job == nullptr) break;
    execute(task, /*on_worker=*/false);
  }

  std::unique_lock<std::mutex> bl(batch.mu);
  batch.done_cv.wait(bl, [&] { return batch.remaining == 0; });
  return batch.failures;
}

bool VerifyPool::verify_one(const Job& job) {
  // A lone verification gains nothing from a thread hop; run it inline but
  // keep it in the pool's accounting.
  const bool ok = run_job(job);
  std::lock_guard<std::mutex> lk(mu_);
  stats_.batches += 1;
  stats_.jobs += 1;
  stats_.inline_jobs += 1;
  if (!ok) stats_.failures += 1;
  return ok;
}

VerifyPoolStats VerifyPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace modubft::crypto
