#include "crypto/hmac_signer.hpp"

#include <vector>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/hmac.hpp"

namespace modubft::crypto {

namespace {

Bytes derive_key(std::uint64_t seed, std::uint32_t id) {
  Writer w;
  w.u64(seed);
  w.u32(id);
  w.str("modubft-hmac-key");
  Digest d = sha256(w.data());
  return Bytes(d.begin(), d.end());
}

class HmacSigner : public Signer {
 public:
  HmacSigner(ProcessId id, Bytes key) : id_(id), key_(std::move(key)) {}

  Signature sign(const Bytes& message) const override {
    Digest tag = hmac_sha256(key_, message);
    return Bytes(tag.begin(), tag.end());
  }

  ProcessId id() const override { return id_; }

 private:
  ProcessId id_;
  Bytes key_;
};

class HmacVerifier : public Verifier {
 public:
  explicit HmacVerifier(std::vector<Bytes> keys) : keys_(std::move(keys)) {}

  bool verify(ProcessId signer, const Bytes& message,
              const Signature& sig) const override {
    if (signer.value >= keys_.size()) return false;
    Digest expected = hmac_sha256(keys_[signer.value], message);
    if (sig.size() != expected.size()) return false;
    Digest given;
    std::copy(sig.begin(), sig.end(), given.begin());
    return digest_equal(expected, given);
  }

 private:
  std::vector<Bytes> keys_;
};

}  // namespace

SignatureSystem HmacScheme::make_system(std::uint32_t n,
                                        std::uint64_t seed) const {
  SignatureSystem sys;
  std::vector<Bytes> keys;
  for (std::uint32_t i = 0; i < n; ++i) {
    Bytes key = derive_key(seed, i);
    keys.push_back(key);
    sys.signers.push_back(std::make_unique<HmacSigner>(ProcessId{i}, key));
  }
  sys.verifier = std::make_shared<HmacVerifier>(std::move(keys));
  return sys;
}

}  // namespace modubft::crypto
