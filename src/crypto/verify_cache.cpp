#include "crypto/verify_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace modubft::crypto {

CachingVerifier::CachingVerifier(std::shared_ptr<const Verifier> inner,
                                 std::size_t capacity)
    : inner_(std::move(inner)),
      capacity_(std::max<std::size_t>(1, capacity)) {
  MODUBFT_EXPECTS(inner_ != nullptr);
}

bool CachingVerifier::verify(ProcessId signer, const Bytes& message,
                             const Signature& sig) const {
  return verify_digest(signer, sha256(message), sig,
                       [&message] { return message; });
}

bool CachingVerifier::verify_digest(
    ProcessId signer, const Digest& message_digest, const Signature& sig,
    const std::function<Bytes()>& materialize) const {
  const Key key{signer.value, message_digest};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second.sig == sig) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.ok;
    }
    ++stats_.misses;
  }
  // Verify outside the lock: the underlying scheme is the expensive part.
  const bool ok = inner_->verify(signer, materialize(), sig);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Same (signer, digest) seen with a different signature blob — keep the
    // latest.  Either entry alone is sound; we just can't keep both under
    // one key.
    it->second.sig = sig;
    it->second.ok = ok;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  } else {
    lru_.push_front(key);
    map_.emplace(key, Entry{sig, ok, lru_.begin()});
    if (map_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  return ok;
}

VerifyCacheStats CachingVerifier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CachingVerifier::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t CachingVerifier::flush_negative() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t flushed = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (!it->second.ok) {
      lru_.erase(it->second.lru);
      it = map_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  return flushed;
}

void CachingVerifier::clear() const {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  stats_ = VerifyCacheStats{};
}

}  // namespace modubft::crypto
