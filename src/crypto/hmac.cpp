#include "crypto/hmac.hpp"

namespace modubft::crypto {

Digest hmac_sha256(const Bytes& key, const Bytes& data) {
  constexpr std::size_t kBlock = 64;

  // Keys longer than one block are hashed first, per RFC 2104.
  Bytes k = key;
  if (k.size() > kBlock) {
    Digest d = sha256(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

bool digest_equal(const Digest& a, const Digest& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace modubft::crypto
