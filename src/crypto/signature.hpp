// Signature-scheme abstraction (paper's signature module substrate).
//
// The paper assumes each process holds a private key used to sign outgoing
// messages in an unforgeable way [13], with public keys known to everyone.
// Two implementations are provided:
//   * Rsa64Scheme   — textbook RSA over 64-bit semiprimes (real modular
//                     arithmetic; cryptographically weak, functionally
//                     faithful — see DESIGN.md §7);
//   * HmacScheme    — HMAC-SHA256 tags with a trusted key directory (fast
//                     path for large sweeps).
// Both are deterministic given their key material, keeping runs replayable.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace modubft::crypto {

/// An opaque signature blob; format is scheme-specific.
using Signature = Bytes;

/// Signs messages on behalf of one process.
class Signer {
 public:
  virtual ~Signer() = default;

  /// Returns the signature of `message` under this process's private key.
  virtual Signature sign(const Bytes& message) const = 0;

  /// The identity this signer signs for.
  virtual ProcessId id() const = 0;
};

/// Verifies signatures of any process in the group.
class Verifier {
 public:
  virtual ~Verifier() = default;

  /// True iff `sig` is a valid signature of `message` by `signer`.
  /// Must be total: arbitrary (adversarial) sig blobs return false, never
  /// throw.
  virtual bool verify(ProcessId signer, const Bytes& message,
                      const Signature& sig) const = 0;
};

/// Bundles the per-process signers and the shared verifier for a group.
/// Created once per run by a scheme factory.
struct SignatureSystem {
  std::vector<std::unique_ptr<Signer>> signers;  // index = process id
  std::shared_ptr<Verifier> verifier;
};

/// Factory interface so runs can select a scheme by configuration.
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Generates key material for `n` processes from `seed` and returns the
  /// resulting system.  Equal seeds yield equal keys (replayability).
  virtual SignatureSystem make_system(std::uint32_t n,
                                      std::uint64_t seed) const = 0;

  /// Human-readable scheme name for logs and benchmark labels.
  virtual const char* name() const = 0;
};

}  // namespace modubft::crypto
