// Verified-signature cache (certificate fast path).
//
// The transformed protocol re-examines the same signed messages over and
// over: a message verified once at ingress by the signature module shows up
// again as a member of later certificates, where the certificate analyzer
// would re-run the same signature verification for every containing
// message.  CachingVerifier decorates any Verifier with a bounded LRU of
// verification results so each distinct (signer, signed-bytes, signature)
// triple is verified by the underlying scheme at most once while cached.
//
// Key design — why a hit is sound:
//
//   * The cache key is (signer, SHA-256(message)).  For protocol messages
//     the signed bytes are encode_core(core) ‖ cert_digest(cert), and
//     cert_digest recursively binds every nested member's (core, cert
//     digest, sig) triple, so under collision resistance the key pins the
//     exact verification instance — core, full certificate tree and all.
//   * A hit additionally requires the presented signature to be
//     byte-identical to the cached one.  Without that comparison, a
//     garbage signature for a (signer, digest) pair whose genuine
//     signature was cached earlier would falsely verify.
//
// Both the hit and the miss path therefore return exactly what the wrapped
// verifier would return: caching is observationally equivalent, which the
// cache-on/cache-off equivalence tests assert end to end.
//
// Callers that already hold the message digest (the Certificate memoizes
// its members' signing digests) use verify_digest() and skip the hashing
// entirely — a cache hit then costs one hash-map probe.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"

namespace modubft::crypto {

/// Hit/miss accounting, exposed for benchmarks and tests.
struct VerifyCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Bounded-LRU memoizing decorator around a Verifier.  Thread-safe (the
/// cache is shared mutable state even when the callers are const).
class CachingVerifier final : public Verifier {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit CachingVerifier(std::shared_ptr<const Verifier> inner,
                           std::size_t capacity = kDefaultCapacity);

  bool verify(ProcessId signer, const Bytes& message,
              const Signature& sig) const override;

  /// Fast path for callers that already hold SHA-256(message): a hit needs
  /// no hashing at all.  `materialize` produces the message bytes and is
  /// invoked only on a miss; it must materialize exactly the bytes whose
  /// digest was passed.
  bool verify_digest(ProcessId signer, const Digest& message_digest,
                     const Signature& sig,
                     const std::function<Bytes()>& materialize) const;

  VerifyCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear() const;

  /// Drops every cached *negative* verdict, returning how many were
  /// flushed.  A replica restarting into recovery calls this on the cache
  /// it shares with its previous life: positive entries stay sound forever
  /// (a valid signature never becomes invalid), but negative entries keyed
  /// to pre-restart traffic are dead weight the recovering replica should
  /// not carry — flushing them bounds the cache to verdicts the new
  /// incarnation can actually re-derive.
  std::size_t flush_negative() const;

 private:
  struct Key {
    std::uint32_t signer;
    Digest digest;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The digest is already uniform; fold in the signer and the first
      // digest bytes.
      std::uint64_t h = k.signer;
      for (int i = 0; i < 8; ++i)
        h = h * 1099511628211ull + k.digest[static_cast<std::size_t>(i)];
      return static_cast<std::size_t>(h);
    }
  };
  using LruList = std::list<Key>;
  struct Entry {
    Signature sig;
    bool ok = false;
    LruList::iterator lru;
  };

  std::shared_ptr<const Verifier> inner_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  mutable LruList lru_;  // front = most recently used
  mutable std::unordered_map<Key, Entry, KeyHash> map_;
  mutable VerifyCacheStats stats_;
};

}  // namespace modubft::crypto
