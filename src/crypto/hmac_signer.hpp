// HMAC-based signature scheme with a trusted key directory.
//
// Each process holds a secret MAC key; the verifier object (the "directory")
// holds all keys and can check any tag.  Within the simulation's fault model
// this provides the paper's unforgeability assumption at a fraction of the
// RSA cost, which matters for large parameter sweeps.
#pragma once

#include "crypto/signature.hpp"

namespace modubft::crypto {

class HmacScheme : public SignatureScheme {
 public:
  SignatureSystem make_system(std::uint32_t n,
                              std::uint64_t seed) const override;
  const char* name() const override { return "hmac"; }
};

}  // namespace modubft::crypto
