// Textbook RSA over 64-bit semiprimes.
//
// The paper assumes unforgeable RSA signatures [13].  For a deterministic,
// offline-reproducible testbed we implement real RSA key generation
// (Miller–Rabin primality over 32-bit primes), real modular exponentiation
// (via unsigned __int128), and hash-then-sign with SHA-256 — but with keys
// far too small to be secure against factoring.  Within the fault model
// (adversaries corrupt protocol state; they do not run number-theoretic
// attacks) the scheme behaves exactly like the paper's: only the holder of
// the private key can produce a signature that verifies.
#pragma once

#include <cstdint>

#include "crypto/signature.hpp"

namespace modubft::crypto {

/// An RSA public key (modulus, public exponent).
struct RsaPublicKey {
  std::uint64_t modulus = 0;
  std::uint64_t exponent = 0;
};

/// An RSA key pair.
struct RsaKeyPair {
  RsaPublicKey pub;
  std::uint64_t private_exponent = 0;
};

/// Deterministically generates a key pair from `seed`.
RsaKeyPair rsa64_generate(std::uint64_t seed);

/// Raw RSA operation: base^exp mod modulus.
std::uint64_t rsa64_modpow(std::uint64_t base, std::uint64_t exp,
                           std::uint64_t modulus);

/// Signature scheme factory producing Rsa64 signers/verifiers.
class Rsa64Scheme : public SignatureScheme {
 public:
  SignatureSystem make_system(std::uint32_t n,
                              std::uint64_t seed) const override;
  const char* name() const override { return "rsa64"; }
};

}  // namespace modubft::crypto
