// HMAC-SHA256 (RFC 2104).
//
// Backs the fast "signature" scheme used in large simulation sweeps: with a
// trusted per-sender key directory, an HMAC tag is unforgeable by the other
// processes in exactly the way the paper's signature assumption requires.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace modubft::crypto {

/// Computes HMAC-SHA256(key, data).
Digest hmac_sha256(const Bytes& key, const Bytes& data);

/// Constant-time comparison of two digests (avoids timing side channels;
/// also simply the right idiom for tag verification).
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace modubft::crypto
