#include "crypto/rsa64.hpp"

#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace modubft::crypto {

namespace {

__extension__ typedef unsigned __int128 u128;  // GCC/Clang builtin

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<u128>(a) * b % m);
}

// Deterministic Miller-Rabin; bases {2,3,5,7,11,13,17,19,23,29,31,37} are
// a proven-complete witness set for all n < 3.3e24, far beyond 32 bits.
bool is_prime_u32(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t p : {2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u, 23u, 29u, 31u, 37u}) {
    if (n % p == 0) return n == p;
  }
  std::uint32_t d = n - 1;
  int r = 0;
  while (d % 2 == 0) {
    d /= 2;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = rsa64_modpow(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

std::uint32_t random_prime_u32(Rng& rng) {
  for (;;) {
    // Top two bits set so the product of two primes fills 64 bits; low bit
    // set so the candidate is odd.
    auto candidate = static_cast<std::uint32_t>(rng.next_u64());
    candidate |= 0xc0000001u;
    if (is_prime_u32(candidate)) return candidate;
  }
}

// Extended Euclid: returns x with (a*x) % m == 1, or 0 if not invertible.
std::uint64_t modular_inverse(std::uint64_t a, std::uint64_t m) {
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m),
               new_r = static_cast<std::int64_t>(a);
  while (new_r != 0) {
    std::int64_t q = r / new_r;
    std::int64_t tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    std::int64_t tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r > 1) return 0;
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

std::uint64_t digest_to_u64(const Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return v;
}

class Rsa64Signer : public Signer {
 public:
  Rsa64Signer(ProcessId id, RsaKeyPair keys) : id_(id), keys_(keys) {}

  Signature sign(const Bytes& message) const override {
    std::uint64_t m = digest_to_u64(sha256(message)) % keys_.pub.modulus;
    std::uint64_t s = rsa64_modpow(m, keys_.private_exponent,
                                   keys_.pub.modulus);
    Writer w;
    w.u64(s);
    return std::move(w).take();
  }

  ProcessId id() const override { return id_; }

 private:
  ProcessId id_;
  RsaKeyPair keys_;
};

class Rsa64Verifier : public Verifier {
 public:
  explicit Rsa64Verifier(std::vector<RsaPublicKey> keys)
      : keys_(std::move(keys)) {}

  bool verify(ProcessId signer, const Bytes& message,
              const Signature& sig) const override {
    if (signer.value >= keys_.size()) return false;
    if (sig.size() != 8) return false;
    std::uint64_t s = 0;
    for (int i = 0; i < 8; ++i)
      s |= static_cast<std::uint64_t>(sig[i]) << (8 * i);
    const RsaPublicKey& pk = keys_[signer.value];
    if (s >= pk.modulus) return false;
    std::uint64_t recovered = rsa64_modpow(s, pk.exponent, pk.modulus);
    std::uint64_t expected = digest_to_u64(sha256(message)) % pk.modulus;
    return recovered == expected;
  }

 private:
  std::vector<RsaPublicKey> keys_;
};

}  // namespace

std::uint64_t rsa64_modpow(std::uint64_t base, std::uint64_t exp,
                           std::uint64_t modulus) {
  MODUBFT_EXPECTS(modulus > 1);
  std::uint64_t result = 1;
  base %= modulus;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, modulus);
    base = mulmod(base, base, modulus);
    exp >>= 1;
  }
  return result;
}

RsaKeyPair rsa64_generate(std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    std::uint64_t p = random_prime_u32(rng);
    std::uint64_t q = random_prime_u32(rng);
    if (p == q) continue;
    std::uint64_t n = p * q;
    std::uint64_t lambda = std::lcm(p - 1, q - 1);
    const std::uint64_t e = 65537;
    if (std::gcd(e, lambda) != 1) continue;
    std::uint64_t d = modular_inverse(e, lambda);
    if (d == 0) continue;
    return RsaKeyPair{RsaPublicKey{n, e}, d};
  }
}

SignatureSystem Rsa64Scheme::make_system(std::uint32_t n,
                                         std::uint64_t seed) const {
  SignatureSystem sys;
  std::vector<RsaPublicKey> pubs;
  Rng root(seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    RsaKeyPair keys = rsa64_generate(root.next_u64());
    pubs.push_back(keys.pub);
    sys.signers.push_back(
        std::make_unique<Rsa64Signer>(ProcessId{i}, keys));
  }
  sys.verifier = std::make_shared<Rsa64Verifier>(std::move(pubs));
  return sys;
}

}  // namespace modubft::crypto
