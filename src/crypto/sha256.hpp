// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for message digests inside signatures and for certificate pruning
// (replacing verified nested certificates by their digest).  The streaming
// interface lets large certificates be hashed without copying.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace modubft::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` octets from `data`.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }

  /// Finalizes and returns the digest.  The context must not be reused
  /// afterwards except via reset().
  Digest finish();

  /// Returns the context to its initial state.
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience hash.
Digest sha256(const Bytes& data);

/// Digest rendered as Bytes (for embedding in wire formats).
Bytes digest_bytes(const Digest& d);

}  // namespace modubft::crypto
