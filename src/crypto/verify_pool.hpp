// Parallel signature-verification pool.
//
// Certificate analysis is embarrassingly parallel at the member level:
// every member's (signer, signing-bytes, signature) triple is checked
// independently, and on the wall-clock substrates those checks dominate
// per-message latency once the protocol work itself is cheap (PR 2's
// fast path).  VerifyPool is a fixed pool of worker threads executing
// boolean verification closures so a batch of member checks runs across
// cores instead of serially on the receiving actor's thread.
//
// Design constraints, in order:
//
//   * Determinism on the simulator.  A pool constructed with 0 workers
//     executes every job synchronously on the calling thread, in
//     submission order — byte-for-byte the single-threaded behaviour the
//     deterministic substrate requires.  A single-job batch also runs
//     inline regardless of pool size (dispatch would only add latency).
//   * Memoization safety.  The Certificate digest memos are intentionally
//     unsynchronized (one actor owns a certificate at a time), so callers
//     must materialize every digest a job can touch *before* submitting
//     it; jobs then only read.  CertAnalyzer::warm_certificate follows
//     this discipline.
//   * Layering.  crypto/ sits below bft/, so the pool knows nothing about
//     certificates: jobs are plain `std::function<bool()>` closures.  The
//     same pool is shared by many processes (one per scenario run), so
//     verify_all supports concurrent callers.
//
// verify_all blocks until every job of the batch completed; the calling
// thread participates (it drains the shared queue while waiting), so a
// pool of k workers gives k+1-way parallelism and a batch can never
// deadlock waiting for a busy pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace modubft::crypto {

/// Pool counters, exposed for RunStats / benchmarks / tests.
struct VerifyPoolStats {
  std::uint64_t batches = 0;     // verify_all calls (incl. verify_one)
  std::uint64_t jobs = 0;        // closures executed
  std::uint64_t inline_jobs = 0; // executed on the submitting thread
  std::uint64_t dispatched_jobs = 0;  // executed on a pool worker
  std::uint64_t failures = 0;    // closures that returned false (or threw)
  std::uint64_t peak_queue_depth = 0;  // high-water mark of queued jobs
};

class VerifyPool {
 public:
  using Job = std::function<bool()>;

  /// `workers` = number of pool threads.  0 = fully synchronous (the
  /// deterministic-simulator configuration).
  explicit VerifyPool(std::size_t workers);
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Runs every job and blocks until all results are in.  Returns the
  /// number of jobs that failed (returned false or threw).  Thread-safe:
  /// multiple actors may submit batches concurrently.
  std::size_t verify_all(std::vector<Job> jobs);

  /// Single-job convenience: runs inline (never dispatched — a lone
  /// verification gains nothing from a thread hop) but counted in the
  /// pool's stats so callers can route all verification through one
  /// accounting point.
  bool verify_one(const Job& job);

  VerifyPoolStats stats() const;

 private:
  /// Per-verify_all completion state, owned by the submitting frame.
  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining = 0;
    std::size_t failures = 0;
  };
  struct Task {
    const Job* job = nullptr;
    Batch* batch = nullptr;
  };

  static bool run_job(const Job& job);
  void execute(const Task& task, bool on_worker);
  void worker_loop();

  std::vector<std::thread> threads_;

  mutable std::mutex mu_;  // guards queue_, stats_, stopping_
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  VerifyPoolStats stats_;
  bool stopping_ = false;
};

}  // namespace modubft::crypto
