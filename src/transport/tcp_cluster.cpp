#include "transport/tcp_cluster.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace modubft::transport {

namespace {
using Clock = std::chrono::steady_clock;

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t got = ::read(fd, p, len);
    if (got <= 0) return false;  // EOF or error: the connection is done
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that halted (decided and closed) must surface
    // as a failed send, not a SIGPIPE.
    const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
    if (put <= 0) return false;
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}
}  // namespace

struct TcpCluster::Node {
  ProcessId id;
  std::unique_ptr<sim::Actor> actor;
  Mailbox<Envelope> mailbox;
  std::unique_ptr<Rng> rng;

  int listen_fd = -1;
  std::uint16_t port = 0;
  // outbound[j]: my connection used exclusively for sends to p_{j+1}.
  std::vector<int> outbound;
  std::vector<std::unique_ptr<std::mutex>> out_mutex;
  std::vector<std::thread> readers;

  std::vector<TimerEntry> timers;
  std::unordered_set<std::uint64_t> cancelled;
  std::uint64_t next_timer_id = 1;

  std::atomic<bool> stop_requested{false};
  std::atomic<bool> stopped{false};

  TcpCluster* cluster = nullptr;
};

class TcpCluster::NodeContext final : public sim::Context {
 public:
  NodeContext(TcpCluster& cluster, Node& node)
      : cluster_(cluster), node_(node) {}

  ProcessId id() const override { return node_.id; }
  std::uint32_t n() const override { return cluster_.config_.n; }

  SimTime now() const override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - cluster_.epoch_)
            .count());
  }

  void send(ProcessId to, Bytes payload) override {
    cluster_.send_frame(node_, to, payload);
  }

  void broadcast(const Bytes& payload) override {
    for (std::uint32_t j = 0; j < cluster_.config_.n; ++j) {
      cluster_.send_frame(node_, ProcessId{j}, payload);
    }
  }

  std::uint64_t set_timer(SimTime delay) override {
    const std::uint64_t id = node_.next_timer_id++;
    node_.timers.push_back(
        TimerEntry{Clock::now() + std::chrono::microseconds(delay), id});
    return id;
  }

  void cancel_timer(std::uint64_t timer_id) override {
    node_.cancelled.insert(timer_id);
  }

  Rng& rng() override { return *node_.rng; }

  void stop() override { node_.stop_requested.store(true); }

 private:
  TcpCluster& cluster_;
  Node& node_;
};

TcpCluster::TcpCluster(TcpClusterConfig config) : config_(config) {
  MODUBFT_EXPECTS(config_.n > 0);
  Rng root(config_.seed);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    auto node = std::make_unique<Node>();
    node->id = ProcessId{i};
    node->rng = std::make_unique<Rng>(root.split(i + 1));
    node->cluster = this;
    node->outbound.assign(config_.n, -1);
    for (std::uint32_t j = 0; j < config_.n; ++j) {
      node->out_mutex.push_back(std::make_unique<std::mutex>());
    }
    nodes_.push_back(std::move(node));
  }
}

TcpCluster::~TcpCluster() {
  for (auto& node : nodes_) {
    node->stop_requested.store(true);
    node->mailbox.close();
    close_fd(node->listen_fd);
    for (int& fd : node->outbound) close_fd(fd);
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  for (auto& node : nodes_) {
    for (std::thread& t : node->readers) {
      if (t.joinable()) t.join();
    }
  }
}

void TcpCluster::set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  nodes_[id.value]->actor = std::move(actor);
}

bool TcpCluster::send_frame(Node& node, ProcessId to, const Bytes& payload) {
  MODUBFT_EXPECTS(to.value < config_.n);
  if (to == node.id) {
    // Loopback delivery without a socket round trip keeps "send to Π"
    // semantics identical to the other substrates.
    node.mailbox.push(Envelope{node.id, payload});
    return true;
  }
  std::lock_guard<std::mutex> lock(*node.out_mutex[to.value]);
  const int fd = node.outbound[to.value];
  if (fd < 0) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t hdr[4] = {
      static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len >> 16), static_cast<std::uint8_t>(len >> 24)};
  if (!write_all(fd, hdr, 4)) return false;
  if (!payload.empty() && !write_all(fd, payload.data(), payload.size())) {
    return false;
  }
  frames_sent_.fetch_add(1);
  bytes_sent_.fetch_add(payload.size() + 4);
  return true;
}

void TcpCluster::reader_main(Node& node, int fd) {
  // Hello: who is on the other end.
  std::uint8_t hello[4];
  if (!read_exact(fd, hello, 4)) {
    ::close(fd);
    return;
  }
  std::uint32_t from = static_cast<std::uint32_t>(hello[0]) |
                       static_cast<std::uint32_t>(hello[1]) << 8 |
                       static_cast<std::uint32_t>(hello[2]) << 16 |
                       static_cast<std::uint32_t>(hello[3]) << 24;
  if (from >= config_.n) {
    ::close(fd);
    return;
  }

  while (!node.stop_requested.load()) {
    std::uint8_t hdr[4];
    if (!read_exact(fd, hdr, 4)) break;
    const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                              static_cast<std::uint32_t>(hdr[1]) << 8 |
                              static_cast<std::uint32_t>(hdr[2]) << 16 |
                              static_cast<std::uint32_t>(hdr[3]) << 24;
    if (len > config_.max_frame_bytes) break;  // hostile frame size
    Bytes payload(len);
    if (len > 0 && !read_exact(fd, payload.data(), len)) break;
    node.mailbox.push(Envelope{ProcessId{from}, std::move(payload)});
  }
  ::close(fd);
}

void TcpCluster::node_main(Node& node) {
  NodeContext ctx(*this, node);
  node.actor->on_start(ctx);

  while (!node.stop_requested.load()) {
    Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(20);
    const TimerEntry* earliest = nullptr;
    for (const TimerEntry& t : node.timers) {
      if (node.cancelled.count(t.id)) continue;
      if (earliest == nullptr || t.due < earliest->due) earliest = &t;
    }
    if (earliest != nullptr && earliest->due < deadline) {
      deadline = earliest->due;
    }

    std::optional<Envelope> env = node.mailbox.pop_until(deadline);
    if (node.stop_requested.load()) break;

    if (env.has_value()) {
      node.actor->on_message(ctx, env->from, env->payload);
      continue;
    }

    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> due;
    node.timers.erase(
        std::remove_if(node.timers.begin(), node.timers.end(),
                       [&](const TimerEntry& t) {
                         if (node.cancelled.count(t.id)) {
                           node.cancelled.erase(t.id);
                           return true;
                         }
                         if (t.due <= now) {
                           due.push_back(t.id);
                           return true;
                         }
                         return false;
                       }),
        node.timers.end());
    for (std::uint64_t id : due) {
      if (node.stop_requested.load()) break;
      node.actor->on_timer(ctx, id);
    }
    if (node.mailbox.closed() && node.timers.empty()) break;
  }
  node.stopped.store(true);
}

bool TcpCluster::run() {
  MODUBFT_EXPECTS(!ran_);
  ran_ = true;
  for (auto& node : nodes_) MODUBFT_EXPECTS(node->actor != nullptr);

  // 1. Listen sockets for everyone (ephemeral loopback ports).
  for (auto& node : nodes_) {
    node->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MODUBFT_ASSERT(node->listen_fd >= 0);
    int one = 1;
    ::setsockopt(node->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    MODUBFT_ASSERT(::bind(node->listen_fd,
                          reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0);
    socklen_t len = sizeof addr;
    ::getsockname(node->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    node->port = ntohs(addr.sin_port);
    MODUBFT_ASSERT(::listen(node->listen_fd,
                            static_cast<int>(config_.n)) == 0);
  }

  // 2. Full mesh: every node dials every peer; the dialer's connection is
  //    used exclusively for its own sends.
  for (auto& node : nodes_) {
    for (std::uint32_t j = 0; j < config_.n; ++j) {
      if (j == node->id.value) continue;
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      MODUBFT_ASSERT(fd >= 0);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(nodes_[j]->port);
      MODUBFT_ASSERT(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                               sizeof addr) == 0);
      const std::uint32_t me = node->id.value;
      std::uint8_t hello[4] = {static_cast<std::uint8_t>(me),
                               static_cast<std::uint8_t>(me >> 8),
                               static_cast<std::uint8_t>(me >> 16),
                               static_cast<std::uint8_t>(me >> 24)};
      MODUBFT_ASSERT(write_all(fd, hello, 4));
      node->outbound[j] = fd;
    }
  }

  // 3. Accept the n−1 inbound connections per node and spawn readers.
  for (auto& node : nodes_) {
    for (std::uint32_t k = 0; k + 1 < config_.n; ++k) {
      int fd = ::accept(node->listen_fd, nullptr, nullptr);
      MODUBFT_ASSERT(fd >= 0);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      node->readers.emplace_back(
          [this, &node = *node, fd] { reader_main(node, fd); });
    }
    close_fd(node->listen_fd);
  }

  // 4. Run the actors.
  epoch_ = Clock::now();
  threads_.reserve(config_.n);
  for (auto& node : nodes_) {
    threads_.emplace_back([this, &node = *node] { node_main(node); });
  }

  const Clock::time_point deadline = epoch_ + config_.budget;
  bool all_stopped = false;
  while (Clock::now() < deadline) {
    all_stopped = true;
    for (auto& node : nodes_) {
      if (!node->stopped.load()) {
        all_stopped = false;
        break;
      }
    }
    if (all_stopped) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  for (auto& node : nodes_) {
    node->stop_requested.store(true);
    node->mailbox.close();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  // Closing our outbound ends unblocks every peer's reader.
  for (auto& node : nodes_) {
    for (int& fd : node->outbound) close_fd(fd);
  }
  for (auto& node : nodes_) {
    for (std::thread& t : node->readers) t.join();
    node->readers.clear();
  }
  return all_stopped;
}

bool TcpCluster::stopped(ProcessId id) const {
  MODUBFT_EXPECTS(id.value < config_.n);
  return nodes_[id.value]->stopped.load();
}

}  // namespace modubft::transport
