#include "transport/tcp_cluster.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace modubft::transport {

namespace {
using Clock = std::chrono::steady_clock;

/// Label salt separating the channels' jitter streams from the fault
/// injectors' streams (both are derived from the cluster seed).
constexpr std::uint64_t kJitterSalt = 0x6a09e667f3bcc908ULL;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void encode_u64(std::uint8_t out[8], std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}
}  // namespace

/// Receive-side state of one directed link sender → this node.  Survives
/// connection replacement: expected_seq is what makes resumed links
/// duplicate-free and FIFO.
struct TcpCluster::RecvLink {
  std::mutex mu;
  int current_fd = -1;
  std::uint64_t expected_seq = 0;
  std::uint32_t since_ack = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t gap_resets = 0;
  std::vector<std::uint64_t> audit;
};

/// One inbound connection's state inside the node's epoll loop: a small
/// per-fd state machine (hello → frame header → frame payload) plus an
/// outbound staging buffer for resume/ack bytes the nonblocking socket
/// refused to take immediately.
struct TcpCluster::Conn {
  int fd = -1;
  enum class Phase { kHello, kHeader, kPayload } phase = Phase::kHello;
  /// Accumulates the fixed-size prefix of the current phase (hello or
  /// frame header — whichever is larger bounds the buffer).
  std::uint8_t prefix[kFrameHeaderBytes] = {};
  std::size_t prefix_have = 0;
  FrameHeader header;
  Bytes payload;
  std::size_t payload_have = 0;
  /// Peer id once the hello was accepted; -1 while unidentified.
  std::int64_t sender = -1;
  /// Hello- or payload-completion deadline (the two phases a stalled or
  /// desynced peer must not be able to pin forever).
  std::optional<Clock::time_point> deadline;
  /// Resume/ack bytes not yet accepted by the socket; flushed on
  /// EPOLLOUT.
  Bytes pending_out;
  std::size_t pending_off = 0;
  bool want_write = false;
};

struct TcpCluster::Node {
  ProcessId id;
  std::unique_ptr<sim::Actor> actor;
  Mailbox<Envelope> mailbox;
  std::unique_ptr<Rng> rng;

  int listen_fd = -1;
  std::atomic<std::uint16_t> port{0};

  // The receive event loop: one epoll instance + one thread per node.
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread io_thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  // channels[j]: resilient sender for my link to p_{j+1} (null for j == id).
  std::vector<std::unique_ptr<ResilientChannel>> channels;
  // recv_links[j]: receive state for the link p_{j+1} → me.
  std::vector<std::unique_ptr<RecvLink>> recv_links;

  mutable std::mutex errors_mu;
  std::vector<std::string> errors;
  std::atomic<std::uint64_t> malformed_hellos{0};

  std::vector<TimerEntry> timers;
  std::unordered_set<std::uint64_t> cancelled;
  std::uint64_t next_timer_id = 1;

  std::atomic<bool> stop_requested{false};
  std::atomic<bool> stopped{false};
  // crash_at / restart_at / restart_factory are owned by the node thread
  // once run() spawns it (run() rebases them onto the epoch before the
  // spawn; the thread resets them after a restart fires).
  std::optional<Clock::time_point> crash_at;
  std::optional<Clock::time_point> restart_at;
  std::function<std::unique_ptr<sim::Actor>()> restart_factory;
  std::atomic<bool> crashed{false};

  TcpCluster* cluster = nullptr;
};

class TcpCluster::NodeContext final : public sim::Context {
 public:
  NodeContext(TcpCluster& cluster, Node& node)
      : cluster_(cluster), node_(node) {}

  ProcessId id() const override { return node_.id; }
  std::uint32_t n() const override { return cluster_.config_.n; }

  SimTime now() const override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - cluster_.epoch_)
            .count());
  }

  void send(ProcessId to, Bytes payload) override {
    cluster_.send_frame(node_, to, payload);
  }

  void broadcast(const Bytes& payload) override {
    cluster_.broadcast_frame(node_, payload);
  }

  std::uint64_t set_timer(SimTime delay) override {
    const std::uint64_t id = node_.next_timer_id++;
    node_.timers.push_back(
        TimerEntry{Clock::now() + std::chrono::microseconds(delay), id});
    return id;
  }

  void cancel_timer(std::uint64_t timer_id) override {
    node_.cancelled.insert(timer_id);
  }

  Rng& rng() override { return *node_.rng; }

  void stop() override { node_.stop_requested.store(true); }

 private:
  TcpCluster& cluster_;
  Node& node_;
};

TcpCluster::TcpCluster(TcpClusterConfig config) : config_(config) {
  MODUBFT_EXPECTS(config_.n > 0);
  Rng root(config_.seed);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    auto node = std::make_unique<Node>();
    node->id = ProcessId{i};
    node->rng = std::make_unique<Rng>(root.split(i + 1));
    node->cluster = this;
    node->channels.resize(config_.n);
    for (std::uint32_t j = 0; j < config_.n; ++j) {
      node->recv_links.push_back(std::make_unique<RecvLink>());
    }
    nodes_.push_back(std::move(node));
  }
}

TcpCluster::~TcpCluster() { teardown(); }

void TcpCluster::set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  nodes_[id.value]->actor = std::move(actor);
}

void TcpCluster::crash_after(ProcessId id, std::chrono::microseconds after) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  // Resolved against the epoch when run() starts.
  nodes_[id.value]->crash_at = Clock::time_point(
      after.count() >= 0 ? Clock::duration(after) : Clock::duration::zero());
}

void TcpCluster::set_restart(
    ProcessId id, std::chrono::microseconds after,
    std::function<std::unique_ptr<sim::Actor>()> factory) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  MODUBFT_EXPECTS(nodes_[id.value]->crash_at.has_value());
  MODUBFT_EXPECTS(factory != nullptr);
  // Resolved against the epoch when run() starts.
  nodes_[id.value]->restart_at = Clock::time_point(
      after.count() >= 0 ? Clock::duration(after) : Clock::duration::zero());
  nodes_[id.value]->restart_factory = std::move(factory);
}

void TcpCluster::set_delivery_tap(
    std::function<void(const sim::Delivery&)> tap) {
  MODUBFT_EXPECTS(!ran_);
  tap_ = std::move(tap);
}

SimTime TcpCluster::since_epoch() const {
  if (epoch_ == Clock::time_point{}) return 0;
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch_)
          .count());
}

void TcpCluster::tap_delivery(const Envelope& env, ProcessId to) {
  if (!tap_) return;
  // Copy on the node thread, outside tap_mu_ — see Cluster::tap_delivery:
  // the audit path must not stretch the serialized section or touch a
  // buffer any other lock protects.
  const Bytes payload = env.payload;
  sim::Delivery d;
  d.send_time = env.arrived_at;
  d.deliver_time = since_epoch();
  d.from = env.from;
  d.to = to;
  d.size = payload.size();
  d.payload = &payload;
  std::lock_guard<std::mutex> lock(tap_mu_);
  tap_(d);
}

void TcpCluster::record_error(Node& node, std::string message) {
  std::lock_guard<std::mutex> lock(node.errors_mu);
  node.errors.push_back(std::move(message));
}

bool TcpCluster::send_frame(Node& node, ProcessId to, const Bytes& payload) {
  MODUBFT_EXPECTS(to.value < config_.n);
  if (node.crashed.load(std::memory_order_relaxed)) return false;
  msg_stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  msg_stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  if (to == node.id) {
    // Loopback delivery without a socket round trip keeps "send to Π"
    // semantics identical to the other substrates.
    node.mailbox.push(Envelope{node.id, payload, since_epoch()});
    return true;
  }
  ResilientChannel* channel = node.channels[to.value].get();
  if (channel == nullptr) return false;
  return channel->enqueue(payload);
}

void TcpCluster::broadcast_frame(Node& node, const Bytes& payload) {
  if (node.crashed.load(std::memory_order_relaxed)) return;
  msg_stats_.messages_sent.fetch_add(config_.n, std::memory_order_relaxed);
  msg_stats_.bytes_sent.fetch_add(payload.size() * config_.n,
                                  std::memory_order_relaxed);
  // One allocation for all n−1 wire copies: every channel's queue and
  // retransmit buffer alias the same immutable payload.
  const auto shared = std::make_shared<const Bytes>(payload);
  for (std::uint32_t j = 0; j < config_.n; ++j) {
    if (j == node.id.value) {
      node.mailbox.push(Envelope{node.id, payload, since_epoch()});
      continue;
    }
    if (ResilientChannel* channel = node.channels[j].get()) {
      channel->enqueue(shared);
    }
  }
}

void TcpCluster::io_main(Node& node) {
  // The node's whole receive side on one thread: the listen socket, the
  // teardown eventfd and every inbound connection share one level-triggered
  // epoll set.  All sockets are nonblocking — a stalled peer costs a
  // deadline sweep, never a blocked thread.
  const auto hello_timeout = config_.retry.handshake_timeout;

  auto arm = [&](Conn& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(node.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  };

  auto close_conn = [&](Conn& conn) {
    if (conn.sender >= 0) {
      RecvLink& link = *node.recv_links[static_cast<std::size_t>(conn.sender)];
      std::lock_guard<std::mutex> lock(link.mu);
      if (link.current_fd == conn.fd) link.current_fd = -1;
    }
    ::epoll_ctl(node.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    node.conns.erase(conn.fd);  // destroys conn — caller must not touch it
  };

  // Attempts to hand `len` bytes to the socket; whatever the kernel
  // refuses is staged in pending_out and flushed on EPOLLOUT.  Only fatal
  // socket errors return false (the conn should then be closed).
  auto queue_out = [&](Conn& conn, const std::uint8_t* data,
                       std::size_t len) -> bool {
    if (conn.pending_out.size() == conn.pending_off) {
      conn.pending_out.clear();
      conn.pending_off = 0;
      while (len > 0) {
        const ssize_t put = ::send(conn.fd, data, len, MSG_NOSIGNAL);
        if (put > 0) {
          data += put;
          len -= static_cast<std::size_t>(put);
          continue;
        }
        if (put < 0 && errno == EINTR) continue;
        if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        return false;
      }
    }
    if (len > 0) {
      conn.pending_out.insert(conn.pending_out.end(), data, data + len);
      if (!conn.want_write) {
        conn.want_write = true;
        arm(conn);
      }
    }
    return true;
  };

  auto flush_out = [&](Conn& conn) -> bool {
    while (conn.pending_off < conn.pending_out.size()) {
      const ssize_t put = ::send(conn.fd, conn.pending_out.data() +
                                              conn.pending_off,
                                 conn.pending_out.size() - conn.pending_off,
                                 MSG_NOSIGNAL);
      if (put > 0) {
        conn.pending_off += static_cast<std::size_t>(put);
        continue;
      }
      if (put < 0 && errno == EINTR) continue;
      if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    conn.pending_out.clear();
    conn.pending_off = 0;
    if (conn.want_write) {
      conn.want_write = false;
      arm(conn);
    }
    return true;
  };

  auto send_ack = [&](Conn& conn, std::uint64_t next_expected) -> bool {
    std::uint8_t ack[kAckBytes];
    encode_u64(ack, next_expected);
    return queue_out(conn, ack, kAckBytes);
  };

  // Hello complete: identify the peer, supersede any older connection of
  // the same link, reply with the resume sequence number.  Returns false
  // when the conn must be closed (the accounting mirrors the former
  // blocking reader byte for byte).
  auto accept_hello = [&](Conn& conn) -> bool {
    const std::optional<std::uint32_t> sender = decode_hello(conn.prefix);
    if (!sender.has_value()) {
      node.malformed_hellos.fetch_add(1);
      record_error(node, "hello: bad magic from peer");
      return false;
    }
    if (*sender >= config_.n || *sender == node.id.value) {
      node.malformed_hellos.fetch_add(1);
      std::ostringstream os;
      os << "hello: sender id " << *sender << " out of range (n="
         << config_.n << ")";
      record_error(node, os.str());
      return false;
    }
    RecvLink& link = *node.recv_links[*sender];
    std::uint64_t resume = 0;
    int old_fd = -1;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      old_fd = link.current_fd;
      link.current_fd = conn.fd;
      link.since_ack = 0;
      resume = link.expected_seq;
    }
    if (old_fd >= 0) {
      // A newer connection supersedes the old one; its conn (owned by
      // this same loop) is simply closed, partial frame and all.
      auto it = node.conns.find(old_fd);
      if (it != node.conns.end()) close_conn(*it->second);
    }
    conn.sender = *sender;
    conn.phase = Conn::Phase::kHeader;
    conn.prefix_have = 0;
    conn.deadline.reset();
    return send_ack(conn, resume);
  };

  // One complete frame: CRC, duplicate suppression, gap detection,
  // in-order delivery into the mailbox — the same ladder as the former
  // reader thread.  Returns false when the connection must be torn down.
  auto accept_frame = [&](Conn& conn) -> bool {
    RecvLink& link = *node.recv_links[static_cast<std::size_t>(conn.sender)];
    const ProcessId from{static_cast<std::uint32_t>(conn.sender)};
    Bytes payload = std::move(conn.payload);
    conn.payload = Bytes{};
    conn.phase = Conn::Phase::kHeader;
    conn.prefix_have = 0;
    conn.payload_have = 0;
    conn.deadline.reset();

    std::uint64_t ack_value = 0;
    bool want_ack = false;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      if (!verify_frame_crc(conn.header, payload)) {
        // Wire corruption: tear the connection down; the sender still
        // holds the frame unacked and will retransmit it on resume.
        ++link.checksum_failures;
        return false;
      }
      if (conn.header.seq < link.expected_seq) {
        // Duplicate from a retransmit race: suppress, but re-ack so the
        // sender can trim its buffer.
        ++link.dup_suppressed;
        ack_value = link.expected_seq;
        want_ack = true;
      } else if (conn.header.seq > link.expected_seq) {
        // A gap cannot happen on a healthy resumed stream; force a resync.
        ++link.gap_resets;
        return false;
      } else {
        ++link.expected_seq;
        if (config_.audit_deliveries) link.audit.push_back(conn.header.seq);
        node.mailbox.push(Envelope{from, std::move(payload), since_epoch()});
        if (++link.since_ack >= config_.retry.ack_every) {
          link.since_ack = 0;
          ack_value = link.expected_seq;
          want_ack = true;
        }
      }
    }
    return !want_ack || send_ack(conn, ack_value);
  };

  // Reads until EAGAIN, stepping the per-conn state machine.  Returns
  // false when the conn died (EOF, error, protocol violation).
  auto handle_readable = [&](Conn& conn) -> bool {
    for (;;) {
      std::uint8_t* dst = nullptr;
      std::size_t want = 0;
      switch (conn.phase) {
        case Conn::Phase::kHello:
          dst = conn.prefix + conn.prefix_have;
          want = kHelloBytes - conn.prefix_have;
          break;
        case Conn::Phase::kHeader:
          dst = conn.prefix + conn.prefix_have;
          want = kFrameHeaderBytes - conn.prefix_have;
          break;
        case Conn::Phase::kPayload:
          dst = conn.payload.data() + conn.payload_have;
          want = conn.payload.size() - conn.payload_have;
          break;
      }
      const ssize_t got = ::recv(conn.fd, dst, want, 0);
      if (got == 0) return false;  // EOF
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      const std::size_t n = static_cast<std::size_t>(got);
      switch (conn.phase) {
        case Conn::Phase::kHello:
          conn.prefix_have += n;
          if (conn.prefix_have == kHelloBytes && !accept_hello(conn)) {
            return false;
          }
          break;
        case Conn::Phase::kHeader:
          conn.prefix_have += n;
          if (conn.prefix_have < kFrameHeaderBytes) break;
          conn.header = decode_frame_header(conn.prefix);
          if (conn.header.len > config_.max_frame_bytes) {
            std::ostringstream os;
            os << "frame from p" << conn.sender << ": length "
               << conn.header.len << " exceeds max_frame_bytes="
               << config_.max_frame_bytes;
            record_error(node, os.str());
            return false;
          }
          if (conn.header.len == 0) {
            conn.payload.clear();
            if (!accept_frame(conn)) return false;
            break;
          }
          conn.payload.assign(conn.header.len, 0);
          conn.payload_have = 0;
          conn.phase = Conn::Phase::kPayload;
          // A frame, once its header arrived, must complete promptly: a
          // corrupted length prefix desyncs the stream, and the half-frame
          // would otherwise linger forever.
          conn.deadline = Clock::now() + hello_timeout;
          break;
        case Conn::Phase::kPayload:
          conn.payload_have += n;
          if (conn.payload_have == conn.payload.size() &&
              !accept_frame(conn)) {
            return false;
          }
          break;
      }
    }
  };

  auto handle_accept = [&] {
    for (;;) {
      int fd = ::accept(node.listen_fd, nullptr, nullptr);
      if (fd < 0) {
        // A signal landing mid-sweep must not abandon the rest of the
        // backlog until the next epoll tick; only a genuinely drained
        // queue (or a shut-down listen socket) ends the sweep.
        if (errno == EINTR) continue;
        return;  // EAGAIN/EWOULDBLOCK, or listen socket shut down
      }
      if (shutting_down_.load()) {
        ::close(fd);
        return;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      set_nonblocking(fd);
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      // Until the sender is identified this fd is accountable to nobody,
      // so a silent dialer must not be able to pin it forever.
      conn->deadline = Clock::now() + hello_timeout;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(node.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      node.conns.emplace(fd, std::move(conn));
    }
  };

  epoll_event events[64];
  while (!shutting_down_.load()) {
    // The nearest conn deadline bounds the wait (capped so shutdown is
    // never far away even with no deadlines armed).
    int timeout_ms = 50;
    const Clock::time_point now = Clock::now();
    for (const auto& [fd, conn] : node.conns) {
      if (!conn->deadline.has_value()) continue;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          *conn->deadline - now);
      timeout_ms = std::max(0, std::min<int>(timeout_ms,
                                             static_cast<int>(left.count())));
    }
    const int ready = ::epoll_wait(node.epoll_fd, events, 64, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == node.wake_fd) {
        std::uint64_t drained = 0;
        // Retry on EINTR: an unconsumed eventfd counter would re-fire the
        // wakeup on every subsequent epoll_wait.
        while (::read(node.wake_fd, &drained, sizeof drained) < 0 &&
               errno == EINTR) {
        }
        continue;  // the while condition re-checks shutting_down_
      }
      if (fd == node.listen_fd) {
        handle_accept();
        continue;
      }
      auto it = node.conns.find(fd);
      if (it == node.conns.end()) continue;  // closed earlier in this batch
      Conn& conn = *it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !flush_out(conn)) {
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0 && !handle_readable(conn)) {
        close_conn(conn);
        continue;
      }
    }
    // Deadline sweep: hello never arrived, or a half-frame stalled.
    const Clock::time_point after = Clock::now();
    for (auto it = node.conns.begin(); it != node.conns.end();) {
      Conn& conn = *it->second;
      ++it;  // close_conn erases — advance first
      if (conn.deadline.has_value() && after >= *conn.deadline) {
        close_conn(conn);
      }
    }
  }

  // Loop exit: drop every remaining connection (listen/epoll/wake fds are
  // closed by teardown, which owns their lifecycle).
  for (auto it = node.conns.begin(); it != node.conns.end();) {
    Conn& conn = *it->second;
    ++it;
    close_conn(conn);
  }
}

void TcpCluster::node_main(Node& node) {
  NodeContext ctx(*this, node);
  for (;;) {
    node.actor->on_start(ctx);
    node_pump(node, ctx);
    if (!node.crashed.load() || !node.restart_at.has_value() ||
        node.stop_requested.load()) {
      break;
    }
    // Dormancy: the node is dead until the restart instant.  Frames that
    // arrive meanwhile are discarded (a crashed process receives nothing),
    // in bounded slices so teardown can always interrupt the wait.
    bool aborted = false;
    for (;;) {
      if (node.stop_requested.load()) {
        aborted = true;
        break;
      }
      const Clock::time_point now = Clock::now();
      if (now >= *node.restart_at) break;
      Clock::time_point deadline = now + std::chrono::milliseconds(20);
      if (*node.restart_at < deadline) deadline = *node.restart_at;
      node.mailbox.pop_until(deadline);
    }
    if (aborted) break;
    // Rebirth: fresh actor, empty timer set, sends re-enabled.  The rng
    // stream continues where the former life left it.
    node.actor = node.restart_factory();
    node.timers.clear();
    node.cancelled.clear();
    node.crash_at.reset();
    node.restart_at.reset();
    node.restart_factory = nullptr;
    node.crashed.store(false);
  }
  node.stopped.store(true);
}

void TcpCluster::node_pump(Node& node, NodeContext& ctx) {
  while (!node.stop_requested.load()) {
    if (node.crash_at.has_value() && Clock::now() >= *node.crash_at) {
      node.crashed.store(true);
      break;  // silent halt: no more receives, no more sends
    }

    Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(20);
    const TimerEntry* earliest = nullptr;
    for (const TimerEntry& t : node.timers) {
      if (node.cancelled.count(t.id)) continue;
      if (earliest == nullptr || t.due < earliest->due) earliest = &t;
    }
    if (earliest != nullptr && earliest->due < deadline) {
      deadline = earliest->due;
    }
    if (node.crash_at.has_value() && *node.crash_at < deadline) {
      deadline = *node.crash_at;
    }

    std::vector<Envelope> drained = node.mailbox.drain_until(
        deadline, std::max<std::size_t>(1, config_.max_batch));
    if (node.stop_requested.load()) break;
    if (node.crash_at.has_value() && Clock::now() >= *node.crash_at) {
      node.crashed.store(true);
      break;
    }

    if (!drained.empty()) {
      // Taps and counters fire per delivery, in delivery order, before
      // the batch dispatch (the ordering-ticket contract, docs/INGEST.md).
      std::vector<sim::Incoming> batch;
      batch.reserve(drained.size());
      for (Envelope& env : drained) {
        tap_delivery(env, node.id);
        msg_stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
        msg_stats_.events_executed.fetch_add(1, std::memory_order_relaxed);
        batch.push_back(sim::Incoming{env.from, std::move(env.payload)});
      }
      node.actor->on_batch(ctx, batch);
      continue;
    }

    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> due;
    node.timers.erase(
        std::remove_if(node.timers.begin(), node.timers.end(),
                       [&](const TimerEntry& t) {
                         if (node.cancelled.count(t.id)) {
                           node.cancelled.erase(t.id);
                           return true;
                         }
                         if (t.due <= now) {
                           due.push_back(t.id);
                           return true;
                         }
                         return false;
                       }),
        node.timers.end());
    for (std::uint64_t id : due) {
      if (node.stop_requested.load()) break;
      msg_stats_.events_executed.fetch_add(1, std::memory_order_relaxed);
      node.actor->on_timer(ctx, id);
    }
    if (node.mailbox.closed() && node.timers.empty()) break;
  }
}

bool TcpCluster::run() {
  MODUBFT_EXPECTS(!ran_);
  ran_ = true;
  for (auto& node : nodes_) MODUBFT_EXPECTS(node->actor != nullptr);

  // 1. Listen sockets for everyone (ephemeral loopback ports) before any
  //    dial can happen, so reconnects never race the mesh setup.
  for (auto& node : nodes_) {
    node->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MODUBFT_ASSERT(node->listen_fd >= 0);
    int one = 1;
    ::setsockopt(node->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    MODUBFT_ASSERT(::bind(node->listen_fd,
                          reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0);
    socklen_t len = sizeof addr;
    ::getsockname(node->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    node->port.store(ntohs(addr.sin_port));
    // Backlog 2n: every peer may redial while an old connection lingers.
    MODUBFT_ASSERT(::listen(node->listen_fd,
                            static_cast<int>(2 * config_.n)) == 0);
  }

  // 2. Receive event loops (they run for the whole cluster lifetime:
  //    reconnecting links arrive as fresh inbound connections at any
  //    point).  One epoll set per node watches the listen socket, a
  //    teardown eventfd and every accepted connection.
  for (auto& node : nodes_) {
    set_nonblocking(node->listen_fd);
    node->epoll_fd = ::epoll_create1(0);
    MODUBFT_ASSERT(node->epoll_fd >= 0);
    node->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    MODUBFT_ASSERT(node->wake_fd >= 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = node->listen_fd;
    MODUBFT_ASSERT(::epoll_ctl(node->epoll_fd, EPOLL_CTL_ADD, node->listen_fd,
                               &ev) == 0);
    ev.data.fd = node->wake_fd;
    MODUBFT_ASSERT(::epoll_ctl(node->epoll_fd, EPOLL_CTL_ADD, node->wake_fd,
                               &ev) == 0);
    node->io_thread = std::thread([this, &node = *node] { io_main(node); });
  }

  // 3. Resilient channels for the full mesh; they dial lazily on first
  //    send and redial on any failure.
  for (auto& node : nodes_) {
    for (std::uint32_t j = 0; j < config_.n; ++j) {
      if (j == node->id.value) continue;
      const std::uint16_t peer_port = nodes_[j]->port.load();
      auto dial = [peer_port]() -> int {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(peer_port);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) != 0) {
          ::close(fd);
          return -1;
        }
        return fd;
      };
      const std::uint64_t label =
          (static_cast<std::uint64_t>(node->id.value) << 32) | (j + 1);
      Rng jitter_root(config_.seed ^ kJitterSalt);
      node->channels[j] = std::make_unique<ResilientChannel>(
          node->id, ProcessId{j}, std::move(dial), config_.retry,
          jitter_root.split(label),
          config_.faults.make_injector(node->id, ProcessId{j}));
      node->channels[j]->start();
    }
  }

  // 4. Run the actors.
  epoch_ = Clock::now();
  // Rebase crash deadlines onto the epoch.
  for (auto& node : nodes_) {
    if (node->crash_at.has_value()) {
      node->crash_at = epoch_ + node->crash_at->time_since_epoch();
    }
    if (node->restart_at.has_value()) {
      node->restart_at = epoch_ + node->restart_at->time_since_epoch();
    }
  }
  threads_.reserve(config_.n);
  for (auto& node : nodes_) {
    threads_.emplace_back([this, &node = *node] { node_main(node); });
  }

  const Clock::time_point deadline = epoch_ + config_.budget;
  bool all_stopped = false;
  while (Clock::now() < deadline) {
    all_stopped = true;
    for (auto& node : nodes_) {
      if (!node->stopped.load()) {
        all_stopped = false;
        break;
      }
    }
    if (all_stopped) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Snapshot the stragglers before teardown forces everyone to stop, so
  // a budget expiry is diagnosable after run() returns.
  for (auto& node : nodes_) {
    if (!node->stopped.load()) unstopped_.push_back(node->id);
  }

  teardown();

  if (!all_stopped) {
    std::ostringstream os;
    os << "TcpCluster: budget expired with unstopped nodes:";
    for (ProcessId id : unstopped_) os << ' ' << id;
    log_warn(os.str());
  }
  return all_stopped;
}

void TcpCluster::teardown() {
  if (torn_down_) return;
  torn_down_ = true;
  shutting_down_.store(true);

  // 1. Stop the actors.
  for (auto& node : nodes_) {
    node->stop_requested.store(true);
    node->mailbox.close();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();

  // 2. Stop the send side while receivers still drain, so no channel can
  //    block on a full socket buffer.
  for (auto& node : nodes_) {
    for (auto& channel : node->channels) {
      if (channel) channel->shutdown();
    }
  }
  for (auto& node : nodes_) {
    for (auto& channel : node->channels) {
      if (channel) channel->join();
    }
  }

  // 3. Stop the receive event loops: poke each eventfd (shutting_down_ is
  //    already set, so the loop exits and closes its connections), join,
  //    then release the loop's fds.
  for (auto& node : nodes_) {
    if (node->wake_fd >= 0) {
      const std::uint64_t one = 1;
      (void)::write(node->wake_fd, &one, sizeof one);
    }
  }
  for (auto& node : nodes_) {
    if (node->io_thread.joinable()) node->io_thread.join();
    close_fd(node->listen_fd);
    close_fd(node->wake_fd);
    close_fd(node->epoll_fd);
  }
}

bool TcpCluster::stopped(ProcessId id) const {
  MODUBFT_EXPECTS(id.value < config_.n);
  return nodes_[id.value]->stopped.load();
}

std::vector<ProcessId> TcpCluster::unstopped() const { return unstopped_; }

std::uint16_t TcpCluster::port(ProcessId id) const {
  MODUBFT_EXPECTS(id.value < config_.n);
  return nodes_[id.value]->port.load();
}

std::vector<std::string> TcpCluster::errors(ProcessId id) const {
  MODUBFT_EXPECTS(id.value < config_.n);
  Node& node = *nodes_[id.value];
  std::lock_guard<std::mutex> lock(node.errors_mu);
  return node.errors;
}

std::uint64_t TcpCluster::frames_sent() const {
  std::uint64_t total = 0;
  for (auto& node : nodes_) {
    for (auto& channel : node->channels) {
      if (channel) total += channel->stats().frames_sent;
    }
  }
  return total;
}

std::uint64_t TcpCluster::bytes_sent() const {
  std::uint64_t total = 0;
  for (auto& node : nodes_) {
    for (auto& channel : node->channels) {
      if (channel) total += channel->stats().bytes_sent;
    }
  }
  return total;
}

sim::Stats TcpCluster::stats() const {
  sim::Stats s;
  s.messages_sent = msg_stats_.messages_sent.load();
  s.messages_delivered = msg_stats_.messages_delivered.load();
  s.bytes_sent = msg_stats_.bytes_sent.load();
  s.events_executed = msg_stats_.events_executed.load();
  return s;
}

TcpLinkStats TcpCluster::link_stats() const {
  TcpLinkStats agg;
  for (auto& node : nodes_) {
    for (auto& channel : node->channels) {
      if (!channel) continue;
      const ChannelStats s = channel->stats();
      agg.reconnects += s.reconnects;
      agg.retransmits += s.retransmits;
      agg.dial_failures += s.dial_failures;
      agg.frames_dropped += s.frames_dropped;
      agg.kills_injected += s.kills_injected;
      agg.truncates_injected += s.truncates_injected;
      agg.flips_injected += s.flips_injected;
      agg.delays_injected += s.delays_injected;
      agg.degraded_links += s.degraded ? 1 : 0;
    }
    for (auto& link : node->recv_links) {
      std::lock_guard<std::mutex> lock(link->mu);
      agg.checksum_failures += link->checksum_failures;
      agg.dup_suppressed += link->dup_suppressed;
      agg.gap_resets += link->gap_resets;
    }
    agg.malformed_hellos += node->malformed_hellos.load();
  }
  return agg;
}

ChannelStats TcpCluster::channel_stats(ProcessId from, ProcessId to) const {
  MODUBFT_EXPECTS(from.value < config_.n && to.value < config_.n);
  MODUBFT_EXPECTS(from != to);
  const auto& channel = nodes_[from.value]->channels[to.value];
  return channel ? channel->stats() : ChannelStats{};
}

std::vector<std::uint64_t> TcpCluster::delivered_seqs(ProcessId from,
                                                      ProcessId to) const {
  MODUBFT_EXPECTS(from.value < config_.n && to.value < config_.n);
  MODUBFT_EXPECTS(from != to);
  RecvLink& link = *nodes_[to.value]->recv_links[from.value];
  std::lock_guard<std::mutex> lock(link.mu);
  return link.audit;
}

}  // namespace modubft::transport
