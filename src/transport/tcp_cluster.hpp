// TCP cluster: the protocols over real sockets.
//
// Runs the same Actor programs as the simulator and the in-memory threaded
// cluster, but every channel is a TCP connection on the loopback
// interface: real framing, real kernel buffering, real partial reads.
// This is the closest substrate to a deployment and the robustness proving
// ground — nothing above this layer changes.
//
// Topology: full mesh of unidirectional links.  Every node dials every
// peer and uses that connection exclusively for its own sends (i → j);
// inbound connections are identified by a hello frame carrying the
// dialer's id.  The receive side of each node is a single level-triggered
// epoll event loop driving nonblocking sockets (accept + every inbound
// link), so a node costs one IO thread regardless of n — the former
// thread-per-connection readers are gone (see docs/INGEST.md).  Unlike
// the first-generation transport, the reliable-FIFO
// contract the protocols assume is *re-established by this layer* rather
// than presumed from a single healthy TCP connection: each link is a
// `ResilientChannel` with per-link sequence numbers, CRC-checked frames, a
// bounded retransmit buffer, reconnect with capped exponential backoff,
// and duplicate suppression on resume — so injected link faults
// (`LinkFaultPlan`) or real socket failures are absorbed below the
// protocol instead of silently breaking the model.
//
// Wire protocol (see resilient_channel.hpp for the byte-level encoders):
//   hello  = [u32 magic][u32 sender id]
//   resume = [u64 next expected seq]        (receiver → dialer)
//   frame  = [u32 len][u64 seq][u32 crc32c(len‖seq‖payload)][payload]
//   ack    = [u64 next expected seq]        (receiver → dialer, cumulative)
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "sim/actor.hpp"
#include "sim/simulation.hpp"
#include "transport/link_faults.hpp"
#include "transport/mailbox.hpp"
#include "transport/resilient_channel.hpp"

namespace modubft::transport {

struct TcpClusterConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::chrono::milliseconds budget{10'000};
  /// Maximum accepted frame size (defensive cap on the wire).
  std::uint32_t max_frame_bytes = 16u << 20;
  /// Reconnect / retransmit / timeout policy applied to every link.
  RetryPolicy retry;
  /// Link faults injected below the framing layer (empty = healthy links).
  LinkFaultPlan faults;
  /// Records every delivered (link, seq) so tests can audit FIFO and
  /// exactly-once delivery.  Off by default (unbounded memory per frame).
  bool audit_deliveries = false;
  /// Maximum deliveries drained from the mailbox into one Actor::on_batch
  /// dispatch (1 = strict one-at-a-time dispatch).
  std::size_t max_batch = 64;
};

/// Aggregate counters across every link of the cluster.
struct TcpLinkStats {
  std::uint64_t reconnects = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dial_failures = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t kills_injected = 0;
  std::uint64_t truncates_injected = 0;
  std::uint64_t flips_injected = 0;
  std::uint64_t delays_injected = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t gap_resets = 0;
  std::uint64_t malformed_hellos = 0;
  std::uint64_t degraded_links = 0;
};

class TcpCluster {
 public:
  explicit TcpCluster(TcpClusterConfig config);
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor);

  /// Schedules a silent halt of `id` after `after` of wall-clock run time:
  /// the node's actor stops receiving, sending and firing timers, matching
  /// Cluster::crash_after and sim::Simulation::crash_at semantics.  Frames
  /// already handed to the resilient channels may still reach peers (they
  /// are "in the channel", as in the simulator's model).
  void crash_after(ProcessId id, std::chrono::microseconds after);

  /// Schedules a restart of a node previously given to crash_after: at
  /// `after` (from the run epoch, > the crash instant), `factory()` builds
  /// a FRESH actor that takes over the node — same id, same rng stream,
  /// empty timer set; frames that arrived during the outage are discarded.
  /// One-shot: a restart whose deadline falls after the cluster began
  /// stopping (budget expiry / teardown) is abandoned, never a hang.
  void set_restart(ProcessId id, std::chrono::microseconds after,
                   std::function<std::unique_ptr<sim::Actor>()> factory);

  /// Optional observer invoked on every delivery, right before the
  /// receiving actor's on_message.  Serialized by an internal mutex;
  /// `Delivery::payload` is valid only for the call.  `send_time` is the
  /// frame's arrival at the receiving transport (the wire carries no send
  /// timestamp), `deliver_time` the dispatch to the actor — both µs since
  /// the run epoch.
  void set_delivery_tap(std::function<void(const sim::Delivery&)> tap);

  /// Establishes the mesh, runs every node to completion (or budget
  /// expiry).  Returns true iff all nodes stopped by themselves; on budget
  /// expiry the stragglers are reported via unstopped() and a warning log.
  bool run();

  bool stopped(ProcessId id) const;

  /// Nodes that had not stopped when the run() budget expired (empty
  /// after a clean run) — makes hung-transport failures diagnosable.
  std::vector<ProcessId> unstopped() const;

  /// Loopback port the node listens on (0 until run() binds it).  Exposed
  /// so tests can poke the wire protocol directly.
  std::uint16_t port(ProcessId id) const;

  /// Per-node transport errors (malformed hellos, oversized frames, …).
  std::vector<std::string> errors(ProcessId id) const;

  /// Total frames/bytes actually written to sockets (retransmits count).
  std::uint64_t frames_sent() const;
  std::uint64_t bytes_sent() const;

  /// Protocol-level message counters, comparable field-for-field with
  /// sim::Simulation::stats() and Cluster::stats(): sends/bytes are
  /// counted at the Context::send boundary (before framing, retransmits
  /// excluded), deliveries at actor dispatch.
  sim::Stats stats() const;

  /// Aggregate fault/recovery counters over all links.
  TcpLinkStats link_stats() const;

  /// Counters of the directed link from → to.
  ChannelStats channel_stats(ProcessId from, ProcessId to) const;

  /// Sequence numbers delivered on link from → to, in delivery order.
  /// Requires config.audit_deliveries.
  std::vector<std::uint64_t> delivered_seqs(ProcessId from,
                                            ProcessId to) const;

 private:
  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
  };

  struct Envelope {
    ProcessId from;
    Bytes payload;
    /// µs since the run epoch when the frame reached this node's mailbox.
    SimTime arrived_at = 0;
  };

  struct RecvLink;
  struct Conn;
  struct Node;
  class NodeContext;

  void node_main(Node& node);
  void node_pump(Node& node, NodeContext& ctx);
  /// The per-node receive event loop: one epoll instance drives the
  /// listen socket plus every inbound connection (nonblocking), replacing
  /// the former accept thread + thread-per-connection readers.
  void io_main(Node& node);
  bool send_frame(Node& node, ProcessId to, const Bytes& payload);
  /// Broadcast with one shared wire payload across all n−1 channels.
  void broadcast_frame(Node& node, const Bytes& payload);
  void record_error(Node& node, std::string message);
  void teardown();
  SimTime since_epoch() const;
  void tap_delivery(const Envelope& env, ProcessId to);

  TcpClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<ProcessId> unstopped_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<bool> shutting_down_{false};
  bool ran_ = false;
  bool torn_down_ = false;

  struct AtomicStats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> events_executed{0};
  };
  AtomicStats msg_stats_;

  std::mutex tap_mu_;
  std::function<void(const sim::Delivery&)> tap_;
};

}  // namespace modubft::transport
