// TCP cluster: the protocols over real sockets.
//
// Runs the same Actor programs as the simulator and the in-memory threaded
// cluster, but every channel is a TCP connection on the loopback
// interface: real framing, real kernel buffering, real partial reads.
// This is the closest substrate to a deployment and the final word on the
// "manual networking" plumbing — nothing above this layer changes.
//
// Topology: full mesh of unidirectional connections.  Every node dials
// every peer once and uses that connection exclusively for its own sends
// (i → j); inbound connections are identified by a hello frame carrying
// the dialer's id.  TCP gives reliability and per-connection ordering, so
// the model's reliable-FIFO channel assumption holds by construction.
//
// Framing: hello = u32 sender id; then repeated [u32 length][payload].
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "sim/actor.hpp"
#include "transport/mailbox.hpp"

namespace modubft::transport {

struct TcpClusterConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::chrono::milliseconds budget{10'000};
  /// Maximum accepted frame size (defensive cap on the wire).
  std::uint32_t max_frame_bytes = 16u << 20;
};

class TcpCluster {
 public:
  explicit TcpCluster(TcpClusterConfig config);
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor);

  /// Establishes the mesh, runs every node to completion (or budget
  /// expiry).  Returns true iff all nodes stopped by themselves.
  bool run();

  bool stopped(ProcessId id) const;

  /// Total frames/bytes actually written to sockets.
  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }

 private:
  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
  };

  struct Envelope {
    ProcessId from;
    Bytes payload;
  };

  struct Node;
  class NodeContext;

  void node_main(Node& node);
  void reader_main(Node& node, int fd);
  bool send_frame(Node& node, ProcessId to, const Bytes& payload);

  TcpClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  bool ran_ = false;
};

}  // namespace modubft::transport
