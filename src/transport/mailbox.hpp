// Blocking MPSC mailbox used by the threaded runtime.
//
// Multiple sender threads push; the owning node thread pops with a
// deadline (so protocol timers can fire while the queue is idle).  Pushes
// from one sender thread keep their order — together with one mailbox per
// node this yields the reliable-FIFO channel semantics the protocols
// assume.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace modubft::transport {

template <typename T>
class Mailbox {
 public:
  /// Enqueues an item.  Returns false if the mailbox is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pops the next item, waiting until `deadline` at most.
  /// Returns nullopt on deadline expiry or when closed and drained.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Pops up to `max` immediately-available items after waiting (until
  /// `deadline`) for at least one.  Returns items in queue order — the
  /// batched counterpart of pop_until for runtimes that dispatch whole
  /// mailbox drains at once.  Empty result on deadline expiry or when
  /// closed and drained.
  std::vector<T> drain_until(std::chrono::steady_clock::time_point deadline,
                             std::size_t max) {
    std::vector<T> out;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [this] { return !queue_.empty() || closed_; });
    while (!queue_.empty() && out.size() < max) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Closes the mailbox: pending items remain poppable, pushes fail, and
  /// waiting poppers wake.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace modubft::transport
