#include "transport/link_faults.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace modubft::transport {

namespace faults = modubft::faults;

LinkFaultInjector::LinkFaultInjector(std::vector<faults::LinkFaultSpec> specs,
                                     Rng rng)
    : specs_(std::move(specs)),
      random_faults_(specs_.size(), 0),
      rng_(rng) {
  for (const auto& spec : specs_) {
    kill_at_.insert(spec.kill_at_attempts.begin(),
                    spec.kill_at_attempts.end());
  }
}

FrameFaultDecision LinkFaultInjector::next_attempt(std::size_t wire_len) {
  MODUBFT_EXPECTS(wire_len > 4);  // at least a length prefix plus one byte
  const std::uint64_t attempt = attempt_++;
  FrameFaultDecision d;

  if (kill_at_.count(attempt) > 0) {
    d.kill_before = true;
    events_.push_back({attempt, faults::LinkFaultKind::kKill, 0});
  }

  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const faults::LinkFaultSpec& spec = specs_[s];
    // Draw every probability each attempt, in a fixed order, so the random
    // stream stays aligned no matter which faults actually fire.
    const bool kill = rng_.next_bool(spec.kill_prob);
    const bool trunc = rng_.next_bool(spec.truncate_prob);
    const bool flip = rng_.next_bool(spec.flip_prob);
    const bool delay = rng_.next_bool(spec.delay_prob);

    if (delay && d.delay_us == 0) {
      d.delay_us = static_cast<std::uint32_t>(
          rng_.next_exponential(static_cast<double>(spec.delay_mean_us)));
      events_.push_back({attempt, faults::LinkFaultKind::kDelay, d.delay_us});
    }
    if (spec.throttle_chunk_bytes > 0 && d.throttle_chunk == 0) {
      d.throttle_chunk = spec.throttle_chunk_bytes;
      events_.push_back(
          {attempt, faults::LinkFaultKind::kThrottle, d.throttle_chunk});
    }

    // One disruptive fault per attempt, kill > truncate > flip, and only
    // while this spec has random-fault budget left.
    if (d.disruptive() || random_faults_[s] >= spec.max_random_faults) {
      continue;
    }
    if (kill) {
      d.kill_before = true;
      ++random_faults_[s];
      events_.push_back({attempt, faults::LinkFaultKind::kKill, 0});
    } else if (trunc) {
      d.truncate = true;
      d.truncate_prefix = static_cast<std::size_t>(
          rng_.next_below(static_cast<std::uint64_t>(wire_len)));
      ++random_faults_[s];
      events_.push_back(
          {attempt, faults::LinkFaultKind::kTruncate, d.truncate_prefix});
    } else if (flip) {
      d.flip = true;
      // Skip the 4-byte length prefix: a corrupted length is only
      // detectable after it has desynced the stream, so flipping it would
      // test the receiver's stall timeout rather than the checksum.  The
      // sequence number, CRC field and payload are all fair game.
      d.flip_offset = 4 + static_cast<std::size_t>(rng_.next_below(
                              static_cast<std::uint64_t>(wire_len - 4)));
      ++random_faults_[s];
      events_.push_back(
          {attempt, faults::LinkFaultKind::kFlip, d.flip_offset});
    }
  }
  return d;
}

LinkFaultPlan::LinkFaultPlan(std::vector<faults::LinkFaultSpec> specs,
                             std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {}

std::unique_ptr<LinkFaultInjector> LinkFaultPlan::make_injector(
    ProcessId from, ProcessId to) const {
  std::vector<faults::LinkFaultSpec> matching;
  for (const auto& spec : specs_) {
    if (spec.matches(from, to)) matching.push_back(spec);
  }
  if (matching.empty()) return nullptr;
  // Independent stream per directed link: equal seeds and equal links give
  // equal schedules; distinct links give unrelated ones.
  Rng root(seed_);
  Rng link_rng = root.split(
      (static_cast<std::uint64_t>(from.value) << 32) | (to.value + 1));
  return std::make_unique<LinkFaultInjector>(std::move(matching), link_rng);
}

LinkFaultPlan LinkFaultPlan::kill_every_link(double kill_prob,
                                             std::uint64_t seed) {
  faults::LinkFaultSpec spec;
  spec.kill_prob = kill_prob;
  spec.kill_at_attempts = {0};
  return LinkFaultPlan({spec}, seed);
}

}  // namespace modubft::transport
